//! Integration tests asserting the paper's headline claims hold in the
//! reproduction — orderings and crossovers, not absolute numbers.

use soc_dse_repro::soc_cpu::CoreConfig;
use soc_dse_repro::soc_dse::experiments::{
    pareto_frontier, solve_cycles, speedup_heatmap, table1, KernelShape, Residency,
};
use soc_dse_repro::soc_dse::platform::Platform;
use soc_dse_repro::soc_dse::workloads;
use soc_dse_repro::soc_gemmini::{GemminiConfig, GemminiOpts};
use soc_dse_repro::soc_vector::SaturnConfig;

fn cycles_of(name: &str, rows: &[soc_dse_repro::soc_dse::experiments::Table1Row]) -> u64 {
    rows.iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("{name} missing"))
        .cycles_per_solve
}

#[test]
fn pareto_frontier_matches_paper() {
    // The registry also carries OSGemminiShuttle32KB — a design point
    // registered beyond the paper's Table I. Figure 20 is a claim about
    // the paper's design points, so exclude the extension here; its own
    // frontier placement is asserted separately below.
    let mut rows = table1(10).expect("table 1");
    rows.retain(|r| r.name != "OSGemminiShuttle32KB");
    rows.sort_by(|a, b| a.area_um2.total_cmp(&b.area_um2));
    let frontier = pareto_frontier(
        &rows
            .iter()
            .map(|r| (r.area_um2, r.cycles_per_solve as f64))
            .collect::<Vec<_>>(),
    );
    let on: Vec<&str> = rows
        .iter()
        .zip(&frontier)
        .filter(|(_, &f)| f)
        .map(|(r, _)| r.name.as_str())
        .collect();
    assert_eq!(
        on,
        vec![
            "Rocket",
            "SmallBoom",
            "RefV512D128Rocket",
            "OSGemminiRocket32KB",
            "RefV512D128Shuttle",
            "RefV512D256Shuttle",
        ],
        "the Pareto frontier must match the paper's Figure 20"
    );
}

#[test]
fn shuttle_gemmini_extension_joins_the_frontier() {
    // The registration-only Shuttle-driven Gemmini point: the dual-issue
    // frontend trims the RoCC command-construction overhead, so it
    // solves slightly faster than the Rocket-driven mesh at larger area
    // and lands on the combined frontier between the two.
    let mut rows = table1(10).expect("table 1");
    rows.sort_by(|a, b| a.area_um2.total_cmp(&b.area_um2));
    let shuttle = cycles_of("OSGemminiShuttle32KB", &rows);
    let rocket = cycles_of("OSGemminiRocket32KB", &rows);
    assert!(
        shuttle < rocket,
        "Shuttle frontend must beat Rocket on the same mesh ({shuttle} vs {rocket})"
    );
    let frontier = pareto_frontier(
        &rows
            .iter()
            .map(|r| (r.area_um2, r.cycles_per_solve as f64))
            .collect::<Vec<_>>(),
    );
    let on = rows
        .iter()
        .zip(&frontier)
        .find(|(r, _)| r.name == "OSGemminiShuttle32KB")
        .map(|(_, &f)| f)
        .unwrap();
    assert!(on, "OSGemminiShuttle32KB must be Pareto-optimal");
}

#[test]
fn table1_orderings_hold() {
    let rows = table1(10).expect("table 1");
    // The BOOM family scales monotonically but stays above (worse than)
    // every accelerated design.
    let rocket = cycles_of("Rocket", &rows);
    let small = cycles_of("SmallBoom", &rows);
    let medium = cycles_of("MediumBoom", &rows);
    let large = cycles_of("LargeBoom", &rows);
    let mega = cycles_of("MegaBoom", &rows);
    assert!(rocket > small && small > medium && medium > large && large > mega);

    // Saturn: DLEN helps, Shuttle frontends help more (the paper's
    // frontend-bound short-vector story).
    let d128r = cycles_of("RefV512D128Rocket", &rows);
    let d256r = cycles_of("RefV512D256Rocket", &rows);
    let d128s = cycles_of("RefV512D128Shuttle", &rows);
    let d256s = cycles_of("RefV512D256Shuttle", &rows);
    assert!(d128r > d256r && d128s > d256s, "wider DLEN must help");
    assert!(
        d128r > d128s && d256r > d256s,
        "Shuttle frontends must help"
    );

    // Gemmini: the optimized OS design beats every Rocket-fronted Saturn
    // and roughly ties MegaBoom (the paper's 132.7k vs 134.4k); the
    // barely-optimized WS design is ~2.6x worse but still beats Rocket.
    let os = cycles_of("OSGemminiRocket32KB", &rows);
    let ws = cycles_of("WSGemminiRocket64KB", &rows);
    assert!(
        os < d128r && os < d256r,
        "OS Gemmini must beat Rocket-fronted Saturn"
    );
    assert!(
        os < mega * 11 / 10 && mega < os * 11 / 10,
        "OS Gemmini ~ MegaBoom"
    );
    let ratio = ws as f64 / os as f64;
    assert!(
        (1.8..3.5).contains(&ratio),
        "WS/OS ratio {ratio} out of the paper's ~2.6x band"
    );
    assert!(
        ws < rocket,
        "even unoptimized WS Gemmini beats scalar Rocket"
    );

    // Scratchpad capacity does not change performance (32 vs 64 KiB).
    assert_eq!(os, cycles_of("OSGemminiRocket64KB", &rows));
}

#[test]
fn end_to_end_speedups_in_paper_band() {
    let rocket = solve_cycles(&Platform::rocket_eigen(), 10)
        .unwrap()
        .result
        .total_cycles as f64;
    let check = |p: Platform, paper: f64| {
        let c = solve_cycles(&p, 10).unwrap().result.total_cycles as f64;
        let speedup = rocket / c;
        assert!(
            speedup > paper * 0.6 && speedup < paper * 1.6,
            "{}: speedup {speedup:.2} vs paper {paper:.2}",
            p.name
        );
    };
    check(
        Platform::saturn(CoreConfig::rocket(), SaturnConfig::v512d128()),
        2.29,
    );
    check(
        Platform::saturn(CoreConfig::rocket(), SaturnConfig::v512d256()),
        2.50,
    );
    check(
        Platform::saturn(CoreConfig::shuttle(), SaturnConfig::v512d128()),
        3.22,
    );
    check(
        Platform::saturn(CoreConfig::shuttle(), SaturnConfig::v512d256()),
        3.71,
    );
    check(
        Platform::gemmini(
            CoreConfig::rocket(),
            GemminiConfig::os_4x4_32kb(),
            GemminiOpts::optimized(),
        ),
        2.96,
    );
}

#[test]
fn gemv_hardware_extension_story() {
    let heights = workloads::heatmap_heights();
    let widths = workloads::heatmap_widths();
    let saturn = Platform::saturn(CoreConfig::rocket(), SaturnConfig::v512d512());
    let plain = Platform::gemmini(
        CoreConfig::rocket(),
        GemminiConfig::os_4x4_32kb(),
        GemminiOpts::optimized(),
    );
    let ext = Platform::gemmini(
        CoreConfig::rocket(),
        GemminiConfig::os_4x4_32kb().with_gemv_support(),
        GemminiOpts::optimized(),
    );

    // Figure 8: the extension restores mesh utilization (~6x warm).
    let f8 = speedup_heatmap(
        &ext,
        &plain,
        KernelShape::Gemv,
        Residency::Warm,
        &heights,
        &widths,
    );
    assert!(
        f8.mean() > 4.0,
        "fig 8 mean {:.2} must exceed the >4x utilization bound",
        f8.mean()
    );

    // Figure 13: Saturn beats the original Gemmini on GEMV (~2.78x).
    let f13 = speedup_heatmap(
        &saturn,
        &plain,
        KernelShape::Gemv,
        Residency::Cold,
        &heights,
        &widths,
    );
    assert!(f13.mean() > 1.8, "fig 13 mean {:.2}", f13.mean());

    // Figure 14: the extension flips the comparison (~2.34x).
    let f14 = speedup_heatmap(
        &ext,
        &saturn,
        KernelShape::Gemv,
        Residency::Cold,
        &heights,
        &widths,
    );
    assert!(f14.mean() > 1.2, "fig 14 mean {:.2}", f14.mean());
    assert!(
        f14.mean() > 1.0 / f13.mean(),
        "the extension must strictly improve Gemmini's standing vs Saturn"
    );
}

#[test]
fn gemm_crossover_matches_figure_15() {
    let saturn = Platform::saturn(CoreConfig::rocket(), SaturnConfig::v512d512());
    let gemmini = Platform::gemmini(
        CoreConfig::rocket(),
        GemminiConfig::os_4x4_32kb(),
        GemminiOpts::optimized(),
    );
    let small = speedup_heatmap(
        &saturn,
        &gemmini,
        KernelShape::Gemm,
        Residency::Cold,
        &[4, 8],
        &[4, 8],
    );
    let large = speedup_heatmap(
        &saturn,
        &gemmini,
        KernelShape::Gemm,
        Residency::Cold,
        &[64],
        &[48, 64],
    );
    assert!(
        small.mean() < 0.6,
        "Gemmini must win small GEMMs clearly: {:.2}",
        small.mean()
    );
    assert!(
        large.mean() > small.mean() * 2.0,
        "the gap must close for large GEMMs: small {:.2} vs large {:.2}",
        small.mean(),
        large.mean()
    );
}
