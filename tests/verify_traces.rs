//! End-to-end check of the trace verifier against every shipped codegen
//! configuration: each trace an executor feeds its timing model must have
//! zero error-severity findings. This is the release-build counterpart of
//! the debug assertions inside the executors.

use soc_dse_repro::soc_dse::verify::{shipped_configurations, verify_platform};
use soc_dse_repro::tinympc::ProblemDims;

fn assert_all_clean(dims: &ProblemDims) {
    for platform in shipped_configurations() {
        for r in verify_platform(&platform, dims) {
            assert!(
                r.report.is_clean(),
                "{} / {} (nx={}, nu={}) has error-severity findings:\n{}",
                platform.name,
                r.trace,
                dims.nx,
                dims.nu,
                r.report.render()
            );
        }
    }
}

#[test]
fn all_shipped_configurations_verify_clean() {
    // The paper's quadrotor problem: the dimensions every experiment uses.
    assert_all_clean(&ProblemDims {
        nx: 12,
        nu: 4,
        horizon: 10,
    });
}

#[test]
fn off_mesh_problem_sizes_verify_clean() {
    // Dimensions that are not multiples of the mesh/vector width exercise
    // the tail handling of every code generator.
    for (nx, nu) in [(5, 3), (13, 7), (3, 1)] {
        assert_all_clean(&ProblemDims { nx, nu, horizon: 4 });
    }
}
