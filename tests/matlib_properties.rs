//! Property tests for the `matlib` dense-kernel layer, driven by the
//! in-repo SplitMix64 PRNG (no proptest dependency): plain `#[test]`
//! loops over 100 random seeds, each drawing random dimensions and
//! entries.
//!
//! Properties checked:
//! * QR: `Q·R ≈ A` and `Qᵀ·Q = I` for random tall matrices.
//! * Cholesky/LU `solve`: the residual `‖A·x − b‖∞` is bounded relative
//!   to the problem's scale.
//! * Riccati (`dare`): the cost-to-go `P` is symmetric, every produced
//!   matrix is finite, and the algebraic residual is small.

use soc_dse_repro::matlib::{dare, dare_residual, Cholesky, DareOptions, Lu, Matrix, Qr, Vector};
use soc_dse_repro::soc_dse::rng::SplitMix64;

const SEEDS: u64 = 100;

/// Random entries in `[-1, 1)`.
fn random_matrix(rng: &mut SplitMix64, rows: usize, cols: usize) -> Matrix<f64> {
    Matrix::from_fn(rows, cols, |_, _| rng.unit_f64() * 2.0 - 1.0)
}

fn random_vector(rng: &mut SplitMix64, n: usize) -> Vector<f64> {
    Vector::from_fn(n, |_| rng.unit_f64() * 2.0 - 1.0)
}

/// Max absolute entry of a matrix (∞-norm of the flattened entries).
fn max_abs(m: &Matrix<f64>) -> f64 {
    let (rows, cols) = m.shape();
    let mut best = 0.0f64;
    for r in 0..rows {
        for c in 0..cols {
            best = best.max(m[(r, c)].abs());
        }
    }
    best
}

#[test]
fn qr_reconstructs_and_q_is_orthonormal() {
    for seed in 0..SEEDS {
        let mut rng = SplitMix64::new(seed);
        let n = rng.range_usize(1, 6);
        let m = n + rng.range_usize(0, 4);
        // Diagonal boost keeps every column independent so the
        // factorization cannot legitimately reject the input.
        let mut a = random_matrix(&mut rng, m, n);
        for d in 0..n {
            a[(d, d)] += 4.0;
        }

        let qr = Qr::new(&a).unwrap_or_else(|e| panic!("seed {seed}: qr failed: {e:?}"));
        let (q, r) = (qr.q(), qr.r());

        let back = q.matmul(&r).unwrap();
        let err = max_abs(&back.sub(&a).unwrap());
        assert!(err < 1e-10, "seed {seed}: ‖QR − A‖∞ = {err}");

        let qtq = q.transpose().matmul(&q).unwrap();
        let ortho_err = max_abs(&qtq.sub(&Matrix::identity(n)).unwrap());
        assert!(ortho_err < 1e-10, "seed {seed}: ‖QᵀQ − I‖∞ = {ortho_err}");
    }
}

#[test]
fn cholesky_solve_residual_is_bounded() {
    for seed in 0..SEEDS {
        let mut rng = SplitMix64::new(0x5eed_0000 + seed);
        let n = rng.range_usize(1, 8);
        // A = MᵀM + n·I is symmetric positive definite by construction.
        let m = random_matrix(&mut rng, n, n);
        let a = m
            .transpose()
            .matmul(&m)
            .unwrap()
            .add(&Matrix::identity(n).scale(n as f64))
            .unwrap();
        let b = random_vector(&mut rng, n);

        let x = Cholesky::new(&a)
            .unwrap_or_else(|e| panic!("seed {seed}: spd rejected: {e:?}"))
            .solve(&b)
            .unwrap();

        let residual = a.matvec(&x).unwrap().sub(&b).unwrap().max_abs();
        let scale = max_abs(&a) * x.max_abs() + b.max_abs();
        assert!(
            residual <= 1e-12 * scale.max(1.0),
            "seed {seed}: residual {residual} vs scale {scale}"
        );
        assert!(x.max_abs().is_finite(), "seed {seed}: non-finite solution");
    }
}

#[test]
fn lu_solve_residual_is_bounded() {
    for seed in 0..SEEDS {
        let mut rng = SplitMix64::new(0x1u64 << 32 | seed);
        let n = rng.range_usize(1, 8);
        // Strict diagonal dominance keeps the matrix comfortably
        // invertible for every draw.
        let mut a = random_matrix(&mut rng, n, n);
        for d in 0..n {
            a[(d, d)] += n as f64 + 1.0;
        }
        let b = random_vector(&mut rng, n);

        let x = Lu::new(&a)
            .unwrap_or_else(|e| panic!("seed {seed}: lu failed: {e:?}"))
            .solve(&b)
            .unwrap();

        let residual = a.matvec(&x).unwrap().sub(&b).unwrap().max_abs();
        let scale = max_abs(&a) * x.max_abs() + b.max_abs();
        assert!(
            residual <= 1e-12 * scale.max(1.0),
            "seed {seed}: residual {residual} vs scale {scale}"
        );
    }
}

#[test]
fn riccati_cache_is_symmetric_finite_and_converged() {
    for seed in 0..SEEDS {
        let mut rng = SplitMix64::new(0xcafe_0000 + seed);
        let nx = rng.range_usize(2, 6);
        let nu = rng.range_usize(1, nx.min(3));
        // Diagonally-dominant contraction (Gershgorin: |0.9| + Σ|off| < 1)
        // so the pair is stabilizable for every seed.
        let off = 0.08 / nx as f64;
        let a = Matrix::from_fn(nx, nx, |r, c| {
            if r == c {
                0.9
            } else {
                off * (rng.unit_f64() * 2.0 - 1.0)
            }
        });
        let b = random_matrix(&mut rng, nx, nu);
        let q = Matrix::identity(nx);
        let r = Matrix::identity(nu).scale(0.1);

        let sol = dare(&a, &b, &q, &r, DareOptions::default())
            .unwrap_or_else(|e| panic!("seed {seed}: dare failed: {e:?}"));

        // Finiteness of every cached matrix.
        for (name, m) in [("p", &sol.p), ("k", &sol.k), ("quu_inv", &sol.quu_inv)] {
            assert!(
                max_abs(m).is_finite(),
                "seed {seed}: non-finite entries in {name}"
            );
        }

        // Symmetry of the cost-to-go.
        let asym = max_abs(&sol.p.sub(&sol.p.transpose()).unwrap());
        assert!(
            asym < 1e-9 * max_abs(&sol.p).max(1.0),
            "seed {seed}: ‖P − Pᵀ‖∞ = {asym}"
        );

        // P must actually satisfy the DARE.
        let res = dare_residual(&a, &b, &q, &r, &sol.p).unwrap();
        assert!(res < 1e-6, "seed {seed}: dare residual {res}");
    }
}
