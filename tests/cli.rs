//! Smoke tests for the `dse` CLI binary.

use std::process::Command;

fn dse(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_dse"))
        .args(args)
        .output()
        .expect("spawn dse")
}

#[test]
fn help_prints_usage() {
    let out = dse(&["--help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn list_contains_registry() {
    let out = dse(&["list"]);
    assert!(out.status.success());
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("Rocket") && s.contains("OSGemminiRocket32KB"));
}

#[test]
fn solve_reports_cycles() {
    let out = dse(&["solve", "--platform", "Rocket", "--horizon", "8"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("cycles/solve"));
}

#[test]
fn verify_single_platform_is_clean() {
    let out = dse(&["verify", "--platform", "OSGemminiRocket32KB"]);
    assert!(out.status.success());
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("0 errors"));
    assert!(s.contains("all generated traces verified clean"));
}

#[test]
fn chaos_smoke_gate_reports_zero_aborts() {
    let out = dse(&["chaos", "--seed", "7", "--smoke"]);
    assert!(out.status.success());
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("Chaos campaign (seed 7, smoke)"), "{s}");
    assert!(s.contains("0 aborted"), "{s}");
    assert!(s.contains("smoke gate passed: zero aborted trials"), "{s}");
}

#[test]
fn unknown_platform_is_a_clean_error() {
    let out = dse(&["solve", "--platform", "Cray1"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown platform"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = dse(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}
