//! Differential tests for the `soc-bounds` static cycle-bound analyzer:
//! the abstract interpreter's `[lower, upper]` intervals against the
//! trace simulators they model, across every registered back-end.
//!
//! The contract under test, per back-end family:
//!
//! * **In-order cores** ([`BoundClaim::Exact`]): the analyzer replicates
//!   the simulator bit for bit — every interval is a singleton equal to
//!   the trace-simulated cycle count, for kernels, setup traces, and
//!   standalone measurements alike.
//! * **Out-of-order cores** ([`BoundClaim::Bounded`]): the analyzer
//!   brackets the simulator — the simulated count always lies inside the
//!   interval, and the upper bound stays within a bounded factor of the
//!   simulated count ([`OOO_UPPER_FACTOR`]). (The steady-state lower
//!   bound may clamp degenerately on short kernels; soundness, not
//!   tightness, is the contract there.)
//! * **Solve level**: with the default solver settings there is no cycle
//!   budget, so pricing cannot perturb iteration counts and the per-side
//!   totals of [`solve_bounds`] must bracket the trace-priced total.
//! * **Sweep tiering**: the analytical tier's report is byte-identical
//!   to the trace tier's and its pruning never changes the frontier.

use soc_dse_repro::soc_backend::{pipeline_for, BoundClaim};
use soc_dse_repro::soc_bounds::{kernel_bounds, setup_bounds, solve_bounds, standalone_bounds};
use soc_dse_repro::soc_dse::experiments::{solve_cycles, KernelShape, Residency};
use soc_dse_repro::soc_dse::platform::Platform;
use soc_dse_repro::soc_sweep::{run_sweep, run_sweep_tiered, SweepEngine, SweepSpec, SweepTier};
use soc_dse_repro::tinympc::{KernelId, ProblemDims};

/// Empirical ceiling (with margin) on `upper / simulated` for
/// out-of-order backends: observed max is 7x across the registry grid.
const OOO_UPPER_FACTOR: u64 = 8;

fn dims(horizon: usize) -> ProblemDims {
    ProblemDims {
        nx: 12,
        nu: 4,
        horizon,
    }
}

#[test]
fn kernel_bounds_hold_for_every_registry_backend() {
    for platform in &Platform::table1_registry() {
        let pipeline = pipeline_for(platform);
        let claim = pipeline.bound_claim();
        for &horizon in &[6, 10] {
            let d = dims(horizon);
            for &kernel in KernelId::ALL.iter() {
                let interval = kernel_bounds(pipeline.as_ref(), kernel, &d).unwrap();
                let simulated = pipeline.steady_cycles(kernel, &d).unwrap();
                assert!(
                    interval.contains(simulated),
                    "{} / {kernel} @ horizon {horizon}: simulated {simulated} \
                     outside {interval}",
                    platform.name
                );
                match claim {
                    BoundClaim::Exact => assert!(
                        interval.is_exact(),
                        "{} / {kernel}: exactness claimed but got {interval}",
                        platform.name
                    ),
                    BoundClaim::Bounded => assert!(
                        interval.hi <= OOO_UPPER_FACTOR * simulated,
                        "{} / {kernel}: upper bound {} further than {OOO_UPPER_FACTOR}x \
                         from simulated {simulated}",
                        platform.name,
                        interval.hi
                    ),
                }
            }
        }
    }
}

#[test]
fn setup_bounds_hold_for_every_registry_backend() {
    for platform in &Platform::table1_registry() {
        let pipeline = pipeline_for(platform);
        let d = dims(10);
        let interval = setup_bounds(pipeline.as_ref(), &d).unwrap();
        let simulated = pipeline.setup_cost(&d).unwrap();
        assert!(
            interval.contains(simulated),
            "{} setup: simulated {simulated} outside {interval}",
            platform.name
        );
        if pipeline.bound_claim() == BoundClaim::Exact {
            assert!(interval.is_exact(), "{} setup: {interval}", platform.name);
        }
    }
}

#[test]
fn standalone_bounds_hold_across_shapes_and_residencies() {
    for platform in &Platform::table1_registry() {
        let pipeline = pipeline_for(platform);
        let exact = pipeline.bound_claim() == BoundClaim::Exact;
        for shape in [KernelShape::Gemv, KernelShape::Gemm] {
            for residency in [Residency::Cold, Residency::Warm] {
                for (i, k) in [(4, 4), (8, 8), (12, 4)] {
                    let interval = standalone_bounds(pipeline.as_ref(), shape, residency, i, k);
                    let simulated = pipeline.standalone_cycles(shape, residency, i, k);
                    assert!(
                        interval.contains(simulated),
                        "{} {shape:?}/{residency:?} {i}x{k}: simulated {simulated} \
                         outside {interval}",
                        platform.name
                    );
                    if exact {
                        assert!(
                            interval.is_exact(),
                            "{} {shape:?}/{residency:?} {i}x{k}: {interval}",
                            platform.name
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn solve_bounds_bracket_the_trace_priced_solve() {
    // One platform per family plus one out-of-order point; short horizon
    // keeps the six end-to-end solves seconds-scale.
    let spec = SweepSpec::smoke();
    let mut platforms = spec.platforms.clone();
    platforms.push(
        Platform::table1_registry()
            .into_iter()
            .find(|p| p.name == "SmallBoom")
            .expect("SmallBoom is registered"),
    );
    for platform in &platforms {
        let interval = solve_bounds(platform, 6).unwrap();
        let outcome = solve_cycles(platform, 6).unwrap();
        let simulated = outcome.result.total_cycles;
        assert!(
            interval.contains(simulated),
            "{}: solve total {simulated} outside {interval}",
            platform.name
        );
        if pipeline_for(platform).bound_claim() == BoundClaim::Exact {
            assert!(
                interval.is_exact(),
                "{}: in-order solve bounds must collapse, got {interval}",
                platform.name
            );
        }
    }
}

#[test]
fn analytical_tier_reproduces_the_trace_frontier_byte_for_byte() {
    let spec = SweepSpec::smoke();
    let reference = run_sweep(&spec, &SweepEngine::in_memory(2)).unwrap();
    let tiered =
        run_sweep_tiered(&spec, &SweepEngine::in_memory(2), SweepTier::Analytical).unwrap();
    assert_eq!(
        tiered.render(),
        reference.render(),
        "analytical tier must not change the report"
    );
    let summary = tiered.tier_summary.expect("tier summary present");
    assert!(summary.contains("frontier confirmed"), "{summary}");
}
