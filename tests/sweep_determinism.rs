//! Determinism tests for the sweep engine, end to end through the `dse`
//! binary:
//!
//! * the same spec at `--jobs 1`, `--jobs 4`, and `--jobs 16` must
//!   produce **byte-identical** stdout (shard timing is stderr-only);
//! * a cache-warm second invocation over the same `--cache-dir` must
//!   produce identical results while regenerating nothing (`0 misses`,
//!   100% reported hit rate);
//! * a chaos-injected run (`--chaos-seed`: seeded worker panics,
//!   recovered by retry) must stay byte-identical to the fault-free
//!   run at every `--jobs` value — injection is keyed on
//!   scheduling-independent coordinates, so recovery never perturbs
//!   the report.

use std::path::PathBuf;
use std::process::Command;

fn dse(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_dse"))
        .args(args)
        .output()
        .expect("spawn dse")
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("soc-sweep-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn smoke_report_is_byte_identical_across_job_counts() {
    let reference = dse(&["sweep", "--smoke", "--no-cache", "--jobs", "1"]);
    assert!(reference.status.success());
    assert!(!reference.stdout.is_empty());
    for jobs in ["4", "16"] {
        let got = dse(&["sweep", "--smoke", "--no-cache", "--jobs", jobs]);
        assert!(got.status.success());
        assert_eq!(
            got.stdout, reference.stdout,
            "--jobs {jobs} perturbed the report"
        );
    }
}

#[test]
fn scenario_sweep_is_byte_identical_across_job_counts() {
    // The scenario axis must not perturb determinism: the closed-loop
    // tracking section is computed serially from the spec alone, and
    // the priced grid goes through the same order-preserving shard
    // merge as the hover default.
    let reference = dse(&[
        "sweep",
        "--scenario",
        "figure8",
        "--smoke",
        "--no-cache",
        "--jobs",
        "1",
    ]);
    assert!(reference.status.success());
    let stdout = String::from_utf8_lossy(&reference.stdout);
    assert!(
        stdout.contains("workload: figure8") && stdout.contains("Closed-loop tracking"),
        "scenario sweep must report its workload and tracking error: {stdout}"
    );
    for jobs in ["4", "16"] {
        let got = dse(&[
            "sweep",
            "--scenario",
            "figure8",
            "--smoke",
            "--no-cache",
            "--jobs",
            jobs,
        ]);
        assert!(got.status.success());
        assert_eq!(
            got.stdout, reference.stdout,
            "--jobs {jobs} perturbed the scenario sweep report"
        );
    }
}

#[test]
fn cache_warm_rerun_regenerates_nothing() {
    let dir = fresh_dir("warm");
    let dir_arg = dir.to_str().unwrap();

    let cold = dse(&["sweep", "--smoke", "--jobs", "4", "--cache-dir", dir_arg]);
    assert!(cold.status.success());
    let cold_stdout = String::from_utf8_lossy(&cold.stdout).into_owned();
    assert!(
        cold_stdout.contains("0 hits") && cold_stdout.contains("hit rate 0.0%"),
        "cold run should start from an empty cache: {cold_stdout}"
    );

    let warm = dse(&["sweep", "--smoke", "--jobs", "4", "--cache-dir", dir_arg]);
    assert!(warm.status.success());
    let warm_stdout = String::from_utf8_lossy(&warm.stdout).into_owned();

    // Identical results; only the cache accounting line may differ.
    let body = |s: &str| {
        s.lines()
            .filter(|l| !l.starts_with("cache:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(body(&cold_stdout), body(&warm_stdout));
    assert!(
        warm_stdout.contains("0 misses") && warm_stdout.contains("hit rate 100.0%"),
        "warm run must regenerate nothing: {warm_stdout}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_injected_run_recovers_byte_identical_at_every_jobs_count() {
    let clean = dse(&["sweep", "--smoke", "--no-cache", "--jobs", "1"]);
    assert!(clean.status.success());
    for jobs in ["1", "4", "16"] {
        let got = dse(&[
            "sweep",
            "--smoke",
            "--no-cache",
            "--jobs",
            jobs,
            "--chaos-seed",
            "7",
        ]);
        assert!(got.status.success(), "--jobs {jobs} chaos run failed");
        assert_eq!(
            got.stdout, clean.stdout,
            "--jobs {jobs}: recovered chaos report diverged from the clean run"
        );
        let stderr = String::from_utf8_lossy(&got.stderr);
        assert!(
            stderr.contains("faults:") && !stderr.contains("faults: 0 retries"),
            "injected strikes must actually land and be retried: {stderr}"
        );
    }
}

#[test]
fn warm_flag_reports_the_warm_pass_in_one_invocation() {
    let out = dse(&["sweep", "--smoke", "--no-cache", "--warm", "--jobs", "4"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("0 misses") && stdout.contains("hit rate 100.0%"),
        "--warm must report the in-process warm pass: {stdout}"
    );
}
