//! Property tests over the scenario registry: the solver must behave
//! well on *families* of plants, not just the handful of hand-picked
//! literals in `tinympc::problems`.
//!
//! * 100 seeds of `Scenario::random_stable_plant` — every solve
//!   terminates, returns finite controls inside the box, and the
//!   closed-loop rollout stays bounded;
//! * every registered catalog scenario passes the same closed-loop
//!   boundedness bar at its default horizon;
//! * the second-order-cone projection used by the SOC-constrained
//!   scenarios is checked against hand-computed projections through the
//!   public `SocConstraint` API, and the soft-landing rollout is
//!   re-asserted to keep every applied thrust inside the cone.

use soc_dse_repro::matlib::Vector;
use soc_dse_repro::soc_dse::experiments::{evaluate_closed_loop, Scenario, ScenarioCatalog};
use soc_dse_repro::tinympc::{AdmmSolver, NullExecutor, SocConstraint, SolverSettings};

#[test]
fn random_stable_plants_solve_cleanly_for_100_seeds() {
    let horizon = 8;
    for seed in 0..100u64 {
        let scenario = Scenario::random_stable_plant(6, 2, seed);
        let problem = scenario
            .problem::<f32>(horizon)
            .unwrap_or_else(|e| panic!("seed {seed}: problem construction failed: {e}"));
        let (u_min, u_max) = (problem.u_min, problem.u_max);
        let mut solver = AdmmSolver::new(problem, SolverSettings::default())
            .unwrap_or_else(|e| panic!("seed {seed}: solver construction failed: {e}"));
        let x0 = scenario.initial_state::<f32>();
        let status = solver
            .solve_in_place(x0.as_slice(), &mut NullExecutor)
            .unwrap_or_else(|e| panic!("seed {seed}: solve failed: {e}"));
        assert!(status.iterations >= 1, "seed {seed}: solver did no work");
        let u0 = solver.u0().to_vec();
        for (i, &u) in u0.iter().enumerate() {
            assert!(u.is_finite(), "seed {seed}: u0[{i}] = {u} is not finite");
            assert!(
                (u_min..=u_max).contains(&u),
                "seed {seed}: u0[{i}] = {u} outside [{u_min}, {u_max}]"
            );
        }
    }
}

#[test]
fn random_stable_plants_stay_bounded_in_closed_loop() {
    // A thinner seed sweep for the full rollout (each one is ~40 MPC
    // solves); boundedness here means the controller actually
    // stabilizes the sampled plant, not merely that one solve returned.
    for seed in 0..25u64 {
        let scenario = Scenario::random_stable_plant(6, 2, seed);
        let report = evaluate_closed_loop::<f32>(&scenario, 8, SolverSettings::default())
            .unwrap_or_else(|e| panic!("seed {seed}: rollout failed: {e}"));
        assert!(
            report.rms_error.is_finite() && report.max_error < 10.0,
            "seed {seed}: closed loop diverged: {report:?}"
        );
    }
}

#[test]
fn every_registered_scenario_is_bounded_at_its_default_horizon() {
    for scenario in ScenarioCatalog::standard().scenarios() {
        let report = evaluate_closed_loop::<f32>(
            scenario,
            scenario.default_horizon(),
            SolverSettings::default(),
        )
        .unwrap_or_else(|e| panic!("{}: rollout failed: {e}", scenario.name()));
        assert_eq!(report.steps, scenario.rollout_steps());
        assert!(
            report.rms_error.is_finite() && report.max_error < 100.0,
            "{}: closed loop diverged: {report:?}",
            scenario.name()
        );
        assert!(
            report.converged_steps > 0,
            "{}: no solve ever converged",
            scenario.name()
        );
    }
}

/// Hand-computed projections onto `‖(u_x, u_y)‖ ≤ μ·(u_z + offset)`,
/// exercised through the same `SocConstraint` the soft-landing scenario
/// installs. Cases follow the standard three-way split for the
/// second-order cone (interior / polar cone / projection onto the
/// boundary).
#[test]
fn soc_projection_matches_hand_computed_cases() {
    let cone = SocConstraint {
        axis: 2,
        lateral: vec![0, 1],
        mu: 1.0f64,
        offset: 0.0,
    };

    // Interior point: untouched.
    let mut u = Vector::from_fn(3, |i| [0.3, 0.4, 2.0][i]);
    cone.project(&mut u);
    assert_eq!((u[0], u[1], u[2]), (0.3, 0.4, 2.0));

    // Polar cone (μ‖v‖ ≤ −s): projects to the apex.
    let mut u = Vector::from_fn(3, |i| [0.5, 0.0, -3.0][i]);
    cone.project(&mut u);
    assert_eq!((u[0], u[1], u[2]), (0.0, 0.0, 0.0));

    // Boundary projection: v = (3, 4), s = 0, μ = 1 →
    // s* = (μ‖v‖ + s)/(μ² + 1) = 2.5, v* = μ·s*·v/‖v‖ = (1.5, 2.0).
    let mut u = Vector::from_fn(3, |i| [3.0, 4.0, 0.0][i]);
    cone.project(&mut u);
    assert!((u[0] - 1.5).abs() < 1e-12, "u_x = {}", u[0]);
    assert!((u[1] - 2.0).abs() < 1e-12, "u_y = {}", u[1]);
    assert!((u[2] - 2.5).abs() < 1e-12, "u_z = {}", u[2]);

    // Offset cone with μ = 0.5: v = (4, 0), s = 1 →
    // s* = (0.5·4 + 1)/1.25 = 2.4, v* = 0.5·2.4·(1, 0) = (1.2, 0).
    let shifted = SocConstraint {
        axis: 2,
        lateral: vec![0, 1],
        mu: 0.5f64,
        offset: 0.0,
    };
    let mut u = Vector::from_fn(3, |i| [4.0, 0.0, 1.0][i]);
    shifted.project(&mut u);
    assert!((u[0] - 1.2).abs() < 1e-12, "u_x = {}", u[0]);
    assert!(u[1].abs() < 1e-12, "u_y = {}", u[1]);
    assert!((u[2] - 2.4).abs() < 1e-12, "u_z = {}", u[2]);

    // Projection is idempotent and the result has non-negative margin.
    let margin = cone.margin(u.as_slice());
    let mut again = u.clone();
    cone.project(&mut again);
    assert!(margin >= -1e-12);
    for i in 0..3 {
        assert_eq!(u[i].to_bits(), again[i].to_bits(), "not idempotent at {i}");
    }
}

#[test]
fn soft_landing_rollout_respects_the_thrust_cone() {
    let scenario = Scenario::soft_landing();
    let report = evaluate_closed_loop::<f32>(
        &scenario,
        scenario.default_horizon(),
        SolverSettings::default(),
    )
    .unwrap();
    let margin = report
        .min_cone_margin
        .expect("soft landing is SOC-constrained");
    assert!(
        margin >= -1e-5,
        "an applied thrust left the glideslope cone: margin {margin}"
    );
}
