//! Golden-file tests: `dse table1` and `dse sweep --smoke` stdout is
//! snapshotted under `tests/golden/` and compared **exactly**. Cycle
//! counts come from deterministic integer trace simulation and every
//! float is printed with fixed formatting, so the reports are stable
//! across debug/release, thread counts, and machines.
//!
//! To regenerate after an intentional change to cycle models or report
//! formatting, run:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_reports
//! ```
//!
//! then inspect the diff of `tests/golden/*.txt` before committing —
//! an unexplained change in a golden file is a regression, not noise.

use std::path::PathBuf;
use std::process::Command;

fn dse(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_dse"))
        .args(args)
        .output()
        .expect("spawn dse")
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` to the named golden file, or rewrites the file
/// when `UPDATE_GOLDEN=1` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "golden file {} missing — regenerate with UPDATE_GOLDEN=1 cargo test --test golden_reports",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden snapshot; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn table1_report_matches_golden() {
    let out = dse(&["table1"]);
    assert!(out.status.success());
    assert_golden("table1.txt", &String::from_utf8_lossy(&out.stdout));
}

#[test]
fn scenarios_report_matches_golden() {
    let out = dse(&["scenarios"]);
    assert!(out.status.success());
    assert_golden("scenarios.txt", &String::from_utf8_lossy(&out.stdout));
}

#[test]
fn sweep_smoke_report_matches_golden() {
    // --no-cache keeps the cache-stats footer deterministic (a cold,
    // disk-less run is all misses regardless of prior invocations);
    // shard timing goes to stderr and never reaches the snapshot.
    let out = dse(&["sweep", "--smoke", "--no-cache", "--jobs", "2"]);
    assert!(out.status.success());
    assert_golden("sweep_smoke.txt", &String::from_utf8_lossy(&out.stdout));
}

#[test]
fn sweep_scenario_smoke_report_matches_golden() {
    // The scenario axis changes the priced workload AND adds the
    // closed-loop tracking section — snapshot one non-default scenario
    // end to end so both stay stable.
    let out = dse(&[
        "sweep",
        "--scenario",
        "figure8",
        "--smoke",
        "--no-cache",
        "--jobs",
        "2",
    ]);
    assert!(out.status.success());
    assert_golden(
        "sweep_figure8_smoke.txt",
        &String::from_utf8_lossy(&out.stdout),
    );
}
