//! Cross-crate end-to-end tests: functional equivalence across executors,
//! closed-loop behaviour, and accounting consistency.

use soc_dse_repro::soc_dse::experiments::solve_cycles;
use soc_dse_repro::soc_dse::platform::Platform;
use soc_dse_repro::soc_dse::workloads::figure8_reference;
use soc_dse_repro::tinympc::{problems, AdmmSolver, KernelId, NullExecutor, SolverSettings};

#[test]
fn every_platform_converges_with_identical_trajectories() {
    // The executor is a timing oracle only: the functional result must be
    // bit-identical across all platforms.
    let (ref_u0, ref_iterations) = {
        let problem = problems::quadrotor_hover::<f32>(10).unwrap();
        let mut solver = AdmmSolver::new(problem, SolverSettings::default()).unwrap();
        let x0 = solver.problem().hover_offset_state(0.2);
        let status = solver
            .solve_in_place(x0.as_slice(), &mut NullExecutor)
            .unwrap();
        (solver.u0().to_vec(), status.iterations)
    };
    for platform in Platform::table1_registry() {
        let outcome = solve_cycles(&platform, 10).unwrap();
        assert!(
            outcome.result.converged,
            "{} did not converge",
            platform.name
        );
        assert_eq!(
            outcome.result.u0.as_slice(),
            ref_u0.as_slice(),
            "{} changed the functional result",
            platform.name
        );
        assert_eq!(outcome.result.iterations, ref_iterations);
        assert!(outcome.result.total_cycles > 0);
    }
}

#[test]
fn kernel_cycles_sum_to_total_minus_setup() {
    for platform in Platform::table1_registry() {
        let outcome = solve_cycles(&platform, 10).unwrap();
        let sum: u64 = outcome.result.kernel_cycles.values().sum();
        assert!(
            sum <= outcome.result.total_cycles,
            "{}: kernel sum {sum} exceeds total {}",
            platform.name,
            outcome.result.total_cycles
        );
        // Setup (scratchpad preload) is the only non-kernel component.
        let setup = outcome.result.total_cycles - sum;
        assert!(
            setup < outcome.result.total_cycles / 4,
            "{}: setup share suspiciously large ({setup})",
            platform.name
        );
    }
}

#[test]
fn all_fifteen_kernels_are_charged() {
    let outcome = solve_cycles(&Platform::rocket_eigen(), 10).unwrap();
    for k in KernelId::ALL {
        assert!(
            outcome.result.kernel_cycles.get(&k).copied().unwrap_or(0) > 0,
            "kernel {k} was never charged"
        );
    }
}

#[test]
fn horizon_scaling_is_roughly_linear() {
    // The paper: MPC computation grows linearly with the horizon (the
    // cubic state-space growth is precomputed into the cache).
    let c10 = solve_cycles(&Platform::rocket_eigen(), 10).unwrap();
    let c20 = solve_cycles(&Platform::rocket_eigen(), 20).unwrap();
    let per_iter_10 = c10.cycles_per_iteration();
    let per_iter_20 = c20.cycles_per_iteration();
    let ratio = per_iter_20 / per_iter_10;
    assert!(
        (1.5..2.6).contains(&ratio),
        "per-iteration cost should ~double from N=10 to N=20, got {ratio:.2}"
    );
}

#[test]
fn closed_loop_figure8_tracks_on_fastest_platform() {
    let horizon = 10;
    let problem = problems::quadrotor_hover::<f32>(horizon).unwrap();
    let a = problem.a.clone();
    let b = problem.b.clone();
    let mut solver = AdmmSolver::new(problem, SolverSettings::default()).unwrap();
    let platform = Platform::table1_registry()
        .into_iter()
        .find(|p| p.name == "RefV512D256Shuttle")
        .unwrap();
    let mut executor = platform.executor();

    let mut x = solver.problem().hover_offset_state(0.0);
    let mut worst_err = 0.0f64;
    for step in 0..600 {
        let xref = figure8_reference::<f32>(12, horizon, step, 0.01);
        solver.set_reference(&xref).unwrap();
        solver
            .solve_in_place(x.as_slice(), executor.as_mut())
            .unwrap();
        let u0 = soc_dse_repro::matlib::Vector::from_slice(solver.u0());
        x = a.matvec(&x).unwrap().add(&b.matvec(&u0).unwrap()).unwrap();
        if step > 100 {
            let e = ((x[0] - xref[0][0]).powi(2) + (x[1] - xref[0][1]).powi(2)).sqrt() as f64;
            worst_err = worst_err.max(e);
        }
    }
    assert!(worst_err < 0.3, "tracking error {worst_err:.3} m too large");
}

#[test]
fn arbitrary_problems_price_on_any_platform() {
    use soc_dse_repro::soc_dse::experiments::solve_problem_cycles;
    use soc_dse_repro::tinympc::SolverSettings;
    let cartpole = problems::cartpole::<f32>(10).unwrap();
    let rocket = solve_problem_cycles(
        &Platform::rocket_eigen(),
        cartpole.clone(),
        SolverSettings::default(),
    )
    .unwrap();
    let registry = Platform::table1_registry();
    let saturn = registry
        .iter()
        .find(|p| p.name == "RefV512D256Shuttle")
        .unwrap();
    let v = solve_problem_cycles(saturn, cartpole, SolverSettings::default()).unwrap();
    assert!(rocket.result.converged && v.result.converged);
    // 4x1 kernels are tiny: Saturn's advantage over Rocket must shrink
    // well below its quadrotor-sized speedup (the workload-sensitivity
    // claim).
    let quad_rocket = solve_cycles(&Platform::rocket_eigen(), 10).unwrap();
    let quad_saturn = solve_cycles(saturn, 10).unwrap();
    let small_speedup = rocket.result.total_cycles as f64 / v.result.total_cycles as f64;
    let quad_speedup =
        quad_rocket.result.total_cycles as f64 / quad_saturn.result.total_cycles as f64;
    assert!(
        small_speedup < quad_speedup,
        "cartpole speedup {small_speedup:.2} should trail quadrotor {quad_speedup:.2}"
    );
}

#[test]
fn solver_is_deterministic() {
    let run = || {
        let problem = problems::quadrotor_hover::<f32>(10).unwrap();
        let mut solver = AdmmSolver::new(problem, SolverSettings::default()).unwrap();
        let x0 = solver.problem().hover_offset_state(0.13);
        let status = solver
            .solve_in_place(x0.as_slice(), &mut NullExecutor)
            .unwrap();
        (solver.u0().to_vec(), status.iterations)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
}
