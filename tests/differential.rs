//! Differential tests: independent implementations of the same kernel
//! must agree.
//!
//! Layer 1 — ISA vs scalar reference: the RV32IMF functional machine in
//! `crates/riscv` executes hand-written assembly for GEMV, AXPY and
//! max-abs and must produce **bit-identical** f32 results to the
//! `matlib` reference, because both sides perform the same IEEE-754
//! single-precision operations in the same order (`fmadd.s` ≡
//! `mul_add`, `fmul.s`+`fadd.s` ≡ `scale().add()`, `fsgnjx.s`+`fmax.s`
//! ≡ `fold(max(abs))`).
//!
//! Layer 2 — accelerated executors vs scalar solve: Saturn and Gemmini
//! executors are *timing oracles* layered over the same `matlib`
//! functional math, so their solver outcomes must match the scalar
//! back-end within [`U0_TOLERANCE`] (documented at 0.0 — bit-identical
//! — precisely because no accelerated code path substitutes different
//! arithmetic; a nonzero diff means a backend started computing its own
//! numbers and this contract needs re-documenting).

use soc_dse_repro::matlib::{gemv, Matrix, Vector};
use soc_dse_repro::soc_cpu::CoreConfig;
use soc_dse_repro::soc_dse::experiments::Scenario;
use soc_dse_repro::soc_dse::experiments::{
    solve_problem_cycles, solve_scenario_cycles, ScenarioCatalog,
};
use soc_dse_repro::soc_dse::platform::Platform;
use soc_dse_repro::soc_dse::rng::SplitMix64;
use soc_dse_repro::soc_gemmini::{GemminiConfig, GemminiOpts};
use soc_dse_repro::soc_riscv::{assemble, Machine};
use soc_dse_repro::soc_vector::SaturnConfig;
use soc_dse_repro::tinympc::{
    problems, AdmmSolver, SolveStatus, SolverDims, SolverSettings, TinyMpcProblem,
};

const A_BASE: u32 = 0x4000;
const X_BASE: u32 = 0x8000;
const Y_BASE: u32 = 0xc000;

/// `y[0..m] = A[m×k] · x[k]`, accumulating each row with `fmadd.s` in
/// column order — the exact operation sequence of `matlib::gemv`.
const GEMV_ASM: &str = r#"
    li   t0, 0            # i
row:
    bge  t0, a3, done
    fmv.w.x ft0, zero     # acc = 0
    li   t1, 0            # j
    mul  t4, t0, a4
    slli t4, t4, 2
    add  t2, a0, t4       # &A[i][0]
    mv   t3, a1           # &x[0]
col:
    bge  t1, a4, rowend
    flw  ft1, (t2)
    flw  ft2, (t3)
    fmadd.s ft0, ft1, ft2, ft0
    addi t2, t2, 4
    addi t3, t3, 4
    addi t1, t1, 1
    j    col
rowend:
    slli t5, t0, 2
    add  t6, a2, t5
    fsw  ft0, (t6)
    addi t0, t0, 1
    j    row
done:
    ecall
"#;

/// `y[0..n] = alpha·x + y` as a separate `fmul.s` + `fadd.s` — the
/// operation sequence of `Vector::scale(alpha).add(&y)` (no fusion).
const AXPY_ASM: &str = r#"
    li   t0, 0
loop:
    bge  t0, a3, done
    slli t1, t0, 2
    add  t2, a0, t1       # &x[i]
    add  t3, a1, t1       # &y[i]
    flw  ft1, (t2)
    fmul.s ft1, ft1, fa0
    flw  ft2, (t3)
    fadd.s ft1, ft1, ft2
    fsw  ft1, (t3)
    addi t0, t0, 1
    j    loop
done:
    ecall
"#;

/// Infinity norm via `fsgnjx.s` (abs) + `fmax.s`, folding from +0.0 —
/// the operation sequence of `Vector::max_abs`. Result left in `ft0`.
const MAX_ABS_ASM: &str = r#"
    fmv.w.x ft0, zero
    li   t0, 0
loop:
    bge  t0, a3, done
    slli t1, t0, 2
    add  t2, a0, t1
    flw  ft1, (t2)
    fsgnjx.s ft1, ft1, ft1
    fmax.s ft0, ft0, ft1
    addi t0, t0, 1
    j    loop
done:
    ecall
"#;

fn random_f32(rng: &mut SplitMix64) -> f32 {
    (rng.unit_f64() * 2.0 - 1.0) as f32
}

fn machine_with(asm: &str) -> Machine {
    let prog = assemble(asm).expect("reference assembly must assemble");
    let mut m = Machine::new(64 * 1024);
    m.load_program(0, &prog);
    m
}

#[test]
fn rv32_gemv_is_bit_identical_to_matlib() {
    for seed in 0..20u64 {
        let mut rng = SplitMix64::new(seed);
        let (rows, cols) = (rng.range_usize(1, 16), rng.range_usize(1, 16));
        let a = Matrix::<f32>::from_fn(rows, cols, |_, _| random_f32(&mut rng));
        let x = Vector::<f32>::from_fn(cols, |_| random_f32(&mut rng));

        let mut m = machine_with(GEMV_ASM);
        for r in 0..rows {
            for c in 0..cols {
                m.write_f32(A_BASE + ((r * cols + c) * 4) as u32, a[(r, c)])
                    .unwrap();
            }
        }
        for i in 0..cols {
            m.write_f32(X_BASE + (i * 4) as u32, x[i]).unwrap();
        }
        m.set_x(10, A_BASE);
        m.set_x(11, X_BASE);
        m.set_x(12, Y_BASE);
        m.set_x(13, rows as u32);
        m.set_x(14, cols as u32);
        m.run(200_000).expect("gemv program must terminate");

        let reference = gemv(&a, &x).unwrap();
        for i in 0..rows {
            let machine_bits = m.read_f32(Y_BASE + (i * 4) as u32).unwrap().to_bits();
            let reference_bits = reference[i].to_bits();
            assert_eq!(
                machine_bits, reference_bits,
                "seed {seed}: y[{i}] differs for {rows}x{cols}: {machine_bits:#010x} vs {reference_bits:#010x}"
            );
        }
    }
}

#[test]
fn rv32_axpy_is_bit_identical_to_scale_add() {
    for seed in 100..120u64 {
        let mut rng = SplitMix64::new(seed);
        let n = rng.range_usize(1, 32);
        let alpha = random_f32(&mut rng);
        let x = Vector::<f32>::from_fn(n, |_| random_f32(&mut rng));
        let y = Vector::<f32>::from_fn(n, |_| random_f32(&mut rng));

        let mut m = machine_with(AXPY_ASM);
        for i in 0..n {
            m.write_f32(A_BASE + (i * 4) as u32, x[i]).unwrap();
            m.write_f32(X_BASE + (i * 4) as u32, y[i]).unwrap();
        }
        m.set_x(10, A_BASE);
        m.set_x(11, X_BASE);
        m.set_x(13, n as u32);
        m.set_f(10, alpha); // fa0
        m.run(200_000).expect("axpy program must terminate");

        let reference = x.scale(alpha).add(&y).unwrap();
        for i in 0..n {
            let got = m.read_f32(X_BASE + (i * 4) as u32).unwrap().to_bits();
            assert_eq!(
                got,
                reference[i].to_bits(),
                "seed {seed}: y[{i}] differs at n={n}"
            );
        }
    }
}

#[test]
fn rv32_max_abs_is_bit_identical_to_matlib() {
    for seed in 200..220u64 {
        let mut rng = SplitMix64::new(seed);
        let n = rng.range_usize(1, 48);
        let x = Vector::<f32>::from_fn(n, |_| random_f32(&mut rng));

        let mut m = machine_with(MAX_ABS_ASM);
        for i in 0..n {
            m.write_f32(A_BASE + (i * 4) as u32, x[i]).unwrap();
        }
        m.set_x(10, A_BASE);
        m.set_x(13, n as u32);
        m.run(200_000).expect("max-abs program must terminate");

        // ft0 = f0 holds the reduction.
        assert_eq!(
            m.f(0).to_bits(),
            x.max_abs().to_bits(),
            "seed {seed}: max_abs differs at n={n}"
        );
    }
}

/// Documented tolerance for accelerated-vs-scalar solver outcomes.
///
/// It is exactly 0.0: Saturn and Gemmini executors price traces but the
/// functional math always runs through `matlib`, so every platform must
/// produce the same control bit-for-bit. If an accelerated backend ever
/// grows its own arithmetic (reduced precision, reordered reductions),
/// this constant is where its numerical contract gets documented.
const U0_TOLERANCE: f32 = 0.0;

fn problem_set() -> Vec<(&'static str, TinyMpcProblem<f32>)> {
    vec![
        ("quadrotor_hover", problems::quadrotor_hover(8).unwrap()),
        (
            "double_integrator",
            problems::double_integrator(12).unwrap(),
        ),
        ("cartpole", problems::cartpole(10).unwrap()),
        (
            "random_stable",
            problems::random_stable(6, 2, 8, 3).unwrap(),
        ),
    ]
}

/// Layer 2 at full width: every registered scenario, solved on every
/// registered Table-I back-end, must reproduce the scalar reference's
/// control **bit-for-bit** (same [`U0_TOLERANCE`] = 0.0 contract as
/// above) with the same iteration count and convergence flag. This is
/// the scenario × backend grid: a back-end whose timing model grew a
/// functional side effect, or a scenario whose reference threading
/// differs between platforms, fails here first.
#[test]
fn every_scenario_agrees_with_scalar_solve_on_every_backend() {
    let scalar = Platform::rocket_eigen();
    let registry = Platform::table1_registry();
    for scenario in ScenarioCatalog::standard().scenarios() {
        let horizon = scenario.default_horizon();
        let reference = solve_scenario_cycles(&scalar, scenario, horizon)
            .unwrap_or_else(|e| panic!("{}: scalar solve failed: {e:?}", scenario.name()));
        for platform in &registry {
            let outcome = solve_scenario_cycles(platform, scenario, horizon).unwrap_or_else(|e| {
                panic!(
                    "{} on {}: solve failed: {e:?}",
                    scenario.name(),
                    platform.name
                )
            });
            assert_eq!(
                outcome.result.converged,
                reference.result.converged,
                "{} on {}: convergence disagrees",
                scenario.name(),
                platform.name
            );
            assert_eq!(
                outcome.result.iterations,
                reference.result.iterations,
                "{} on {}: iteration count disagrees",
                scenario.name(),
                platform.name
            );
            for i in 0..reference.result.u0.len() {
                let diff = (outcome.result.u0[i] - reference.result.u0[i]).abs();
                assert!(
                    diff <= U0_TOLERANCE,
                    "{} on {}: u0[{i}] off by {diff} (tolerance {U0_TOLERANCE})",
                    scenario.name(),
                    platform.name
                );
            }
        }
    }
}

#[test]
fn accelerated_executors_agree_with_scalar_solve() {
    let scalar = Platform::rocket_eigen();
    let accelerated = [
        Platform::saturn(CoreConfig::shuttle(), SaturnConfig::v512d256()),
        Platform::gemmini(
            CoreConfig::rocket(),
            GemminiConfig::os_4x4_32kb(),
            GemminiOpts::optimized(),
        ),
    ];
    for (name, problem) in problem_set() {
        let settings = SolverSettings::default();
        let reference = solve_problem_cycles(&scalar, problem.clone(), settings)
            .unwrap_or_else(|e| panic!("{name}: scalar solve failed: {e:?}"));
        for platform in &accelerated {
            let outcome = solve_problem_cycles(platform, problem.clone(), settings)
                .unwrap_or_else(|e| panic!("{name}: {} solve failed: {e:?}", platform.name));
            assert_eq!(
                outcome.result.converged, reference.result.converged,
                "{name}: {} convergence disagrees",
                platform.name
            );
            assert_eq!(
                outcome.result.iterations, reference.result.iterations,
                "{name}: {} iteration count disagrees",
                platform.name
            );
            assert_eq!(
                outcome.result.u0.len(),
                reference.result.u0.len(),
                "{name}: {} control dimension disagrees",
                platform.name
            );
            for i in 0..reference.result.u0.len() {
                let diff = (outcome.result.u0[i] - reference.result.u0[i]).abs();
                assert!(
                    diff <= U0_TOLERANCE,
                    "{name}: {} u0[{i}] off by {diff} (tolerance {U0_TOLERANCE})",
                    platform.name
                );
            }
        }
        // The agreed-on solution must also be a *good* one when the
        // solver reports convergence.
        if reference.result.converged {
            let (pri_x, dual_x, pri_u, dual_u) = reference.result.residuals;
            let tol = settings.tolerance;
            for (which, r) in [
                ("primal/state", pri_x),
                ("dual/state", dual_x),
                ("primal/input", pri_u),
                ("dual/input", dual_u),
            ] {
                assert!(
                    r <= tol,
                    "{name}: converged but {which} residual {r} > {tol}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Layer 3 — dims-specialized vs dynamic ADMM passes
// ---------------------------------------------------------------------
//
// The solver's hot passes are one generic implementation instantiated
// both with runtime dimensions (`SolverDims::Dynamic`) and with
// const-generic shapes for the shipped problems (12×4, 6×3, 2×1).
// Monomorphization must not change a single bit: both paths run the
// same source over the same arena, so convergence, iteration count,
// charged cycles and `u0` must agree at [`U0_TOLERANCE`] = 0.0.

/// Solves one scenario instance with the solver's automatic
/// specialization or with the dynamic fallback forced, returning
/// `(status, u0)`.
fn solve_with_spec(
    scenario: &Scenario,
    horizon: usize,
    platform: &Platform,
    force_dynamic: bool,
) -> (SolveStatus, Vec<f32>) {
    let problem = scenario.problem::<f32>(horizon).unwrap();
    let mut solver = AdmmSolver::new(problem, SolverSettings::default()).unwrap();
    if force_dynamic {
        solver.set_specialization(SolverDims::Dynamic).unwrap();
    }
    solver
        .set_reference(&scenario.reference::<f32>(horizon, 0))
        .unwrap();
    let x0 = scenario.initial_state::<f32>();
    let mut executor = platform.executor();
    let status = solver
        .solve_in_place(x0.as_slice(), executor.as_mut())
        .unwrap_or_else(|e| panic!("{} on {}: {e:?}", scenario.name(), platform.name));
    (status, solver.u0().to_vec())
}

fn assert_spec_matches_dynamic(scenario: &Scenario, horizon: usize, platform: &Platform) {
    let (spec, spec_u0) = solve_with_spec(scenario, horizon, platform, false);
    let (dynamic, dyn_u0) = solve_with_spec(scenario, horizon, platform, true);
    let ctx = format!("{} on {}", scenario.name(), platform.name);
    assert_eq!(spec.converged, dynamic.converged, "{ctx}: convergence");
    assert_eq!(spec.iterations, dynamic.iterations, "{ctx}: iterations");
    assert_eq!(spec.total_cycles, dynamic.total_cycles, "{ctx}: cycles");
    assert_eq!(spec_u0.len(), dyn_u0.len(), "{ctx}: control dimension");
    for i in 0..spec_u0.len() {
        let diff = (spec_u0[i] - dyn_u0[i]).abs();
        assert!(
            diff <= U0_TOLERANCE,
            "{ctx}: u0[{i}] off by {diff} (tolerance {U0_TOLERANCE})"
        );
    }
}

/// Layer 3 at full width: every registered scenario on every Table-I
/// back-end, specialized vs dynamic.
#[test]
fn specialized_passes_agree_with_dynamic_on_every_scenario_and_backend() {
    let registry = Platform::table1_registry();
    for scenario in ScenarioCatalog::standard().scenarios() {
        let horizon = scenario.default_horizon();
        for platform in &registry {
            assert_spec_matches_dynamic(scenario, horizon, platform);
        }
    }
}

/// Layer 3 over randomized plants: 25 seeds cycling through the three
/// const-specialized shapes (quadrotor 12×4, rendezvous 6×3, double
/// integrator 2×1), so every monomorphized path sees plants it was
/// never tuned on.
#[test]
fn specialized_passes_agree_with_dynamic_on_random_plants() {
    let scalar = Platform::rocket_eigen();
    let shapes = [(12usize, 4usize), (6, 3), (2, 1)];
    for seed in 0..25u64 {
        let (nx, nu) = shapes[seed as usize % shapes.len()];
        let scenario = Scenario::random_stable_plant(nx, nu, seed);
        let solver = AdmmSolver::new(
            scenario.problem::<f32>(8).unwrap(),
            SolverSettings::default(),
        )
        .unwrap();
        assert_ne!(
            solver.specialization(),
            SolverDims::Dynamic,
            "seed {seed}: shape {nx}x{nu} must hit a const path"
        );
        assert_spec_matches_dynamic(&scenario, 8, &scalar);
    }
}

/// The specialization seam rejects a const shape that does not match
/// the problem, and reports the auto-selected variant.
#[test]
fn specialization_selection_and_validation() {
    let quad = AdmmSolver::new(
        problems::quadrotor_hover::<f32>(8).unwrap(),
        SolverSettings::default(),
    )
    .unwrap();
    assert_eq!(quad.specialization(), SolverDims::Quadrotor12x4);

    let mut di = AdmmSolver::new(
        problems::double_integrator::<f32>(8).unwrap(),
        SolverSettings::default(),
    )
    .unwrap();
    assert_eq!(di.specialization(), SolverDims::DoubleIntegrator2x1);
    assert!(di.set_specialization(SolverDims::Quadrotor12x4).is_err());
    di.set_specialization(SolverDims::Dynamic).unwrap();
    assert_eq!(di.specialization(), SolverDims::Dynamic);
}
