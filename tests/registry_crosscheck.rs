//! Cross-checks the registry-driven pipeline stack against the golden
//! snapshots: every cycles-per-solve number in `tests/golden/table1.txt`
//! and `tests/golden/sweep_smoke.txt` must be reproducible by pricing
//! the named platform through `Platform::executor()` — i.e. through the
//! shared memoized pricer behind the `BackendPipeline` seam. A drift
//! here means the refactored dispatch changed timing semantics, which
//! the golden diff alone could disguise as an "intentional" regen.

use soc_dse_repro::soc_dse::experiments::solve_cycles;
use soc_dse_repro::soc_dse::platform::Platform;
use soc_dse_repro::soc_sweep::SweepSpec;
use std::path::PathBuf;

fn golden(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("golden file {} unreadable: {e}", path.display()))
}

/// Parses `| name | area | cycles | hz |` rows out of a markdown table,
/// returning `(name, cycles)` pairs.
fn table_rows(text: &str) -> Vec<(String, u64)> {
    text.lines()
        .filter_map(|line| {
            let cells: Vec<&str> = line
                .strip_prefix('|')?
                .strip_suffix('|')?
                .split('|')
                .map(str::trim)
                .collect();
            if cells.len() != 4 {
                return None;
            }
            let cycles: u64 = cells[2].parse().ok()?;
            Some((cells[0].to_string(), cycles))
        })
        .collect()
}

#[test]
fn table1_golden_rows_match_registry_pricing() {
    let rows = table_rows(&golden("table1.txt"));
    let registry = Platform::table1_registry();
    assert_eq!(
        rows.len(),
        registry.len(),
        "golden table1 row count must match the registry"
    );
    for (name, golden_cycles) in rows {
        let platform = registry
            .iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("golden row `{name}` not in the registry"));
        let outcome = solve_cycles(platform, 10).unwrap();
        assert_eq!(
            outcome.result.total_cycles, golden_cycles,
            "{name}: registry pricing disagrees with the golden snapshot"
        );
    }
}

#[test]
fn sweep_smoke_golden_rows_match_registry_pricing() {
    let rows = table_rows(&golden("sweep_smoke.txt"));
    assert!(!rows.is_empty(), "no table rows parsed from sweep_smoke");
    let smoke = SweepSpec::smoke();
    assert_eq!(rows.len(), smoke.platforms.len());
    for (name, golden_cycles) in rows {
        let platform = smoke
            .platforms
            .iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("golden row `{name}` not in the smoke spec"));
        let outcome = solve_cycles(platform, 8).unwrap();
        assert_eq!(
            outcome.result.total_cycles, golden_cycles,
            "{name}: registry pricing disagrees with the golden snapshot"
        );
    }
}
