//! Umbrella crate re-exporting the workspace's public API, plus the
//! integration tests and examples that span crates.
pub use matlib;
pub use soc_area;
pub use soc_backend;
pub use soc_bounds;
pub use soc_codegen;
pub use soc_cpu;
pub use soc_dse;
pub use soc_faults;
pub use soc_gemmini;
pub use soc_isa;
pub use soc_riscv;
pub use soc_scenarios;
pub use soc_serve;
pub use soc_sweep;
pub use soc_vector;
pub use soc_verify;
pub use tinympc;
