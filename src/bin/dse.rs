//! `dse` — the command-line front door to the design-space exploration
//! framework.
//!
//! ```sh
//! cargo run --bin dse -- list
//! cargo run --bin dse -- table1
//! cargo run --bin dse -- pareto
//! cargo run --bin dse -- solve --platform OSGemminiRocket32KB --horizon 10
//! cargo run --bin dse -- kernels --platform RefV512D256Rocket
//! cargo run --bin dse -- tune --target saturn
//! cargo run --bin dse -- energy
//! ```

use soc_dse_repro::soc_backend::{pipeline_for, BoundClaim};
use soc_dse_repro::soc_bounds::{kernel_bounds, CycleInterval};
use soc_dse_repro::soc_codegen::{tune, TuningSpace};
use soc_dse_repro::soc_cpu::CoreConfig;
use soc_dse_repro::soc_dse::energy::{solve_energy, EnergyParams};
use soc_dse_repro::soc_dse::experiments::{
    kernel_breakdown, pareto_frontier, solve_cycles, table1_scenario_with, table1_with, Scenario,
    ScenarioCatalog, Table1Row,
};
use soc_dse_repro::soc_dse::platform::Platform;
use soc_dse_repro::soc_dse::report::markdown_table;
use soc_dse_repro::soc_dse::verify::{shipped_configurations, verify_platform};
use soc_dse_repro::soc_faults::{
    recoverable_strikes, run_campaign_scenario, run_chaos, CampaignKind,
};
use soc_dse_repro::soc_gemmini::GemminiConfig;
use soc_dse_repro::soc_serve::{run_bench, BenchConfig};
use soc_dse_repro::soc_sweep::{run_sweep_tiered, SweepEngine, SweepSpec, SweepTier};
use soc_dse_repro::soc_vector::SaturnConfig;
use soc_dse_repro::soc_verify::Severity;
use soc_dse_repro::tinympc::{KernelId, ProblemDims};

const USAGE: &str = "\
dse — embedded-SoC design-space exploration for real-time optimal control

USAGE:
    dse <COMMAND> [OPTIONS]

COMMANDS:
    list                       List every registered platform
    backends                   List registered back-end pipelines (family,
                               area, configuration summary)
    scenarios                  List registered control workloads (plant
                               dims, default horizon, rollout length)
    table1                     Regenerate Table I (area + cycles/solve)
            [--scenario NAME]  Price a different workload than hover
    pareto                     Area-vs-performance Pareto analysis (Fig. 20)
    sweep   [--jobs N]         Run a declarative sweep (Table I grid +
            [--smoke]          kernel heatmaps) on the parallel memoized
            [--no-cache]       engine; --smoke selects the seconds-scale
            [--warm]           CI spec, --no-cache disables the on-disk
            [--cache-dir DIR]  tier, --warm runs the spec twice and
            [--tier KIND]      reports the warm pass (100% hit rate).
            [--chaos-seed N]   --tier analytical prices the solve grid
            [--scenario NAME]  with static cycle bounds first, prunes
                               dominated points, then confirms by trace
                               (KIND: trace|analytical, default trace).
                               --chaos-seed injects seeded recoverable
                               worker panics (the report must not change).
                               --scenario sweeps a different workload
                               than hover (see `dse scenarios`); the
                               report adds a closed-loop tracking-error
                               section per horizon. Report on stdout is
                               byte-identical for every --jobs and tier;
                               shard timing, tier and fault accounting
                               go to stderr
    bounds  [--horizon N]      Static cycle-bound analysis: abstract-
            [--json]           interpret every back-end's kernel programs
                               into [lower, upper] steady-state intervals
                               and differential-check them against the
                               trace simulators (exact on in-order cores,
                               bracketing on OoO); exits non-zero on any
                               bound violation. --json emits machine-
                               readable per-kernel results
    energy                     Energy-per-solve analysis (extension)
    solve   --platform NAME    Solve the quadrotor MPC on one platform
            [--horizon N]      Horizon length (default 10)
    kernels --platform NAME    Per-kernel cycle breakdown on one platform
    tune    --target KIND      Auto-tune a solver (rocket|saturn|gemmini)
    verify  [--platform NAME]  Statically verify every generated micro-op
            [--verbose]        trace (hazards, vsetvli state, scratchpad
            [--strict]         residency, perf lints); exits non-zero on
            [--json]           any error-severity finding. --strict also
                               fails on perf lints; --json emits machine-
                               readable diagnostics instead of text
    faults  [--seed N]         Seeded fault-injection campaign across the
            [--campaign KIND]  back-end families (KIND: smoke|full,
            [--smoke]          default smoke); --smoke additionally gates
            [--scenario NAME]  on zero silent corruptions on the scalar
                               back-end (CI mode), exiting non-zero.
                               --scenario flies a different workload
                               than hover through the injector
    serve   [--sessions N]     Run the batched multi-tenant solver service:
            [--ticks N]        admit a seeded session mix over the scenario
            [--seed N]         catalog × serving platforms, run recurring
            [--workers N]      tick batches on the persistent executor with
                               degradation-ladder cohort shedding under
                               seeded bursts, and print the deterministic
                               report (byte-identical for any --workers;
                               host timing goes to stderr)
    bench-serve                `serve` plus artifacts and gates: writes
            [--sessions N]     results/serve_perf.txt and BENCH_serve.json
            [--ticks N]        (host wall-clock percentiles, sessions/sec,
            [--seed N]         steady-state allocation census). --smoke
            [--workers N]      selects the CI shape (1000 sessions, 40
            [--smoke]          ticks) and exits non-zero unless zero
                               session-ticks aborted, the steady-state
                               tick loop performed zero heap allocations,
                               and p99 solve latency fits the worst
                               cohort budget
    chaos   [--seed N]         Seeded chaos campaign against the platform
            [--smoke]          itself: worker panics, cache corruption,
                               lock poisoning and slow items injected into
                               the sweep/bounds/faults execution paths,
                               each trial classified recovered / degraded
                               / aborted (seed default 7); --smoke trims
                               the jobs grid for CI and exits non-zero on
                               any aborted trial

Platform names are the Table-I identifiers shown by `dse list`.";

/// Counting global allocator: lets `dse bench-serve` measure (and in
/// `--smoke` mode, gate on) steady-state heap allocations of the serve
/// tick loop. Counting is one relaxed atomic add per allocation —
/// negligible against the commands this binary runs.
mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    pub struct CountingAllocator;

    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
    }
}

#[global_allocator]
static GLOBAL: counting_alloc::CountingAllocator = counting_alloc::CountingAllocator;

/// Current process-wide allocation count (the serve bench's probe).
fn alloc_count() -> u64 {
    counting_alloc::ALLOCATIONS.load(std::sync::atomic::Ordering::Relaxed)
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Minimal JSON string escaping for the hand-rolled `--json` outputs
/// (names and diagnostic messages are ASCII, but quotes and backslashes
/// must still be safe).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Default shard-pool width: one worker per available hardware thread.
fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn table1_rows() -> Result<Vec<Table1Row>, String> {
    // Table I submits through the sweep engine: one batch, sharded
    // across cores. Results are bit-identical to the serial path.
    let engine = SweepEngine::in_memory(default_jobs());
    table1_with(&engine, 10).map_err(|e| e.to_string())
}

fn find_scenario(args: &[String]) -> Result<Scenario, String> {
    match flag(args, "--scenario") {
        None => Ok(Scenario::hover()),
        Some(name) => ScenarioCatalog::standard()
            .find(&name)
            .cloned()
            .ok_or_else(|| format!("unknown scenario `{name}`; run `dse scenarios`")),
    }
}

fn find_platform(name: &str) -> Result<Platform, String> {
    Platform::table1_registry()
        .into_iter()
        .find(|p| p.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown platform `{name}`; run `dse list`"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&args) {
        Ok(()) => 0,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

fn run(args: &[String]) -> Result<(), String> {
    let command = args.first().map(String::as_str).unwrap_or("help");
    match command {
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        "list" => {
            let rows: Vec<Vec<String>> = Platform::table1_registry()
                .iter()
                .map(|p| vec![p.name.clone(), format!("{:.3} mm^2", p.area().total_mm2())])
                .collect();
            println!("{}", markdown_table(&["platform", "area"], &rows));
            Ok(())
        }
        "backends" => {
            let rows: Vec<Vec<String>> = Platform::table1_registry()
                .iter()
                .map(|p| {
                    let pipe = pipeline_for(p);
                    vec![
                        p.name.clone(),
                        pipe.family().to_string(),
                        format!("{:.3} mm^2", pipe.area().total_mm2()),
                        pipe.describe(),
                    ]
                })
                .collect();
            println!(
                "{}",
                markdown_table(&["platform", "family", "area", "configuration"], &rows)
            );
            Ok(())
        }
        "scenarios" => {
            let rows: Vec<Vec<String>> = ScenarioCatalog::standard()
                .scenarios()
                .iter()
                .map(|s| {
                    let (nx, nu) = s.dims();
                    vec![
                        s.name().to_string(),
                        s.title().to_string(),
                        format!("{nx}x{nu}"),
                        s.default_horizon().to_string(),
                        s.rollout_steps().to_string(),
                    ]
                })
                .collect();
            println!(
                "{}",
                markdown_table(
                    &[
                        "scenario",
                        "workload",
                        "nx x nu",
                        "default horizon",
                        "rollout steps"
                    ],
                    &rows
                )
            );
            Ok(())
        }
        "table1" => {
            let scenario = find_scenario(args)?;
            let engine = SweepEngine::in_memory(default_jobs());
            let rows = table1_scenario_with(&engine, &scenario, 10).map_err(|e| e.to_string())?;
            let table: Vec<Vec<String>> = rows
                .iter()
                .map(|r| {
                    vec![
                        r.name.clone(),
                        format!("{:.0}", r.area_um2),
                        r.cycles_per_solve.to_string(),
                        format!("{:.0}", r.mpc_hz),
                    ]
                })
                .collect();
            println!(
                "{}",
                markdown_table(
                    &[
                        "configuration",
                        "area (um^2)",
                        "cycles/solve",
                        "MPC Hz @1GHz"
                    ],
                    &table
                )
            );
            Ok(())
        }
        "pareto" => {
            let mut rows = table1_rows()?;
            rows.sort_by(|a, b| a.area_um2.total_cmp(&b.area_um2));
            let frontier = pareto_frontier(
                &rows
                    .iter()
                    .map(|r| (r.area_um2, r.cycles_per_solve as f64))
                    .collect::<Vec<_>>(),
            );
            for (r, on) in rows.iter().zip(frontier) {
                println!(
                    "{}{:<24} {:>8.3} mm^2 {:>10} cycles",
                    if on { "* " } else { "  " },
                    r.name,
                    r.area_um2 / 1e6,
                    r.cycles_per_solve
                );
            }
            println!("\n'*' = Pareto-optimal");
            Ok(())
        }
        "sweep" => {
            let jobs: usize = flag(args, "--jobs")
                .map(|j| j.parse().map_err(|_| format!("bad job count `{j}`")))
                .transpose()?
                .unwrap_or_else(default_jobs)
                .max(1);
            let spec = if args.iter().any(|a| a == "--smoke") {
                SweepSpec::smoke()
            } else {
                SweepSpec::full()
            }
            .with_scenario(find_scenario(args)?);
            let tier = match flag(args, "--tier").as_deref() {
                None | Some("trace") => SweepTier::Trace,
                Some("analytical") => SweepTier::Analytical,
                Some(other) => return Err(format!("unknown tier `{other}`")),
            };
            let mut engine = if args.iter().any(|a| a == "--no-cache") {
                SweepEngine::in_memory(jobs)
            } else {
                let dir = flag(args, "--cache-dir")
                    .or_else(|| std::env::var("SOC_SWEEP_CACHE_DIR").ok())
                    .unwrap_or_else(|| "target/sweep-cache".to_string());
                SweepEngine::with_cache_dir(jobs, dir)
                    .map_err(|e| format!("cache directory: {e}"))?
            };
            if let Some(chaos_seed) = flag(args, "--chaos-seed") {
                let chaos_seed: u64 = chaos_seed
                    .parse()
                    .map_err(|_| format!("bad chaos seed `{chaos_seed}`"))?;
                engine = engine.with_chaos(recoverable_strikes(chaos_seed));
            }
            let mut report = run_sweep_tiered(&spec, &engine, tier).map_err(|e| e.to_string())?;
            if args.iter().any(|a| a == "--warm") {
                // Second pass over the warm engine: identical results,
                // zero regenerations. The report shows the warm pass.
                report = run_sweep_tiered(&spec, &engine, tier).map_err(|e| e.to_string())?;
            }
            print!("{}", report.render());
            eprint!("{}", report.render_timing());
            if let Some(summary) = &report.tier_summary {
                eprint!("{summary}");
            }
            if !report.faults.is_clean() {
                eprintln!("{}", report.faults.render_line());
            }
            if report.failed_points > 0 {
                eprintln!(
                    "warning: {} design point(s) exhausted their retry budget and render \
                     as FAILED rows",
                    report.failed_points
                );
            }
            let corrupt = engine.corrupt_entries();
            if corrupt > 0 {
                eprintln!(
                    "warning: {corrupt} corrupt cache entr{} quarantined under \
                     {} and regenerated",
                    if corrupt == 1 { "y" } else { "ies" },
                    engine
                        .quarantine_dir()
                        .map(|d| d.display().to_string())
                        .unwrap_or_else(|| "the quarantine directory".to_string())
                );
            }
            Ok(())
        }
        "chaos" => {
            let seed: u64 = flag(args, "--seed")
                .map(|s| s.parse().map_err(|_| format!("bad seed `{s}`")))
                .transpose()?
                .unwrap_or(7);
            let smoke = args.iter().any(|a| a == "--smoke");
            let report = run_chaos(seed, smoke);
            println!("{}", report.render());
            let aborted = report.aborted();
            if aborted > 0 {
                return Err(format!(
                    "{aborted} chaos trial(s) aborted: a recovery contract was violated"
                ));
            }
            if smoke {
                println!("smoke gate passed: zero aborted trials");
            }
            Ok(())
        }
        "bounds" => {
            let horizon: usize = flag(args, "--horizon")
                .map(|h| h.parse().map_err(|_| format!("bad horizon `{h}`")))
                .transpose()?
                .unwrap_or(10);
            let json = args.iter().any(|a| a == "--json");
            let dims = ProblemDims {
                nx: 12,
                nu: 4,
                horizon,
            };

            struct BackendBounds {
                name: String,
                claim: BoundClaim,
                kernels: Vec<(KernelId, CycleInterval, u64)>,
            }

            let mut backends = Vec::new();
            let mut violations: Vec<String> = Vec::new();
            for platform in &Platform::table1_registry() {
                let pipeline = pipeline_for(platform);
                let claim = pipeline.bound_claim();
                let mut kernels = Vec::new();
                for &kernel in KernelId::ALL.iter() {
                    let interval = kernel_bounds(pipeline.as_ref(), kernel, &dims)
                        .map_err(|e| e.to_string())?;
                    let cycles = pipeline
                        .steady_cycles(kernel, &dims)
                        .map_err(|e| e.to_string())?;
                    if !interval.contains(cycles) {
                        violations.push(format!(
                            "{} / {kernel}: simulated {cycles} outside {interval}",
                            platform.name
                        ));
                    }
                    if claim == BoundClaim::Exact && !interval.is_exact() {
                        violations.push(format!(
                            "{} / {kernel}: exactness claimed but interval is {interval}",
                            platform.name
                        ));
                    }
                    kernels.push((kernel, interval, cycles));
                }
                backends.push(BackendBounds {
                    name: platform.name.clone(),
                    claim,
                    kernels,
                });
            }

            if json {
                let mut out = String::from("{\n");
                out.push_str(&format!("  \"horizon\": {horizon},\n"));
                out.push_str("  \"backends\": [\n");
                for (i, b) in backends.iter().enumerate() {
                    let exact = b.kernels.iter().filter(|(_, iv, _)| iv.is_exact()).count();
                    let agree = b
                        .kernels
                        .iter()
                        .filter(|(_, iv, c)| iv.contains(*c))
                        .count();
                    let max_rel = b
                        .kernels
                        .iter()
                        .map(|(_, iv, _)| iv.rel_width())
                        .fold(0.0f64, f64::max);
                    out.push_str(&format!(
                        "    {{\"name\": \"{}\", \"claim\": \"{}\", \"exact\": {exact}, \
                         \"contained\": {agree}, \"kernels\": {}, \
                         \"max_rel_width\": {max_rel:.6}, \"per_kernel\": [\n",
                        json_escape(&b.name),
                        b.claim.label(),
                        b.kernels.len()
                    ));
                    for (j, (k, iv, c)) in b.kernels.iter().enumerate() {
                        out.push_str(&format!(
                            "      {{\"kernel\": \"{k}\", \"lower\": {}, \"upper\": {}, \
                             \"simulated\": {c}, \"contained\": {}}}{}\n",
                            iv.lo,
                            iv.hi,
                            iv.contains(*c),
                            if j + 1 < b.kernels.len() { "," } else { "" }
                        ));
                    }
                    out.push_str(&format!(
                        "    ]}}{}\n",
                        if i + 1 < backends.len() { "," } else { "" }
                    ));
                }
                out.push_str("  ],\n");
                out.push_str(&format!("  \"violations\": {}\n}}", violations.len()));
                println!("{out}");
            } else {
                let rows: Vec<Vec<String>> = backends
                    .iter()
                    .map(|b| {
                        let exact = b.kernels.iter().filter(|(_, iv, _)| iv.is_exact()).count();
                        let agree = b
                            .kernels
                            .iter()
                            .filter(|(_, iv, c)| iv.contains(*c))
                            .count();
                        let max_rel = b
                            .kernels
                            .iter()
                            .map(|(_, iv, _)| iv.rel_width())
                            .fold(0.0f64, f64::max);
                        vec![
                            b.name.clone(),
                            b.claim.label().to_string(),
                            format!("{exact}/{}", b.kernels.len()),
                            format!("{agree}/{}", b.kernels.len()),
                            format!("{:.1}%", 100.0 * max_rel),
                        ]
                    })
                    .collect();
                println!(
                    "{}",
                    markdown_table(
                        &[
                            "configuration",
                            "claim",
                            "exact kernels",
                            "contained",
                            "max interval width"
                        ],
                        &rows
                    )
                );
            }
            if !violations.is_empty() {
                for v in &violations {
                    eprintln!("bound violation: {v}");
                }
                return Err(format!("{} bound violation(s)", violations.len()));
            }
            if !json {
                println!("all analytical bounds verified against trace simulation");
            }
            Ok(())
        }
        "energy" => {
            let params = EnergyParams::default();
            let rows: Vec<Vec<String>> = Platform::table1_registry()
                .iter()
                .map(|p| {
                    let r = solve_energy(p, 10, &params).map_err(|e| e.to_string())?;
                    Ok(vec![
                        r.platform.clone(),
                        format!("{:.0}", r.total_nj()),
                        format!("{:.0}", r.solves_per_mj),
                    ])
                })
                .collect::<Result<_, String>>()?;
            println!(
                "{}",
                markdown_table(&["platform", "nJ/solve", "solves/mJ"], &rows)
            );
            Ok(())
        }
        "solve" => {
            let name = flag(args, "--platform").ok_or("solve requires --platform NAME")?;
            let horizon: usize = flag(args, "--horizon")
                .map(|h| h.parse().map_err(|_| format!("bad horizon `{h}`")))
                .transpose()?
                .unwrap_or(10);
            let platform = find_platform(&name)?;
            let o = solve_cycles(&platform, horizon).map_err(|e| e.to_string())?;
            println!(
                "{}: converged={} in {} iterations\n{} cycles/solve -> {:.0} MPC Hz at 1 GHz",
                platform.name,
                o.result.converged,
                o.result.iterations,
                o.result.total_cycles,
                1.0e9 / o.result.total_cycles as f64
            );
            Ok(())
        }
        "kernels" => {
            let name = flag(args, "--platform").ok_or("kernels requires --platform NAME")?;
            let platform = find_platform(&name)?;
            let breakdown = kernel_breakdown(&platform, 10).map_err(|e| e.to_string())?;
            let total: u64 = breakdown.values().sum();
            let rows: Vec<Vec<String>> = KernelId::ALL
                .iter()
                .map(|k| {
                    let c = breakdown.get(k).copied().unwrap_or(0);
                    vec![
                        k.to_string(),
                        c.to_string(),
                        format!("{:.1}%", 100.0 * c as f64 / total.max(1) as f64),
                    ]
                })
                .collect();
            println!("{}", markdown_table(&["kernel", "cycles", "share"], &rows));
            Ok(())
        }
        "verify" => {
            let dims = ProblemDims {
                nx: 12,
                nu: 4,
                horizon: 10,
            };
            let verbose = args.iter().any(|a| a == "--verbose");
            let strict = args.iter().any(|a| a == "--strict");
            let json = args.iter().any(|a| a == "--json");
            let platforms = match flag(args, "--platform") {
                Some(name) => {
                    let p = shipped_configurations()
                        .into_iter()
                        .find(|p| p.name.eq_ignore_ascii_case(&name))
                        .ok_or_else(|| format!("unknown platform `{name}`; run `dse list`"))?;
                    vec![p]
                }
                None => shipped_configurations(),
            };
            let mut total = [0usize; 3]; // errors, warnings, perf lints
            let mut json_platforms = Vec::new();
            for p in &platforms {
                let reports = verify_platform(p, &dims);
                let count = |s| reports.iter().map(|r| r.report.count(s)).sum::<usize>();
                let (e, w, l) = (
                    count(Severity::Error),
                    count(Severity::Warn),
                    count(Severity::Perf),
                );
                total[0] += e;
                total[1] += w;
                total[2] += l;
                if json {
                    let mut traces = Vec::new();
                    for r in &reports {
                        let diags: Vec<String> = r
                            .report
                            .diagnostics()
                            .iter()
                            .map(|d| {
                                format!(
                                    "{{\"rule\": \"{}\", \"severity\": \"{}\", \
                                     \"index\": {}, \"message\": \"{}\"}}",
                                    d.rule,
                                    d.severity,
                                    d.index,
                                    json_escape(&d.message)
                                )
                            })
                            .collect();
                        traces.push(format!(
                            "        {{\"trace\": \"{}\", \"errors\": {}, \"warnings\": {}, \
                             \"perf\": {}, \"diagnostics\": [{}]}}",
                            json_escape(&r.trace),
                            r.report.error_count(),
                            r.report.warn_count(),
                            r.report.perf_count(),
                            diags.join(", ")
                        ));
                    }
                    json_platforms.push(format!(
                        "    {{\"name\": \"{}\", \"traces\": [\n{}\n    ]}}",
                        json_escape(&p.name),
                        traces.join(",\n")
                    ));
                } else {
                    println!(
                        "{:<40} {:>2} traces  {e:>3} errors  {w:>3} warnings  {l:>3} perf lints",
                        p.name,
                        reports.len()
                    );
                    for r in &reports {
                        let dirty = r.report.error_count() > 0
                            || (strict && r.report.perf_count() > 0)
                            || (verbose && !r.report.diagnostics().is_empty());
                        if dirty {
                            println!("  {}:", r.trace);
                            for line in r.report.render().lines() {
                                println!("    {line}");
                            }
                        }
                    }
                }
            }
            if json {
                println!(
                    "{{\n  \"strict\": {strict},\n  \"platforms\": [\n{}\n  ],\n  \
                     \"totals\": {{\"errors\": {}, \"warnings\": {}, \"perf\": {}}}\n}}",
                    json_platforms.join(",\n"),
                    total[0],
                    total[1],
                    total[2]
                );
            } else {
                println!(
                    "\n{} platforms: {} errors, {} warnings, {} perf lints",
                    platforms.len(),
                    total[0],
                    total[1],
                    total[2]
                );
            }
            if total[0] > 0 {
                return Err(format!("{} error-severity findings", total[0]));
            }
            if strict && total[2] > 0 {
                return Err(format!(
                    "{} perf-lint findings (promoted to errors by --strict)",
                    total[2]
                ));
            }
            if !json {
                println!("all generated traces verified clean");
            }
            Ok(())
        }
        "faults" => {
            let seed: u64 = flag(args, "--seed")
                .map(|s| s.parse().map_err(|_| format!("bad seed `{s}`")))
                .transpose()?
                .unwrap_or(7);
            let gate = args.iter().any(|a| a == "--smoke");
            let kind = match flag(args, "--campaign").as_deref() {
                None => CampaignKind::Smoke,
                Some("smoke") => CampaignKind::Smoke,
                Some("full") => CampaignKind::Full,
                Some(other) => return Err(format!("unknown campaign `{other}`")),
            };
            let scenario = find_scenario(args)?;
            let report = run_campaign_scenario(seed, kind, &scenario).map_err(|e| e.to_string())?;
            println!("{}", report.render());
            if gate {
                let sdc = report.scalar_sdc();
                if sdc > 0 {
                    return Err(format!(
                        "{sdc} undetected corruption(s) on the scalar back-end"
                    ));
                }
                println!("smoke gate passed: zero silent corruptions on the scalar back-end");
            }
            Ok(())
        }
        "serve" | "bench-serve" => {
            let artifacts = command == "bench-serve";
            let smoke = args.iter().any(|a| a == "--smoke");
            let mut cfg = BenchConfig::new(default_jobs());
            cfg.smoke = smoke;
            if smoke {
                // CI shape: a thousand tenants, a short horizon of ticks.
                cfg.sessions = 1000;
                cfg.ticks = 40;
            }
            if let Some(s) = flag(args, "--sessions") {
                cfg.sessions = s.parse().map_err(|_| format!("bad session count `{s}`"))?;
            }
            if let Some(s) = flag(args, "--ticks") {
                cfg.ticks = s.parse().map_err(|_| format!("bad tick count `{s}`"))?;
            }
            if let Some(s) = flag(args, "--seed") {
                cfg.seed = s.parse().map_err(|_| format!("bad seed `{s}`"))?;
            }
            if let Some(s) = flag(args, "--workers") {
                cfg.workers = s.parse().map_err(|_| format!("bad worker count `{s}`"))?;
            }
            let out = run_bench(&cfg, &alloc_count).map_err(|e| e.to_string())?;
            println!("{}", out.report);
            let h = &out.host;
            eprintln!(
                "serve host stats: workers={} tick p50={} ns p99={} ns, \
                 {:.0} session-ticks/s, steady-state allocs={}, \
                 pool retries={}, watchdog trips={}",
                h.workers,
                h.tick_p50_ns,
                h.tick_p99_ns,
                h.session_ticks_per_sec,
                h.steady_allocs,
                h.retries,
                h.watchdog_trips
            );
            if artifacts {
                std::fs::create_dir_all("results")
                    .map_err(|e| format!("creating results/: {e}"))?;
                std::fs::write("results/serve_perf.txt", &out.report)
                    .map_err(|e| format!("writing results/serve_perf.txt: {e}"))?;
                std::fs::write("BENCH_serve.json", &out.json)
                    .map_err(|e| format!("writing BENCH_serve.json: {e}"))?;
                eprintln!("wrote results/serve_perf.txt and BENCH_serve.json");
            }
            if !out.gate_failures.is_empty() {
                return Err(format!(
                    "serve smoke gate failed: {}",
                    out.gate_failures.join("; ")
                ));
            }
            if smoke {
                println!(
                    "smoke gate passed: zero aborts, zero steady-state \
                     allocations, p99 within budget"
                );
            }
            Ok(())
        }
        "tune" => {
            let target = flag(args, "--target").ok_or("tune requires --target KIND")?;
            let space = match target.as_str() {
                "rocket" => TuningSpace::scalar(CoreConfig::rocket()),
                "saturn" => TuningSpace::saturn(CoreConfig::rocket(), SaturnConfig::v512d256()),
                "gemmini" => {
                    TuningSpace::gemmini(CoreConfig::rocket(), GemminiConfig::os_4x4_32kb())
                }
                other => return Err(format!("unknown tuning target `{other}`")),
            };
            let dims = ProblemDims {
                nx: 12,
                nu: 4,
                horizon: 10,
            };
            println!("{}", tune(&space, &dims).report());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}
