//! # soc-codegen — auto-tuned solver generation
//!
//! The paper closes with its future work: *"automated code-generation
//! flows to emit optimized embedded solvers on top of the matlib
//! interface, with the end goal of being able to pass in hardware
//! configurations and robot parameters (which impact matrix and vector
//! sizes), generating optimized libraries for the desired targets."*
//!
//! This crate implements that flow on top of the workspace's models:
//! given a hardware configuration and problem dimensions, [`tune`]
//! enumerates the candidate software mappings for **each TinyMPC kernel**
//! — scalar styles, Saturn fusion/LMUL choices, Gemmini optimization
//! subsets, and hybrid CPU-fallback mappings — measures every candidate on
//! the target's timing model, and emits:
//!
//! * a [`TunedSolver`]: per-kernel mapping choices plus a
//!   [`tinympc::KernelExecutor`] that prices solves at the tuned costs;
//! * a human-readable mapping report ([`TunedSolver::report`]);
//! * assembly-like listings of the chosen kernels
//!   ([`TunedSolver::listing`]).
//!
//! The tuner *rediscovers* the paper's hand-derived policies: on Saturn it
//! selects LMUL=1 for the short iterative kernels and high LMUL for
//! strip-mining (the "dynamically computing VLMAX" policy), and on Gemmini
//! it keeps reductions partially on the scalar core.
//!
//! ## Example
//!
//! ```
//! use soc_codegen::{tune, TuningSpace};
//! use soc_cpu::CoreConfig;
//! use soc_vector::SaturnConfig;
//! use tinympc::ProblemDims;
//!
//! let dims = ProblemDims { nx: 12, nu: 4, horizon: 10 };
//! let tuned = tune(
//!     &TuningSpace::saturn(CoreConfig::rocket(), SaturnConfig::v512d256()),
//!     &dims,
//! );
//! assert_eq!(tuned.choices.len(), 15);
//! println!("{}", tuned.report());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod tuner;

pub use tuner::{tune, MappingChoice, TunedExecutor, TunedSolver, TuningSpace};
