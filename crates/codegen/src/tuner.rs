//! The per-kernel mapping tuner.

use soc_cpu::{CoreConfig, ScalarStyle};
use soc_dse::executors::{GemminiExecutor, SaturnExecutor, ScalarExecutor};
use soc_gemmini::{GemminiConfig, GemminiOpts};
use soc_isa::{disassemble, Trace};
use soc_vector::{SaturnConfig, VectorStyle};
use std::collections::BTreeMap;
use tinympc::{KernelExecutor, KernelId, ProblemDims};

/// The hardware target being tuned for.
#[derive(Debug, Clone)]
pub enum TuningSpace {
    /// A bare scalar core: candidates are the library and hand-optimized
    /// scalar styles.
    Scalar(CoreConfig),
    /// A Saturn-equipped core: candidates span mapping style × LMUL, plus
    /// the scalar fallback.
    Saturn(CoreConfig, SaturnConfig),
    /// A Gemmini-equipped core: candidates span the optimization subsets,
    /// plus the scalar fallback (hybrid mappings).
    Gemmini(CoreConfig, GemminiConfig),
}

impl TuningSpace {
    fn core(&self) -> &CoreConfig {
        match self {
            TuningSpace::Scalar(c) | TuningSpace::Saturn(c, _) | TuningSpace::Gemmini(c, _) => c,
        }
    }

    /// Human-readable target name.
    pub fn name(&self) -> String {
        match self {
            TuningSpace::Scalar(c) => c.name.to_string(),
            TuningSpace::Saturn(c, s) => format!("{}+Saturn{}", c.name, s.name),
            TuningSpace::Gemmini(c, g) => format!("{}+{}", c.name, g.name),
        }
    }
}

/// One candidate software mapping for one kernel.
enum Candidate {
    Scalar(ScalarExecutor, String),
    Saturn(SaturnExecutor, String),
    Gemmini(GemminiExecutor, String),
}

impl Candidate {
    fn label(&self) -> &str {
        match self {
            Candidate::Scalar(_, l) | Candidate::Saturn(_, l) | Candidate::Gemmini(_, l) => l,
        }
    }

    // A candidate whose trace fails verification prices at u64::MAX so it
    // can never win the selection.
    fn measure(&mut self, kernel: KernelId, dims: &ProblemDims) -> u64 {
        match self {
            Candidate::Scalar(e, _) => e.kernel_cycles(kernel, dims),
            Candidate::Saturn(e, _) => e.kernel_cycles(kernel, dims),
            Candidate::Gemmini(e, _) => e.kernel_cycles(kernel, dims),
        }
        .unwrap_or(u64::MAX)
    }

    fn trace(&self, kernel: KernelId, dims: &ProblemDims) -> Trace {
        match self {
            Candidate::Scalar(e, _) => e.kernel_trace(kernel, dims),
            Candidate::Saturn(e, _) => e.kernel_trace(kernel, dims),
            Candidate::Gemmini(e, _) => e.kernel_trace(kernel, dims),
        }
    }
}

fn candidates(space: &TuningSpace) -> Vec<Candidate> {
    let core = space.core().clone();
    let mut v = vec![
        Candidate::Scalar(
            ScalarExecutor::new(core.clone(), ScalarStyle::Optimized),
            "scalar hand-optimized".to_string(),
        ),
        Candidate::Scalar(
            ScalarExecutor::new(core.clone(), ScalarStyle::Library),
            "scalar matlib".to_string(),
        ),
    ];
    match space {
        TuningSpace::Scalar(_) => {}
        TuningSpace::Saturn(_, cfg) => {
            for lmul in [1u8, 2, 4, 8] {
                v.push(Candidate::Saturn(
                    SaturnExecutor::new(core.clone(), *cfg, VectorStyle::Fused)
                        .with_uniform_lmul(lmul),
                    format!("saturn fused LMUL={lmul}"),
                ));
            }
            v.push(Candidate::Saturn(
                SaturnExecutor::new(core.clone(), *cfg, VectorStyle::Matlib).with_uniform_lmul(1),
                "saturn vectorized-matlib".to_string(),
            ));
        }
        TuningSpace::Gemmini(_, cfg) => {
            v.push(Candidate::Gemmini(
                GemminiExecutor::new(core.clone(), *cfg, GemminiOpts::optimized()),
                "gemmini optimized".to_string(),
            ));
            let mut no_act = GemminiOpts::optimized();
            no_act.fuse_activation = false;
            v.push(Candidate::Gemmini(
                GemminiExecutor::new(core.clone(), *cfg, no_act),
                "gemmini, scalar activations".to_string(),
            ));
            let mut no_pool = GemminiOpts::optimized();
            no_pool.pooling_reduction = false;
            v.push(Candidate::Gemmini(
                GemminiExecutor::new(core, *cfg, no_pool),
                "gemmini, scalar reductions".to_string(),
            ));
        }
    }
    v
}

/// The winning mapping for one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingChoice {
    /// Human-readable mapping label.
    pub label: String,
    /// Measured steady-state cycles per invocation.
    pub cycles: u64,
}

/// A generated, target-specific solver configuration.
#[derive(Debug, Clone)]
pub struct TunedSolver {
    /// Target name.
    pub target: String,
    /// Problem dimensions tuned for.
    pub dims: ProblemDims,
    /// Winning mapping per kernel.
    pub choices: BTreeMap<KernelId, MappingChoice>,
    /// One-time setup cost of the winning configuration.
    pub setup_cycles: u64,
    /// Assembly-like listing of each chosen kernel.
    listings: BTreeMap<KernelId, String>,
}

impl TunedSolver {
    /// Markdown report of the chosen mapping per kernel.
    pub fn report(&self) -> String {
        let mut out = format!(
            "# Generated solver for {} (nx={}, nu={}, N={})\n\n| kernel | mapping | cycles |\n|---|---|---|\n",
            self.target, self.dims.nx, self.dims.nu, self.dims.horizon
        );
        for (k, c) in &self.choices {
            out.push_str(&format!("| {k} | {} | {} |\n", c.label, c.cycles));
        }
        let per_iter: u64 = self
            .choices
            .iter()
            .map(|(k, c)| c.cycles * k.invocations_per_iteration(self.dims.horizon) as u64)
            .sum();
        out.push_str(&format!("\ncycles per ADMM iteration: {per_iter}\n"));
        out
    }

    /// The chosen kernel's listing (assembly-like micro-op rendering).
    pub fn listing(&self, kernel: KernelId) -> Option<&str> {
        self.listings.get(&kernel).map(String::as_str)
    }

    /// Estimated cycles per ADMM iteration under the tuned mapping.
    pub fn cycles_per_iteration(&self) -> u64 {
        self.choices
            .iter()
            .map(|(k, c)| c.cycles * k.invocations_per_iteration(self.dims.horizon) as u64)
            .sum()
    }

    /// A [`KernelExecutor`] pricing solves at the tuned per-kernel costs.
    pub fn executor(&self) -> TunedExecutor {
        TunedExecutor {
            name: format!("tuned({})", self.target),
            dims: self.dims,
            table: self.choices.iter().map(|(k, c)| (*k, c.cycles)).collect(),
            setup: self.setup_cycles,
        }
    }
}

/// Executor backed by a tuned per-kernel cycle table.
#[derive(Debug, Clone)]
pub struct TunedExecutor {
    name: String,
    dims: ProblemDims,
    table: BTreeMap<KernelId, u64>,
    setup: u64,
}

impl KernelExecutor for TunedExecutor {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn kernel_cycles(&mut self, kernel: KernelId, dims: &ProblemDims) -> tinympc::Result<u64> {
        debug_assert_eq!(*dims, self.dims, "tuned for different dimensions");
        Ok(self.table.get(&kernel).copied().unwrap_or(1))
    }

    fn setup_cycles(&mut self, _dims: &ProblemDims) -> tinympc::Result<u64> {
        Ok(self.setup)
    }
}

/// Tunes the solver for a hardware target: measures every candidate
/// mapping for every kernel and picks the fastest.
pub fn tune(space: &TuningSpace, dims: &ProblemDims) -> TunedSolver {
    let mut cands = candidates(space);
    let mut choices = BTreeMap::new();
    let mut listings = BTreeMap::new();
    for kernel in KernelId::ALL {
        let (best_idx, best_cycles) = cands
            .iter_mut()
            .enumerate()
            .map(|(i, c)| (i, c.measure(kernel, dims)))
            .min_by_key(|&(_, c)| c)
            .expect("at least one candidate");
        choices.insert(
            kernel,
            MappingChoice {
                label: cands[best_idx].label().to_string(),
                cycles: best_cycles,
            },
        );
        listings.insert(kernel, disassemble(&cands[best_idx].trace(kernel, dims)));
    }
    // Setup cost: charged if any chosen mapping runs on the accelerator.
    let setup_cycles = cands
        .iter_mut()
        .filter(|c| {
            choices.values().any(|ch| ch.label == *c.label()) && matches!(c, Candidate::Gemmini(..))
        })
        .map(|c| match c {
            Candidate::Gemmini(e, _) => e.setup_cycles(dims).unwrap_or(0),
            _ => 0,
        })
        .max()
        .unwrap_or(0);

    TunedSolver {
        target: space.name(),
        dims: *dims,
        choices,
        setup_cycles,
        listings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinympc::KernelClass;

    fn dims() -> ProblemDims {
        ProblemDims {
            nx: 12,
            nu: 4,
            horizon: 10,
        }
    }

    #[test]
    fn tuner_rediscovers_saturn_lmul_policy() {
        let tuned = tune(
            &TuningSpace::Saturn(CoreConfig::rocket(), SaturnConfig::v512d256()),
            &dims(),
        );
        // Strip-mining kernels must pick a grouped (LMUL>1) Saturn mapping.
        for k in KernelId::ALL {
            let choice = &tuned.choices[&k];
            match k.class() {
                KernelClass::StripMining => {
                    assert!(
                        choice.label.contains("LMUL=2")
                            || choice.label.contains("LMUL=4")
                            || choice.label.contains("LMUL=8"),
                        "{k}: expected grouped mapping, got {}",
                        choice.label
                    );
                }
                KernelClass::Iterative => {
                    assert!(
                        !choice.label.contains("LMUL=8"),
                        "{k}: LMUL=8 should never win an iterative kernel"
                    );
                }
                KernelClass::Reduction => {}
            }
        }
    }

    #[test]
    fn tuned_never_loses_to_any_fixed_candidate() {
        let space = TuningSpace::Saturn(CoreConfig::rocket(), SaturnConfig::v512d256());
        let tuned = tune(&space, &dims());
        let tuned_total = tuned.cycles_per_iteration();
        // Compare against each uniform-LMUL fixed policy.
        for lmul in [1u8, 2, 4, 8] {
            let mut fixed = SaturnExecutor::new(
                CoreConfig::rocket(),
                SaturnConfig::v512d256(),
                VectorStyle::Fused,
            )
            .with_uniform_lmul(lmul);
            let total: u64 = KernelId::ALL
                .iter()
                .map(|&k| {
                    fixed.kernel_cycles(k, &dims()).unwrap()
                        * k.invocations_per_iteration(dims().horizon) as u64
                })
                .sum();
            assert!(
                tuned_total <= total,
                "tuned {tuned_total} > fixed LMUL={lmul} {total}"
            );
        }
    }

    #[test]
    fn scalar_space_prefers_optimized_everywhere() {
        let tuned = tune(&TuningSpace::Scalar(CoreConfig::rocket()), &dims());
        for (k, c) in &tuned.choices {
            assert_eq!(c.label, "scalar hand-optimized", "{k} picked {}", c.label);
        }
    }

    #[test]
    fn gemmini_space_produces_hybrid_mapping() {
        let tuned = tune(
            &TuningSpace::Gemmini(CoreConfig::rocket(), GemminiConfig::os_4x4_32kb()),
            &dims(),
        );
        // The iterative matrix-product kernels must run on Gemmini.
        assert!(
            tuned.choices[&KernelId::ForwardPass2]
                .label
                .contains("gemmini"),
            "forward_pass_2 picked {}",
            tuned.choices[&KernelId::ForwardPass2].label
        );
        // Setup is charged because Gemmini mappings won somewhere.
        assert!(tuned.setup_cycles > 0);
    }

    #[test]
    fn listings_render_for_every_kernel() {
        let tuned = tune(&TuningSpace::Scalar(CoreConfig::rocket()), &dims());
        for k in KernelId::ALL {
            let l = tuned.listing(k).expect("listing exists");
            assert!(!l.is_empty());
        }
    }

    #[test]
    fn tuned_executor_prices_solves() {
        use tinympc::{problems, AdmmSolver, SolverSettings};
        let space = TuningSpace::Saturn(CoreConfig::rocket(), SaturnConfig::v512d256());
        let tuned = tune(&space, &dims());
        let mut executor = tuned.executor();
        let problem = problems::quadrotor_hover::<f32>(10).unwrap();
        let mut solver = AdmmSolver::new(problem, SolverSettings::default()).unwrap();
        let x0 = solver.problem().hover_offset_state(0.2);
        let r = solver.solve(&x0, &mut executor).unwrap();
        assert!(r.converged);
        assert!(r.total_cycles > 0);
    }
}
