//! The per-kernel mapping tuner.

use soc_backend::{pipeline_for, Platform, TuningCandidate};
use soc_cpu::CoreConfig;
use soc_gemmini::{GemminiConfig, GemminiOpts};
use soc_isa::disassemble;
use soc_vector::SaturnConfig;
use std::collections::BTreeMap;
use tinympc::{KernelExecutor, KernelId, ProblemDims};

/// The hardware target being tuned for.
///
/// A tuning space is a platform plus a display label; the candidate
/// mappings come from the platform's pipeline
/// ([`soc_backend::BackendPipeline::tuning_candidates`]), so a newly
/// registered back-end family is tunable with no tuner changes.
#[derive(Debug, Clone)]
pub struct TuningSpace {
    label: String,
    platform: Platform,
}

impl TuningSpace {
    /// A bare scalar core: candidates are the library and hand-optimized
    /// scalar styles.
    pub fn scalar(core: CoreConfig) -> Self {
        TuningSpace {
            label: core.name.to_string(),
            platform: Platform::scalar(core),
        }
    }

    /// A Saturn-equipped core: candidates span mapping style × LMUL, plus
    /// the scalar fallback.
    pub fn saturn(core: CoreConfig, cfg: SaturnConfig) -> Self {
        TuningSpace {
            label: format!("{}+Saturn{}", core.name, cfg.name),
            platform: Platform::saturn(core, cfg),
        }
    }

    /// A Gemmini-equipped core: candidates span the optimization subsets,
    /// plus the scalar fallback (hybrid mappings).
    pub fn gemmini(core: CoreConfig, cfg: GemminiConfig) -> Self {
        TuningSpace {
            label: format!("{}+{}", core.name, cfg.name),
            platform: Platform::gemmini(core, cfg, GemminiOpts::optimized()),
        }
    }

    /// Human-readable target name.
    pub fn name(&self) -> String {
        self.label.clone()
    }
}

// A candidate whose trace fails verification prices at u64::MAX so it
// can never win the selection.
fn measure(c: &TuningCandidate, kernel: KernelId, dims: &ProblemDims) -> u64 {
    c.pipeline.steady_cycles(kernel, dims).unwrap_or(u64::MAX)
}

/// The winning mapping for one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingChoice {
    /// Human-readable mapping label.
    pub label: String,
    /// Measured steady-state cycles per invocation.
    pub cycles: u64,
}

/// A generated, target-specific solver configuration.
#[derive(Debug, Clone)]
pub struct TunedSolver {
    /// Target name.
    pub target: String,
    /// Problem dimensions tuned for.
    pub dims: ProblemDims,
    /// Winning mapping per kernel.
    pub choices: BTreeMap<KernelId, MappingChoice>,
    /// One-time setup cost of the winning configuration.
    pub setup_cycles: u64,
    /// Assembly-like listing of each chosen kernel.
    listings: BTreeMap<KernelId, String>,
}

impl TunedSolver {
    /// Markdown report of the chosen mapping per kernel.
    pub fn report(&self) -> String {
        let mut out = format!(
            "# Generated solver for {} (nx={}, nu={}, N={})\n\n| kernel | mapping | cycles |\n|---|---|---|\n",
            self.target, self.dims.nx, self.dims.nu, self.dims.horizon
        );
        for (k, c) in &self.choices {
            out.push_str(&format!("| {k} | {} | {} |\n", c.label, c.cycles));
        }
        let per_iter: u64 = self
            .choices
            .iter()
            .map(|(k, c)| c.cycles * k.invocations_per_iteration(self.dims.horizon) as u64)
            .sum();
        out.push_str(&format!("\ncycles per ADMM iteration: {per_iter}\n"));
        out
    }

    /// The chosen kernel's listing (assembly-like micro-op rendering).
    pub fn listing(&self, kernel: KernelId) -> Option<&str> {
        self.listings.get(&kernel).map(String::as_str)
    }

    /// Estimated cycles per ADMM iteration under the tuned mapping.
    pub fn cycles_per_iteration(&self) -> u64 {
        self.choices
            .iter()
            .map(|(k, c)| c.cycles * k.invocations_per_iteration(self.dims.horizon) as u64)
            .sum()
    }

    /// A [`KernelExecutor`] pricing solves at the tuned per-kernel costs.
    pub fn executor(&self) -> TunedExecutor {
        TunedExecutor {
            name: format!("tuned({})", self.target),
            dims: self.dims,
            table: self.choices.iter().map(|(k, c)| (*k, c.cycles)).collect(),
            setup: self.setup_cycles,
        }
    }
}

/// Executor backed by a tuned per-kernel cycle table.
#[derive(Debug, Clone)]
pub struct TunedExecutor {
    name: String,
    dims: ProblemDims,
    table: BTreeMap<KernelId, u64>,
    setup: u64,
}

impl KernelExecutor for TunedExecutor {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn kernel_cycles(&mut self, kernel: KernelId, dims: &ProblemDims) -> tinympc::Result<u64> {
        debug_assert_eq!(*dims, self.dims, "tuned for different dimensions");
        Ok(self.table.get(&kernel).copied().unwrap_or(1))
    }

    fn setup_cycles(&mut self, _dims: &ProblemDims) -> tinympc::Result<u64> {
        Ok(self.setup)
    }
}

/// Tunes the solver for a hardware target: measures every candidate
/// mapping for every kernel and picks the fastest.
pub fn tune(space: &TuningSpace, dims: &ProblemDims) -> TunedSolver {
    let cands = pipeline_for(&space.platform).tuning_candidates();
    let mut choices = BTreeMap::new();
    let mut listings = BTreeMap::new();
    for kernel in KernelId::ALL {
        let (best, best_cycles) = cands
            .iter()
            .map(|c| (c, measure(c, kernel, dims)))
            .min_by_key(|&(_, cycles)| cycles)
            .expect("at least one candidate");
        choices.insert(
            kernel,
            MappingChoice {
                label: best.label.clone(),
                cycles: best_cycles,
            },
        );
        listings.insert(kernel, disassemble(&best.pipeline.lower(kernel, dims)));
    }
    // Setup cost: charged if any chosen mapping needs one (scalar and
    // Saturn pipelines have empty setup traces, so this only bites for
    // scratchpad-resident accelerator mappings).
    let setup_cycles = cands
        .iter()
        .filter(|c| choices.values().any(|ch| ch.label == c.label))
        .map(|c| c.pipeline.setup_cost(dims).unwrap_or(0))
        .max()
        .unwrap_or(0);

    TunedSolver {
        target: space.name(),
        dims: *dims,
        choices,
        setup_cycles,
        listings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_backend::{BackendPipeline, SaturnPipeline};
    use soc_vector::VectorStyle;
    use tinympc::KernelClass;

    fn dims() -> ProblemDims {
        ProblemDims {
            nx: 12,
            nu: 4,
            horizon: 10,
        }
    }

    #[test]
    fn tuner_rediscovers_saturn_lmul_policy() {
        let tuned = tune(
            &TuningSpace::saturn(CoreConfig::rocket(), SaturnConfig::v512d256()),
            &dims(),
        );
        // Strip-mining kernels must pick a grouped (LMUL>1) Saturn mapping.
        for k in KernelId::ALL {
            let choice = &tuned.choices[&k];
            match k.class() {
                KernelClass::StripMining => {
                    assert!(
                        choice.label.contains("LMUL=2")
                            || choice.label.contains("LMUL=4")
                            || choice.label.contains("LMUL=8"),
                        "{k}: expected grouped mapping, got {}",
                        choice.label
                    );
                }
                KernelClass::Iterative => {
                    assert!(
                        !choice.label.contains("LMUL=8"),
                        "{k}: LMUL=8 should never win an iterative kernel"
                    );
                }
                KernelClass::Reduction => {}
            }
        }
    }

    #[test]
    fn tuned_never_loses_to_any_fixed_candidate() {
        let space = TuningSpace::saturn(CoreConfig::rocket(), SaturnConfig::v512d256());
        let tuned = tune(&space, &dims());
        let tuned_total = tuned.cycles_per_iteration();
        // Compare against each uniform-LMUL fixed policy.
        for lmul in [1u8, 2, 4, 8] {
            let fixed = SaturnPipeline::new(
                CoreConfig::rocket(),
                SaturnConfig::v512d256(),
                VectorStyle::Fused,
            )
            .with_uniform_lmul(lmul);
            let total: u64 = KernelId::ALL
                .iter()
                .map(|&k| {
                    fixed.steady_cycles(k, &dims()).unwrap()
                        * k.invocations_per_iteration(dims().horizon) as u64
                })
                .sum();
            assert!(
                tuned_total <= total,
                "tuned {tuned_total} > fixed LMUL={lmul} {total}"
            );
        }
    }

    #[test]
    fn scalar_space_prefers_optimized_everywhere() {
        let tuned = tune(&TuningSpace::scalar(CoreConfig::rocket()), &dims());
        for (k, c) in &tuned.choices {
            assert_eq!(c.label, "scalar hand-optimized", "{k} picked {}", c.label);
        }
    }

    #[test]
    fn gemmini_space_produces_hybrid_mapping() {
        let tuned = tune(
            &TuningSpace::gemmini(CoreConfig::rocket(), GemminiConfig::os_4x4_32kb()),
            &dims(),
        );
        // The iterative matrix-product kernels must run on Gemmini.
        assert!(
            tuned.choices[&KernelId::ForwardPass2]
                .label
                .contains("gemmini"),
            "forward_pass_2 picked {}",
            tuned.choices[&KernelId::ForwardPass2].label
        );
        // Setup is charged because Gemmini mappings won somewhere.
        assert!(tuned.setup_cycles > 0);
    }

    #[test]
    fn listings_render_for_every_kernel() {
        let tuned = tune(&TuningSpace::scalar(CoreConfig::rocket()), &dims());
        for k in KernelId::ALL {
            let l = tuned.listing(k).expect("listing exists");
            assert!(!l.is_empty());
        }
    }

    #[test]
    fn tuned_executor_prices_solves() {
        use tinympc::{problems, AdmmSolver, SolverSettings};
        let space = TuningSpace::saturn(CoreConfig::rocket(), SaturnConfig::v512d256());
        let tuned = tune(&space, &dims());
        let mut executor = tuned.executor();
        let problem = problems::quadrotor_hover::<f32>(10).unwrap();
        let mut solver = AdmmSolver::new(problem, SolverSettings::default()).unwrap();
        let x0 = solver.problem().hover_offset_state(0.2);
        let status = solver.solve_in_place(x0.as_slice(), &mut executor).unwrap();
        assert!(status.converged);
        assert!(status.total_cycles > 0);
    }
}
