//! Property-based tests for the core linear-algebra invariants.
//!
//! Cases come from a deterministic in-file PRNG so every failure
//! reproduces exactly from the printed seed.

use matlib::{gemm, gemv, Cholesky, Lu, Matrix, Vector};

/// SplitMix64 — deterministic, dependency-free case generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn below(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }

    /// Uniform f64 in `[lo, hi)`.
    fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * ((self.next() >> 11) as f64 / (1u64 << 53) as f64)
    }

    /// A rows×cols matrix with small, well-conditioned entries.
    fn matrix(&mut self, rows: usize, cols: usize) -> Matrix<f64> {
        Matrix::from_fn(rows, cols, |_, _| self.f64(-10.0, 10.0))
    }

    fn vector(&mut self, n: usize) -> Vector<f64> {
        Vector::from_fn(n, |_| self.f64(-10.0, 10.0))
    }
}

#[test]
fn gemm_is_associative() {
    for seed in 0..200u64 {
        let mut rng = Rng(seed);
        let (m, k, n) = (rng.below(1, 9), rng.below(1, 9), rng.below(1, 9));
        // Deterministic matrices from the seed keep the generator simple.
        let f = |s: u64, r: usize, c: usize| {
            ((s.wrapping_mul(31).wrapping_add((r * 17 + c * 13) as u64) % 19) as f64 - 9.0) * 0.25
        };
        let a = Matrix::from_fn(m, k, |r, c| f(seed, r, c));
        let b = Matrix::from_fn(k, n, |r, c| f(seed + 1, r, c));
        let c_mat = Matrix::from_fn(n, m, |r, c| f(seed + 2, r, c));
        let lhs = gemm(&gemm(&a, &b).unwrap(), &c_mat).unwrap();
        let rhs = gemm(&a, &gemm(&b, &c_mat).unwrap()).unwrap();
        assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-9);
    }
}

#[test]
fn gemm_distributes_over_add() {
    for seed in 0..64u64 {
        let mut rng = Rng(seed);
        let a = rng.matrix(4, 3);
        let b = rng.matrix(3, 5);
        let c = rng.matrix(3, 5);
        let lhs = gemm(&a, &b.add(&c).unwrap()).unwrap();
        let rhs = gemm(&a, &b).unwrap().add(&gemm(&a, &c).unwrap()).unwrap();
        assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-9);
    }
}

#[test]
fn transpose_reverses_product() {
    for seed in 100..164u64 {
        let mut rng = Rng(seed);
        let a = rng.matrix(4, 6);
        let b = rng.matrix(6, 3);
        let lhs = gemm(&a, &b).unwrap().transpose();
        let rhs = gemm(&b.transpose(), &a.transpose()).unwrap();
        assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-9);
    }
}

#[test]
fn gemv_matches_gemm_on_column() {
    for seed in 200..264u64 {
        let mut rng = Rng(seed);
        let a = rng.matrix(5, 4);
        let x = rng.vector(4);
        let as_col = Matrix::from_fn(4, 1, |r, _| x[r]);
        let via_gemm = gemm(&a, &as_col).unwrap();
        let via_gemv = gemv(&a, &x).unwrap();
        for r in 0..5 {
            assert!((via_gemm[(r, 0)] - via_gemv[r]).abs() < 1e-12);
        }
    }
}

#[test]
fn clip_is_idempotent_and_bounded() {
    for seed in 300..364u64 {
        let mut rng = Rng(seed);
        let x = rng.vector(16);
        let lo = rng.f64(-5.0, 0.0);
        let hi = lo + rng.f64(0.0, 5.0);
        let once = x.clip(lo, hi);
        let twice = once.clip(lo, hi);
        assert_eq!(once.as_slice(), twice.as_slice());
        for &v in once.as_slice() {
            assert!(v >= lo && v <= hi);
        }
    }
}

#[test]
fn axpy_matches_definition() {
    for seed in 400..464u64 {
        let mut rng = Rng(seed);
        let x = rng.vector(12);
        let y = rng.vector(12);
        let alpha = rng.f64(-3.0, 3.0);
        let out = x.axpy(alpha, &y).unwrap();
        for i in 0..12 {
            assert!((out[i] - (x[i] + alpha * y[i])).abs() < 1e-9);
        }
    }
}

#[test]
fn max_abs_is_a_norm() {
    for seed in 500..564u64 {
        let mut rng = Rng(seed);
        let x = rng.vector(10);
        let y = rng.vector(10);
        let s = rng.f64(-4.0, 4.0);
        // Triangle inequality and absolute homogeneity.
        let sum = x.add(&y).unwrap();
        assert!(sum.max_abs() <= x.max_abs() + y.max_abs() + 1e-12);
        assert!((x.scale(s).max_abs() - s.abs() * x.max_abs()).abs() < 1e-9);
    }
}

#[test]
fn cholesky_solves_spd_systems() {
    for seed in 0..100u64 {
        let mut rng = Rng(seed + 600);
        let b = rng.vector(6);
        // Build an SPD matrix M Mᵀ + 6 I.
        let m = Matrix::from_fn(6, 6, |r, c| {
            (((seed.wrapping_mul(7919).wrapping_add((r * 31 + c) as u64)) % 23) as f64 - 11.0) * 0.1
        });
        let spd = m
            .matmul(&m.transpose())
            .unwrap()
            .add(&Matrix::from_diagonal(&[6.0; 6]))
            .unwrap();
        let chol = Cholesky::new(&spd).unwrap();
        let x = chol.solve(&b).unwrap();
        let residual = spd.matvec(&x).unwrap().sub(&b).unwrap();
        assert!(residual.max_abs() < 1e-8);
    }
}

#[test]
fn lu_inverse_roundtrip() {
    for seed in 0..100u64 {
        // Diagonally dominant => nonsingular.
        let mut a = Matrix::from_fn(5, 5, |r, c| {
            (((seed
                .wrapping_mul(104729)
                .wrapping_add((r * 13 + c * 7) as u64))
                % 17) as f64
                - 8.0)
                * 0.2
        });
        for i in 0..5 {
            a[(i, i)] += 10.0;
        }
        let lu = Lu::new(&a).unwrap();
        let prod = a.matmul(&lu.inverse()).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(5)).unwrap() < 1e-8);
    }
}

#[test]
fn f32_gemm_tracks_f64() {
    for seed in 700..764u64 {
        let mut rng = Rng(seed);
        let a = rng.matrix(6, 6);
        let b = rng.matrix(6, 6);
        let a32: Matrix<f32> = a.cast();
        let b32: Matrix<f32> = b.cast();
        let c64 = gemm(&a, &b).unwrap();
        let c32: Matrix<f64> = gemm(&a32, &b32).unwrap().cast();
        // f32 has ~7 decimal digits; entries are bounded by 6*100.
        assert!(c64.max_abs_diff(&c32).unwrap() < 1e-3);
    }
}
