//! Property-based tests for the core linear-algebra invariants.

use matlib::{gemm, gemv, Cholesky, Lu, Matrix, Vector};
use proptest::prelude::*;

/// Strategy: a rows×cols matrix with small, well-conditioned entries.
fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix<f64>> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v).expect("length matches"))
}

fn vector_strategy(n: usize) -> impl Strategy<Value = Vector<f64>> {
    proptest::collection::vec(-10.0f64..10.0, n).prop_map(|v| Vector::from_slice(&v))
}

/// Dimensions drawn from the sizes the paper's workload exercises (order 10).
fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..9, 1usize..9, 1usize..9)
}

proptest! {
    #[test]
    fn gemm_is_associative((m, k, n) in dims(), seed in 0u64..1000) {
        // Deterministic matrices from the seed keep the strategy simple.
        let f = |s: u64, r: usize, c: usize| ((s.wrapping_mul(31).wrapping_add((r * 17 + c * 13) as u64) % 19) as f64 - 9.0) * 0.25;
        let a = Matrix::from_fn(m, k, |r, c| f(seed, r, c));
        let b = Matrix::from_fn(k, n, |r, c| f(seed + 1, r, c));
        let c_mat = Matrix::from_fn(n, m, |r, c| f(seed + 2, r, c));
        let lhs = gemm(&gemm(&a, &b).unwrap(), &c_mat).unwrap();
        let rhs = gemm(&a, &gemm(&b, &c_mat).unwrap()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-9);
    }

    #[test]
    fn gemm_distributes_over_add(a in matrix_strategy(4, 3), b in matrix_strategy(3, 5), c in matrix_strategy(3, 5)) {
        let lhs = gemm(&a, &b.add(&c).unwrap()).unwrap();
        let rhs = gemm(&a, &b).unwrap().add(&gemm(&a, &c).unwrap()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-9);
    }

    #[test]
    fn transpose_reverses_product(a in matrix_strategy(4, 6), b in matrix_strategy(6, 3)) {
        let lhs = gemm(&a, &b).unwrap().transpose();
        let rhs = gemm(&b.transpose(), &a.transpose()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-9);
    }

    #[test]
    fn gemv_matches_gemm_on_column(a in matrix_strategy(5, 4), x in vector_strategy(4)) {
        let as_col = Matrix::from_fn(4, 1, |r, _| x[r]);
        let via_gemm = gemm(&a, &as_col).unwrap();
        let via_gemv = gemv(&a, &x).unwrap();
        for r in 0..5 {
            prop_assert!((via_gemm[(r, 0)] - via_gemv[r]).abs() < 1e-12);
        }
    }

    #[test]
    fn clip_is_idempotent_and_bounded(x in vector_strategy(16), lo in -5.0f64..0.0, width in 0.0f64..5.0) {
        let hi = lo + width;
        let once = x.clip(lo, hi);
        let twice = once.clip(lo, hi);
        prop_assert_eq!(once.as_slice(), twice.as_slice());
        for &v in once.as_slice() {
            prop_assert!(v >= lo && v <= hi);
        }
    }

    #[test]
    fn axpy_matches_definition(x in vector_strategy(12), y in vector_strategy(12), alpha in -3.0f64..3.0) {
        let out = x.axpy(alpha, &y).unwrap();
        for i in 0..12 {
            prop_assert!((out[i] - (x[i] + alpha * y[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn max_abs_is_a_norm(x in vector_strategy(10), y in vector_strategy(10), s in -4.0f64..4.0) {
        // Triangle inequality and absolute homogeneity.
        let sum = x.add(&y).unwrap();
        prop_assert!(sum.max_abs() <= x.max_abs() + y.max_abs() + 1e-12);
        prop_assert!((x.scale(s).max_abs() - s.abs() * x.max_abs()).abs() < 1e-9);
    }

    #[test]
    fn cholesky_solves_spd_systems(seed in 0u64..500, b in vector_strategy(6)) {
        // Build an SPD matrix M Mᵀ + 6 I.
        let m = Matrix::from_fn(6, 6, |r, c| {
            (((seed.wrapping_mul(7919).wrapping_add((r * 31 + c) as u64)) % 23) as f64 - 11.0) * 0.1
        });
        let spd = m
            .matmul(&m.transpose())
            .unwrap()
            .add(&Matrix::from_diagonal(&[6.0; 6]))
            .unwrap();
        let chol = Cholesky::new(&spd).unwrap();
        let x = chol.solve(&b).unwrap();
        let residual = spd.matvec(&x).unwrap().sub(&b).unwrap();
        prop_assert!(residual.max_abs() < 1e-8);
    }

    #[test]
    fn lu_inverse_roundtrip(seed in 0u64..500) {
        // Diagonally dominant => nonsingular.
        let mut a = Matrix::from_fn(5, 5, |r, c| {
            (((seed.wrapping_mul(104729).wrapping_add((r * 13 + c * 7) as u64)) % 17) as f64 - 8.0) * 0.2
        });
        for i in 0..5 {
            a[(i, i)] += 10.0;
        }
        let lu = Lu::new(&a).unwrap();
        let prod = a.matmul(&lu.inverse()).unwrap();
        prop_assert!(prod.max_abs_diff(&Matrix::identity(5)).unwrap() < 1e-8);
    }

    #[test]
    fn f32_gemm_tracks_f64(a in matrix_strategy(6, 6), b in matrix_strategy(6, 6)) {
        let a32: Matrix<f32> = a.cast();
        let b32: Matrix<f32> = b.cast();
        let c64 = gemm(&a, &b).unwrap();
        let c32: Matrix<f64> = gemm(&a32, &b32).unwrap().cast();
        // f32 has ~7 decimal digits; entries are bounded by 6*100.
        prop_assert!(c64.max_abs_diff(&c32).unwrap() < 1e-3);
    }
}
