//! Direct factorizations: Cholesky and LU with partial pivoting.
//!
//! These cover the "non-typical domain-specific operations" the paper calls
//! out (Cholesky decomposition) and provide the matrix inverses TinyMPC
//! precomputes into its cache (`Quu⁻¹`).

use crate::{Error, Matrix, Result, Scalar, Vector};

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
/// matrix.
///
/// # Examples
///
/// ```
/// use matlib::{Cholesky, Matrix, Vector};
///
/// # fn main() -> Result<(), matlib::Error> {
/// let a = Matrix::<f64>::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let chol = Cholesky::new(&a)?;
/// let x = chol.solve(&Vector::from_slice(&[1.0, 1.0]))?;
/// // Verify A x = b.
/// let b = a.matvec(&x)?;
/// assert!((b[0] - 1.0).abs() < 1e-12 && (b[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Cholesky<T> {
    l: Matrix<T>,
}

impl<T: Scalar> std::fmt::Debug for Cholesky<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cholesky").field("l", &self.l).finish()
    }
}

impl<T: Scalar> Cholesky<T> {
    /// Factorizes `a`, reading only its lower triangle.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] for a non-square input and
    /// [`Error::NotPositiveDefinite`] if a pivot is not strictly positive.
    pub fn new(a: &Matrix<T>) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(Error::DimensionMismatch {
                op: "cholesky",
                lhs: a.shape(),
                rhs: a.shape(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= T::ZERO || !sum.is_finite() {
                        return Err(Error::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix<T> {
        &self.l
    }

    /// Solves `A x = b` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `b.len()` differs from the
    /// factorized dimension, and [`Error::NonFinite`] if the solution
    /// contains NaN/Inf (e.g. a corrupted right-hand side).
    pub fn solve(&self, b: &Vector<T>) -> Result<Vector<T>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(Error::DimensionMismatch {
                op: "cholesky_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward substitution: L y = b.
        let mut y = Vector::zeros(n);
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        // Back substitution: Lᵀ x = y.
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        crate::ops::guard_finite("cholesky_solve", x.as_slice())?;
        Ok(x)
    }

    /// Computes `A⁻¹` column by column.
    pub fn inverse(&self) -> Matrix<T> {
        let n = self.l.rows();
        let mut inv = Matrix::zeros(n, n);
        for c in 0..n {
            let mut e = Vector::zeros(n);
            e[c] = T::ONE;
            let col = self.solve(&e).expect("length matches by construction");
            for r in 0..n {
                inv[(r, c)] = col[r];
            }
        }
        inv
    }
}

/// LU factorization with partial pivoting, `P·A = L·U`.
#[derive(Clone)]
pub struct Lu<T> {
    /// Combined L (strictly lower, unit diagonal implied) and U storage.
    lu: Matrix<T>,
    /// Row permutation: `perm[i]` is the original row now at position `i`.
    perm: Vec<usize>,
}

impl<T: Scalar> std::fmt::Debug for Lu<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lu")
            .field("lu", &self.lu)
            .field("perm", &self.perm)
            .finish()
    }
}

impl<T: Scalar> Lu<T> {
    /// Factorizes `a`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] for a non-square input and
    /// [`Error::Singular`] if no usable pivot exists at some column.
    pub fn new(a: &Matrix<T>) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(Error::DimensionMismatch {
                op: "lu",
                lhs: a.shape(),
                rhs: a.shape(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for col in 0..n {
            // Partial pivot: largest magnitude in the column at or below the
            // diagonal.
            let mut pivot_row = col;
            let mut pivot_mag = lu[(col, col)].abs();
            for r in (col + 1)..n {
                let mag = lu[(r, col)].abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = r;
                }
            }
            if pivot_mag <= T::EPSILON || !pivot_mag.is_finite() {
                return Err(Error::Singular { pivot: col });
            }
            if pivot_row != col {
                perm.swap(col, pivot_row);
                for c in 0..n {
                    let tmp = lu[(col, c)];
                    lu[(col, c)] = lu[(pivot_row, c)];
                    lu[(pivot_row, c)] = tmp;
                }
            }
            for r in (col + 1)..n {
                let factor = lu[(r, col)] / lu[(col, col)];
                lu[(r, col)] = factor;
                for c in (col + 1)..n {
                    let upd = lu[(col, c)];
                    lu[(r, c)] -= factor * upd;
                }
            }
        }
        Ok(Lu { lu, perm })
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `b.len()` differs from the
    /// factorized dimension, and [`Error::NonFinite`] if the solution
    /// contains NaN/Inf (e.g. a corrupted right-hand side).
    pub fn solve(&self, b: &Vector<T>) -> Result<Vector<T>> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(Error::DimensionMismatch {
                op: "lu_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply permutation, then forward substitution with unit-diagonal L.
        let mut y = Vector::from_fn(n, |i| b[self.perm[i]]);
        for i in 0..n {
            for k in 0..i {
                let yk = y[k];
                y[i] -= self.lu[(i, k)] * yk;
            }
        }
        // Back substitution with U.
        let mut x = y;
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                let xk = x[k];
                x[i] -= self.lu[(i, k)] * xk;
            }
            x[i] /= self.lu[(i, i)];
        }
        crate::ops::guard_finite("lu_solve", x.as_slice())?;
        Ok(x)
    }

    /// Computes `A⁻¹` column by column.
    pub fn inverse(&self) -> Matrix<T> {
        let n = self.lu.rows();
        let mut inv = Matrix::zeros(n, n);
        for c in 0..n {
            let mut e = Vector::zeros(n);
            e[c] = T::ONE;
            let col = self.solve(&e).expect("length matches by construction");
            for r in 0..n {
                inv[(r, c)] = col[r];
            }
        }
        inv
    }

    /// Determinant of the factorized matrix.
    pub fn det(&self) -> T {
        let n = self.lu.rows();
        let mut det = T::ONE;
        for i in 0..n {
            det *= self.lu[(i, i)];
        }
        // Sign of the permutation.
        let mut seen = vec![false; n];
        let mut transpositions = 0usize;
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut len = 0usize;
            let mut i = start;
            while !seen[i] {
                seen[i] = true;
                i = self.perm[i];
                len += 1;
            }
            transpositions += len - 1;
        }
        if transpositions % 2 == 1 {
            det = -det;
        }
        det
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd4() -> Matrix<f64> {
        // A = M Mᵀ + 4I is symmetric positive definite.
        let m = Matrix::from_fn(4, 4, |r, c| ((r * 4 + c) % 7) as f64 * 0.3 - 0.8);
        let mt = m.transpose();
        let mm = m.matmul(&mt).unwrap();
        mm.add(&Matrix::from_diagonal(&[4.0; 4])).unwrap()
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd4();
        let chol = Cholesky::new(&a).unwrap();
        let rec = chol.l().matmul(&chol.l().transpose()).unwrap();
        assert!(rec.max_abs_diff(&a).unwrap() < 1e-10);
    }

    #[test]
    fn cholesky_solve_residual() {
        let a = spd4();
        let chol = Cholesky::new(&a).unwrap();
        let b = Vector::from_fn(4, |i| (i as f64) - 1.5);
        let x = chol.solve(&b).unwrap();
        let r = a.matvec(&x).unwrap().sub(&b).unwrap();
        assert!(r.max_abs() < 1e-10);
    }

    #[test]
    fn cholesky_inverse() {
        let a = spd4();
        let inv = Cholesky::new(&a).unwrap().inverse();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(4)).unwrap() < 1e-9);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::new(&a),
            Err(Error::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn cholesky_rejects_nonsquare() {
        let a = Matrix::<f64>::zeros(2, 3);
        assert!(Cholesky::new(&a).is_err());
    }

    #[test]
    fn cholesky_solve_nan_rhs_surfaces_nonfinite() {
        let a = spd4();
        let chol = Cholesky::new(&a).unwrap();
        let mut b = Vector::zeros(4);
        b[0] = f64::NAN;
        assert!(matches!(chol.solve(&b), Err(Error::NonFinite { .. })));
    }

    #[test]
    fn lu_solve_with_pivoting() {
        // Needs pivoting: zero on the (0,0) entry.
        let a = Matrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, 0.0, 1.0], &[3.0, 1.0, 0.0]]).unwrap();
        let lu = Lu::new(&a).unwrap();
        let b = Vector::from_slice(&[5.0, 3.0, 4.0]);
        let x = lu.solve(&b).unwrap();
        let r = a.matvec(&x).unwrap().sub(&b).unwrap();
        assert!(r.max_abs() < 1e-12);
    }

    #[test]
    fn lu_inverse_and_det() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let lu = Lu::new(&a).unwrap();
        assert!((lu.det() - 5.0).abs() < 1e-12);
        let prod = a.matmul(&lu.inverse()).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(2)).unwrap() < 1e-12);
    }

    #[test]
    fn lu_det_sign_under_permutation() {
        // Swapping two rows of the identity gives det = -1.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = Lu::new(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn lu_solve_nan_rhs_surfaces_nonfinite() {
        let a = Matrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, 0.0, 1.0], &[3.0, 1.0, 0.0]]).unwrap();
        let lu = Lu::new(&a).unwrap();
        let b = Vector::from_slice(&[f64::NAN, 3.0, 4.0]);
        assert!(matches!(lu.solve(&b), Err(Error::NonFinite { .. })));
    }

    #[test]
    fn lu_rejects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::new(&a), Err(Error::Singular { .. })));
    }
}
