use std::fmt;

/// Error type for all fallible `matlib` operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Operand shapes are incompatible for the requested operation.
    DimensionMismatch {
        /// Name of the operation that failed (e.g. `"gemm"`).
        op: &'static str,
        /// Shape of the left/first operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right/second operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A factorization required a (symmetric) positive-definite input.
    NotPositiveDefinite {
        /// Pivot index at which the factorization broke down.
        pivot: usize,
    },
    /// The matrix is singular to working precision.
    Singular {
        /// Pivot index at which elimination found no usable pivot.
        pivot: usize,
    },
    /// An iterative routine failed to converge within its iteration budget.
    DidNotConverge {
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Residual magnitude at the last iteration.
        residual: f64,
    },
    /// A matrix constructor was given rows of unequal length.
    RaggedRows {
        /// Length of the first row.
        expected: usize,
        /// Index of the offending row.
        row: usize,
        /// Length of the offending row.
        got: usize,
    },
    /// An operation produced a non-finite (NaN/Inf) result.
    ///
    /// Surfaced by the cheap output guards on the hot kernels so corrupted
    /// inputs (bit flips, divergence) are detected instead of silently
    /// propagating through an entire solve.
    NonFinite {
        /// Name of the operation whose output went non-finite.
        op: &'static str,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            Error::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            Error::Singular { pivot } => {
                write!(f, "matrix is singular to working precision (pivot {pivot})")
            }
            Error::DidNotConverge {
                iterations,
                residual,
            } => write!(
                f,
                "iteration did not converge after {iterations} iterations (residual {residual:e})"
            ),
            Error::RaggedRows { expected, row, got } => write!(
                f,
                "ragged rows: row {row} has {got} elements, expected {expected}"
            ),
            Error::NonFinite { op } => {
                write!(f, "{op} produced a non-finite (NaN/Inf) result")
            }
        }
    }
}

impl std::error::Error for Error {}
