use crate::{Error, Result, Scalar};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense column vector.
///
/// The strip-mining and reduction operators of the TinyMPC workload
/// ([`clip`](Vector::clip), [`abs`](Vector::abs),
/// [`max_abs_diff`](Vector::max_abs_diff), …) live here.
///
/// # Examples
///
/// ```
/// use matlib::Vector;
///
/// let v = Vector::from_slice(&[-3.0f64, 0.5, 2.0]);
/// let clipped = v.clip(-1.0, 1.0);
/// assert_eq!(clipped.as_slice(), &[-1.0, 0.5, 1.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Vector<T> {
    data: Vec<T>,
}

impl<T: Scalar> Vector<T> {
    /// Creates a zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        Vector {
            data: vec![T::ZERO; n],
        }
    }

    /// Creates a vector by copying a slice.
    pub fn from_slice(s: &[T]) -> Self {
        Vector { data: s.to_vec() }
    }

    /// Creates a vector whose element `i` is `f(i)`.
    pub fn from_fn(n: usize, f: impl FnMut(usize) -> T) -> Self {
        Vector {
            data: (0..n).map(f).collect(),
        }
    }

    /// Creates a vector of length `n` with every element equal to `v`.
    pub fn splat(n: usize, v: T) -> Self {
        Vector { data: vec![v; n] }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrows the elements.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Element-wise sum.
    ///
    /// Allocating wrapper over [`crate::add_into`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if the lengths differ.
    pub fn add(&self, other: &Vector<T>) -> Result<Vector<T>> {
        let mut out = Vector::zeros(self.len());
        crate::ops::add_into(self.as_slice(), other.as_slice(), out.as_mut_slice())?;
        Ok(out)
    }

    /// Element-wise difference.
    ///
    /// Allocating wrapper over [`crate::sub_into`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if the lengths differ.
    pub fn sub(&self, other: &Vector<T>) -> Result<Vector<T>> {
        let mut out = Vector::zeros(self.len());
        crate::ops::sub_into(self.as_slice(), other.as_slice(), out.as_mut_slice())?;
        Ok(out)
    }

    /// Scales every element by `s` (allocating wrapper over
    /// [`crate::scale_into`]).
    pub fn scale(&self, s: T) -> Vector<T> {
        let mut out = Vector::zeros(self.len());
        crate::ops::scale_into(self.as_slice(), s, out.as_mut_slice())
            .expect("output allocated at matching length");
        out
    }

    /// Negates every element (allocating wrapper over
    /// [`crate::neg_into`]).
    pub fn neg(&self) -> Vector<T> {
        let mut out = Vector::zeros(self.len());
        crate::ops::neg_into(self.as_slice(), out.as_mut_slice())
            .expect("output allocated at matching length");
        out
    }

    /// `self + alpha * other` (BLAS `axpy`; allocating wrapper over
    /// [`crate::axpy_into`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if the lengths differ.
    pub fn axpy(&self, alpha: T, other: &Vector<T>) -> Result<Vector<T>> {
        let mut out = Vector::from_slice(self.as_slice());
        crate::ops::axpy_into(alpha, other.as_slice(), out.as_mut_slice())?;
        Ok(out)
    }

    /// Dot product.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if the lengths differ.
    pub fn dot(&self, other: &Vector<T>) -> Result<T> {
        if self.len() != other.len() {
            return Err(Error::DimensionMismatch {
                op: "dot",
                lhs: (self.len(), 1),
                rhs: (other.len(), 1),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .fold(T::ZERO, |s, (&a, &b)| a.mul_add(b, s)))
    }

    /// Element-wise absolute value.
    pub fn abs(&self) -> Vector<T> {
        self.map(T::abs)
    }

    /// Element-wise (Hadamard) product — the diagonal-cost application of
    /// TinyMPC's `UPDATE_LINEAR_COST_2` (`q = -(xref ⊙ Qdiag)`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if the lengths differ.
    pub fn hadamard(&self, other: &Vector<T>) -> Result<Vector<T>> {
        self.zip_with(other, "hadamard", |a, b| a * b)
    }

    /// Euclidean (2-) norm.
    pub fn norm2(&self) -> T {
        self.data
            .iter()
            .fold(T::ZERO, |s, &x| x.mul_add(x, s))
            .sqrt()
    }

    /// Saturates every element into `[lo, hi]`.
    ///
    /// This is the slack-variable projection of TinyMPC:
    /// `min(hi, max(lo, x))` applied element-wise (allocating wrapper
    /// over [`crate::clamp_into`]).
    pub fn clip(&self, lo: T, hi: T) -> Vector<T> {
        let mut out = Vector::zeros(self.len());
        crate::ops::clamp_into(self.as_slice(), lo, hi, out.as_mut_slice())
            .expect("output allocated at matching length");
        out
    }

    /// Saturates element-wise into `[lo[i], hi[i]]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if the bound lengths differ from
    /// `self.len()`.
    pub fn clip_elementwise(&self, lo: &Vector<T>, hi: &Vector<T>) -> Result<Vector<T>> {
        if lo.len() != self.len() || hi.len() != self.len() {
            return Err(Error::DimensionMismatch {
                op: "clip_elementwise",
                lhs: (self.len(), 1),
                rhs: (lo.len(), hi.len()),
            });
        }
        Ok(Vector::from_fn(self.len(), |i| {
            self[i].max(lo[i]).min(hi[i])
        }))
    }

    /// Largest absolute element (infinity norm); `0` for an empty vector.
    pub fn max_abs(&self) -> T {
        self.data.iter().fold(T::ZERO, |m, &x| m.max(x.abs()))
    }

    /// Largest element; `-inf`-like behaviour is avoided by requiring a
    /// non-empty vector.
    ///
    /// # Panics
    ///
    /// Panics if the vector is empty.
    pub fn max(&self) -> T {
        assert!(!self.is_empty(), "max of empty vector");
        self.data.iter().copied().fold(self.data[0], T::max)
    }

    /// `max(|self - other|)` — the residual reduction of TinyMPC.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if the lengths differ.
    pub fn max_abs_diff(&self, other: &Vector<T>) -> Result<T> {
        crate::ops::max_abs_diff_slices(self.as_slice(), other.as_slice())
    }

    /// Applies `f` element-wise, producing a new vector.
    pub fn map(&self, f: impl Fn(T) -> T) -> Vector<T> {
        Vector {
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Whether every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Converts every element to another scalar type via `f64`.
    pub fn cast<U: Scalar>(&self) -> Vector<U> {
        Vector {
            data: self.data.iter().map(|&x| U::from_f64(x.to_f64())).collect(),
        }
    }

    /// Consumes the vector, returning the underlying storage.
    pub fn into_inner(self) -> Vec<T> {
        self.data
    }

    fn zip_with(
        &self,
        other: &Vector<T>,
        op: &'static str,
        f: impl Fn(T, T) -> T,
    ) -> Result<Vector<T>> {
        if self.len() != other.len() {
            return Err(Error::DimensionMismatch {
                op,
                lhs: (self.len(), 1),
                rhs: (other.len(), 1),
            });
        }
        Ok(Vector {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }
}

impl<T: Scalar> Index<usize> for Vector<T> {
    type Output = T;

    #[inline]
    fn index(&self, i: usize) -> &T {
        &self.data[i]
    }
}

impl<T: Scalar> IndexMut<usize> for Vector<T> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.data[i]
    }
}

impl<T: Scalar> FromIterator<T> for Vector<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Vector {
            data: iter.into_iter().collect(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Vector<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vector{:?}", self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        assert_eq!(Vector::<f64>::zeros(3).as_slice(), &[0.0; 3]);
        assert_eq!(Vector::splat(2, 5.0f32).as_slice(), &[5.0, 5.0]);
        assert_eq!(
            Vector::from_fn(3, |i| i as f64).as_slice(),
            &[0.0, 1.0, 2.0]
        );
    }

    #[test]
    fn arithmetic() {
        let a = Vector::from_slice(&[1.0f64, 2.0, 3.0]);
        let b = Vector::from_slice(&[4.0f64, 5.0, 6.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.axpy(2.0, &b).unwrap().as_slice(), &[9.0, 12.0, 15.0]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
    }

    #[test]
    fn length_mismatch_is_error() {
        let a = Vector::from_slice(&[1.0f64]);
        let b = Vector::from_slice(&[1.0f64, 2.0]);
        assert!(a.add(&b).is_err());
        assert!(a.dot(&b).is_err());
        assert!(a.max_abs_diff(&b).is_err());
    }

    #[test]
    fn clip_and_abs() {
        let v = Vector::from_slice(&[-2.0f64, -0.5, 0.5, 2.0]);
        assert_eq!(v.clip(-1.0, 1.0).as_slice(), &[-1.0, -0.5, 0.5, 1.0]);
        assert_eq!(v.abs().as_slice(), &[2.0, 0.5, 0.5, 2.0]);
    }

    #[test]
    fn clip_elementwise_bounds() {
        let v = Vector::from_slice(&[-2.0f64, 0.0, 2.0]);
        let lo = Vector::from_slice(&[-1.0f64, -1.0, -1.0]);
        let hi = Vector::from_slice(&[1.0f64, 0.5, 1.5]);
        assert_eq!(
            v.clip_elementwise(&lo, &hi).unwrap().as_slice(),
            &[-1.0, 0.0, 1.5]
        );
    }

    #[test]
    fn hadamard_and_norm2() {
        let a = Vector::from_slice(&[1.0f64, -2.0, 3.0]);
        let b = Vector::from_slice(&[2.0f64, 0.5, -1.0]);
        assert_eq!(a.hadamard(&b).unwrap().as_slice(), &[2.0, -1.0, -3.0]);
        assert!((a.norm2() - 14.0f64.sqrt()).abs() < 1e-12);
        assert!(a.hadamard(&Vector::zeros(2)).is_err());
    }

    #[test]
    fn reductions() {
        let a = Vector::from_slice(&[1.0f64, -4.0, 3.0]);
        let b = Vector::from_slice(&[0.0f64, 0.0, 0.0]);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.max_abs_diff(&b).unwrap(), 4.0);
    }

    #[test]
    #[should_panic(expected = "max of empty vector")]
    fn max_of_empty_panics() {
        Vector::<f64>::zeros(0).max();
    }
}
