use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point element type usable by every `matlib` container and
/// algorithm.
///
/// Implemented for `f32` and `f64`. The trait is sealed by construction (it
/// requires conversions only the crate provides sensibly); downstream code
/// should treat the set of implementors as closed.
pub trait Scalar:
    Copy
    + Debug
    + Display
    + Default
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon for this type.
    const EPSILON: Self;

    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Element-wise maximum.
    fn max(self, other: Self) -> Self;
    /// Element-wise minimum.
    fn min(self, other: Self) -> Self;
    /// Fused (or at least contracted) multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Lossless widening to `f64` for diagnostics and residual reporting.
    fn to_f64(self) -> f64;
    /// Lossy conversion from `f64`, used by constructors and calibration.
    fn from_f64(v: f64) -> Self;
    /// Whether the value is finite (not NaN or infinite).
    fn is_finite(self) -> bool;
    /// Hands one row-major gemv (`y = A·x`, `y.len()` rows of
    /// `x.len()` columns) to a platform-accelerated kernel, returning
    /// `false` — with `y` untouched — when none is available for this
    /// scalar type on the running CPU.
    ///
    /// Implementations must be **bit-identical** to the generic
    /// `mul_add` loop in [`gemv_into`](crate::gemv_into): one fused
    /// multiply-add per element, strictly sequential accumulation
    /// within each row, trailing `+ 0` canonicalization. Hardware FMA
    /// satisfies this by construction (fused rounding is exact and
    /// unique); anything weaker (split multiply-add, reassociated
    /// sums, double-rounded emulation) must not be wired in here.
    #[inline]
    fn gemv_accel(_a: &[Self], _x: &[Self], _y: &mut [Self]) -> bool {
        false
    }
}

macro_rules! impl_scalar {
    ($t:ty, $gemv_accel:path) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const EPSILON: Self = <$t>::EPSILON;

            #[inline]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline]
            fn gemv_accel(a: &[Self], x: &[Self], y: &mut [Self]) -> bool {
                $gemv_accel(a, x, y)
            }
        }
    };
}

impl_scalar!(f32, matlib_accel::gemv_f32);
impl_scalar!(f64, matlib_accel::gemv_f64);
