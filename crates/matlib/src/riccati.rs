//! Discrete algebraic Riccati equation (DARE) and infinite-horizon LQR
//! gains.
//!
//! TinyMPC's key memory optimization caches only the *infinite-horizon*
//! Riccati solution — a single gain matrix `K∞` and cost-to-go `P∞` —
//! instead of a full horizon of per-timestep gains. This module computes
//! that fixed point by backward Riccati recursion until convergence.

use crate::{Cholesky, Error, Matrix, Result, Scalar, Vector};

/// Convergence options for [`dare`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DareOptions {
    /// Maximum number of backward-recursion steps.
    pub max_iterations: usize,
    /// Convergence tolerance on `max|P_{k+1} - P_k|`.
    pub tolerance: f64,
}

impl Default for DareOptions {
    fn default() -> Self {
        DareOptions {
            max_iterations: 10_000,
            tolerance: 1e-10,
        }
    }
}

/// Converged solution of the discrete algebraic Riccati equation.
#[derive(Debug, Clone)]
pub struct DareSolution<T> {
    /// Infinite-horizon cost-to-go matrix `P∞` (n×n).
    pub p: Matrix<T>,
    /// Infinite-horizon feedback gain `K∞` (m×n), for `u = -K x`.
    pub k: Matrix<T>,
    /// `(R + Bᵀ P∞ B)⁻¹`, cached because TinyMPC reuses it every backward
    /// pass.
    pub quu_inv: Matrix<T>,
    /// Number of recursion steps performed.
    pub iterations: usize,
}

/// Solves the DARE by backward recursion:
///
/// `P ← Q + Aᵀ P A − Aᵀ P B (R + Bᵀ P B)⁻¹ Bᵀ P A`
///
/// iterating until `P` reaches a fixed point.
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] on inconsistent shapes,
/// [`Error::NotPositiveDefinite`] if `R + BᵀPB` loses positive-definiteness
/// (e.g. `R` not positive definite), and [`Error::DidNotConverge`] if the
/// iteration budget is exhausted.
///
/// # Examples
///
/// ```
/// use matlib::{dare, DareOptions, Matrix};
///
/// # fn main() -> Result<(), matlib::Error> {
/// // Scalar double integrator.
/// let a = Matrix::from_rows(&[&[1.0, 0.1], &[0.0, 1.0]])?;
/// let b = Matrix::from_rows(&[&[0.005], &[0.1]])?;
/// let q = Matrix::identity(2);
/// let r = Matrix::identity(1);
/// let sol = dare(&a, &b, &q, &r, DareOptions::default())?;
/// assert_eq!(sol.k.shape(), (1, 2));
/// # Ok(())
/// # }
/// ```
pub fn dare<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    q: &Matrix<T>,
    r: &Matrix<T>,
    options: DareOptions,
) -> Result<DareSolution<T>> {
    let n = a.rows();
    let m = b.cols();
    if a.cols() != n {
        return Err(Error::DimensionMismatch {
            op: "dare(A)",
            lhs: a.shape(),
            rhs: (n, n),
        });
    }
    if b.rows() != n {
        return Err(Error::DimensionMismatch {
            op: "dare(B)",
            lhs: b.shape(),
            rhs: (n, m),
        });
    }
    if q.shape() != (n, n) {
        return Err(Error::DimensionMismatch {
            op: "dare(Q)",
            lhs: q.shape(),
            rhs: (n, n),
        });
    }
    if r.shape() != (m, m) {
        return Err(Error::DimensionMismatch {
            op: "dare(R)",
            lhs: r.shape(),
            rhs: (m, m),
        });
    }

    let bt = b.transpose();
    let mut p = q.clone();
    for iter in 0..options.max_iterations {
        // Quu = R + Bᵀ P B,  Qux = Bᵀ P A.
        let pb = p.matmul(b)?;
        let quu = r.add(&bt.matmul(&pb)?)?;
        let qux = bt.matmul(&p.matmul(a)?)?;
        let quu_chol = Cholesky::new(&quu)?;
        // K = Quu⁻¹ Qux, solved column-wise against Qux.
        let mut k = Matrix::zeros(m, n);
        for c in 0..n {
            let col = quu_chol.solve(&qux.column(c))?;
            for row in 0..m {
                k[(row, c)] = col[row];
            }
        }
        // Joseph-form recursion, symmetric positive-semidefinite by
        // construction (robust for stiff dynamics like low-inertia
        // quadrotors): P' = (A−BK)ᵀ P (A−BK) + Kᵀ R K + Q.
        let abk = a.sub(&b.matmul(&k)?)?;
        let kt_r_k = k.transpose().matmul(&r.matmul(&k)?)?;
        let p_next = abk
            .transpose()
            .matmul(&p.matmul(&abk)?)?
            .add(&kt_r_k)?
            .add(q)?;
        // Re-symmetrize to scrub accumulated rounding skew.
        let p_next = p_next.add(&p_next.transpose())?.scale(T::from_f64(0.5));

        let delta = p_next.max_abs_diff(&p)?;
        if !delta.is_finite() {
            return Err(Error::NonFinite { op: "dare" });
        }
        // In reduced precision (f32) the requested tolerance may be below
        // representable resolution at P's magnitude; widen it to a few ulps
        // of the largest entry.
        let ulp_floor = 16.0 * T::EPSILON.to_f64() * p_next.max_abs().to_f64();
        p = p_next;
        if delta < options.tolerance.max(ulp_floor) {
            // Recompute the gain and Quu⁻¹ at the converged P.
            let pb = p.matmul(b)?;
            let quu = r.add(&bt.matmul(&pb)?)?;
            let qux = bt.matmul(&p.matmul(a)?)?;
            let quu_chol = Cholesky::new(&quu)?;
            let mut k = Matrix::zeros(m, n);
            for c in 0..n {
                let col = quu_chol.solve(&qux.column(c))?;
                for row in 0..m {
                    k[(row, c)] = col[row];
                }
            }
            return Ok(DareSolution {
                p,
                k,
                quu_inv: quu_chol.inverse(),
                iterations: iter + 1,
            });
        }
    }
    Err(Error::DidNotConverge {
        iterations: options.max_iterations,
        residual: f64::NAN,
    })
}

/// Convenience wrapper returning just the LQR gain pair `(K∞, P∞)`.
///
/// # Errors
///
/// Propagates every error of [`dare`].
pub fn lqr_gains<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    q: &Matrix<T>,
    r: &Matrix<T>,
) -> Result<(Matrix<T>, Matrix<T>)> {
    let sol = dare(a, b, q, r, DareOptions::default())?;
    Ok((sol.k, sol.p))
}

/// Verifies the Riccati residual `‖P − (Q + AᵀPA − AᵀPB·Quu⁻¹·BᵀPA)‖∞`.
///
/// Exposed for tests and for validating cached TinyMPC matrices loaded from
/// other sources.
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] on inconsistent shapes.
pub fn dare_residual<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    q: &Matrix<T>,
    r: &Matrix<T>,
    p: &Matrix<T>,
) -> Result<f64> {
    let at = a.transpose();
    let bt = b.transpose();
    let quu = r.add(&bt.matmul(&p.matmul(b)?)?)?;
    let qux = bt.matmul(&p.matmul(a)?)?;
    let chol = Cholesky::new(&quu)?;
    let n = a.rows();
    let m = b.cols();
    let mut k = Matrix::zeros(m, n);
    for c in 0..n {
        let col = chol.solve(&qux.column(c))?;
        for row in 0..m {
            k[(row, c)] = col[row];
        }
    }
    let abk = a.sub(&b.matmul(&k)?)?;
    let p_next = q.add(&at.matmul(&p.matmul(&abk)?)?)?;
    p_next.max_abs_diff(p)
}

/// Propagates one closed-loop step `x' = (A − B K) x` — a helper used by
/// tests and closed-loop examples.
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] on inconsistent shapes.
pub fn closed_loop_step<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    k: &Matrix<T>,
    x: &Vector<T>,
) -> Result<Vector<T>> {
    let u = k.matvec(x)?.neg();
    let ax = a.matvec(x)?;
    let bu = b.matvec(&u)?;
    ax.add(&bu)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn double_integrator() -> (Matrix<f64>, Matrix<f64>, Matrix<f64>, Matrix<f64>) {
        let dt = 0.1;
        let a = Matrix::from_rows(&[&[1.0, dt], &[0.0, 1.0]]).unwrap();
        let b = Matrix::from_rows(&[&[0.5 * dt * dt], &[dt]]).unwrap();
        let q = Matrix::identity(2);
        let r = Matrix::from_diagonal(&[0.1]);
        (a, b, q, r)
    }

    #[test]
    fn dare_converges_on_double_integrator() {
        let (a, b, q, r) = double_integrator();
        let sol = dare(&a, &b, &q, &r, DareOptions::default()).unwrap();
        assert!(sol.iterations > 1);
        assert!(dare_residual(&a, &b, &q, &r, &sol.p).unwrap() < 1e-8);
    }

    #[test]
    fn dare_gain_stabilizes() {
        let (a, b, q, r) = double_integrator();
        let sol = dare(&a, &b, &q, &r, DareOptions::default()).unwrap();
        // Simulate the closed loop from a nonzero state; it must contract.
        let mut x = Vector::from_slice(&[1.0, 1.0]);
        for _ in 0..300 {
            x = closed_loop_step(&a, &b, &sol.k, &x).unwrap();
        }
        assert!(x.max_abs() < 1e-3, "closed loop did not stabilize: {x:?}");
    }

    #[test]
    fn dare_quu_inv_is_inverse() {
        let (a, b, q, r) = double_integrator();
        let sol = dare(&a, &b, &q, &r, DareOptions::default()).unwrap();
        let bt = b.transpose();
        let quu = r
            .add(&bt.matmul(&sol.p.matmul(&b).unwrap()).unwrap())
            .unwrap();
        let prod = quu.matmul(&sol.quu_inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(1)).unwrap() < 1e-9);
    }

    #[test]
    fn dare_rejects_bad_shapes() {
        let (a, b, q, _) = double_integrator();
        let bad_r = Matrix::<f64>::identity(2);
        assert!(dare(&a, &b, &q, &bad_r, DareOptions::default()).is_err());
    }

    #[test]
    fn dare_budget_exhaustion() {
        let (a, b, q, r) = double_integrator();
        let opts = DareOptions {
            max_iterations: 1,
            tolerance: 1e-16,
        };
        assert!(matches!(
            dare(&a, &b, &q, &r, opts),
            Err(Error::DidNotConverge { .. })
        ));
    }

    #[test]
    fn dare_nan_dynamics_surfaces_nonfinite() {
        let (mut a, b, q, r) = double_integrator();
        a[(0, 0)] = f64::NAN;
        assert!(matches!(
            dare(&a, &b, &q, &r, DareOptions::default()),
            Err(Error::NonFinite { .. })
        ));
    }

    #[test]
    fn lqr_gains_wrapper() {
        let (a, b, q, r) = double_integrator();
        let (k, p) = lqr_gains(&a, &b, &q, &r).unwrap();
        assert_eq!(k.shape(), (1, 2));
        assert_eq!(p.shape(), (2, 2));
        // P must be symmetric (within tolerance) and positive on diagonal.
        assert!(p.max_abs_diff(&p.transpose()).unwrap() < 1e-8);
        assert!(p[(0, 0)] > 0.0 && p[(1, 1)] > 0.0);
    }
}
