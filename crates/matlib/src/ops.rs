//! Free-function BLAS-like kernels.
//!
//! These mirror the C `matlib` interface the paper built for its
//! cross-backend comparison: each backend's functional model bottoms out in
//! these routines, while its *timing* model accounts for the backend's own
//! execution of the equivalent instruction stream.

use crate::{Error, Matrix, Result, Scalar, Vector};

/// Output-finiteness guard: `O(len(out))`, negligible next to the `O(n·k)`
/// work of the kernels it protects, so it stays on in release builds. A
/// non-finite output means a non-finite input or overflow somewhere
/// upstream — exactly the silent-data-corruption signature the fault
/// layer needs surfaced as an error.
#[inline]
pub(crate) fn guard_finite<'a, T: Scalar>(
    op: &'static str,
    out: impl IntoIterator<Item = &'a T>,
) -> Result<()> {
    for v in out {
        if !v.is_finite() {
            return Err(Error::NonFinite { op });
        }
    }
    Ok(())
}

/// General matrix-matrix product `A * B`.
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] if `a.cols() != b.rows()`.
///
/// # Examples
///
/// ```
/// use matlib::{gemm, Matrix};
///
/// # fn main() -> Result<(), matlib::Error> {
/// let a = Matrix::<f64>::identity(2);
/// let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// assert_eq!(gemm(&a, &b)?, b);
/// # Ok(())
/// # }
/// ```
pub fn gemm<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Result<Matrix<T>> {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    gemm_accumulate(T::ONE, a, b, T::ZERO, &mut out)?;
    Ok(out)
}

/// General matrix-matrix product with accumulation:
/// `C = alpha * A * B + beta * C`.
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] if the inner dimensions of `A` and
/// `B` disagree or `C` does not have shape `(a.rows(), b.cols())`, and
/// [`Error::NonFinite`] if the output contains NaN/Inf.
pub fn gemm_accumulate<T: Scalar>(
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    c: &mut Matrix<T>,
) -> Result<()> {
    if a.cols() != b.rows() {
        return Err(Error::DimensionMismatch {
            op: "gemm",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if c.shape() != (a.rows(), b.cols()) {
        return Err(Error::DimensionMismatch {
            op: "gemm(out)",
            lhs: (a.rows(), b.cols()),
            rhs: c.shape(),
        });
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    for i in 0..m {
        for j in 0..n {
            let mut acc = T::ZERO;
            for p in 0..k {
                acc = a[(i, p)].mul_add(b[(p, j)], acc);
            }
            c[(i, j)] = alpha * acc + beta * c[(i, j)];
        }
    }
    for i in 0..m {
        for j in 0..n {
            if !c[(i, j)].is_finite() {
                return Err(Error::NonFinite { op: "gemm" });
            }
        }
    }
    Ok(())
}

/// General matrix-vector product `A * x`.
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] if `a.cols() != x.len()`.
pub fn gemv<T: Scalar>(a: &Matrix<T>, x: &Vector<T>) -> Result<Vector<T>> {
    let mut out = Vector::zeros(a.rows());
    gemv_accumulate(T::ONE, a, x, T::ZERO, &mut out)?;
    Ok(out)
}

/// General matrix-vector product with accumulation:
/// `y = alpha * A * x + beta * y`.
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] if `a.cols() != x.len()` or
/// `y.len() != a.rows()`, and [`Error::NonFinite`] if the output contains
/// NaN/Inf.
pub fn gemv_accumulate<T: Scalar>(
    alpha: T,
    a: &Matrix<T>,
    x: &Vector<T>,
    beta: T,
    y: &mut Vector<T>,
) -> Result<()> {
    if a.cols() != x.len() {
        return Err(Error::DimensionMismatch {
            op: "gemv",
            lhs: a.shape(),
            rhs: (x.len(), 1),
        });
    }
    if y.len() != a.rows() {
        return Err(Error::DimensionMismatch {
            op: "gemv(out)",
            lhs: (a.rows(), 1),
            rhs: (y.len(), 1),
        });
    }
    for i in 0..a.rows() {
        let row = a.row(i);
        let mut acc = T::ZERO;
        for (p, &aip) in row.iter().enumerate() {
            acc = aip.mul_add(x[p], acc);
        }
        y[i] = alpha * acc + beta * y[i];
    }
    guard_finite("gemv", y.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: &[&[f64]]) -> Matrix<f64> {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn gemm_small_known() {
        let a = mat(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = mat(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = gemm(&a, &b).unwrap();
        assert_eq!(c, mat(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn gemm_rectangular() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        let b = Matrix::from_fn(3, 4, |r, c| (r + c) as f64);
        let c = gemm(&a, &b).unwrap();
        assert_eq!(c.shape(), (2, 4));
        // c[0][0] = 0*0 + 1*1 + 2*2 = 5
        assert_eq!(c[(0, 0)], 5.0);
    }

    #[test]
    fn gemm_dim_mismatch() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(2, 3);
        assert!(gemm(&a, &b).is_err());
    }

    #[test]
    fn gemm_accumulate_alpha_beta() {
        let a = Matrix::<f64>::identity(2);
        let b = mat(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut c = mat(&[&[10.0, 10.0], &[10.0, 10.0]]);
        gemm_accumulate(2.0, &a, &b, 0.5, &mut c).unwrap();
        assert_eq!(c, mat(&[&[7.0, 9.0], &[11.0, 13.0]]));
    }

    #[test]
    fn gemv_known() {
        let a = mat(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let x = Vector::from_slice(&[1.0, 0.0, -1.0]);
        assert_eq!(gemv(&a, &x).unwrap().as_slice(), &[-2.0, -2.0]);
    }

    #[test]
    fn gemv_accumulate_matches_manual() {
        let a = mat(&[&[2.0, 0.0], &[0.0, 2.0]]);
        let x = Vector::from_slice(&[1.0, 2.0]);
        let mut y = Vector::from_slice(&[1.0, 1.0]);
        gemv_accumulate(1.0, &a, &x, -1.0, &mut y).unwrap();
        assert_eq!(y.as_slice(), &[1.0, 3.0]);
    }

    #[test]
    fn gemv_out_len_checked() {
        let a = Matrix::<f64>::zeros(2, 2);
        let x = Vector::zeros(2);
        let mut y = Vector::zeros(3);
        assert!(gemv_accumulate(1.0, &a, &x, 0.0, &mut y).is_err());
    }

    #[test]
    fn gemv_nan_input_surfaces_nonfinite() {
        let a = mat(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let x = Vector::from_slice(&[f64::NAN, 1.0]);
        assert!(matches!(gemv(&a, &x), Err(Error::NonFinite { op: "gemv" })));
    }

    #[test]
    fn gemm_nan_input_surfaces_nonfinite() {
        let a = mat(&[&[f64::NAN, 0.0], &[0.0, 1.0]]);
        let b = Matrix::identity(2);
        assert!(matches!(gemm(&a, &b), Err(Error::NonFinite { op: "gemm" })));
    }

    #[test]
    fn gemm_infinity_surfaces_nonfinite() {
        let a = mat(&[&[f64::MAX, f64::MAX], &[0.0, 1.0]]);
        let b = mat(&[&[f64::MAX, 0.0], &[f64::MAX, 1.0]]);
        assert!(matches!(gemm(&a, &b), Err(Error::NonFinite { op: "gemm" })));
    }

    #[test]
    fn gemm_identity_is_neutral() {
        let a = Matrix::from_fn(4, 4, |r, c| ((r * 7 + c * 3) % 5) as f64 - 2.0);
        let i = Matrix::identity(4);
        assert_eq!(gemm(&a, &i).unwrap(), a);
        assert_eq!(gemm(&i, &a).unwrap(), a);
    }
}
