//! Free-function BLAS-like kernels.
//!
//! These mirror the C `matlib` interface the paper built for its
//! cross-backend comparison: each backend's functional model bottoms out in
//! these routines, while its *timing* model accounts for the backend's own
//! execution of the equivalent instruction stream.

use crate::{Error, Matrix, Result, Scalar, Vector};

/// Output-finiteness guard: `O(len(out))`, negligible next to the `O(n·k)`
/// work of the kernels it protects, so it stays on in release builds. A
/// non-finite output means a non-finite input or overflow somewhere
/// upstream — exactly the silent-data-corruption signature the fault
/// layer needs surfaced as an error.
#[inline]
pub(crate) fn guard_finite<'a, T: Scalar>(
    op: &'static str,
    out: impl IntoIterator<Item = &'a T>,
) -> Result<()> {
    for v in out {
        if !v.is_finite() {
            return Err(Error::NonFinite { op });
        }
    }
    Ok(())
}

/// General matrix-matrix product `A * B`.
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] if `a.cols() != b.rows()`.
///
/// # Examples
///
/// ```
/// use matlib::{gemm, Matrix};
///
/// # fn main() -> Result<(), matlib::Error> {
/// let a = Matrix::<f64>::identity(2);
/// let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// assert_eq!(gemm(&a, &b)?, b);
/// # Ok(())
/// # }
/// ```
pub fn gemm<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Result<Matrix<T>> {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    gemm_accumulate(T::ONE, a, b, T::ZERO, &mut out)?;
    Ok(out)
}

/// General matrix-matrix product with accumulation:
/// `C = alpha * A * B + beta * C`.
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] if the inner dimensions of `A` and
/// `B` disagree or `C` does not have shape `(a.rows(), b.cols())`, and
/// [`Error::NonFinite`] if the output contains NaN/Inf.
pub fn gemm_accumulate<T: Scalar>(
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    c: &mut Matrix<T>,
) -> Result<()> {
    if a.cols() != b.rows() {
        return Err(Error::DimensionMismatch {
            op: "gemm",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if c.shape() != (a.rows(), b.cols()) {
        return Err(Error::DimensionMismatch {
            op: "gemm(out)",
            lhs: (a.rows(), b.cols()),
            rhs: c.shape(),
        });
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    for i in 0..m {
        for j in 0..n {
            let mut acc = T::ZERO;
            for p in 0..k {
                acc = a[(i, p)].mul_add(b[(p, j)], acc);
            }
            c[(i, j)] = alpha * acc + beta * c[(i, j)];
        }
    }
    for i in 0..m {
        for j in 0..n {
            if !c[(i, j)].is_finite() {
                return Err(Error::NonFinite { op: "gemm" });
            }
        }
    }
    Ok(())
}

/// General matrix-vector product `A * x`.
///
/// Delegates to the in-place [`gemv_into`]; kept as the allocating
/// convenience wrapper.
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] if `a.cols() != x.len()`.
pub fn gemv<T: Scalar>(a: &Matrix<T>, x: &Vector<T>) -> Result<Vector<T>> {
    let mut out = Vector::zeros(a.rows());
    gemv_into(a, x.as_slice(), out.as_mut_slice())?;
    Ok(out)
}

/// General matrix-vector product with accumulation:
/// `y = alpha * A * x + beta * y`.
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] if `a.cols() != x.len()` or
/// `y.len() != a.rows()`, and [`Error::NonFinite`] if the output contains
/// NaN/Inf.
pub fn gemv_accumulate<T: Scalar>(
    alpha: T,
    a: &Matrix<T>,
    x: &Vector<T>,
    beta: T,
    y: &mut Vector<T>,
) -> Result<()> {
    if a.cols() != x.len() {
        return Err(Error::DimensionMismatch {
            op: "gemv",
            lhs: a.shape(),
            rhs: (x.len(), 1),
        });
    }
    if y.len() != a.rows() {
        return Err(Error::DimensionMismatch {
            op: "gemv(out)",
            lhs: (a.rows(), 1),
            rhs: (y.len(), 1),
        });
    }
    for i in 0..a.rows() {
        let row = a.row(i);
        let mut acc = T::ZERO;
        for (p, &aip) in row.iter().enumerate() {
            acc = aip.mul_add(x[p], acc);
        }
        y[i] = alpha * acc + beta * y[i];
    }
    guard_finite("gemv", y.as_slice())
}

#[inline]
fn check_len<T>(op: &'static str, a: &[T], b: &[T]) -> Result<()> {
    if a.len() != b.len() {
        return Err(Error::DimensionMismatch {
            op,
            lhs: (a.len(), 1),
            rhs: (b.len(), 1),
        });
    }
    Ok(())
}

/// In-place GEMV: `y = A · x` into the caller-provided slice, with zero
/// hidden allocation.
///
/// Performs exactly the operation sequence of [`gemv`] (row-wise
/// `mul_add` accumulation from zero), so results are bit-identical to
/// the allocating wrapper, which delegates here.
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] if `a.cols() != x.len()` or
/// `y.len() != a.rows()`, and [`Error::NonFinite`] if the output
/// contains NaN/Inf.
pub fn gemv_into<T: Scalar>(a: &Matrix<T>, x: &[T], y: &mut [T]) -> Result<()> {
    if a.cols() != x.len() {
        return Err(Error::DimensionMismatch {
            op: "gemv",
            lhs: a.shape(),
            rhs: (x.len(), 1),
        });
    }
    if y.len() != a.rows() {
        return Err(Error::DimensionMismatch {
            op: "gemv(out)",
            lhs: (a.rows(), 1),
            rhs: (y.len(), 1),
        });
    }
    // Hardware-FMA fast path (bit-identical by the `gemv_accel`
    // contract); the generic loop is the portable fallback.
    if !T::gemv_accel(a.as_slice(), x, y) {
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = T::ZERO;
            for (&aip, &xp) in a.row(i).iter().zip(x.iter()) {
                acc = aip.mul_add(xp, acc);
            }
            // `alpha·acc + beta·0` of the legacy accumulate path with
            // alpha = 1, beta = 0: the trailing `+ 0` canonicalizes −0.
            *yi = acc + T::ZERO;
        }
    }
    guard_finite("gemv", y.iter())
}

/// In-place AXPY: `y = alpha·x + y` (fused per element, matching
/// [`Vector::axpy`], which delegates here).
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] if the lengths differ.
pub fn axpy_into<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) -> Result<()> {
    check_len("axpy", y, x)?;
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = xi.mul_add(alpha, *yi);
    }
    Ok(())
}

/// Element-wise sum into a caller-provided slice: `out = a + b`.
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] if the lengths differ.
pub fn add_into<T: Scalar>(a: &[T], b: &[T], out: &mut [T]) -> Result<()> {
    check_len("vadd", a, b)?;
    check_len("vadd(out)", a, out)?;
    for (o, (&ai, &bi)) in out.iter_mut().zip(a.iter().zip(b)) {
        *o = ai + bi;
    }
    Ok(())
}

/// Element-wise difference into a caller-provided slice: `out = a − b`.
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] if the lengths differ.
pub fn sub_into<T: Scalar>(a: &[T], b: &[T], out: &mut [T]) -> Result<()> {
    check_len("vsub", a, b)?;
    check_len("vsub(out)", a, out)?;
    for (o, (&ai, &bi)) in out.iter_mut().zip(a.iter().zip(b)) {
        *o = ai - bi;
    }
    Ok(())
}

/// In-place accumulate: `y = y + x` (each element evaluated as
/// `y[i] + x[i]`, the order of `Vector::add(self, other)`).
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] if the lengths differ.
pub fn add_assign<T: Scalar>(y: &mut [T], x: &[T]) -> Result<()> {
    check_len("vadd", y, x)?;
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += xi;
    }
    Ok(())
}

/// In-place subtract: `y = y − x` (each element evaluated as
/// `y[i] − x[i]`, the order of `Vector::sub(self, other)`).
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] if the lengths differ.
pub fn sub_assign<T: Scalar>(y: &mut [T], x: &[T]) -> Result<()> {
    check_len("vsub", y, x)?;
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi -= xi;
    }
    Ok(())
}

/// Scaled copy into a caller-provided slice: `out = x · s`.
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] if the lengths differ.
pub fn scale_into<T: Scalar>(x: &[T], s: T, out: &mut [T]) -> Result<()> {
    check_len("vscale(out)", x, out)?;
    for (o, &xi) in out.iter_mut().zip(x) {
        *o = xi * s;
    }
    Ok(())
}

/// In-place scale: `y = y · s` (each element evaluated as `y[i] * s`,
/// the order of [`Vector::scale`]).
pub fn scale_in_place<T: Scalar>(y: &mut [T], s: T) {
    for yi in y.iter_mut() {
        *yi *= s;
    }
}

/// Negated copy into a caller-provided slice: `out = −x`.
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] if the lengths differ.
pub fn neg_into<T: Scalar>(x: &[T], out: &mut [T]) -> Result<()> {
    check_len("vneg(out)", x, out)?;
    for (o, &xi) in out.iter_mut().zip(x) {
        *o = -xi;
    }
    Ok(())
}

/// Clamped copy into a caller-provided slice:
/// `out[i] = min(hi, max(lo, x[i]))` — the TinyMPC slack projection.
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] if the lengths differ.
pub fn clamp_into<T: Scalar>(x: &[T], lo: T, hi: T, out: &mut [T]) -> Result<()> {
    check_len("vclip(out)", x, out)?;
    for (o, &xi) in out.iter_mut().zip(x) {
        *o = xi.max(lo).min(hi);
    }
    Ok(())
}

/// In-place clamp: `y[i] = min(hi, max(lo, y[i]))`, the operation order
/// of [`Vector::clip`].
pub fn clamp_in_place<T: Scalar>(y: &mut [T], lo: T, hi: T) {
    for yi in y.iter_mut() {
        *yi = (*yi).max(lo).min(hi);
    }
}

/// `max(|a − b|)` over two slices — the residual reduction of TinyMPC,
/// folding from `+0` exactly like [`Vector::max_abs_diff`].
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] if the lengths differ.
pub fn max_abs_diff_slices<T: Scalar>(a: &[T], b: &[T]) -> Result<T> {
    check_len("max_abs_diff", a, b)?;
    Ok(a.iter()
        .zip(b)
        .fold(T::ZERO, |m, (&x, &y)| m.max((x - y).abs())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: &[&[f64]]) -> Matrix<f64> {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn gemm_small_known() {
        let a = mat(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = mat(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = gemm(&a, &b).unwrap();
        assert_eq!(c, mat(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn gemm_rectangular() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        let b = Matrix::from_fn(3, 4, |r, c| (r + c) as f64);
        let c = gemm(&a, &b).unwrap();
        assert_eq!(c.shape(), (2, 4));
        // c[0][0] = 0*0 + 1*1 + 2*2 = 5
        assert_eq!(c[(0, 0)], 5.0);
    }

    #[test]
    fn gemm_dim_mismatch() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(2, 3);
        assert!(gemm(&a, &b).is_err());
    }

    #[test]
    fn gemm_accumulate_alpha_beta() {
        let a = Matrix::<f64>::identity(2);
        let b = mat(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut c = mat(&[&[10.0, 10.0], &[10.0, 10.0]]);
        gemm_accumulate(2.0, &a, &b, 0.5, &mut c).unwrap();
        assert_eq!(c, mat(&[&[7.0, 9.0], &[11.0, 13.0]]));
    }

    #[test]
    fn gemv_known() {
        let a = mat(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let x = Vector::from_slice(&[1.0, 0.0, -1.0]);
        assert_eq!(gemv(&a, &x).unwrap().as_slice(), &[-2.0, -2.0]);
    }

    #[test]
    fn gemv_accumulate_matches_manual() {
        let a = mat(&[&[2.0, 0.0], &[0.0, 2.0]]);
        let x = Vector::from_slice(&[1.0, 2.0]);
        let mut y = Vector::from_slice(&[1.0, 1.0]);
        gemv_accumulate(1.0, &a, &x, -1.0, &mut y).unwrap();
        assert_eq!(y.as_slice(), &[1.0, 3.0]);
    }

    #[test]
    fn gemv_out_len_checked() {
        let a = Matrix::<f64>::zeros(2, 2);
        let x = Vector::zeros(2);
        let mut y = Vector::zeros(3);
        assert!(gemv_accumulate(1.0, &a, &x, 0.0, &mut y).is_err());
    }

    #[test]
    fn gemv_nan_input_surfaces_nonfinite() {
        let a = mat(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let x = Vector::from_slice(&[f64::NAN, 1.0]);
        assert!(matches!(gemv(&a, &x), Err(Error::NonFinite { op: "gemv" })));
    }

    #[test]
    fn gemm_nan_input_surfaces_nonfinite() {
        let a = mat(&[&[f64::NAN, 0.0], &[0.0, 1.0]]);
        let b = Matrix::identity(2);
        assert!(matches!(gemm(&a, &b), Err(Error::NonFinite { op: "gemm" })));
    }

    #[test]
    fn gemm_infinity_surfaces_nonfinite() {
        let a = mat(&[&[f64::MAX, f64::MAX], &[0.0, 1.0]]);
        let b = mat(&[&[f64::MAX, 0.0], &[f64::MAX, 1.0]]);
        assert!(matches!(gemm(&a, &b), Err(Error::NonFinite { op: "gemm" })));
    }

    #[test]
    fn gemm_identity_is_neutral() {
        let a = Matrix::from_fn(4, 4, |r, c| ((r * 7 + c * 3) % 5) as f64 - 2.0);
        let i = Matrix::identity(4);
        assert_eq!(gemm(&a, &i).unwrap(), a);
        assert_eq!(gemm(&i, &a).unwrap(), a);
    }
}
