//! A tiny deterministic PRNG for workload and problem generation.
//!
//! The sweeps, fault campaigns and random-plant scenario families only
//! need reproducible, well-mixed draws — not cryptographic quality — so
//! a dependency-free SplitMix64 keeps the workspace fully
//! self-contained. It lives in `matlib` (the root of the dependency
//! graph) so every layer — problem constructors, scenario generators,
//! fault planners — draws from the same generator.

/// SplitMix64 generator (Steele, Lea & Flood; the `java.util` splittable
/// random mixer). One 64-bit word of state, passes BigCrush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator. Every seed, including 0, is valid.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw from the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }

    /// A uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = SplitMix64::new(43);
        assert_ne!(a[0], r.next_u64());
    }

    #[test]
    fn range_and_unit_stay_in_bounds() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = r.range_usize(4, 64);
            assert!((4..=64).contains(&v));
            let f = r.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
