//! # matlib — dense linear algebra for embedded optimal control
//!
//! A pure-Rust reimplementation of the paper's `matlib`: a lightweight,
//! Eigen-like interface to the dense linear-algebra operators that dominate
//! classical robotic control workloads — general matrix-matrix products
//! (GEMM), matrix-vector products (GEMV), element-wise strip-mining
//! operations (saturation/clipping, absolute value), global reductions
//! (infinity norms), and the domain-specific routines optimal control needs
//! on top (Cholesky factorization, linear solves, the discrete algebraic
//! Riccati equation).
//!
//! Operand sizes in this domain are tiny by ML standards — state and input
//! dimensions on the order of 10 (a quadrotor is 12×4) — so the library is
//! deliberately simple: row-major owned storage, no hidden allocation in hot
//! paths, and `Result`-based dimension checking at the API boundary.
//!
//! ## Quickstart
//!
//! ```
//! use matlib::{Matrix, Vector};
//!
//! # fn main() -> Result<(), matlib::Error> {
//! let a = Matrix::<f64>::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
//! let x = Vector::from_slice(&[1.0, 1.0]);
//! let y = a.matvec(&x)?;
//! assert_eq!(y.as_slice(), &[3.0, 7.0]);
//! # Ok(())
//! # }
//! ```
//!
//! The crate is generic over [`Scalar`] (implemented for `f32` and `f64`):
//! the SoC simulators in this workspace compute in `f32` like the modelled
//! hardware, while reference solvers validate in `f64`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod matrix;
mod ops;
mod qr;
mod riccati;
pub mod rng;
mod scalar;
mod solve;
mod vector;

pub use error::Error;
pub use matrix::Matrix;
pub use ops::{
    add_assign, add_into, axpy_into, clamp_in_place, clamp_into, gemm, gemm_accumulate, gemv,
    gemv_accumulate, gemv_into, max_abs_diff_slices, neg_into, scale_in_place, scale_into,
    sub_assign, sub_into,
};
pub use qr::Qr;
pub use riccati::{closed_loop_step, dare, dare_residual, lqr_gains, DareOptions, DareSolution};
pub use scalar::Scalar;
pub use solve::{Cholesky, Lu};
pub use vector::Vector;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
