use crate::{Error, Result, Scalar, Vector};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix.
///
/// `Matrix` is the workhorse container of the crate. Storage is a flat
/// `Vec<T>` in row-major order; element `(r, c)` lives at `r * cols + c`.
///
/// # Examples
///
/// ```
/// use matlib::Matrix;
///
/// # fn main() -> Result<(), matlib::Error> {
/// let eye = Matrix::<f64>::identity(3);
/// let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
/// assert_eq!(a.matmul(&eye)?, a);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Creates a matrix whose element `(r, c)` is `f(r, c)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns [`Error::RaggedRows`] if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[T]]) -> Result<Self> {
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(rows.len() * ncols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != ncols {
                return Err(Error::RaggedRows {
                    expected: ncols,
                    row: i,
                    got: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols: ncols,
            data,
        })
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(Error::DimensionMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates an `n × n` diagonal matrix from the given diagonal entries.
    pub fn from_diagonal(diag: &[T]) -> Self {
        let mut m = Matrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the elements.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat row-major view of the elements.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &[T] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new [`Vector`].
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn column(&self, c: usize) -> Vector<T> {
        Vector::from_iter((0..self.rows).map(|r| self[(r, c)]))
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if the shapes differ.
    pub fn add(&self, other: &Matrix<T>) -> Result<Matrix<T>> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Matrix<T>) -> Result<Matrix<T>> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: T) -> Matrix<T> {
        self.map(|x| x * s)
    }

    /// Negates every element.
    pub fn neg(&self) -> Matrix<T> {
        self.map(|x| -x)
    }

    /// Applies `f` to every element, producing a new matrix.
    pub fn map(&self, f: impl Fn(T) -> T) -> Matrix<T> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Combines two equal-shaped matrices element-wise.
    fn zip_with(
        &self,
        other: &Matrix<T>,
        op: &'static str,
        f: impl Fn(T, T) -> T,
    ) -> Result<Matrix<T>> {
        if self.shape() != other.shape() {
            return Err(Error::DimensionMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Matrix-matrix product `self * other` (GEMM).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix<T>) -> Result<Matrix<T>> {
        crate::ops::gemm(self, other)
    }

    /// Matrix-vector product `self * x` (GEMV).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `self.cols() != x.len()`.
    pub fn matvec(&self, x: &Vector<T>) -> Result<Vector<T>> {
        crate::ops::gemv(self, x)
    }

    /// Largest absolute value of any element (the max-norm); `0` for an
    /// empty matrix.
    pub fn max_abs(&self) -> T {
        self.data.iter().fold(T::ZERO, |m, &x| m.max(x.abs()))
    }

    /// Infinity operator norm: maximum absolute row sum.
    pub fn norm_inf(&self) -> T {
        (0..self.rows)
            .map(|r| self.row(r).iter().fold(T::ZERO, |s, &x| s + x.abs()))
            .fold(T::ZERO, |m, s| m.max(s))
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> T {
        self.data
            .iter()
            .fold(T::ZERO, |s, &x| x.mul_add(x, s))
            .sqrt()
    }

    /// Whether every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute element-wise difference against `other`, as `f64`.
    ///
    /// Useful as a convergence / agreement metric between backends of
    /// different precision.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix<T>) -> Result<f64> {
        if self.shape() != other.shape() {
            return Err(Error::DimensionMismatch {
                op: "max_abs_diff",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs().to_f64())
            .fold(0.0, f64::max))
    }

    /// Converts every element to another scalar type via `f64`.
    pub fn cast<U: Scalar>(&self) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| U::from_f64(x.to_f64())).collect(),
        }
    }
}

impl<T: Scalar> Index<(usize, usize)> for Matrix<T> {
    type Output = T;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl<T: fmt::Debug> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  [")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:?}", self.data[r * self.cols + c])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::<f64>::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = Matrix::<f64>::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::<f64>::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(
            err,
            Error::RaggedRows {
                row: 1,
                got: 1,
                expected: 2
            }
        ));
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Matrix::from_vec(2, 2, vec![1.0f32; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0f32; 4]).is_ok());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(4, 2)], a[(2, 4)]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_fn(2, 2, |r, c| (r + c) as f64);
        let b = Matrix::from_fn(2, 2, |r, c| (r * c) as f64 + 1.0);
        let s = a.add(&b).unwrap();
        assert_eq!(s.sub(&b).unwrap(), a);
    }

    #[test]
    fn add_shape_mismatch() {
        let a = Matrix::<f64>::zeros(2, 2);
        let b = Matrix::<f64>::zeros(2, 3);
        assert!(matches!(
            a.add(&b),
            Err(Error::DimensionMismatch { op: "add", .. })
        ));
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[1.0f64, -2.0], &[-3.0, 4.0]]).unwrap();
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.norm_inf(), 7.0);
        assert!((a.norm_fro() - 30.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn row_and_column_access() {
        let a = Matrix::from_fn(3, 2, |r, c| (10 * r + c) as f32);
        assert_eq!(a.row(1), &[10.0, 11.0]);
        assert_eq!(a.column(1).as_slice(), &[1.0, 11.0, 21.0]);
    }

    #[test]
    fn cast_roundtrip() {
        let a = Matrix::from_fn(2, 2, |r, c| (r + 2 * c) as f64 * 0.5);
        let b: Matrix<f32> = a.cast();
        let c: Matrix<f64> = b.cast();
        assert_eq!(a, c);
    }

    #[test]
    fn diagonal_constructor() {
        let d = Matrix::from_diagonal(&[1.0f64, 2.0, 3.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
        assert_eq!(d.shape(), (3, 3));
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", Matrix::<f32>::zeros(1, 1));
        assert!(s.contains("Matrix 1x1"));
    }
}
