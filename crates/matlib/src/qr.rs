//! Householder QR factorization and least-squares solves.
//!
//! Rounds out the dense-kernel inventory the paper attributes to robotic
//! workloads ("a wide variety of dense linear algebra kernels"); QR backs
//! the least-squares sub-problems of calibration and trajectory fitting.

use crate::{Error, Matrix, Result, Scalar, Vector};

/// Householder QR factorization `A = Q·R` of an `m × n` matrix with
/// `m ≥ n`.
///
/// # Examples
///
/// ```
/// use matlib::{Matrix, Qr, Vector};
///
/// # fn main() -> Result<(), matlib::Error> {
/// let a = Matrix::<f64>::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]])?;
/// let b = Vector::from_slice(&[1.0, 2.0, 3.0]);
/// let x = Qr::new(&a)?.solve_least_squares(&b)?; // fits y = 1 + t
/// assert!((x[0] - 1.0).abs() < 1e-10 && (x[1] - 1.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Qr<T> {
    /// Householder vectors in the lower trapezoid; R in the upper triangle.
    qr: Matrix<T>,
    /// Householder scalars β.
    betas: Vec<T>,
}

impl<T: Scalar> std::fmt::Debug for Qr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Qr").field("qr", &self.qr).finish()
    }
}

impl<T: Scalar> Qr<T> {
    /// Factorizes `a` (requires `rows ≥ cols`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `rows < cols` and
    /// [`Error::Singular`] if a column is (numerically) dependent.
    pub fn new(a: &Matrix<T>) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(Error::DimensionMismatch {
                op: "qr",
                lhs: a.shape(),
                rhs: (n, n),
            });
        }
        let mut qr = a.clone();
        let mut betas = Vec::with_capacity(n);
        for j in 0..n {
            // Householder vector for column j below the diagonal.
            let mut norm_sq = T::ZERO;
            for i in j..m {
                norm_sq += qr[(i, j)] * qr[(i, j)];
            }
            let norm = norm_sq.sqrt();
            if norm <= T::ZERO || !norm.is_finite() {
                return Err(Error::Singular { pivot: j });
            }
            let alpha = if qr[(j, j)] > T::ZERO { -norm } else { norm };
            let v0 = qr[(j, j)] - alpha;
            // v = (x - alpha e1); beta = 2 / vᵀv.
            let mut vtv = v0 * v0;
            for i in (j + 1)..m {
                vtv += qr[(i, j)] * qr[(i, j)];
            }
            if vtv <= T::ZERO {
                // Column already upper-triangular.
                betas.push(T::ZERO);
                continue;
            }
            let beta = (T::ONE + T::ONE) / vtv;
            // Apply H = I - beta v vᵀ to the trailing columns.
            for col in j..n {
                let mut dot = v0 * qr[(j, col)];
                for i in (j + 1)..m {
                    dot += qr[(i, j)] * qr[(i, col)];
                }
                let scale = beta * dot;
                qr[(j, col)] -= scale * v0;
                for i in (j + 1)..m {
                    let vi = qr[(i, j)];
                    if col == j {
                        continue;
                    }
                    qr[(i, col)] -= scale * vi;
                }
            }
            // Store: R(j,j) = alpha; v below the diagonal (normalized so
            // v0 stays explicit in betas' companion storage).
            qr[(j, j)] = alpha;
            for i in (j + 1)..m {
                qr[(i, j)] /= v0;
            }
            // With v normalized to v0 = 1, beta becomes beta * v0².
            betas.push(beta * v0 * v0);
        }
        Ok(Qr { qr, betas })
    }

    /// The upper-triangular factor `R` (`n × n`).
    pub fn r(&self) -> Matrix<T> {
        let n = self.qr.cols();
        Matrix::from_fn(n, n, |r, c| if c >= r { self.qr[(r, c)] } else { T::ZERO })
    }

    /// The thin orthonormal factor `Q` (`m × n`), such that `Q·R = A`
    /// and `Qᵀ·Q = I`.
    ///
    /// # Examples
    ///
    /// ```
    /// use matlib::{Matrix, Qr};
    ///
    /// # fn main() -> Result<(), matlib::Error> {
    /// let a = Matrix::<f64>::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]])?;
    /// let qr = Qr::new(&a)?;
    /// let back = qr.q().matmul(&qr.r())?;
    /// for r in 0..3 {
    ///     for c in 0..2 {
    ///         assert!((back[(r, c)] - a[(r, c)]).abs() < 1e-12);
    ///     }
    /// }
    /// # Ok(())
    /// # }
    /// ```
    pub fn q(&self) -> Matrix<T> {
        let (m, n) = self.qr.shape();
        let mut q = Matrix::zeros(m, n);
        for j in 0..n {
            let mut e = Vector::zeros(m);
            e[j] = T::ONE;
            let col = self.apply_q(&e);
            for i in 0..m {
                q[(i, j)] = col[i];
            }
        }
        q
    }

    /// Applies `Q = H₀·H₁⋯H₍ₙ₋₁₎` to a vector of length `m` (the
    /// Householder reflections in reverse of [`apply_qt`](Self::apply_qt)'s
    /// order).
    fn apply_q(&self, b: &Vector<T>) -> Vector<T> {
        let (m, n) = self.qr.shape();
        let mut y = b.clone();
        for j in (0..n).rev() {
            let beta = self.betas[j];
            if beta <= T::ZERO {
                continue;
            }
            let mut dot = y[j];
            for i in (j + 1)..m {
                dot += self.qr[(i, j)] * y[i];
            }
            let scale = beta * dot;
            y[j] -= scale;
            for i in (j + 1)..m {
                let vi = self.qr[(i, j)];
                y[i] -= scale * vi;
            }
        }
        y
    }

    /// Applies `Qᵀ` to a vector of length `m`.
    fn apply_qt(&self, b: &Vector<T>) -> Vector<T> {
        let (m, n) = self.qr.shape();
        let mut y = b.clone();
        for j in 0..n {
            let beta = self.betas[j];
            if beta <= T::ZERO {
                continue;
            }
            // v = [1, qr[j+1..m][j]].
            let mut dot = y[j];
            for i in (j + 1)..m {
                dot += self.qr[(i, j)] * y[i];
            }
            let scale = beta * dot;
            y[j] -= scale;
            for i in (j + 1)..m {
                let vi = self.qr[(i, j)];
                y[i] -= scale * vi;
            }
        }
        y
    }

    /// Solves the least-squares problem `min ‖A x − b‖₂`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `b.len() != rows`.
    pub fn solve_least_squares(&self, b: &Vector<T>) -> Result<Vector<T>> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(Error::DimensionMismatch {
                op: "qr_solve",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        let y = self.apply_qt(b);
        // Back substitution on R.
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut sum = y[i];
            for c in (i + 1)..n {
                sum -= self.qr[(i, c)] * x[c];
            }
            x[i] = sum / self.qr[(i, i)];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tall(seed: u64, m: usize, n: usize) -> Matrix<f64> {
        Matrix::from_fn(m, n, |r, c| {
            (((seed
                .wrapping_mul(2654435761)
                .wrapping_add((r * 17 + c * 5) as u64))
                % 19) as f64
                - 9.0)
                * 0.21
                + if r == c { 3.0 } else { 0.0 }
        })
    }

    #[test]
    fn r_is_upper_triangular_with_positive_diag_magnitudes() {
        let a = tall(1, 6, 4);
        let qr = Qr::new(&a).unwrap();
        let r = qr.r();
        for i in 0..4 {
            assert!(r[(i, i)].abs() > 1e-10);
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn square_solve_matches_lu() {
        let a = tall(2, 5, 5);
        let b = Vector::from_fn(5, |i| i as f64 - 2.0);
        let x_qr = Qr::new(&a).unwrap().solve_least_squares(&b).unwrap();
        let x_lu = crate::Lu::new(&a).unwrap().solve(&b).unwrap();
        for i in 0..5 {
            assert!(
                (x_qr[i] - x_lu[i]).abs() < 1e-8,
                "{} vs {}",
                x_qr[i],
                x_lu[i]
            );
        }
    }

    #[test]
    fn least_squares_residual_is_orthogonal() {
        let a = tall(3, 8, 3);
        let b = Vector::from_fn(8, |i| (i as f64).sin());
        let x = Qr::new(&a).unwrap().solve_least_squares(&b).unwrap();
        // Residual must be orthogonal to the column space: Aᵀ r = 0.
        let r = a.matvec(&x).unwrap().sub(&b).unwrap();
        let atr = a.transpose().matvec(&r).unwrap();
        assert!(atr.max_abs() < 1e-8, "normal equations violated: {atr:?}");
    }

    #[test]
    fn q_is_orthonormal_and_reconstructs() {
        let a = tall(4, 7, 4);
        let qr = Qr::new(&a).unwrap();
        let q = qr.q();
        // Qᵀ·Q = I.
        let qtq = q.transpose().matmul(&q).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((qtq[(i, j)] - want).abs() < 1e-10, "QtQ[{i}][{j}]");
            }
        }
        // Q·R = A.
        let back = q.matmul(&qr.r()).unwrap();
        for i in 0..7 {
            for j in 0..4 {
                assert!((back[(i, j)] - a[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn wide_matrix_rejected() {
        let a = Matrix::<f64>::zeros(2, 3);
        assert!(Qr::new(&a).is_err());
    }

    #[test]
    fn line_fit_example() {
        // Fit y = 2 + 3t.
        let ts = [0.0, 1.0, 2.0, 3.0, 4.0];
        let a = Matrix::from_fn(5, 2, |r, c| if c == 0 { 1.0 } else { ts[r] });
        let b = Vector::from_fn(5, |i| 2.0 + 3.0 * ts[i]);
        let x = Qr::new(&a).unwrap().solve_least_squares(&b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }
}
