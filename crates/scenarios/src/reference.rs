//! Reference-trajectory generators.
//!
//! Each generator produces the reference window `[r(step), …,
//! r(step + horizon − 1)]` that a receding-horizon controller feeds to
//! the solver at rollout step `step`. All trajectories are analytic
//! functions of the absolute time index, so the window at step `k+1` is
//! exactly the window at step `k` shifted by one — no accumulated state.
//!
//! Every generator is deterministic and computes in the solver's scalar
//! type `T`, so the same scenario produces bit-identical references (and
//! therefore bit-identical solves) on every back-end.

use matlib::{Scalar, Vector};

/// Hover: all-zero references (regulate to the origin). This matches the
/// freshly-zeroed `xref` in [`tinympc::TinyMpcWorkspace::new`], keeping
/// the hover scenario bit-identical to a solver that never calls
/// `set_reference`.
pub fn hover<T: Scalar>(nx: usize, horizon: usize, _step: usize) -> Vec<Vector<T>> {
    (0..horizon).map(|_| Vector::zeros(nx)).collect()
}

/// Figure-8 (lemniscate of Gérono) in the x–y plane with analytic
/// velocity references: `x = A sin(ωt)`, `y = (A/2) sin(2ωt)`. Position
/// goes into states 0–1; velocity into states `nx/2` and `nx/2 + 1`
/// (the quadrotor layout: 6 pose + 6 rate states).
///
/// # Panics
///
/// Panics if `nx < 4` (needs two positions and two velocities).
pub fn figure8<T: Scalar>(nx: usize, horizon: usize, step: usize, dt: f64) -> Vec<Vector<T>> {
    assert!(nx >= 4, "figure-8 reference needs nx >= 4, got {nx}");
    let amp = 0.35;
    let omega = 2.0 * std::f64::consts::PI / 6.0; // one loop every 6 s
    let vel = nx / 2;
    (0..horizon)
        .map(|k| {
            let t = (step + k) as f64 * dt;
            let mut r = Vector::zeros(nx);
            r[0] = T::from_f64(amp * (omega * t).sin());
            r[1] = T::from_f64(0.5 * amp * (2.0 * omega * t).sin());
            r[vel] = T::from_f64(amp * omega * (omega * t).cos());
            r[vel + 1] = T::from_f64(amp * omega * (2.0 * omega * t).cos());
            r
        })
        .collect()
}

/// Waypoint slalom: piecewise-constant setpoints that alternate the
/// first position coordinate between `±amp` every `dwell` steps — a
/// square-wave stress test for the box-projection path (each switch
/// saturates the inputs for several steps).
pub fn slalom<T: Scalar>(
    nx: usize,
    horizon: usize,
    step: usize,
    amp: f64,
    dwell: usize,
) -> Vec<Vector<T>> {
    (0..horizon)
        .map(|k| {
            let phase = ((step + k) / dwell.max(1)) % 2;
            let target = if phase == 0 { amp } else { -amp };
            let mut r = Vector::zeros(nx);
            r[0] = T::from_f64(target);
            r
        })
        .collect()
}

/// Disturbance rejection: regulate to the origin (zero reference); the
/// scenario's *initial state* carries the disturbance. Identical window
/// to [`hover`], split out so call sites document intent.
pub fn disturbance<T: Scalar>(nx: usize, horizon: usize, step: usize) -> Vec<Vector<T>> {
    hover::<T>(nx, horizon, step)
}

/// Straight-line docking approach for the satellite-rendezvous
/// scenario: the radial offset decays linearly from `start` to zero
/// over `approach_steps` rollout steps, then holds station at the
/// target. Velocity references are left at zero (the terminal state is
/// a dock, not a fly-by).
pub fn approach<T: Scalar>(
    nx: usize,
    horizon: usize,
    step: usize,
    start: f64,
    approach_steps: usize,
) -> Vec<Vector<T>> {
    (0..horizon)
        .map(|k| {
            let t = step + k;
            let frac = if t >= approach_steps {
                0.0
            } else {
                1.0 - t as f64 / approach_steps as f64
            };
            let mut r = Vector::zeros(nx);
            r[0] = T::from_f64(start * frac);
            r
        })
        .collect()
}

/// Powered-descent profile for the rocket soft-landing scenario:
/// altitude (state 2) descends linearly from `alt` to zero over
/// `descent_steps` steps with the matching constant vertical-velocity
/// reference (state 5), then holds at touchdown with zero velocity.
pub fn descent<T: Scalar>(
    nx: usize,
    horizon: usize,
    step: usize,
    alt: f64,
    descent_steps: usize,
    dt: f64,
) -> Vec<Vector<T>> {
    assert!(nx >= 6, "descent reference needs nx >= 6, got {nx}");
    let sink_rate = -alt / (descent_steps as f64 * dt);
    (0..horizon)
        .map(|k| {
            let t = step + k;
            let mut r = Vector::zeros(nx);
            if t < descent_steps {
                r[2] = T::from_f64(alt * (1.0 - t as f64 / descent_steps as f64));
                r[5] = T::from_f64(sink_rate);
            }
            r
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_shift_consistently() {
        // The window at step k+1 must equal the window at step k shifted
        // by one entry — the receding-horizon invariant.
        let w0 = figure8::<f64>(12, 10, 0, 0.01);
        let w1 = figure8::<f64>(12, 10, 1, 0.01);
        for k in 0..9 {
            assert_eq!(w0[k + 1], w1[k], "figure8 window mismatch at {k}");
        }
        let s0 = slalom::<f64>(4, 8, 3, 0.5, 5);
        let s1 = slalom::<f64>(4, 8, 4, 0.5, 5);
        for k in 0..7 {
            assert_eq!(s0[k + 1], s1[k], "slalom window mismatch at {k}");
        }
        let d0 = descent::<f64>(6, 8, 10, 50.0, 80, 0.1);
        let d1 = descent::<f64>(6, 8, 11, 50.0, 80, 0.1);
        for k in 0..7 {
            assert_eq!(d0[k + 1], d1[k], "descent window mismatch at {k}");
        }
    }

    #[test]
    fn hover_is_all_zeros() {
        for r in hover::<f32>(12, 10, 7) {
            assert!(r.as_slice().iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn figure8_velocity_matches_position_derivative() {
        let dt = 1e-4;
        let w = figure8::<f64>(12, 3, 0, dt);
        // Finite-difference check: (x(t+dt) − x(t))/dt ≈ vx(t).
        let fd = (w[1][0] - w[0][0]) / dt;
        assert!((fd - w[0][6]).abs() < 1e-3, "fd {fd} vs vx {}", w[0][6]);
    }

    #[test]
    fn approach_reaches_and_holds_the_target() {
        let w = approach::<f64>(6, 4, 100, 5.0, 60);
        for r in &w {
            assert_eq!(r[0], 0.0, "station-keeping after the approach");
        }
        let early = approach::<f64>(6, 1, 0, 5.0, 60);
        assert!((early[0][0] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn descent_ends_at_touchdown() {
        let w = descent::<f64>(6, 2, 80, 50.0, 80, 0.1);
        assert_eq!(w[0][2], 0.0);
        assert_eq!(w[0][5], 0.0);
        let mid = descent::<f64>(6, 1, 40, 50.0, 80, 0.1);
        assert!((mid[0][2] - 25.0).abs() < 1e-9);
        assert!(mid[0][5] < 0.0, "sinking while descending");
    }
}
