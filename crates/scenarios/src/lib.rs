//! # soc-scenarios — pluggable MPC workloads for the design-space sweep
//!
//! The hardware axis of the exploration is the back-end catalog; this
//! crate is the matching **workload axis**. A [`Scenario`] bundles:
//!
//! * a plant — a [`tinympc::TinyMpcProblem`] constructor over
//!   dimensions and horizon (quadrotor, Clohessy–Wiltshire rendezvous,
//!   rocket soft-landing with a second-order thrust cone, …);
//! * a reference-trajectory generator (hover, figure-8, waypoint
//!   slalom, disturbance rejection, docking approach, powered descent);
//! * a characteristic initial state; and
//! * a closed-loop evaluation harness ([`evaluate_closed_loop`]) that
//!   rolls the plant forward under the solved `u0` and reports RMS/max
//!   tracking error next to the cycle/area/energy numbers.
//!
//! The [`ScenarioCatalog`] mirrors the back-end catalog: ordered
//! registration, duplicate rejection, case-insensitive lookup. The
//! `hover` scenario is the compatibility default — its plant, zero
//! reference and initial state are exactly the legacy hover-only solve
//! path, so hover sweeps stay bit-identical to pre-scenario reports.
//!
//! Because every back-end computes bit-identical math (executors are
//! timing oracles), closed-loop quality is a property of the scenario ×
//! horizon pair alone; sweeps compute it once and print it for the
//! whole back-end grid.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod closed_loop;
pub mod reference;
mod scenario;

pub use closed_loop::{evaluate_closed_loop, ClosedLoopReport};
pub use scenario::{Scenario, ScenarioCatalog};
