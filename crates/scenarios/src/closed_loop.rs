//! Closed-loop evaluation: roll the plant forward under the solver's
//! `u0` and measure tracking quality.
//!
//! This is the *control-quality* side of the DSE scoreboard — cycles,
//! area and energy say how fast a back-end iterates; the closed-loop
//! tracking error says whether the resulting controller actually flies
//! the trajectory. Because every back-end computes bit-identical math
//! (the executor is a timing oracle), the closed-loop numbers are a
//! property of the *scenario × horizon* pair alone, so sweeps compute
//! them once and print them next to every back-end's cycle counts.

use crate::Scenario;
use matlib::Scalar;
use tinympc::{AdmmSolver, NullExecutor, SolverSettings};

/// Result of a closed-loop rollout.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedLoopReport {
    /// Plant steps simulated.
    pub steps: usize,
    /// Root-mean-square tracking error over the rollout, measured on
    /// the scenario's [`Scenario::tracked_states`] (the commanded
    /// position coordinates).
    pub rms_error: f64,
    /// Worst-case tracking error over the rollout.
    pub max_error: f64,
    /// Tracking error at the final rollout step (how well the run
    /// *ends*, e.g. touchdown accuracy for the soft landing).
    pub final_error: f64,
    /// How many of the `steps` MPC solves converged within the
    /// iteration budget (the rest hit max-iterations but still produce
    /// a usable input — standard embedded-MPC practice).
    pub converged_steps: usize,
    /// Mean ADMM iterations per solve.
    pub mean_iterations: f64,
    /// Minimum second-order-cone feasibility margin of any applied
    /// `u0`, if the scenario has cone constraints (non-negative means
    /// every applied thrust stayed inside the cone).
    pub min_cone_margin: Option<f64>,
}

impl ClosedLoopReport {
    /// Compact `rms/max` rendering used in sweep reports.
    pub fn render_errors(&self) -> String {
        format!("{:.4} / {:.4}", self.rms_error, self.max_error)
    }
}

/// Rolls the scenario's plant forward for [`Scenario::rollout_steps`]
/// steps under receding-horizon MPC and reports tracking statistics.
///
/// Each step re-targets the solver at the scenario's reference window,
/// solves from the current state (warm-started, as on a real embedded
/// controller), applies `u0` to the plant, and measures the achieved
/// state against the reference for that instant.
///
/// # Errors
///
/// Propagates solver construction/solve errors (bad problem, non-finite
/// data).
pub fn evaluate_closed_loop<T: Scalar>(
    scenario: &Scenario,
    horizon: usize,
    settings: SolverSettings,
) -> tinympc::Result<ClosedLoopReport> {
    let problem = scenario.problem::<T>(horizon)?;
    let a = problem.a.clone();
    let b = problem.b.clone();
    let cones = problem.input_cones.clone();
    let mut solver = AdmmSolver::new(problem, settings)?;
    let mut x = scenario.initial_state::<T>();
    // Plant-update scratch, allocated once: the per-step loop below runs
    // solve_in_place + gemv_into and stays allocation-free.
    let mut ax = vec![T::ZERO; x.len()];
    let mut bu = vec![T::ZERO; x.len()];

    let steps = scenario.rollout_steps();
    let tracked = scenario.tracked_states();
    let mut sum_sq = 0.0;
    let mut max_error: f64 = 0.0;
    let mut final_error = 0.0;
    let mut converged_steps = 0;
    let mut total_iterations = 0usize;
    let mut min_cone_margin: Option<f64> = None;

    for step in 0..steps {
        solver.set_reference(&scenario.reference::<T>(horizon, step))?;
        let status = solver.solve_in_place(x.as_slice(), &mut NullExecutor)?;
        if status.converged {
            converged_steps += 1;
        }
        total_iterations += status.iterations;
        for cone in &cones {
            let margin = cone.margin(solver.u0());
            min_cone_margin = Some(min_cone_margin.map_or(margin, |m: f64| m.min(margin)));
        }

        // Plant update: x⁺ = A x + B u₀.
        matlib::gemv_into(&a, x.as_slice(), &mut ax)?;
        matlib::gemv_into(&b, solver.u0(), &mut bu)?;
        matlib::add_into(&ax, &bu, x.as_mut_slice())?;

        // Achieved state corresponds to time step+1; compare against
        // the reference for that instant, over the tracked coordinates.
        let target = scenario.reference::<T>(1, step + 1).remove(0);
        let error = tracked
            .iter()
            .map(|&i| (x[i] - target[i]).to_f64().powi(2))
            .sum::<f64>()
            .sqrt();
        sum_sq += error * error;
        max_error = max_error.max(error);
        final_error = error;
    }

    Ok(ClosedLoopReport {
        steps,
        rms_error: (sum_sq / steps.max(1) as f64).sqrt(),
        max_error,
        final_error,
        converged_steps,
        mean_iterations: total_iterations as f64 / steps.max(1) as f64,
        min_cone_margin,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScenarioCatalog;

    #[test]
    fn hover_error_decays_monotonically_in_aggregate() {
        let report =
            evaluate_closed_loop::<f64>(&Scenario::hover(), 10, SolverSettings::default()).unwrap();
        assert_eq!(report.steps, 40);
        // The 0.2 m offset must shrink over the rollout: no overshoot
        // beyond the initial error, and the run ends closer than it
        // started (the Crazyflie position loop is slow at dt = 10 ms,
        // so we assert decay, not arrival).
        assert!(report.max_error <= 0.2 + 1e-9, "max {}", report.max_error);
        assert!(report.final_error < 0.16, "final {}", report.final_error);
        assert!(report.rms_error < 0.2, "rms {}", report.rms_error);
        assert!(report.min_cone_margin.is_none(), "hover has no cones");
    }

    #[test]
    fn every_catalog_scenario_stays_bounded() {
        for scenario in ScenarioCatalog::standard().scenarios() {
            let report = evaluate_closed_loop::<f64>(
                scenario,
                scenario.default_horizon(),
                SolverSettings::default(),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", scenario.name()));
            assert!(
                report.rms_error.is_finite() && report.max_error < 100.0,
                "{} diverged: {:?}",
                scenario.name(),
                report
            );
            assert!(report.mean_iterations >= 1.0);
        }
    }

    #[test]
    fn soft_landing_keeps_thrust_inside_the_cone() {
        let report =
            evaluate_closed_loop::<f64>(&Scenario::soft_landing(), 10, SolverSettings::default())
                .unwrap();
        let margin = report.min_cone_margin.expect("SOC scenario");
        assert!(margin >= -1e-6, "applied thrust left the cone: {margin}");
    }

    #[test]
    fn rollout_is_deterministic() {
        let a = evaluate_closed_loop::<f32>(&Scenario::figure8(), 8, SolverSettings::default())
            .unwrap();
        let b = evaluate_closed_loop::<f32>(&Scenario::figure8(), 8, SolverSettings::default())
            .unwrap();
        assert_eq!(a, b);
    }
}
