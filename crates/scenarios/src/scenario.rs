//! The [`Scenario`] type and the [`ScenarioCatalog`] registry.

use crate::reference;
use matlib::rng::SplitMix64;
use matlib::{Matrix, Scalar, Vector};
use tinympc::{problems, TinyMpcProblem};

/// A pluggable MPC workload: a plant constructor, a reference-trajectory
/// generator, a characteristic initial state, and closed-loop rollout
/// parameters. Scenarios are the workload axis of the design-space
/// exploration, mirroring how `Platform` is the hardware axis.
///
/// Construct the registered scenarios with the associated functions
/// ([`Scenario::hover`], [`Scenario::figure8`], …) or look them up by
/// name in a [`ScenarioCatalog`].
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    name: &'static str,
    title: String,
    kind: ScenarioKind,
    default_horizon: usize,
    rollout_steps: usize,
}

/// What plant/reference/initial-state family a scenario draws from.
/// Private on purpose: call sites select scenarios by name, never by
/// matching on the kind, so new scenarios don't ripple through them.
#[derive(Debug, Clone, PartialEq)]
enum ScenarioKind {
    Hover,
    Figure8,
    Slalom,
    Disturbance,
    Rendezvous,
    SoftLanding,
    DoubleIntegrator,
    RandomStable { nx: usize, nu: usize, seed: u64 },
}

/// Plant time step of the quadrotor scenarios (s).
const QUAD_DT: f64 = 0.01;
/// Rendezvous approach: initial radial offset (m) and steps to dock.
const APPROACH_START: f64 = 8.0;
const APPROACH_STEPS: usize = 60;
/// Soft landing: initial altitude (m), descent steps, plant dt (s).
const DESCENT_ALT: f64 = 50.0;
const DESCENT_STEPS: usize = 80;
const DESCENT_DT: f64 = 0.1;

impl Scenario {
    /// Quadrotor hover regulation — the compatibility default. Zero
    /// reference and a 0.2 m radial offset, bit-identical to the legacy
    /// hover-only solve path.
    pub fn hover() -> Self {
        Self {
            name: "hover",
            title: "Quadrotor hover regulation (12x4, compat default)".to_string(),
            kind: ScenarioKind::Hover,
            default_horizon: 10,
            rollout_steps: 40,
        }
    }

    /// Quadrotor figure-8 tracking: lemniscate position + analytic
    /// velocity references, started on-trajectory.
    pub fn figure8() -> Self {
        Self {
            name: "figure8",
            title: "Quadrotor figure-8 tracking (12x4, lemniscate)".to_string(),
            kind: ScenarioKind::Figure8,
            default_horizon: 10,
            rollout_steps: 100,
        }
    }

    /// Quadrotor waypoint slalom: square-wave setpoint switching that
    /// saturates the input box at every transition.
    pub fn slalom() -> Self {
        Self {
            name: "slalom",
            title: "Quadrotor waypoint slalom (12x4, saturating setpoints)".to_string(),
            kind: ScenarioKind::Slalom,
            default_horizon: 10,
            rollout_steps: 120,
        }
    }

    /// Quadrotor disturbance rejection: regulate to hover from a large
    /// combined position/velocity perturbation.
    pub fn disturbance() -> Self {
        Self {
            name: "disturbance",
            title: "Quadrotor disturbance rejection (12x4, gust recovery)".to_string(),
            kind: ScenarioKind::Disturbance,
            default_horizon: 10,
            rollout_steps: 60,
        }
    }

    /// Satellite rendezvous under Clohessy–Wiltshire dynamics with
    /// docking safety limits (the state box).
    pub fn rendezvous() -> Self {
        Self {
            name: "rendezvous",
            title: "Satellite rendezvous (6x3, Clohessy-Wiltshire docking)".to_string(),
            kind: ScenarioKind::Rendezvous,
            default_horizon: 10,
            rollout_steps: 80,
        }
    }

    /// Rocket soft-landing with a second-order thrust cone
    /// (Conic-TinyMPC): powered descent to touchdown.
    pub fn soft_landing() -> Self {
        Self {
            name: "soft-landing",
            title: "Rocket soft-landing (6x3, SOC thrust cone)".to_string(),
            kind: ScenarioKind::SoftLanding,
            default_horizon: 10,
            rollout_steps: 100,
        }
    }

    /// Double integrator regulation — the smallest catalog entry, used
    /// by smoke tests and CI gates.
    pub fn double_integrator() -> Self {
        Self {
            name: "double-integrator",
            title: "Double integrator regulation (2x1, smoke-test size)".to_string(),
            kind: ScenarioKind::DoubleIntegrator,
            default_horizon: 10,
            rollout_steps: 60,
        }
    }

    /// A member of the SplitMix64-seeded random stable plant family:
    /// a Gershgorin-stable contraction with random controllable input
    /// directions, deterministic in `(nx, nu, seed)`. Not in the
    /// standard catalog; used by property tests and fuzzing.
    pub fn random_stable_plant(nx: usize, nu: usize, seed: u64) -> Self {
        Self {
            name: "random",
            title: format!("Random stable plant ({nx}x{nu}, seed {seed})"),
            kind: ScenarioKind::RandomStable { nx, nu, seed },
            default_horizon: 10,
            rollout_steps: 40,
        }
    }

    /// CLI-facing name (also the lookup key in [`ScenarioCatalog`]).
    pub fn name(&self) -> &str {
        self.name
    }

    /// One-line human description for catalog listings.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Horizon used when the caller does not specify one.
    pub fn default_horizon(&self) -> usize {
        self.default_horizon
    }

    /// Closed-loop rollout length (plant steps) used by
    /// [`crate::evaluate_closed_loop`].
    pub fn rollout_steps(&self) -> usize {
        self.rollout_steps
    }

    /// State/input dimensions of the scenario's plant.
    pub fn dims(&self) -> (usize, usize) {
        match &self.kind {
            ScenarioKind::Hover
            | ScenarioKind::Figure8
            | ScenarioKind::Slalom
            | ScenarioKind::Disturbance => (12, 4),
            ScenarioKind::Rendezvous | ScenarioKind::SoftLanding => (6, 3),
            ScenarioKind::DoubleIntegrator => (2, 1),
            ScenarioKind::RandomStable { nx, nu, .. } => (*nx, *nu),
        }
    }

    /// Constructs the scenario's plant at the given horizon.
    ///
    /// # Errors
    ///
    /// Propagates [`tinympc::Error::BadProblem`] for a horizon below 2.
    pub fn problem<T: Scalar>(&self, horizon: usize) -> tinympc::Result<TinyMpcProblem<T>> {
        match &self.kind {
            ScenarioKind::Hover
            | ScenarioKind::Figure8
            | ScenarioKind::Slalom
            | ScenarioKind::Disturbance => problems::quadrotor_hover(horizon),
            ScenarioKind::Rendezvous => problems::satellite_rendezvous(horizon),
            ScenarioKind::SoftLanding => problems::rocket_soft_landing(horizon),
            ScenarioKind::DoubleIntegrator => problems::double_integrator(horizon),
            ScenarioKind::RandomStable { nx, nu, seed } => random_plant(*nx, *nu, horizon, *seed),
        }
    }

    /// The reference window `[r(step), …, r(step + horizon − 1)]` for a
    /// receding-horizon controller at rollout step `step`.
    pub fn reference<T: Scalar>(&self, horizon: usize, step: usize) -> Vec<Vector<T>> {
        let (nx, _) = self.dims();
        match &self.kind {
            ScenarioKind::Hover | ScenarioKind::Disturbance => reference::hover(nx, horizon, step),
            ScenarioKind::Figure8 => reference::figure8(nx, horizon, step, QUAD_DT),
            ScenarioKind::Slalom => reference::slalom(nx, horizon, step, 0.5, 30),
            ScenarioKind::Rendezvous => {
                reference::approach(nx, horizon, step, APPROACH_START, APPROACH_STEPS)
            }
            ScenarioKind::SoftLanding => {
                reference::descent(nx, horizon, step, DESCENT_ALT, DESCENT_STEPS, DESCENT_DT)
            }
            ScenarioKind::DoubleIntegrator | ScenarioKind::RandomStable { .. } => {
                reference::hover(nx, horizon, step)
            }
        }
    }

    /// The characteristic initial state the scenario starts from.
    pub fn initial_state<T: Scalar>(&self) -> Vector<T> {
        let (nx, _) = self.dims();
        let mut x = Vector::zeros(nx);
        match &self.kind {
            ScenarioKind::Hover => x[0] = T::from_f64(0.2),
            ScenarioKind::Figure8 => {
                // Start exactly on the trajectory.
                return self.reference::<T>(1, 0).remove(0);
            }
            ScenarioKind::Slalom => {}
            ScenarioKind::Disturbance => {
                x[0] = T::from_f64(0.3); // blown 0.3 m off station…
                x[6] = T::from_f64(-0.5); // …while still moving backwards
            }
            ScenarioKind::Rendezvous => {
                x[0] = T::from_f64(APPROACH_START);
                x[1] = T::from_f64(1.0);
                x[2] = T::from_f64(-1.0);
            }
            ScenarioKind::SoftLanding => {
                x[2] = T::from_f64(DESCENT_ALT);
                x[5] = T::from_f64(-DESCENT_ALT / (DESCENT_STEPS as f64 * DESCENT_DT));
            }
            ScenarioKind::DoubleIntegrator => x[0] = T::from_f64(1.0),
            ScenarioKind::RandomStable { seed, .. } => {
                let mut rng = SplitMix64::new(seed ^ 0x5EED_1234);
                for i in 0..nx {
                    x[i] = T::from_f64(0.6 * (rng.unit_f64() - 0.5));
                }
            }
        }
        x
    }

    /// The state indices tracking error is measured over: the position
    /// coordinates the reference commands. Velocity/attitude transients
    /// are real controller behavior, not tracking failure, so they stay
    /// out of the error norm.
    pub fn tracked_states(&self) -> Vec<usize> {
        match &self.kind {
            ScenarioKind::Hover
            | ScenarioKind::Figure8
            | ScenarioKind::Slalom
            | ScenarioKind::Disturbance
            | ScenarioKind::Rendezvous
            | ScenarioKind::SoftLanding => vec![0, 1, 2],
            ScenarioKind::DoubleIntegrator => vec![0],
            ScenarioKind::RandomStable { nx, .. } => (0..*nx).collect(),
        }
    }

    /// Stable serialization for sweep cache keys: every field that
    /// affects the solve is spelled out, nothing else.
    pub fn cache_id(&self) -> String {
        match &self.kind {
            ScenarioKind::RandomStable { nx, nu, seed } => {
                format!("random(nx={nx},nu={nu},seed={seed})")
            }
            _ => self.name.to_string(),
        }
    }
}

/// SplitMix64-seeded random stable plant: strictly diagonally-dominant
/// contraction (Gershgorin-stable for every seed) with random input
/// directions — the scenarios-crate counterpart of
/// [`problems::random_stable`], reseeded through the shared PRNG.
fn random_plant<T: Scalar>(
    nx: usize,
    nu: usize,
    horizon: usize,
    seed: u64,
) -> tinympc::Result<TinyMpcProblem<T>> {
    let mut rng = SplitMix64::new(seed);
    let mut sym = move || rng.unit_f64() * 2.0 - 1.0;
    let off_scale = 0.08 / nx.max(1) as f64;
    let mut a = Matrix::<T>::zeros(nx, nx);
    for r in 0..nx {
        for c in 0..nx {
            let v = if r == c { 0.9 } else { off_scale * sym() };
            a[(r, c)] = T::from_f64(v);
        }
    }
    let b = Matrix::from_fn(nx, nu, |_, _| T::from_f64(0.5 * sym()));
    let problem = TinyMpcProblem {
        a,
        b,
        q_diag: Vector::from_fn(nx, |_| T::from_f64(1.0 + sym().abs())),
        r_diag: Vector::from_fn(nu, |_| T::from_f64(0.5 + sym().abs())),
        horizon,
        rho: T::ONE,
        u_min: T::from_f64(-5.0),
        u_max: T::from_f64(5.0),
        x_min: T::from_f64(-100.0),
        x_max: T::from_f64(100.0),
        input_cones: Vec::new(),
    };
    problem.validate()?;
    Ok(problem)
}

/// An ordered registry of scenarios, mirroring the back-end catalog:
/// registration rejects duplicate names, lookup is case-insensitive,
/// iteration order is registration order (so reports are stable).
#[derive(Debug, Default)]
pub struct ScenarioCatalog {
    scenarios: Vec<Scenario>,
}

impl ScenarioCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// The standard catalog: every shipped scenario, hover first (it is
    /// the compatibility default the legacy hover-only paths map onto).
    pub fn standard() -> Self {
        let mut catalog = Self::new();
        for scenario in [
            Scenario::hover(),
            Scenario::figure8(),
            Scenario::slalom(),
            Scenario::disturbance(),
            Scenario::rendezvous(),
            Scenario::soft_landing(),
            Scenario::double_integrator(),
        ] {
            catalog
                .register(scenario)
                .expect("standard catalog has no duplicates");
        }
        catalog
    }

    /// Registers a scenario.
    ///
    /// # Errors
    ///
    /// Rejects a scenario whose name collides (case-insensitively) with
    /// an already-registered one.
    pub fn register(&mut self, scenario: Scenario) -> Result<(), String> {
        if self
            .scenarios
            .iter()
            .any(|s| s.name().eq_ignore_ascii_case(scenario.name()))
        {
            return Err(format!(
                "scenario name '{}' is already registered",
                scenario.name()
            ));
        }
        self.scenarios.push(scenario);
        Ok(())
    }

    /// All registered scenarios, in registration order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Consumes the catalog, returning the scenarios.
    pub fn into_scenarios(self) -> Vec<Scenario> {
        self.scenarios
    }

    /// Case-insensitive lookup by name.
    pub fn find(&self, name: &str) -> Option<&Scenario> {
        self.scenarios
            .iter()
            .find(|s| s.name().eq_ignore_ascii_case(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalog_contents() {
        let catalog = ScenarioCatalog::standard();
        let names: Vec<&str> = catalog.scenarios().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "hover",
                "figure8",
                "slalom",
                "disturbance",
                "rendezvous",
                "soft-landing",
                "double-integrator"
            ]
        );
        assert_eq!(catalog.scenarios()[0].name(), "hover", "hover is default");
    }

    #[test]
    fn find_is_case_insensitive() {
        let catalog = ScenarioCatalog::standard();
        assert!(catalog.find("Figure8").is_some());
        assert!(catalog.find("SOFT-LANDING").is_some());
        assert!(catalog.find("warp-drive").is_none());
    }

    #[test]
    fn register_rejects_duplicates() {
        let mut catalog = ScenarioCatalog::standard();
        assert!(catalog.register(Scenario::hover()).is_err());
    }

    #[test]
    fn every_scenario_builds_a_valid_problem() {
        for scenario in ScenarioCatalog::standard().scenarios() {
            let p = scenario
                .problem::<f64>(scenario.default_horizon())
                .unwrap_or_else(|e| panic!("{}: {e}", scenario.name()));
            assert_eq!((p.dims().nx, p.dims().nu), scenario.dims());
            let x0 = scenario.initial_state::<f64>();
            assert_eq!(x0.len(), p.dims().nx);
            let xref = scenario.reference::<f64>(p.horizon, 0);
            assert_eq!(xref.len(), p.horizon);
        }
    }

    #[test]
    fn hover_matches_the_legacy_solve_path() {
        // The compat contract: hover's problem, reference and initial
        // state must be exactly what the legacy hover-only path used —
        // quadrotor_hover, an all-zero (workspace-default) reference,
        // and hover_offset_state(0.2).
        let scenario = Scenario::hover();
        let p = scenario.problem::<f32>(10).unwrap();
        let legacy = problems::quadrotor_hover::<f32>(10).unwrap();
        assert_eq!(p.a, legacy.a);
        assert_eq!(p.b, legacy.b);
        assert_eq!(
            scenario.initial_state::<f32>(),
            legacy.hover_offset_state(0.2)
        );
        for r in scenario.reference::<f32>(10, 3) {
            assert!(r.as_slice().iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn soft_landing_is_the_soc_scenario() {
        let p = Scenario::soft_landing().problem::<f64>(10).unwrap();
        assert_eq!(p.input_cones.len(), 1);
    }

    #[test]
    fn random_family_is_deterministic_in_seed() {
        let a = Scenario::random_stable_plant(6, 2, 42);
        let b = Scenario::random_stable_plant(6, 2, 42);
        assert_eq!(
            a.problem::<f64>(10).unwrap().a,
            b.problem::<f64>(10).unwrap().a
        );
        assert_eq!(a.initial_state::<f64>(), b.initial_state::<f64>());
        let c = Scenario::random_stable_plant(6, 2, 43);
        assert!(
            a.problem::<f64>(10)
                .unwrap()
                .a
                .max_abs_diff(&c.problem::<f64>(10).unwrap().a)
                .unwrap()
                > 0.0
        );
        assert_eq!(a.cache_id(), "random(nx=6,nu=2,seed=42)");
    }

    #[test]
    fn cache_ids_are_unique_across_the_catalog() {
        let catalog = ScenarioCatalog::standard();
        let mut ids: Vec<String> = catalog.scenarios().iter().map(|s| s.cache_id()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), catalog.scenarios().len());
    }
}
