//! Host-performance benchmarks of the `matlib` linear-algebra kernels at
//! the operand sizes the workload exercises (order 10) and at sweep sizes.
//!
//! Plain self-timed harness (no external bench framework): run with
//! `cargo bench -p soc-bench --bench matlib_perf`.

use matlib::{dare, gemm, gemv, Cholesky, DareOptions, Matrix, Vector};
use std::hint::black_box;
use std::time::Instant;

/// Times `f` over enough iterations to be stable and prints ns/iter.
fn bench(name: &str, mut f: impl FnMut()) {
    // Warm up, then measure.
    for _ in 0..10 {
        f();
    }
    let iters = 200u32;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per_iter = start.elapsed().as_nanos() / iters as u128;
    println!("{name:<28} {per_iter:>10} ns/iter");
}

fn mat(n: usize, m: usize, seed: u64) -> Matrix<f64> {
    Matrix::from_fn(n, m, |r, c| {
        (((seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add((r * 31 + c) as u64))
            >> 33)
            % 100) as f64
            / 50.0
            - 1.0
    })
}

fn bench_gemv() {
    for &(i, k) in &[(12usize, 4usize), (12, 12), (64, 64)] {
        let a = mat(i, k, 1);
        let x = Vector::from_fn(k, |j| j as f64 * 0.1);
        bench(&format!("gemv/{i}x{k}"), || {
            black_box(gemv(black_box(&a), black_box(&x)).unwrap());
        });
    }
}

fn bench_gemm() {
    for &n in &[4usize, 12, 64] {
        let a = mat(n, n, 2);
        let b_m = mat(n, n, 3);
        bench(&format!("gemm/{n}x{n}x{n}"), || {
            black_box(gemm(black_box(&a), black_box(&b_m)).unwrap());
        });
    }
}

fn bench_cholesky() {
    let m = mat(12, 12, 4);
    let spd = m
        .matmul(&m.transpose())
        .unwrap()
        .add(&Matrix::from_diagonal(&[12.0; 12]))
        .unwrap();
    bench("cholesky_12x12", || {
        black_box(Cholesky::new(black_box(&spd)).unwrap());
    });
}

fn bench_dare() {
    let p = tinympc::problems::quadrotor_hover::<f64>(10).unwrap();
    let nx = 12;
    let q = Matrix::from_fn(
        nx,
        nx,
        |r, cc| if r == cc { p.q_diag[r] + 1.0 } else { 0.0 },
    );
    let r = Matrix::from_fn(
        4,
        4,
        |rr, cc| if rr == cc { p.r_diag[rr] + 1.0 } else { 0.0 },
    );
    bench("dare_quadrotor", || {
        black_box(
            dare(
                black_box(&p.a),
                black_box(&p.b),
                &q,
                &r,
                DareOptions::default(),
            )
            .unwrap(),
        );
    });
}

fn main() {
    bench_gemv();
    bench_gemm();
    bench_cholesky();
    bench_dare();
}
