//! Host-performance benchmarks of the `matlib` linear-algebra kernels at
//! the operand sizes the workload exercises (order 10) and at sweep sizes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use matlib::{dare, gemm, gemv, Cholesky, DareOptions, Matrix, Vector};

fn mat(n: usize, m: usize, seed: u64) -> Matrix<f64> {
    Matrix::from_fn(n, m, |r, c| {
        (((seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add((r * 31 + c) as u64))
            >> 33)
            % 100) as f64
            / 50.0
            - 1.0
    })
}

fn bench_gemv(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemv");
    for &(i, k) in &[(12usize, 4usize), (12, 12), (64, 64)] {
        let a = mat(i, k, 1);
        let x = Vector::from_fn(k, |j| j as f64 * 0.1);
        g.bench_function(format!("{i}x{k}"), |b| {
            b.iter(|| gemv(black_box(&a), black_box(&x)).unwrap())
        });
    }
    g.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    for &n in &[4usize, 12, 64] {
        let a = mat(n, n, 2);
        let b_m = mat(n, n, 3);
        g.bench_function(format!("{n}x{n}x{n}"), |b| {
            b.iter(|| gemm(black_box(&a), black_box(&b_m)).unwrap())
        });
    }
    g.finish();
}

fn bench_cholesky(c: &mut Criterion) {
    let m = mat(12, 12, 4);
    let spd = m
        .matmul(&m.transpose())
        .unwrap()
        .add(&Matrix::from_diagonal(&[12.0; 12]))
        .unwrap();
    c.bench_function("cholesky_12x12", |b| {
        b.iter(|| Cholesky::new(black_box(&spd)).unwrap())
    });
}

fn bench_dare(c: &mut Criterion) {
    let p = tinympc::problems::quadrotor_hover::<f64>(10).unwrap();
    let nx = 12;
    let q = Matrix::from_fn(
        nx,
        nx,
        |r, cc| if r == cc { p.q_diag[r] + 1.0 } else { 0.0 },
    );
    let r = Matrix::from_fn(
        4,
        4,
        |rr, cc| if rr == cc { p.r_diag[rr] + 1.0 } else { 0.0 },
    );
    c.bench_function("dare_quadrotor", |b| {
        b.iter(|| {
            dare(
                black_box(&p.a),
                black_box(&p.b),
                &q,
                &r,
                DareOptions::default(),
            )
            .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gemv, bench_gemm, bench_cholesky, bench_dare
}
criterion_main!(benches);
