//! Host-performance benchmarks of the microarchitecture simulators
//! themselves: micro-ops replayed per second through each pipeline model.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use soc_cpu::{simulate_scalar, simulate_with_accel, CoreConfig, ScalarKernels, ScalarStyle};
use soc_gemmini::{GemminiConfig, GemminiKernels, GemminiOpts, GemminiUnit, MatId};
use soc_isa::TraceBuilder;
use soc_vector::{SaturnConfig, SaturnUnit, VectorKernels, VectorStyle};

fn scalar_trace() -> soc_isa::Trace {
    let mut b = TraceBuilder::new();
    let gen = ScalarKernels::new(ScalarStyle::Optimized);
    for _ in 0..50 {
        gen.gemv(&mut b, 12, 12);
    }
    b.finish()
}

fn bench_pipelines(c: &mut Criterion) {
    let trace = scalar_trace();
    let mut g = c.benchmark_group("pipeline_replay");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("inorder_rocket", |b| {
        b.iter(|| simulate_scalar(black_box(&CoreConfig::rocket()), black_box(&trace)))
    });
    g.bench_function("ooo_megaboom", |b| {
        b.iter(|| simulate_scalar(black_box(&CoreConfig::mega_boom()), black_box(&trace)))
    });
    g.finish();
}

fn bench_saturn(c: &mut Criterion) {
    let mut b = TraceBuilder::new();
    let gen = VectorKernels::new(SaturnConfig::v512d256(), VectorStyle::Fused, 1);
    for _ in 0..50 {
        gen.gemv(&mut b, 12, 12);
    }
    let trace = b.finish();
    let mut g = c.benchmark_group("pipeline_replay");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("saturn_v512d256", |bch| {
        bch.iter(|| {
            let mut unit = SaturnUnit::new(SaturnConfig::v512d256());
            simulate_with_accel(&CoreConfig::rocket(), black_box(&trace), &mut unit)
        })
    });
    g.finish();
}

fn bench_gemmini(c: &mut Criterion) {
    let cfg = GemminiConfig::os_4x4_32kb();
    let mut gen = GemminiKernels::new(cfg, GemminiOpts::optimized());
    let mut b = TraceBuilder::new();
    for i in 0..50 {
        gen.gemv(&mut b, 12, 12, MatId(0), MatId(1), MatId(100 + i));
    }
    let trace = b.finish();
    let mut g = c.benchmark_group("pipeline_replay");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("gemmini_os4x4", |bch| {
        bch.iter(|| {
            let mut unit = GemminiUnit::new(cfg);
            simulate_with_accel(&CoreConfig::rocket(), black_box(&trace), &mut unit)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pipelines, bench_saturn, bench_gemmini
}
criterion_main!(benches);
