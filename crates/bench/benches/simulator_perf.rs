//! Host-performance benchmarks of the microarchitecture simulators
//! themselves: micro-ops replayed per second through each pipeline model.
//!
//! Plain self-timed harness (no external bench framework): run with
//! `cargo bench -p soc-bench --bench simulator_perf`.

use soc_cpu::{simulate_scalar, simulate_with_accel, CoreConfig, ScalarKernels, ScalarStyle};
use soc_gemmini::{GemminiConfig, GemminiKernels, GemminiOpts, GemminiUnit, MatId};
use soc_isa::TraceBuilder;
use soc_vector::{SaturnConfig, SaturnUnit, VectorKernels, VectorStyle};
use std::hint::black_box;
use std::time::Instant;

/// Times `f` and prints ns/iter plus micro-ops replayed per second.
fn bench(name: &str, ops: u64, mut f: impl FnMut()) {
    for _ in 0..5 {
        f();
    }
    let iters = 50u32;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = start.elapsed();
    let per_iter = elapsed.as_nanos() / iters as u128;
    let mops = ops as f64 * iters as f64 / elapsed.as_secs_f64() / 1e6;
    println!("{name:<24} {per_iter:>10} ns/iter  {mops:>8.1} Mop/s");
}

fn scalar_trace() -> soc_isa::Trace {
    let mut b = TraceBuilder::new();
    let gen = ScalarKernels::new(ScalarStyle::Optimized);
    for _ in 0..50 {
        gen.gemv(&mut b, 12, 12);
    }
    b.finish()
}

fn bench_pipelines() {
    let trace = scalar_trace();
    let n = trace.len() as u64;
    bench("inorder_rocket", n, || {
        black_box(simulate_scalar(
            black_box(&CoreConfig::rocket()),
            black_box(&trace),
        ));
    });
    bench("ooo_megaboom", n, || {
        black_box(simulate_scalar(
            black_box(&CoreConfig::mega_boom()),
            black_box(&trace),
        ));
    });
}

fn bench_saturn() {
    let mut b = TraceBuilder::new();
    let gen = VectorKernels::new(SaturnConfig::v512d256(), VectorStyle::Fused, 1);
    for _ in 0..50 {
        gen.gemv(&mut b, 12, 12);
    }
    let trace = b.finish();
    bench("saturn_v512d256", trace.len() as u64, || {
        let mut unit = SaturnUnit::new(SaturnConfig::v512d256());
        black_box(simulate_with_accel(
            &CoreConfig::rocket(),
            black_box(&trace),
            &mut unit,
        ));
    });
}

fn bench_gemmini() {
    let cfg = GemminiConfig::os_4x4_32kb();
    let mut gen = GemminiKernels::new(cfg, GemminiOpts::optimized());
    let mut b = TraceBuilder::new();
    for i in 0..50 {
        gen.gemv(&mut b, 12, 12, MatId(0), MatId(1), MatId(100 + i));
    }
    let trace = b.finish();
    bench("gemmini_os4x4", trace.len() as u64, || {
        let mut unit = GemminiUnit::new(cfg);
        black_box(simulate_with_accel(
            &CoreConfig::rocket(),
            black_box(&trace),
            &mut unit,
        ));
    });
}

fn main() {
    bench_pipelines();
    bench_saturn();
    bench_gemmini();
}
