//! Host-performance benchmarks of the TinyMPC solver: functional solves
//! and hardware-priced solves (executor memoization makes the latter
//! nearly as fast after warm-up).
//!
//! Plain self-timed harness (no external bench framework): run with
//! `cargo bench -p soc-bench --bench solver_perf`.

use soc_dse::platform::Platform;
use std::hint::black_box;
use std::time::Instant;
use tinympc::{problems, AdmmSolver, NullExecutor, SolverSettings};

/// Times `f` over a fixed iteration count and prints ns/iter.
fn bench(name: &str, mut f: impl FnMut()) {
    for _ in 0..3 {
        f();
    }
    let iters = 20u32;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per_iter = start.elapsed().as_nanos() / iters as u128;
    println!("{name:<32} {per_iter:>10} ns/iter");
}

fn bench_functional_solve() {
    for horizon in [10usize, 20] {
        let problem = problems::quadrotor_hover::<f32>(horizon).unwrap();
        let mut solver = AdmmSolver::new(problem, SolverSettings::default()).unwrap();
        let x0 = solver.problem().hover_offset_state(0.2);
        bench(&format!("admm_solve/quadrotor_f32_n{horizon}"), || {
            solver.cold_start();
            black_box(
                solver
                    .solve_in_place(x0.as_slice(), &mut NullExecutor)
                    .unwrap(),
            );
        });
    }
    let problem = problems::double_integrator::<f64>(20).unwrap();
    let mut solver = AdmmSolver::new(problem, SolverSettings::default()).unwrap();
    let x0 = matlib::Vector::from_slice(&[1.0, 0.0]);
    bench("admm_solve/double_integrator_f64_n20", || {
        solver.cold_start();
        black_box(
            solver
                .solve_in_place(x0.as_slice(), &mut NullExecutor)
                .unwrap(),
        );
    });
}

fn bench_priced_solve() {
    for platform in [
        Platform::rocket_eigen(),
        Platform::table1_registry().remove(9),
    ] {
        let problem = problems::quadrotor_hover::<f32>(10).unwrap();
        let mut solver = AdmmSolver::new(problem, SolverSettings::default()).unwrap();
        let x0 = solver.problem().hover_offset_state(0.2);
        // Warm the executor's per-kernel memo outside the loop.
        let mut executor = platform.executor();
        let _ = solver
            .solve_in_place(x0.as_slice(), executor.as_mut())
            .unwrap();
        bench(&format!("priced_solve/{}", platform.name), || {
            solver.cold_start();
            black_box(
                solver
                    .solve_in_place(x0.as_slice(), executor.as_mut())
                    .unwrap(),
            );
        });
    }
}

fn main() {
    bench_functional_solve();
    bench_priced_solve();
}
