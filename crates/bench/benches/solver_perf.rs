//! Host-performance benchmarks of the TinyMPC solver: functional solves
//! and hardware-priced solves (executor memoization makes the latter
//! nearly as fast after warm-up).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use soc_dse::platform::Platform;
use tinympc::{problems, AdmmSolver, NullExecutor, SolverSettings};

fn bench_functional_solve(c: &mut Criterion) {
    let mut g = c.benchmark_group("admm_solve");
    for horizon in [10usize, 20] {
        let problem = problems::quadrotor_hover::<f32>(horizon).unwrap();
        let mut solver = AdmmSolver::new(problem, SolverSettings::default()).unwrap();
        let x0 = solver.problem().hover_offset_state(0.2);
        g.bench_function(format!("quadrotor_f32_n{horizon}"), |b| {
            b.iter(|| {
                solver.cold_start();
                black_box(solver.solve(&x0, &mut NullExecutor).unwrap())
            })
        });
    }
    let problem = problems::double_integrator::<f64>(20).unwrap();
    let mut solver = AdmmSolver::new(problem, SolverSettings::default()).unwrap();
    let x0 = matlib::Vector::from_slice(&[1.0, 0.0]);
    g.bench_function("double_integrator_f64_n20", |b| {
        b.iter(|| {
            solver.cold_start();
            black_box(solver.solve(&x0, &mut NullExecutor).unwrap())
        })
    });
    g.finish();
}

fn bench_priced_solve(c: &mut Criterion) {
    let mut g = c.benchmark_group("priced_solve");
    for platform in [
        Platform::rocket_eigen(),
        Platform::table1_registry().remove(9),
    ] {
        let problem = problems::quadrotor_hover::<f32>(10).unwrap();
        let mut solver = AdmmSolver::new(problem, SolverSettings::default()).unwrap();
        let x0 = solver.problem().hover_offset_state(0.2);
        // Warm the executor's per-kernel memo outside the loop.
        let mut executor = platform.executor();
        let _ = solver.solve(&x0, executor.as_mut()).unwrap();
        g.bench_function(platform.name.clone(), |b| {
            b.iter(|| {
                solver.cold_start();
                black_box(solver.solve(&x0, executor.as_mut()).unwrap())
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_functional_solve, bench_priced_solve
}
criterion_main!(benches);
