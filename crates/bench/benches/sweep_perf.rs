//! Host-performance benchmarks of the sweep engine: cold vs warm passes
//! and shard-pool scaling on the smoke spec.
//!
//! Plain self-timed harness (no external bench framework): run with
//! `cargo bench -p soc-bench --bench sweep_perf`.

use soc_sweep::{run_sweep, SweepEngine, SweepSpec};
use std::hint::black_box;
use std::time::Instant;

fn time(name: &str, f: impl FnOnce() -> String) {
    let start = Instant::now();
    let report = f();
    println!(
        "{name:<36} {:>10.3} ms  ({} report bytes)",
        start.elapsed().as_secs_f64() * 1e3,
        report.len()
    );
    black_box(report);
}

fn main() {
    let spec = SweepSpec::smoke();
    println!(
        "sweep bench: spec `{}`, {} work items\n",
        spec.label,
        spec.work_items()
    );

    for jobs in [1usize, 2, 4, 8] {
        let engine = SweepEngine::in_memory(jobs);
        time(&format!("cold, jobs={jobs}"), || {
            run_sweep(&spec, &engine).unwrap().render()
        });
        time(&format!("warm (memory hits), jobs={jobs}"), || {
            run_sweep(&spec, &engine).unwrap().render()
        });
    }

    // Disk tier: cold write-through pass, then a fresh engine that can
    // only hit disk.
    let dir = std::env::temp_dir().join(format!("soc-sweep-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let writer = SweepEngine::with_cache_dir(4, &dir).unwrap();
    time("cold + disk write-through, jobs=4", || {
        run_sweep(&spec, &writer).unwrap().render()
    });
    let reader = SweepEngine::with_cache_dir(4, &dir).unwrap();
    time("warm from disk, jobs=4", || {
        run_sweep(&spec, &reader).unwrap().render()
    });
    assert_eq!(reader.stats().misses, 0, "disk tier must fully warm");
    let _ = std::fs::remove_dir_all(&dir);
}
