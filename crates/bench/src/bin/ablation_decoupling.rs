//! Decoupling-depth ablation: the paper's Figure 1 taxonomy separates
//! tightly-integrated (Saturn) from decoupled (Gemmini) designs. Both
//! hide latency through command queues; this ablation sweeps those
//! depths to show how much decoupling the MPC workload actually needs.

use soc_cpu::CoreConfig;
use soc_dse::experiments::solve_cycles;
use soc_dse::platform::{Backend, Platform};
use soc_dse::report::markdown_table;
use soc_gemmini::{GemminiConfig, GemminiOpts};
use soc_vector::{SaturnConfig, VectorStyle};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Saturn command-queue depth (V512D256, Rocket):\n");
    let mut rows = Vec::new();
    for depth in [1usize, 2, 4, 8, 16] {
        let mut cfg = SaturnConfig::v512d256();
        cfg.queue_depth = depth;
        let p = Platform {
            name: format!("queue depth {depth}"),
            core: CoreConfig::rocket(),
            backend: Backend::Saturn {
                config: cfg,
                style: VectorStyle::Fused,
                lmul: None,
            },
        };
        let o = solve_cycles(&p, 10)?;
        rows.push(vec![depth.to_string(), o.result.total_cycles.to_string()]);
    }
    println!(
        "{}",
        markdown_table(&["queue depth", "cycles/solve"], &rows)
    );

    println!("Gemmini reservation-station entries (OS 4x4, Rocket):\n");
    let mut rows = Vec::new();
    for entries in [2usize, 4, 8, 16, 32] {
        let mut cfg = GemminiConfig::os_4x4_32kb();
        cfg.rs_entries = entries;
        let p = Platform::gemmini(CoreConfig::rocket(), cfg, GemminiOpts::optimized());
        let o = solve_cycles(&p, 10)?;
        rows.push(vec![entries.to_string(), o.result.total_cycles.to_string()]);
    }
    println!("{}", markdown_table(&["RS entries", "cycles/solve"], &rows));
    println!(
        "Reading: a handful of in-flight commands suffices — the small MPC\nkernels never build deep command backlogs, so decoupling depth is cheap\nto provision and quickly saturates."
    );
    Ok(())
}
