//! Regenerates Figure 19: end-to-end TinyMPC comparison of Saturn vs
//! Gemmini at equal PE count (V512D512 vs 4x4 FP mesh, both Rocket-
//! driven), with per-kernel breakdown.

use soc_cpu::CoreConfig;
use soc_dse::experiments::{kernel_breakdown, solve_cycles};
use soc_dse::platform::Platform;
use soc_dse::report::markdown_table;
use soc_gemmini::{GemminiConfig, GemminiOpts};
use soc_vector::SaturnConfig;
use tinympc::KernelId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let saturn = Platform::saturn(CoreConfig::rocket(), SaturnConfig::v512d512());
    let gemmini = Platform::gemmini(
        CoreConfig::rocket(),
        GemminiConfig::os_4x4_32kb(),
        GemminiOpts::optimized(),
    );
    println!("Figure 19 — Saturn V512D512 vs Gemmini 4x4 (equal PEs, Rocket frontends)\n");
    let ks = kernel_breakdown(&saturn, 10)?;
    let kg = kernel_breakdown(&gemmini, 10)?;
    let rows: Vec<Vec<String>> = KernelId::ALL
        .iter()
        .map(|k| {
            let s = ks.get(k).copied().unwrap_or(0);
            let g = kg.get(k).copied().unwrap_or(0);
            let who = if s < g { "Saturn" } else { "Gemmini" };
            vec![
                k.to_string(),
                s.to_string(),
                g.to_string(),
                format!("{who} ({:.2}x)", s.max(1) as f64 / g.max(1) as f64),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "kernel",
                "Saturn cycles",
                "Gemmini cycles",
                "winner (Saturn/Gemmini ratio)"
            ],
            &rows
        )
    );
    let ts = solve_cycles(&saturn, 10)?.result.total_cycles;
    let tg = solve_cycles(&gemmini, 10)?.result.total_cycles;
    println!("End-to-end: Saturn {ts}, Gemmini {tg} cycles/solve.");
    println!("Expected shape: Saturn shows uniform speedups across kernel types;\nGemmini peaks on matrix-product passes, loses on reductions.");
    Ok(())
}
