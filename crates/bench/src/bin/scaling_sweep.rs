//! MPC scaling study (Section IV's claims): online cost grows linearly
//! with the horizon, while the state-space growth lands in the *offline*
//! Riccati cache computation — the TinyMPC memory/compute trade the paper
//! describes.

use soc_dse::experiments::solve_cycles;
use soc_dse::platform::Platform;
use soc_dse::report::markdown_table;
use std::time::Instant;
use tinympc::{problems, AdmmSolver, ProblemDims, SolverSettings};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Horizon scaling (quadrotor 12x4, Rocket, per-ADMM-iteration cycles):\n");
    let mut rows = Vec::new();
    let mut base = 0.0;
    for horizon in [5usize, 10, 20, 40] {
        let o = solve_cycles(&Platform::rocket_eigen(), horizon)?;
        let per_iter = o.cycles_per_iteration();
        if base == 0.0 {
            base = per_iter / horizon as f64;
        }
        rows.push(vec![
            horizon.to_string(),
            format!("{per_iter:.0}"),
            format!("{:.2}", per_iter / horizon as f64 / base),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "horizon N",
                "cycles/iteration",
                "normalized cycles/(iter*N)"
            ],
            &rows
        )
    );
    println!("Linear scaling: the normalized column stays ~1.\n");

    println!("State-dimension scaling of the offline cache (host wall-time):\n");
    let mut rows = Vec::new();
    for nx in [4usize, 8, 12, 16, 24] {
        let p = problems::random_stable::<f64>(nx, 4.min(nx), 10, 7)?;
        let t0 = Instant::now();
        let solver = AdmmSolver::new(p, SolverSettings::default())?;
        let dt = t0.elapsed();
        let dims: ProblemDims = solver.dims();
        rows.push(vec![
            dims.nx.to_string(),
            format!("{:.2} ms", dt.as_secs_f64() * 1e3),
            solver.cache().riccati_iterations.to_string(),
        ]);
    }
    println!(
        "{}",
        markdown_table(&["nx", "cache computation", "Riccati iterations"], &rows)
    );
    println!("The cubic-in-state Riccati work happens once, offline — the online\niteration stays matrix-vector shaped (the TinyMPC design point).");
    Ok(())
}
