//! The code-generation flow in action (the paper's future work): tune a
//! solver for three hardware targets, print the generated mapping reports,
//! and show the emitted listing of one kernel.

use soc_codegen::{tune, TuningSpace};
use soc_cpu::CoreConfig;
use soc_gemmini::GemminiConfig;
use soc_vector::SaturnConfig;
use tinympc::{KernelId, ProblemDims};

fn main() {
    let dims = ProblemDims {
        nx: 12,
        nu: 4,
        horizon: 10,
    };
    for space in [
        TuningSpace::scalar(CoreConfig::rocket()),
        TuningSpace::saturn(CoreConfig::rocket(), SaturnConfig::v512d256()),
        TuningSpace::gemmini(CoreConfig::rocket(), GemminiConfig::os_4x4_32kb()),
    ] {
        let tuned = tune(&space, &dims);
        println!("{}", tuned.report());
    }

    let tuned = tune(
        &TuningSpace::saturn(CoreConfig::rocket(), SaturnConfig::v512d256()),
        &dims,
    );
    println!(
        "Emitted listing for update_slack_1 on the Saturn target:\n{}",
        tuned.listing(KernelId::UpdateSlack1).unwrap_or("<none>")
    );
}
