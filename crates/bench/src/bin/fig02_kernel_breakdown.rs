//! Regenerates Figure 2: the kernel breakdown of TinyMPC — per-kernel
//! invocation counts, FLOPs, and the share of Rocket cycles per ADMM
//! iteration, grouped by the paper's three kernel classes.

use soc_dse::experiments::kernel_breakdown;
use soc_dse::platform::Platform;
use soc_dse::report::{bar_chart, markdown_table};
use tinympc::{KernelClass, KernelId, KernelProfile, ProblemDims};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dims = ProblemDims {
        nx: 12,
        nu: 4,
        horizon: 10,
    };
    let profile = KernelProfile::new(dims);

    println!("Figure 2 — kernel breakdown of TinyMPC (quadrotor 12x4, N=10)\n");
    let rows: Vec<Vec<String>> = profile
        .rows
        .iter()
        .map(|(k, inv, flops)| {
            vec![
                k.to_string(),
                format!("{:?}", k.class()),
                inv.to_string(),
                flops.to_string(),
                format!(
                    "{:.1}%",
                    100.0 * *flops as f64 / profile.total_flops() as f64
                ),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "kernel",
                "class",
                "invocations/iter",
                "flops/iter",
                "flop share"
            ],
            &rows
        )
    );

    println!("FLOPs by class per ADMM iteration:");
    for (class, f) in profile.flops_by_class() {
        println!("  {class:?}: {f}");
    }

    // Measured cycle shares on the Rocket baseline.
    let breakdown = kernel_breakdown(&Platform::rocket_eigen(), 10)?;
    let total: u64 = breakdown.values().sum();
    println!("\nMeasured cycle share per kernel on Rocket (whole solve):");
    let bars: Vec<(String, f64)> = KernelId::ALL
        .iter()
        .map(|k| {
            (
                k.to_string(),
                100.0 * breakdown.get(k).copied().unwrap_or(0) as f64 / total as f64,
            )
        })
        .collect();
    println!("{}", bar_chart(&bars, 50));

    let iterative: u64 = breakdown
        .iter()
        .filter(|(k, _)| k.class() == KernelClass::Iterative)
        .map(|(_, c)| c)
        .sum();
    println!(
        "Iterative kernels consume {:.1}% of Rocket cycles — the paper's motivation\nfor accelerating small GEMVs.",
        100.0 * iterative as f64 / total as f64
    );
    Ok(())
}
