//! Regenerates Figure 16: per-kernel performance of Saturn V512D128
//! (Rocket frontend) on end-to-end TinyMPC, as speedup over the Rocket
//! scalar baseline.

use soc_cpu::CoreConfig;
use soc_dse::experiments::{kernel_speedups, solve_cycles};
use soc_dse::platform::Platform;
use soc_dse::report::bar_chart;
use soc_vector::SaturnConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let saturn = Platform::saturn(CoreConfig::rocket(), SaturnConfig::v512d128());
    let baseline = Platform::rocket_eigen();
    println!("Figure 16 — Saturn V512D128 (Rocket) per-kernel speedup over Rocket\n");
    let speedups = kernel_speedups(&saturn, &baseline, 10)?;
    let bars: Vec<(String, f64)> = speedups.iter().map(|(k, s)| (k.to_string(), *s)).collect();
    println!("{}", bar_chart(&bars, 40));
    let e2e_s = solve_cycles(&saturn, 10)?.result.total_cycles;
    let e2e_r = solve_cycles(&baseline, 10)?.result.total_cycles;
    println!(
        "End-to-end: {:.2}x over Rocket (paper: 392,261/171,189 = 2.29x)",
        e2e_r as f64 / e2e_s as f64
    );
    Ok(())
}
