//! Energy extension: the area-performance Pareto analysis of Figure 20,
//! redone in energy terms (nJ per MPC solve and solves per millijoule) —
//! quantifying the introduction's qualitative efficiency claims.

use soc_dse::energy::{solve_energy, EnergyParams};
use soc_dse::experiments::pareto_frontier;
use soc_dse::platform::Platform;
use soc_dse::report::markdown_table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Energy per TinyMPC solve (extension; 7-nm-class first-order model)\n");
    let params = EnergyParams::default();
    let mut reports: Vec<_> = Platform::table1_registry()
        .iter()
        .map(|p| (p.area().total_mm2(), solve_energy(p, 10, &params).unwrap()))
        .collect();
    reports.sort_by(|a, b| a.0.total_cmp(&b.0));

    let frontier = pareto_frontier(
        &reports
            .iter()
            .map(|(_, r)| (r.cycles as f64, r.total_nj()))
            .collect::<Vec<_>>(),
    );
    let rows: Vec<Vec<String>> = reports
        .iter()
        .zip(&frontier)
        .map(|((area, r), &on)| {
            vec![
                r.platform.clone(),
                format!("{area:.3}"),
                format!("{:.0}", r.dynamic_nj),
                format!("{:.0}", r.leakage_nj),
                format!("{:.0}", r.total_nj()),
                format!("{:.0}", r.solves_per_mj),
                if on { "*".into() } else { String::new() },
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "configuration",
                "area mm^2",
                "dynamic nJ",
                "leakage nJ",
                "total nJ/solve",
                "solves/mJ",
                "perf-energy Pareto"
            ],
            &rows
        )
    );
    println!(
        "Reading: the wide out-of-order cores pay per-instruction frontend energy\nand leak across large areas; the accelerated designs do the same control\nwork with far fewer (wider) operations — more solves per millijoule at\nhigher control rates."
    );
    Ok(())
}
