//! Ablation study of the paper's Saturn software optimizations
//! (Section V-A): mapping style, LMUL policy, and the rejected
//! serial-reduction GEMV mapping.

use soc_cpu::{simulate_with_accel, CoreConfig};
use soc_dse::experiments::solve_cycles;
use soc_dse::platform::Platform;
use soc_dse::report::markdown_table;
use soc_isa::TraceBuilder;
use soc_vector::{SaturnConfig, SaturnUnit, VectorKernels, VectorStyle};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SaturnConfig::v512d256();
    println!("Saturn software-optimization ablation (V512D256, Rocket frontend)\n");

    let mut rows = Vec::new();
    for (name, style, lmul) in [
        (
            "hand-optimized (fused, per-class LMUL)",
            VectorStyle::Fused,
            None,
        ),
        ("fused, uniform LMUL=1", VectorStyle::Fused, Some(1)),
        ("fused, uniform LMUL=8", VectorStyle::Fused, Some(8)),
        (
            "vectorized matlib (library calls)",
            VectorStyle::Matlib,
            Some(1),
        ),
    ] {
        let p = Platform::saturn_with(CoreConfig::rocket(), cfg, style, lmul);
        let c = solve_cycles(&p, 10)?.result.total_cycles;
        rows.push(vec![name.to_string(), c.to_string()]);
    }
    println!("{}", markdown_table(&["mapping", "cycles/solve"], &rows));

    // The rejected alternative: GEMV via serial in-register reductions.
    println!("GEMV mapping alternatives on a 12x12 operand (the paper's rejection of\nvfred* because Saturn reduces serially):\n");
    let mut alt_rows = Vec::new();
    for (name, use_reduction) in [
        ("vfmacc.vf broadcast-scalar", false),
        ("vfredosum serial reduction", true),
    ] {
        let gen = VectorKernels::new(cfg, VectorStyle::Fused, 1);
        let mut b = TraceBuilder::new();
        for _ in 0..10 {
            if use_reduction {
                gen.gemv_with_reduction(&mut b, 12, 12);
            } else {
                gen.gemv(&mut b, 12, 12);
            }
        }
        b.fence();
        let mut unit = SaturnUnit::new(cfg);
        let c = simulate_with_accel(&CoreConfig::rocket(), &b.finish(), &mut unit);
        alt_rows.push(vec![name.to_string(), format!("{}", c / 10)]);
    }
    println!(
        "{}",
        markdown_table(&["GEMV mapping", "cycles per 12x12 GEMV"], &alt_rows)
    );
    Ok(())
}
