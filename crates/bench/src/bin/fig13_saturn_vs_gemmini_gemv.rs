//! Regenerates Figure 13: speedup of Saturn over the *original* (GEMM-
//! only) Gemmini on randomly sized GEMV operations, both driven by
//! Rocket with equal PE counts (V512D512 vs a 4x4 mesh). The paper
//! reports ~2.78x average — the original mesh uses only one PE column
//! for GEMV.

use soc_cpu::CoreConfig;
use soc_dse::experiments::{speedup_heatmap, KernelShape, Residency};
use soc_dse::platform::Platform;
use soc_dse::report::heatmap_text;
use soc_dse::workloads::{heatmap_heights, heatmap_widths};
use soc_gemmini::{GemminiConfig, GemminiOpts};
use soc_vector::SaturnConfig;

fn main() {
    let saturn = Platform::saturn(CoreConfig::rocket(), SaturnConfig::v512d512());
    let gemmini = Platform::gemmini(
        CoreConfig::rocket(),
        GemminiConfig::os_4x4_32kb(),
        GemminiOpts::optimized(),
    );
    let h = speedup_heatmap(
        &saturn,
        &gemmini,
        KernelShape::Gemv,
        Residency::Cold,
        &heatmap_heights(),
        &heatmap_widths(),
    );
    println!(
        "{}",
        heatmap_text(
            "Figure 13 — Saturn speedup over original Gemmini on random GEMVs",
            &h.heights,
            &h.widths,
            &h.values,
        )
    );
    println!("arithmetic mean: {:.2}x (paper: ~2.78x)", h.mean());
}
