//! Regenerates Figure 4: speedup over Rocket across LMUL ∈ {1,2,4,8} on a
//! 512V/256D Saturn — register grouping helps strip-mining kernels but
//! hurts the short-vector iterative kernels.

use soc_cpu::CoreConfig;
use soc_dse::experiments::kernel_speedups;
use soc_dse::platform::Platform;
use soc_dse::report::markdown_table;
use soc_vector::{SaturnConfig, VectorStyle};
use tinympc::{KernelClass, KernelId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let baseline = Platform::rocket_eigen();
    println!("Figure 4 — per-kernel speedup over Rocket across LMUL (V512D256, Rocket frontend)\n");

    let mut per_lmul = Vec::new();
    for lmul in [1u8, 2, 4, 8] {
        let p = Platform::saturn_with(
            CoreConfig::rocket(),
            SaturnConfig::v512d256(),
            VectorStyle::Fused,
            Some(lmul),
        );
        per_lmul.push(kernel_speedups(&p, &baseline, 10)?);
    }

    let rows: Vec<Vec<String>> = KernelId::ALL
        .iter()
        .enumerate()
        .map(|(i, k)| {
            let mut row = vec![k.to_string(), format!("{:?}", k.class())];
            for sweep in &per_lmul {
                row.push(format!("{:.2}x", sweep[i].1));
            }
            row
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["kernel", "class", "LMUL=1", "LMUL=2", "LMUL=4", "LMUL=8"],
            &rows
        )
    );

    // Class-level summary (geometric mean within class).
    for class in [
        KernelClass::Iterative,
        KernelClass::StripMining,
        KernelClass::Reduction,
    ] {
        print!("{class:?}: ");
        for sweep in &per_lmul {
            let vals: Vec<f64> = sweep
                .iter()
                .filter(|(k, _)| k.class() == class)
                .map(|(_, s)| *s)
                .collect();
            let gm = vals.iter().product::<f64>().powf(1.0 / vals.len() as f64);
            print!("{gm:.2}x ");
        }
        println!();
    }
    println!("\nExpected shape: LMUL helps strip-mining, hurts iterative kernels.");
    Ok(())
}
