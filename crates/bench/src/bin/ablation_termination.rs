//! Termination-check ablation: the global-maximum residual reductions
//! (Algorithm 3) are the kernels the paper's Gemmini mapping struggles
//! with most; checking them less often trades reduction work against
//! extra ADMM iterations.

use soc_dse::experiments::solve_cycles_with;
use soc_dse::platform::Platform;
use soc_dse::report::markdown_table;
use tinympc::{KernelClass, KernelId, SolverSettings};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Residual-check interval ablation (Gemmini OS 4x4, Rocket frontend)\n");
    let platform = Platform::table1_registry()
        .into_iter()
        .find(|p| p.name == "OSGemminiRocket32KB")
        .expect("registry contains the Gemmini point");

    let mut rows = Vec::new();
    for interval in [1usize, 2, 5, 10] {
        let settings = SolverSettings {
            check_interval: interval,
            ..Default::default()
        };
        let o = solve_cycles_with(&platform, 10, settings)?;
        let reduction_cycles: u64 = o
            .result
            .kernel_cycles
            .iter()
            .filter(|(k, _)| k.class() == KernelClass::Reduction)
            .map(|(_, c)| c)
            .sum();
        rows.push(vec![
            interval.to_string(),
            o.result.iterations.to_string(),
            o.result.total_cycles.to_string(),
            reduction_cycles.to_string(),
            format!(
                "{:.1}%",
                100.0 * reduction_cycles as f64 / o.result.total_cycles as f64
            ),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "check interval",
                "iterations",
                "cycles/solve",
                "reduction cycles",
                "reduction share"
            ],
            &rows
        )
    );
    let _ = KernelId::ALL; // (documented enumeration; used by other ablations)
    println!(
        "Checking less often cuts the reduction kernels' share but risks extra\niterations past the convergence point — interval 2-5 is usually free,\nwhich is why solvers on reduction-weak accelerators space out checks."
    );
    Ok(())
}
