//! Regenerates Figure 15: relative performance of Saturn vs Gemmini on
//! randomly sized GEMM operations. For large matrices both achieve high
//! utilization; for small matrices Gemmini's instruction sequencing wins
//! because Rocket must issue every short-vector instruction to Saturn
//! explicitly.

use soc_cpu::CoreConfig;
use soc_dse::experiments::{speedup_heatmap, KernelShape, Residency};
use soc_dse::platform::Platform;
use soc_dse::report::heatmap_text;
use soc_dse::workloads::{heatmap_heights, heatmap_widths};
use soc_gemmini::{GemminiConfig, GemminiOpts};
use soc_vector::SaturnConfig;

fn main() {
    let saturn = Platform::saturn(CoreConfig::rocket(), SaturnConfig::v512d512());
    let gemmini = Platform::gemmini(
        CoreConfig::rocket(),
        GemminiConfig::os_4x4_32kb(),
        GemminiOpts::optimized(),
    );
    let h = speedup_heatmap(
        &saturn,
        &gemmini,
        KernelShape::Gemm,
        Residency::Cold,
        &heatmap_heights(),
        &heatmap_widths(),
    );
    println!(
        "{}",
        heatmap_text(
            "Figure 15 — Saturn speedup over Gemmini on random GEMMs (>1 = Saturn wins)",
            &h.heights,
            &h.widths,
            &h.values,
        )
    );
    println!("arithmetic mean: {:.2}x", h.mean());
    println!("Expected shape: Gemmini wins (cells < 1) for small matrices; the gap\ncloses as sizes grow and both saturate their PEs.");
}
