//! The paper's open Saturn question, answered: "Currently, under 1.4mm²,
//! a Rocket core is the most efficient implementation. However, minimal
//! Saturn configurations could result in improved performance in this
//! domain due to Saturn's instruction sequencing."
//!
//! Sweeps area-minimal through large Saturn configurations on both
//! frontends and reports whether any minimal point undercuts Rocket's
//! area while beating its performance.

use soc_cpu::CoreConfig;
use soc_dse::experiments::solve_cycles;
use soc_dse::platform::Platform;
use soc_dse::report::markdown_table;
use soc_vector::SaturnConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Saturn configuration sweep (end-to-end TinyMPC, hand-optimized mapping)\n");
    let rocket = solve_cycles(&Platform::rocket_eigen(), 10)?;
    let rocket_area = Platform::rocket_eigen().area().total();
    let mut rows = vec![vec![
        "Rocket (scalar baseline)".to_string(),
        format!("{:.3}", rocket_area / 1e6),
        rocket.result.total_cycles.to_string(),
        "1.00x".to_string(),
    ]];

    for core in [CoreConfig::rocket(), CoreConfig::shuttle()] {
        for cfg in [
            SaturnConfig::v256d64(),
            SaturnConfig::v256d128(),
            SaturnConfig::v512d128(),
            SaturnConfig::v512d256(),
            SaturnConfig::v512d512(),
        ] {
            let p = Platform::saturn(core.clone(), cfg);
            let outcome = solve_cycles(&p, 10)?;
            rows.push(vec![
                p.name.clone(),
                format!("{:.3}", p.area().total() / 1e6),
                outcome.result.total_cycles.to_string(),
                format!(
                    "{:.2}x",
                    rocket.result.total_cycles as f64 / outcome.result.total_cycles as f64
                ),
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(
            &[
                "configuration",
                "area (mm^2)",
                "cycles/solve",
                "speedup vs Rocket"
            ],
            &rows
        )
    );
    println!(
        "Reading: even the minimal V256D64 design beats Rocket on performance, but\nits register file + sequencer keep it above Rocket's area — vector\nsequencing pays off in performance-per-area only once the datapath is\nwide enough to matter (the knee of Figure 20's frontier)."
    );
    Ok(())
}
