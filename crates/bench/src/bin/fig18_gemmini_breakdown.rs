//! Regenerates Figure 18: per-kernel performance of the optimized 4x4
//! output-stationary Gemmini (Rocket frontend) on end-to-end TinyMPC, as
//! speedup over the Rocket scalar baseline.

use soc_cpu::CoreConfig;
use soc_dse::experiments::{kernel_speedups, solve_cycles};
use soc_dse::platform::Platform;
use soc_dse::report::bar_chart;
use soc_gemmini::{GemminiConfig, GemminiOpts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gemmini = Platform::gemmini(
        CoreConfig::rocket(),
        GemminiConfig::os_4x4_32kb(),
        GemminiOpts::optimized(),
    );
    let baseline = Platform::rocket_eigen();
    println!("Figure 18 — Gemmini 4x4 FP mesh per-kernel speedup over Rocket\n");
    let speedups = kernel_speedups(&gemmini, &baseline, 10)?;
    let bars: Vec<(String, f64)> = speedups.iter().map(|(k, s)| (k.to_string(), *s)).collect();
    println!("{}", bar_chart(&bars, 40));
    let e2e_g = solve_cycles(&gemmini, 10)?.result.total_cycles;
    let e2e_r = solve_cycles(&baseline, 10)?.result.total_cycles;
    println!(
        "End-to-end: {:.2}x over Rocket (paper: 392,261/132,697 = 2.96x)",
        e2e_r as f64 / e2e_g as f64
    );
    println!("Expected shape: strongest on the matrix-product-dominated passes;\nweaker on reductions, which partially fall back to the scalar core.");
    Ok(())
}
