//! The paper's thesis, tested directly: "the variation of hardware
//! architecture choices depends on workload characteristics". Price three
//! robots of very different state/input dimensions on every platform and
//! watch the best-performance-per-area design point move.

use soc_dse::experiments::solve_problem_cycles;
use soc_dse::platform::Platform;
use soc_dse::report::markdown_table;
use tinympc::{problems, SolverSettings, TinyMpcProblem};

fn best_per_area(rows: &[(String, f64, u64)]) -> String {
    rows.iter()
        .map(|(n, area, c)| (n, area * *c as f64))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(n, _)| n.clone())
        .unwrap_or_default()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Workload sensitivity: cycles/solve across robot sizes\n");
    let workloads: Vec<(&str, TinyMpcProblem<f32>)> = vec![
        ("cartpole 4x1", problems::cartpole::<f32>(10)?),
        ("quadrotor 12x4", problems::quadrotor_hover::<f32>(10)?),
        (
            "arm-scale 24x8 (synthetic)",
            problems::random_stable::<f32>(24, 8, 10, 11)?,
        ),
    ];

    let platforms = Platform::table1_registry();
    let mut header = vec!["configuration".to_string()];
    for (name, _) in &workloads {
        header.push(name.to_string());
    }

    let mut per_workload: Vec<Vec<(String, f64, u64)>> = vec![Vec::new(); workloads.len()];
    let mut rows = Vec::new();
    for p in &platforms {
        let mut row = vec![p.name.clone()];
        for (wi, (_, problem)) in workloads.iter().enumerate() {
            let o = solve_problem_cycles(p, problem.clone(), SolverSettings::default())?;
            row.push(o.result.total_cycles.to_string());
            per_workload[wi].push((p.name.clone(), p.area().total_mm2(), o.result.total_cycles));
        }
        rows.push(row);
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    println!("{}", markdown_table(&header_refs, &rows));

    println!("Best performance-per-area design per workload:");
    for (wi, (name, _)) in workloads.iter().enumerate() {
        println!("  {name:<28} -> {}", best_per_area(&per_workload[wi]));
    }
    println!(
        "\nThe optimum shifts with operand size — small problems leave wide\nbackends idle (frontends dominate), larger state spaces reward the\nsystolic mesh and wide vectors: the paper's central conclusion."
    );
    Ok(())
}
