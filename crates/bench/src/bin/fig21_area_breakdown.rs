//! Regenerates Figure 21: the component-level area breakdown of a 4x4
//! output-stationary Gemmini (32 KiB scratchpad) vs a V512D256 reference
//! Saturn, both Rocket-driven.

use soc_area::{gemmini_area, saturn_area};
use soc_gemmini::GemminiConfig;
use soc_vector::SaturnConfig;

fn main() {
    println!("Figure 21 — Gemmini vs Saturn area breakdown (ASAP7-calibrated model)\n");
    let g = gemmini_area(&GemminiConfig::os_4x4_32kb());
    println!("{g}");
    let s = saturn_area(&SaturnConfig::v512d256());
    println!("{s}");
    println!(
        "Key observations reproduced: Gemmini's scratchpad (SRAM) holds 16x the\ncapacity of Saturn's flip-flop register file in only ~35% more area; the\nFP FMAs + scratchpad dominate Gemmini while Saturn pays for a vectorized\ninteger pipeline and a flip-flop register file."
    );
    let spad = g.component("scratchpad").unwrap_or(0.0);
    let rf = s.component("vector-regfile (flops)").unwrap_or(1.0);
    println!(
        "\nscratchpad (32 KiB SRAM) / vector regfile (2 KiB flops) area ratio: {:.2}",
        spad / rf
    );
}
