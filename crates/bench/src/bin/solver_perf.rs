//! Host-performance census of the flattened solver hot path: ns/solve
//! and allocations/solve for warm [`AdmmSolver::solve_in_place`], per
//! scenario × dims, against two references:
//!
//! - **dynamic** — the same arena solver with [`SolverDims::Dynamic`]
//!   forced (what the specialization seam buys);
//! - **legacy** — a faithful re-creation of the pre-arena solver
//!   (thirteen `Vec<Vector>` fields, allocating matlib composites,
//!   per-iteration temporaries), the honest baseline for the speedup
//!   claim. Every timed legacy solve is checked bit-identical to the
//!   arena solve it is compared against.
//!
//! Writes `results/solver_perf.txt` (markdown table) and
//! `BENCH_solver.json` (machine-readable). `--smoke` runs a reduced
//! solve count and exits non-zero if a warm arena solve allocates or
//! the quadrotor speedup over legacy drops below 2×.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use matlib::Vector;
use tinympc::{
    problems, AdmmSolver, NullExecutor, SolverDims, SolverSettings, TinyMpcCache, TinyMpcProblem,
};

// ---------------------------------------------------------------------
// Counting allocator
// ---------------------------------------------------------------------

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

// ---------------------------------------------------------------------
// Legacy baseline: the pre-arena solver, preserved verbatim
// ---------------------------------------------------------------------

/// The pre-arena workspace and ADMM loop: one heap vector per knot
/// point, allocating matlib composites in every pass. Functionally
/// bit-identical to the arena solver (asserted per timed solve); only
/// the memory behaviour differs.
struct LegacySolver {
    problem: TinyMpcProblem<f32>,
    cache: TinyMpcCache<f32>,
    settings: SolverSettings,
    x: Vec<Vector<f32>>,
    u: Vec<Vector<f32>>,
    q: Vec<Vector<f32>>,
    r: Vec<Vector<f32>>,
    p: Vec<Vector<f32>>,
    d: Vec<Vector<f32>>,
    v: Vec<Vector<f32>>,
    vnew: Vec<Vector<f32>>,
    z: Vec<Vector<f32>>,
    znew: Vec<Vector<f32>>,
    g: Vec<Vector<f32>>,
    y: Vec<Vector<f32>>,
    xref: Vec<Vector<f32>>,
}

impl LegacySolver {
    fn new(problem: TinyMpcProblem<f32>, settings: SolverSettings) -> Self {
        let cache = TinyMpcCache::compute(&problem).unwrap();
        let (nx, nu, n) = (problem.dims().nx, problem.dims().nu, problem.horizon);
        let states = |_| vec![Vector::zeros(nx); n];
        let inputs = |_| vec![Vector::zeros(nu); n - 1];
        LegacySolver {
            x: states(()),
            q: states(()),
            p: states(()),
            v: states(()),
            vnew: states(()),
            g: states(()),
            xref: states(()),
            u: inputs(()),
            r: inputs(()),
            d: inputs(()),
            z: inputs(()),
            znew: inputs(()),
            y: inputs(()),
            problem,
            cache,
            settings,
        }
    }

    fn backward_pass(&mut self) {
        let c = &self.cache;
        for i in (0..self.u.len()).rev() {
            let btp = c.b_t.matvec(&self.p[i + 1]).unwrap();
            let rhs = btp.add(&self.r[i]).unwrap();
            self.d[i] = c.quu_inv.matvec(&rhs).unwrap();
            let prop = c.am_bk_t.matvec(&self.p[i + 1]).unwrap();
            let ktr = c.kinf_t.matvec(&self.r[i]).unwrap();
            self.p[i] = self.q[i].add(&prop).unwrap().sub(&ktr).unwrap();
        }
    }

    fn forward_pass(&mut self) {
        let c = &self.cache;
        for i in 0..self.u.len() {
            let kx = c.kinf.matvec(&self.x[i]).unwrap();
            self.u[i] = kx.neg().sub(&self.d[i]).unwrap();
            let ax = self.problem.a.matvec(&self.x[i]).unwrap();
            let bu = self.problem.b.matvec(&self.u[i]).unwrap();
            self.x[i + 1] = ax.add(&bu).unwrap();
        }
    }

    fn update_slack(&mut self) {
        let p = &self.problem;
        for i in 0..self.u.len() {
            self.znew[i] = self.u[i].add(&self.y[i]).unwrap().clip(p.u_min, p.u_max);
            for cone in &p.input_cones {
                cone.project(&mut self.znew[i]);
            }
        }
        for i in 0..self.x.len() {
            self.vnew[i] = self.x[i].add(&self.g[i]).unwrap().clip(p.x_min, p.x_max);
        }
    }

    fn update_dual(&mut self) {
        for i in 0..self.u.len() {
            self.y[i] = self.y[i]
                .add(&self.u[i])
                .unwrap()
                .sub(&self.znew[i])
                .unwrap();
        }
        for i in 0..self.x.len() {
            self.g[i] = self.g[i]
                .add(&self.x[i])
                .unwrap()
                .sub(&self.vnew[i])
                .unwrap();
        }
    }

    fn update_linear_cost(&mut self) {
        let rho = self.problem.rho;
        for i in 0..self.r.len() {
            self.r[i] = self.znew[i].sub(&self.y[i]).unwrap().scale(-rho);
        }
        for i in 0..self.q.len() {
            let p = &self.problem;
            let ref_cost = Vector::from_fn(p.q_diag.len(), |j| -(self.xref[i][j] * p.q_diag[j]));
            let penalty = self.vnew[i].sub(&self.g[i]).unwrap().scale(rho);
            self.q[i] = ref_cost.sub(&penalty).unwrap();
        }
        let last = self.x.len() - 1;
        let terminal = self.cache.pinf.matvec(&self.xref[last]).unwrap().neg();
        let penalty = self.vnew[last].sub(&self.g[last]).unwrap().scale(rho);
        self.p[last] = terminal.sub(&penalty).unwrap();
    }

    fn residuals(&self) -> (f64, f64, f64, f64) {
        let rho = self.problem.rho as f64;
        let mut prs: f64 = 0.0;
        let mut drs: f64 = 0.0;
        for i in 0..self.x.len() {
            prs = prs.max(self.x[i].max_abs_diff(&self.vnew[i]).unwrap() as f64);
            drs = drs.max(self.v[i].max_abs_diff(&self.vnew[i]).unwrap() as f64);
        }
        let mut pri: f64 = 0.0;
        let mut dri: f64 = 0.0;
        for i in 0..self.u.len() {
            pri = pri.max(self.u[i].max_abs_diff(&self.znew[i]).unwrap() as f64);
            dri = dri.max(self.z[i].max_abs_diff(&self.znew[i]).unwrap() as f64);
        }
        (prs, drs * rho, pri, dri * rho)
    }

    /// One warm solve; returns (converged, iterations, u0).
    fn solve(&mut self, x0: &[f32]) -> (bool, usize, Vector<f32>) {
        self.x[0] = Vector::from_slice(x0);
        let rho = self.problem.rho as f64;
        self.update_linear_cost();
        let mut converged = false;
        let mut iterations = 0;
        for iter in 0..self.settings.max_iterations {
            iterations = iter + 1;
            self.backward_pass();
            self.forward_pass();
            self.update_slack();
            self.update_dual();
            self.update_linear_cost();
            if iter % self.settings.check_interval == 0 {
                let (prs, drs, pri, dri) = self.residuals();
                let tol = self.settings.tolerance;
                if prs < tol && drs < tol * rho && pri < tol && dri < tol * rho {
                    converged = true;
                }
            }
            std::mem::swap(&mut self.v, &mut self.vnew);
            std::mem::swap(&mut self.z, &mut self.znew);
            if converged {
                break;
            }
        }
        (converged, iterations, self.z[0].clone())
    }
}

// ---------------------------------------------------------------------
// Measurement harness
// ---------------------------------------------------------------------

struct Measurement {
    ns_per_solve: f64,
    allocs_per_solve: f64,
    iterations: usize,
}

fn measure(solves: usize, mut f: impl FnMut() -> usize) -> Measurement {
    // Warm-up: settle iterates and touch every buffer.
    let mut iterations = 0;
    for _ in 0..3 {
        iterations = f();
    }
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let start = Instant::now();
    for _ in 0..solves {
        iterations = f();
    }
    let elapsed = start.elapsed();
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    Measurement {
        ns_per_solve: elapsed.as_nanos() as f64 / solves as f64,
        allocs_per_solve: allocs as f64 / solves as f64,
        iterations,
    }
}

struct Row {
    workload: &'static str,
    dims: String,
    spec: SolverDims,
    iterations: usize,
    arena: Measurement,
    dynamic: Measurement,
    legacy: Measurement,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.legacy.ns_per_solve / self.arena.ns_per_solve
    }
}

fn workload(name: &'static str, problem: TinyMpcProblem<f32>, x0: Vec<f32>, solves: usize) -> Row {
    let dims = problem.dims();
    let settings = SolverSettings::default();

    let mut arena = AdmmSolver::new(problem.clone(), settings).unwrap();
    let spec = arena.specialization();
    let arena_m = measure(solves, || {
        arena
            .solve_in_place(&x0, &mut NullExecutor)
            .unwrap()
            .iterations
    });

    let mut dynamic = AdmmSolver::new(problem.clone(), settings).unwrap();
    dynamic.set_specialization(SolverDims::Dynamic).unwrap();
    let dynamic_m = measure(solves, || {
        dynamic
            .solve_in_place(&x0, &mut NullExecutor)
            .unwrap()
            .iterations
    });

    let mut legacy = LegacySolver::new(problem, settings);
    let legacy_m = measure(solves, || legacy.solve(&x0).1);

    // The baseline must be solving the same problem: after identical
    // warm histories, legacy and arena u0 agree bit-for-bit.
    let (_, _, legacy_u0) = legacy.solve(&x0);
    arena.solve_in_place(&x0, &mut NullExecutor).unwrap();
    assert_eq!(
        legacy_u0.as_slice(),
        arena.u0(),
        "{name}: legacy baseline diverged from the arena solver"
    );

    Row {
        workload: name,
        dims: format!("{}x{}xN{}", dims.nx, dims.nu, dims.horizon),
        spec,
        iterations: arena_m.iterations,
        arena: arena_m,
        dynamic: dynamic_m,
        legacy: legacy_m,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let solves = if smoke { 25 } else { 400 };

    let quad = problems::quadrotor_hover::<f32>(10)?;
    let quad_x0 = quad.hover_offset_state(0.2).as_slice().to_vec();
    let rdv = problems::satellite_rendezvous::<f32>(10)?;
    let mut rdv_x0 = vec![0.0f32; rdv.dims().nx];
    rdv_x0[0] = 0.1;
    rdv_x0[1] = -0.1;
    let di = problems::double_integrator::<f32>(12)?;
    let di_x0 = vec![0.4f32, 0.0];
    let rand5x2 = problems::random_stable::<f32>(5, 2, 8, 7)?;
    let rand_x0 = vec![0.05f32; 5];

    let rows = vec![
        workload("quadrotor_hover", quad, quad_x0, solves),
        workload("satellite_rendezvous", rdv, rdv_x0, solves),
        workload("double_integrator", di, di_x0, solves),
        workload("random_stable_5x2", rand5x2, rand_x0, solves),
    ];

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.to_string(),
                r.dims.clone(),
                format!("{:?}", r.spec),
                format!("{}", r.iterations),
                format!("{:.0}", r.arena.ns_per_solve),
                format!("{:.0}", r.dynamic.ns_per_solve),
                format!("{:.0}", r.legacy.ns_per_solve),
                format!("{:.1}", r.arena.allocs_per_solve),
                format!("{:.1}", r.legacy.allocs_per_solve),
                format!("{:.2}x", r.speedup()),
            ]
        })
        .collect();
    let rendered = soc_dse::report::markdown_table(
        &[
            "Workload",
            "Dims",
            "Specialization",
            "Iters",
            "ns/solve (arena)",
            "ns/solve (dynamic)",
            "ns/solve (legacy)",
            "allocs/solve (arena)",
            "allocs/solve (legacy)",
            "Speedup vs legacy",
        ],
        &table,
    );
    let header = format!(
        "solver_perf — warm solve timing and allocation census ({solves} solves/row)\n\
         arena = in-place dims-specialized hot path; dynamic = arena with the\n\
         generic fallback forced; legacy = pre-arena Vec<Vector> solver.\n"
    );
    println!("{header}\n{rendered}");

    std::fs::create_dir_all("results")?;
    std::fs::write("results/solver_perf.txt", format!("{header}\n{rendered}"))?;

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"workload\": \"{}\", \"dims\": \"{}\", \"specialization\": \"{:?}\", \
                 \"iterations\": {}, \"ns_per_solve_arena\": {:.1}, \
                 \"ns_per_solve_dynamic\": {:.1}, \"ns_per_solve_legacy\": {:.1}, \
                 \"allocs_per_solve_arena\": {:.2}, \"allocs_per_solve_legacy\": {:.2}, \
                 \"speedup_vs_legacy\": {:.3}}}",
                r.workload,
                r.dims,
                r.spec,
                r.iterations,
                r.arena.ns_per_solve,
                r.dynamic.ns_per_solve,
                r.legacy.ns_per_solve,
                r.arena.allocs_per_solve,
                r.legacy.allocs_per_solve,
                r.speedup()
            )
        })
        .collect();
    std::fs::write(
        "BENCH_solver.json",
        format!(
            "{{\"bench\": \"solver_perf\", \"solves_per_row\": {solves}, \"rows\": [\n{}\n]}}\n",
            json_rows.join(",\n")
        ),
    )?;

    // Gates: the flattened hot path must not allocate in a warm solve,
    // and the quadrotor workload (the paper's primary scenario) must
    // clear 2x over the allocating legacy solver.
    let mut failed = false;
    for r in &rows {
        if r.arena.allocs_per_solve > 0.0 {
            eprintln!(
                "FAIL {}: warm arena solve allocated ({:.1}/solve)",
                r.workload, r.arena.allocs_per_solve
            );
            failed = true;
        }
    }
    let quad_row = &rows[0];
    if quad_row.speedup() < 2.0 {
        eprintln!(
            "FAIL quadrotor_hover: speedup vs legacy {:.2}x < 2.0x",
            quad_row.speedup()
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "\nGATES OK: zero warm-solve allocations; quadrotor speedup {:.2}x >= 2x",
        quad_row.speedup()
    );
    Ok(())
}
