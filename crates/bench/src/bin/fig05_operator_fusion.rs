//! Regenerates Figure 5: library vs fused-operator mappings on a
//! Rocket-driven 512V/256D Saturn — keeping temporaries in vector
//! registers across operator boundaries removes the store/reload
//! round-trips of matlib function calls.

use soc_cpu::CoreConfig;
use soc_dse::experiments::{kernel_breakdown, solve_cycles};
use soc_dse::platform::Platform;
use soc_dse::report::markdown_table;
use soc_vector::{SaturnConfig, VectorStyle};
use tinympc::KernelId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = Platform::saturn_with(
        CoreConfig::rocket(),
        SaturnConfig::v512d256(),
        VectorStyle::Matlib,
        Some(1),
    );
    let fused = Platform::saturn_with(
        CoreConfig::rocket(),
        SaturnConfig::v512d256(),
        VectorStyle::Fused,
        Some(1),
    );

    println!("Figure 5 — library vs fused-operator speedup (Rocket-driven V512D256)\n");
    let lib_k = kernel_breakdown(&lib, 10)?;
    let fused_k = kernel_breakdown(&fused, 10)?;
    let rows: Vec<Vec<String>> = KernelId::ALL
        .iter()
        .map(|k| {
            let l = lib_k.get(k).copied().unwrap_or(0);
            let f = fused_k.get(k).copied().unwrap_or(1);
            vec![
                k.to_string(),
                l.to_string(),
                f.to_string(),
                format!("{:.2}x", l as f64 / f.max(1) as f64),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["kernel", "library cycles", "fused cycles", "fusion speedup"],
            &rows
        )
    );

    let lt = solve_cycles(&lib, 10)?.result.total_cycles;
    let ft = solve_cycles(&fused, 10)?.result.total_cycles;
    println!(
        "End-to-end: library {lt} cycles, fused {ft} cycles -> {:.2}x",
        lt as f64 / ft as f64
    );
    Ok(())
}
