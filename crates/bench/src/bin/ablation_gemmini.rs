//! Ablation study of the paper's Gemmini software optimizations
//! (Section V-B): starting from the fully optimized mapping, disable one
//! optimization at a time and report the end-to-end TinyMPC cost.

use soc_cpu::CoreConfig;
use soc_dse::experiments::solve_cycles;
use soc_dse::platform::Platform;
use soc_dse::report::markdown_table;
use soc_gemmini::{GemminiConfig, GemminiOpts, IsaStyle};

fn run(name: &str, opts: GemminiOpts) -> Result<Vec<String>, Box<dyn std::error::Error>> {
    let p = Platform::gemmini(CoreConfig::rocket(), GemminiConfig::os_4x4_32kb(), opts);
    let c = solve_cycles(&p, 10)?.result.total_cycles;
    Ok(vec![name.to_string(), c.to_string()])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Gemmini software-optimization ablation (OS 4x4, 32 KiB, Rocket)\n");
    let opt = GemminiOpts::optimized();
    let mut rows = vec![run("fully optimized", opt)?];

    let mut no_resident = opt;
    no_resident.scratchpad_resident = false;
    rows.push(run(
        "- scratchpad residency (DRAM round-trips + fences)",
        no_resident,
    )?);

    let mut no_static = opt;
    no_static.static_mapping = false;
    rows.push(run(
        "- static mapping (dynamic RoCC construction)",
        no_static,
    )?);

    let mut coarse = opt;
    coarse.isa = IsaStyle::Coarse;
    rows.push(run("- fine-grained ISA (coarse FSM commands)", coarse)?);

    let mut no_act = opt;
    no_act.fuse_activation = false;
    rows.push(run("- fused ReLU activations (scalar abs/clip)", no_act)?);

    let mut no_pool = opt;
    no_pool.pooling_reduction = false;
    rows.push(run("- pooling reduction (full scalar max)", no_pool)?);

    rows.push(run(
        "baseline (all optimizations off)",
        GemminiOpts::baseline(),
    )?);

    println!("{}", markdown_table(&["mapping", "cycles/solve"], &rows));
    println!("Each row disables one optimization relative to the fully optimized\nmapping; the last row is the naive baseline.");
    Ok(())
}
