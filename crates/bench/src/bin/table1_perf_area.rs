//! Regenerates Table I: performance (cycles per TinyMPC solve) and area
//! (ASAP7 µm²) of every scalar, vector and systolic configuration.

use soc_dse::experiments::table1;
use soc_dse::report::markdown_table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows = table1(10)?;
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.0}", r.area_um2),
                format!("{}", r.cycles_per_solve),
                format!("{:.0}", r.mpc_hz),
            ]
        })
        .collect();
    println!("Table I — performance and area of scalar, vector and systolic architectures\n");
    println!(
        "{}",
        markdown_table(
            &[
                "Configuration",
                "Area (um^2)",
                "Cycles/solve",
                "MPC Hz @1GHz"
            ],
            &table
        )
    );
    Ok(())
}
