//! Regenerates Figure 20: the area-vs-performance trade-off of every
//! design point and the Pareto-optimal frontier for TinyMPC.

use soc_dse::experiments::{pareto_frontier, table1};
use soc_dse::report::markdown_table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rows = table1(10)?;
    rows.sort_by(|a, b| a.area_um2.total_cmp(&b.area_um2));
    let points: Vec<(f64, f64)> = rows
        .iter()
        .map(|r| (r.area_um2, r.cycles_per_solve as f64))
        .collect();
    let frontier = pareto_frontier(&points);

    println!("Figure 20 — Saturn vs Gemmini vs CPUs: performance vs area\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .zip(&frontier)
        .map(|(r, &on)| {
            vec![
                r.name.clone(),
                format!("{:.3}", r.area_um2 / 1.0e6),
                r.cycles_per_solve.to_string(),
                format!("{:.0}", r.mpc_hz),
                if on { "*".into() } else { String::new() },
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "configuration",
                "area (mm^2)",
                "cycles/solve",
                "MPC Hz @1GHz",
                "Pareto"
            ],
            &table
        )
    );
    let names: Vec<&str> = rows
        .iter()
        .zip(&frontier)
        .filter(|(_, &on)| on)
        .map(|(r, _)| r.name.as_str())
        .collect();
    println!("Pareto frontier: {}", names.join(" -> "));
    println!(
        "\nPaper's frontier: Rocket -> SmallBoom -> RefV512D128Rocket ->\nOSGemminiRocket32KB -> RefV512D128Shuttle -> RefV512D256Shuttle.\nKey claims: all Saturn/Gemmini points beat the scalar frontier; Rocket is\noptimal under ~1.4 mm^2; Gemmini is optimal in the 1.5-2.3 mm^2 window."
    );
    Ok(())
}
