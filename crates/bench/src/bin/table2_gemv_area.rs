//! Regenerates Table II: Gemmini tile area with and without the GEMV
//! hardware extension, at 4x4 and 8x8 mesh sizes, with component
//! breakdowns.

use soc_area::table2_breakdown;
use soc_dse::report::markdown_table;

fn main() {
    println!("Table II — area comparison with GEMV support enabled\n");
    for dim in [4usize, 8] {
        let plain = table2_breakdown(dim, false);
        let gemv = table2_breakdown(dim, true);
        let components: Vec<&str> = plain.components.iter().map(|(n, _)| n.as_str()).collect();
        let rows: Vec<Vec<String>> = components
            .iter()
            .map(|c| {
                let p = plain.component(c).unwrap_or(0.0);
                let g = gemv.component(c).unwrap_or(0.0);
                vec![
                    c.to_string(),
                    format!("{p:.0}"),
                    format!("{g:.0}"),
                    format!("{:+.1}%", 100.0 * (g - p) / p.max(1.0)),
                ]
            })
            .collect();
        println!("{dim}x{dim} mesh:");
        println!(
            "{}",
            markdown_table(&["component", "GEMM (um^2)", "GEMV (um^2)", "delta"], &rows)
        );
        println!(
            "total: GEMM {:.0} -> GEMV {:.0} um^2 ({:+.1}%)\n",
            plain.total(),
            gemv.total(),
            100.0 * (gemv.total() - plain.total()) / plain.total()
        );
    }
    println!("Paper anchors: ExecuteController +9.2% at 4x4, +18% at 8x8; mesh ~+1%;\nscratchpad grows with the extra DIM+1 (power-of-two) banks.");
}
