//! The paper's future work, evaluated: end-to-end TinyMPC on a Gemmini
//! *with* the GEMV hardware extension (the paper only evaluated the
//! extension at kernel level and noted that "hardware modifications such
//! as the GEMV support presented in this work" should be considered for
//! end-to-end evaluation), plus an 8x8 mesh point.

use soc_cpu::CoreConfig;
use soc_dse::experiments::solve_cycles;
use soc_dse::platform::Platform;
use soc_dse::report::markdown_table;
use soc_gemmini::{GemminiConfig, GemminiOpts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Future work — GEMV-Gemmini and mesh scaling, end-to-end TinyMPC\n");
    let mut rows = Vec::new();
    let points: Vec<(&str, GemminiConfig)> = vec![
        ("OS 4x4, stock", GemminiConfig::os_4x4_32kb()),
        ("OS 4x4, 16 KiB scratchpad", GemminiConfig::os_4x4_16kb()),
        (
            "OS 4x4 + GEMV hw",
            GemminiConfig::os_4x4_32kb().with_gemv_support(),
        ),
        ("OS 8x8, stock", GemminiConfig::os_8x8_64kb()),
        (
            "OS 8x8 + GEMV hw",
            GemminiConfig::os_8x8_64kb().with_gemv_support(),
        ),
    ];
    let mut baseline = 0u64;
    for (name, cfg) in points {
        let p = Platform::gemmini(CoreConfig::rocket(), cfg, GemminiOpts::optimized());
        let area = p.area().total();
        let c = solve_cycles(&p, 10)?.result.total_cycles;
        if baseline == 0 {
            baseline = c;
        }
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", area / 1e6),
            c.to_string(),
            format!("{:.2}x", baseline as f64 / c as f64),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "configuration",
                "area (mm^2)",
                "cycles/solve",
                "speedup vs stock 4x4"
            ],
            &rows
        )
    );
    println!(
        "The GEMV extension's kernel-level gains carry over end-to-end because\nTinyMPC's iterative passes are GEMV-shaped; the 8x8 mesh adds little for\n12x4 operands — the paper's 'mesh size must match operand size' theme."
    );
    Ok(())
}
