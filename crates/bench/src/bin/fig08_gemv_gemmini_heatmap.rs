//! Regenerates Figure 8: speedup of the GEMV hardware extension over the
//! original Gemmini mesh on randomly sized GEMV operations (fine-grained
//! mapping, Rocket-driven). The paper reports ~6x average from restoring
//! full PE utilization.

use soc_cpu::CoreConfig;
use soc_dse::experiments::{speedup_heatmap, KernelShape, Residency};
use soc_dse::platform::Platform;
use soc_dse::report::heatmap_text;
use soc_dse::workloads::{heatmap_heights, heatmap_widths};
use soc_gemmini::{GemminiConfig, GemminiOpts};

fn main() {
    let plain = Platform::gemmini(
        CoreConfig::rocket(),
        GemminiConfig::os_4x4_32kb(),
        GemminiOpts::optimized(),
    );
    let gemv = Platform::gemmini(
        CoreConfig::rocket(),
        GemminiConfig::os_4x4_32kb().with_gemv_support(),
        GemminiOpts::optimized(),
    );
    let h = speedup_heatmap(
        &gemv,
        &plain,
        KernelShape::Gemv,
        Residency::Warm,
        &heatmap_heights(),
        &heatmap_widths(),
    );
    println!(
        "{}",
        heatmap_text(
            "Figure 8 — GEMV-Gemmini speedup over original Gemmini on random GEMVs",
            &h.heights,
            &h.widths,
            &h.values,
        )
    );
    println!(
        "arithmetic mean: {:.2}x (paper: ~6x, >4x from full utilization)",
        h.mean()
    );
}
