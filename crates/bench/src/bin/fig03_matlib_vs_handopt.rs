//! Regenerates Figure 3: matlib-based vs hand-optimized implementations
//! on CPUs and Saturn — library code vectorized for Saturn beats scalar
//! matlib but loses to optimized scalar Eigen, motivating the fused
//! hand-optimized vector mapping.

use soc_cpu::CoreConfig;
use soc_dse::experiments::solve_cycles;
use soc_dse::platform::Platform;
use soc_dse::report::markdown_table;
use soc_vector::{SaturnConfig, VectorStyle};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let configs = vec![
        Platform::rocket_matlib(),
        Platform::rocket_eigen(),
        Platform::saturn_with(
            CoreConfig::rocket(),
            SaturnConfig::v512d256(),
            VectorStyle::Matlib,
            Some(1),
        ),
        Platform::saturn_with(
            CoreConfig::rocket(),
            SaturnConfig::v512d256(),
            VectorStyle::Fused,
            None,
        ),
    ];

    println!("Figure 3 — matlib vs hand-optimized TinyMPC on CPUs and Saturn\n");
    let baseline = solve_cycles(&configs[0], 10)?.result.total_cycles;
    let mut rows = Vec::new();
    for p in &configs {
        let c = solve_cycles(p, 10)?.result.total_cycles;
        rows.push(vec![
            p.name.clone(),
            c.to_string(),
            format!("{:.2}x", baseline as f64 / c as f64),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["configuration", "cycles/solve", "speedup vs Rocket matlib"],
            &rows
        )
    );
    println!(
        "Expected shape: vectorized matlib > scalar matlib, but optimized scalar\n(Eigen) beats vectorized matlib; hand-optimized Saturn wins overall."
    );
    Ok(())
}
