//! Regenerates Figure 14: speedup of the GEMV-extended Gemmini over
//! Saturn on randomly sized GEMV operations (equal PE counts, Rocket
//! frontends). The paper reports ~2.34x average after the hardware
//! extension restores full mesh utilization.

use soc_cpu::CoreConfig;
use soc_dse::experiments::{speedup_heatmap, KernelShape, Residency};
use soc_dse::platform::Platform;
use soc_dse::report::heatmap_text;
use soc_dse::workloads::{heatmap_heights, heatmap_widths};
use soc_gemmini::{GemminiConfig, GemminiOpts};
use soc_vector::SaturnConfig;

fn main() {
    let saturn = Platform::saturn(CoreConfig::rocket(), SaturnConfig::v512d512());
    let gemv_gemmini = Platform::gemmini(
        CoreConfig::rocket(),
        GemminiConfig::os_4x4_32kb().with_gemv_support(),
        GemminiOpts::optimized(),
    );
    let h = speedup_heatmap(
        &gemv_gemmini,
        &saturn,
        KernelShape::Gemv,
        Residency::Cold,
        &heatmap_heights(),
        &heatmap_widths(),
    );
    println!(
        "{}",
        heatmap_text(
            "Figure 14 — GEMV-Gemmini speedup over Saturn on random GEMVs",
            &h.heights,
            &h.widths,
            &h.values,
        )
    );
    println!("arithmetic mean: {:.2}x (paper: ~2.34x)", h.mean());
}
