//! # soc-bench — benchmark harness regenerating every table and figure.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper; see
//! `DESIGN.md` §5 for the experiment index and `EXPERIMENTS.md` for
//! recorded paper-vs-measured outcomes.
