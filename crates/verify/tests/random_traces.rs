//! Property test: a program assembled through `TraceBuilder`'s typed API
//! cannot violate SSA discipline, however the calls are interleaved —
//! every destination is a fresh register and every source is a value the
//! builder already handed out. The SSA pass must therefore never fire on
//! builder output, whatever random program we generate.

use soc_isa::{OpClass, TraceBuilder, VReg};
use soc_verify::{verify, VerifyConfig};

/// SplitMix64 — the workspace builds offline, so tests carry their own
/// tiny deterministic generator instead of depending on `rand`.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn pick(&mut self, pool: &[VReg]) -> Option<VReg> {
        if pool.is_empty() {
            None
        } else {
            Some(pool[self.below(pool.len() as u64) as usize])
        }
    }
}

#[test]
fn random_builder_programs_never_violate_ssa() {
    for seed in 0..128u64 {
        let mut rng = Rng(seed.wrapping_mul(0x5851_F42D_4C95_7F2D) ^ 0xDEAD_BEEF);
        let mut b = TraceBuilder::new();
        let mut values: Vec<VReg> = Vec::new();
        let mut tokens: Vec<VReg> = Vec::new();
        for _ in 0..250 {
            match rng.below(8) {
                0 => values.push(b.load()),
                1 => {
                    let mut srcs = Vec::new();
                    for _ in 0..rng.below(3) {
                        srcs.extend(rng.pick(&values));
                    }
                    let class = if rng.below(2) == 0 {
                        OpClass::FpAdd
                    } else {
                        OpClass::FpFma
                    };
                    values.push(b.fp(class, &srcs));
                }
                2 => {
                    let mut srcs = Vec::new();
                    for _ in 0..rng.below(3) {
                        srcs.extend(rng.pick(&values));
                    }
                    tokens.push(b.store(&srcs));
                }
                3 => {
                    if let Some(t) = rng.pick(&tokens) {
                        values.push(b.load_after(t));
                    }
                }
                4 => {
                    values.extend(b.int_ops(rng.below(4) as usize));
                }
                5 => {
                    let srcs: Vec<VReg> = rng.pick(&values).into_iter().collect();
                    b.branch(&srcs);
                }
                6 => {
                    values.push(b.vset_f32(4 + rng.below(16) as u32, 1));
                }
                7 => b.fence(),
                _ => unreachable!(),
            }
        }
        let report = verify(&b.finish(), &VerifyConfig::default());
        let ssa_findings: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.rule.starts_with("ssa-"))
            .collect();
        assert!(
            ssa_findings.is_empty(),
            "seed {seed} produced SSA findings:\n{}",
            report.render()
        );
    }
}

#[test]
fn random_well_formed_vector_programs_verify_error_free() {
    // Programs that vsetvli before each batch of vector ops (the pattern
    // every shipped generator follows) must produce zero errors of any
    // kind — only perf lints are allowed.
    for seed in 0..64u64 {
        let mut rng = Rng(seed ^ 0xC0FF_EE00);
        let mut b = TraceBuilder::new();
        for _ in 0..40 {
            let vl = 4 + rng.below(28) as u32;
            let lmul = 1 << rng.below(3);
            b.vset_f32(vl, lmul);
            for _ in 0..1 + rng.below(4) {
                let v = b.vload(vl, lmul);
                b.vstore(vl, lmul, v);
            }
        }
        let report = verify(&b.finish(), &VerifyConfig::default());
        assert_eq!(report.error_count(), 0, "seed {seed}:\n{}", report.render());
    }
}
