//! Negative-case coverage: one deliberately broken trace per verifier
//! rule, driven through the public [`soc_verify::verify`] entry point.
//!
//! The per-pass unit tests check the analyses in isolation; these tests
//! pin the *integration* contract — that each of the twelve rules fires
//! through the combined pipeline with its stable diagnostic code and
//! documented severity, so a codegen regression can never silently
//! downgrade or rename a finding class.

use soc_isa::{MicroOp, OpClass, RoccCmd, TraceBuilder, VReg, VecOpKind, VectorSpec};
use soc_verify::{rules, verify, Report, Severity, VerifyConfig};

fn assert_fires(report: &Report, rule: &str, severity: Severity) {
    let hit = report
        .diagnostics()
        .iter()
        .find(|d| d.rule == rule)
        .unwrap_or_else(|| {
            panic!(
                "expected rule `{rule}` to fire; got {:?}",
                report
                    .diagnostics()
                    .iter()
                    .map(|d| d.rule)
                    .collect::<Vec<_>>()
            )
        });
    assert_eq!(hit.severity, severity, "wrong severity for `{rule}`");
}

fn mvin(b: &mut TraceBuilder, rows: u16, cols: u16, base: u32) -> VReg {
    b.rocc(RoccCmd::Mvin { rows, cols, base }, &[])
}

fn mvout(b: &mut TraceBuilder, rows: u16, cols: u16, base: u32) -> VReg {
    b.rocc(
        RoccCmd::Mvout {
            rows,
            cols,
            pool_stride: 1,
            base,
        },
        &[],
    )
}

#[test]
fn ssa_use_before_def_fires() {
    let mut b = TraceBuilder::new();
    b.fp(OpClass::FpAdd, &[VReg(999)]);
    let report = verify(&b.finish(), &VerifyConfig::default());
    assert_fires(&report, rules::SSA_USE_BEFORE_DEF, Severity::Error);
    assert!(!report.is_clean());
}

#[test]
fn ssa_redefinition_fires() {
    let mut b = TraceBuilder::new();
    let x = b.load();
    // The typed builder cannot express a redefinition; push the raw op.
    b.push(MicroOp::scalar(OpClass::FpAdd, Some(x), &[]));
    let report = verify(&b.finish(), &VerifyConfig::default());
    assert_fires(&report, rules::SSA_REDEF, Severity::Error);
}

#[test]
fn vset_missing_fires() {
    let mut b = TraceBuilder::new();
    b.vload(12, 2);
    let report = verify(&b.finish(), &VerifyConfig::default());
    assert_fires(&report, rules::VSET_MISSING, Severity::Error);
}

#[test]
fn vset_stale_fires() {
    let mut b = TraceBuilder::new();
    b.vset_f32(16, 2);
    b.vector(VectorSpec::f32(VecOpKind::Arith, 4, 2), &[]);
    let report = verify(&b.finish(), &VerifyConfig::default());
    assert_fires(&report, rules::VSET_STALE, Severity::Error);
}

#[test]
fn vset_dead_fires() {
    let mut b = TraceBuilder::new();
    b.vset_f32(4, 1); // replaced before any vector op uses it
    b.vset_f32(8, 1);
    b.vload(8, 1);
    let report = verify(&b.finish(), &VerifyConfig::default());
    assert_fires(&report, rules::VSET_DEAD, Severity::Perf);
    assert_eq!(
        report.diagnostics()[0].index,
        0,
        "the dead vsetvli is the first one"
    );
}

#[test]
fn hazard_load_race_fires() {
    let mut b = TraceBuilder::new();
    mvout(&mut b, 4, 4, 0);
    b.load(); // does not consume the mvout token, no fence between
    let report = verify(&b.finish(), &VerifyConfig::default());
    assert_fires(&report, rules::HAZARD_LOAD_RACE, Severity::Error);
}

#[test]
fn hazard_mvin_race_fires() {
    let mut b = TraceBuilder::new();
    let x = b.load();
    b.store(&[x]); // unfenced CPU store ...
    mvin(&mut b, 4, 4, 0); // ... racing the DMA read
    let report = verify(&b.finish(), &VerifyConfig::default());
    assert_fires(&report, rules::HAZARD_MVIN_RACE, Severity::Error);
}

#[test]
fn spad_oob_fires() {
    let mut b = TraceBuilder::new();
    // 16 rows * ceil(20/4) = 80 scratchpad rows > the 64 configured.
    mvin(&mut b, 16, 20, 0);
    let report = verify(&b.finish(), &VerifyConfig::with_spad(64, 4));
    assert_fires(&report, rules::SPAD_OOB, Severity::Error);
}

#[test]
fn spad_unwritten_fires() {
    let mut b = TraceBuilder::new();
    mvin(&mut b, 4, 4, 0); // writes rows 0..4
    mvout(&mut b, 8, 4, 0); // reads rows 0..8 — 4..8 never written
    let report = verify(&b.finish(), &VerifyConfig::with_spad(64, 4));
    assert_fires(&report, rules::SPAD_UNWRITTEN, Severity::Error);
}

#[test]
fn spad_overlap_fires() {
    let mut b = TraceBuilder::new();
    mvin(&mut b, 8, 4, 0); // rows 0..8
    mvin(&mut b, 8, 4, 8); // rows 8..16
    mvin(&mut b, 8, 4, 4); // rows 4..12 straddle both live allocations
    let report = verify(&b.finish(), &VerifyConfig::with_spad(64, 4));
    assert_fires(&report, rules::SPAD_OVERLAP, Severity::Warn);
}

#[test]
fn fence_redundant_fires() {
    let mut b = TraceBuilder::new();
    b.fence(); // nothing to order since trace start
    let report = verify(&b.finish(), &VerifyConfig::default());
    assert_fires(&report, rules::FENCE_REDUNDANT, Severity::Perf);
    assert!(report.is_clean(), "perf lints alone keep a trace clean");
}

#[test]
fn store_dead_fires() {
    let mut b = TraceBuilder::new();
    let x = b.load();
    b.store(&[x]); // token never consumed by a later load_after
    let report = verify(&b.finish(), &VerifyConfig::default());
    assert_fires(&report, rules::STORE_DEAD, Severity::Perf);
}

#[test]
fn every_rule_is_covered_by_a_negative_test() {
    // Keep this list in sync with `soc_verify::rules`: adding a rule
    // without a negative test above should fail here, loudly.
    let covered = [
        rules::SSA_USE_BEFORE_DEF,
        rules::SSA_REDEF,
        rules::VSET_MISSING,
        rules::VSET_STALE,
        rules::VSET_DEAD,
        rules::HAZARD_LOAD_RACE,
        rules::HAZARD_MVIN_RACE,
        rules::SPAD_OOB,
        rules::SPAD_UNWRITTEN,
        rules::SPAD_OVERLAP,
        rules::FENCE_REDUNDANT,
        rules::STORE_DEAD,
    ];
    assert_eq!(covered.len(), 12);
    let unique: std::collections::BTreeSet<&str> = covered.into_iter().collect();
    assert_eq!(unique.len(), 12, "duplicate rule in the coverage list");
}
