//! Scratchpad-residency pass: replay every `mvin` / `compute` / `mvout`
//! against the modelled scratchpad geometry.
//!
//! Commands carry physical row addresses, so the pass can check three
//! things the hardware never will (Gemmini's DMA engine wraps silently):
//!
//! * accesses stay inside the banked capacity ([`rules::SPAD_OOB`]),
//! * an `mvout` only reads rows some earlier command wrote
//!   ([`rules::SPAD_UNWRITTEN`]), and
//! * writes don't straddle two distinct live allocations
//!   ([`rules::SPAD_OVERLAP`] — a warning, because streaming kernels
//!   deliberately refill bounce buffers in place).
//!
//! A `rows × cols` access covers `rows * ceil(cols/DIM)` consecutive
//! scratchpad rows starting at its base address — the column-block-major
//! layout the Gemmini code generator uses. Rewriting an existing region
//! (same span, or a sub-span, or an exact coalescing of whole adjacent
//! regions) is a refill and stays silent.

use crate::diag::{rules, Diagnostic};
use crate::SpadShape;
use soc_isa::{OpClass, Payload, RoccCmd, Trace};
use std::collections::BTreeMap;

/// Live allocations: base row → end row (exclusive).
struct Regions {
    map: BTreeMap<u32, u32>,
}

enum WriteOutcome {
    /// New region, or refill of an existing one.
    Clean,
    /// The write straddled distinct regions (merged afterwards to avoid
    /// cascading warnings).
    Straddle,
}

impl Regions {
    fn new() -> Self {
        Regions {
            map: BTreeMap::new(),
        }
    }

    fn overlapping(&self, s: u32, e: u32) -> Vec<(u32, u32)> {
        self.map
            .range(..e)
            .filter(|&(&base, &end)| end > s && base < e)
            .map(|(&base, &end)| (base, end))
            .collect()
    }

    fn write(&mut self, s: u32, e: u32) -> WriteOutcome {
        let over = self.overlapping(s, e);
        if over.is_empty() {
            self.map.insert(s, e);
            return WriteOutcome::Clean;
        }
        // Sub-span of a single region: a refill (e.g. a compute tile
        // landing inside its output matrix's region).
        if let [(base, end)] = over[..] {
            if s >= base && e <= end {
                return WriteOutcome::Clean;
            }
        }
        // Every overlapped region fully inside the write: coalesce (e.g.
        // re-mvin of a matrix whose region was built tile by tile).
        let covers_all = over.iter().all(|&(base, end)| base >= s && end <= e);
        let lo = s.min(over[0].0);
        let hi = e.max(over.last().unwrap().1);
        for (base, _) in &over {
            self.map.remove(base);
        }
        self.map.insert(lo, hi);
        if covers_all {
            WriteOutcome::Clean
        } else {
            WriteOutcome::Straddle
        }
    }

    /// First row in `[s, e)` not covered by any region, if any.
    fn first_gap(&self, s: u32, e: u32) -> Option<u32> {
        let mut cursor = s;
        for (base, end) in self.overlapping(s, e) {
            if base > cursor {
                return Some(cursor);
            }
            cursor = cursor.max(end);
        }
        if cursor < e {
            Some(cursor)
        } else {
            None
        }
    }
}

fn span(base: u32, rows: u16, cols: u16, dim: usize) -> (u32, u32) {
    let len = rows as u64 * (cols as usize).div_ceil(dim) as u64;
    (base, base.saturating_add(len as u32))
}

pub(crate) fn check(trace: &Trace, spad: SpadShape, diags: &mut Vec<Diagnostic>) {
    let mut regions = Regions::new();
    for (i, op) in trace.ops().iter().enumerate() {
        if op.class != OpClass::Rocc {
            continue;
        }
        let Payload::Rocc(cmd) = op.payload else {
            continue;
        };
        match cmd {
            RoccCmd::Mvin { rows, cols, base }
            | RoccCmd::ComputeTile {
                rows,
                cols,
                out_base: base,
                ..
            } => {
                let (s, e) = span(base, rows, cols, spad.dim);
                if e > spad.rows {
                    diags.push(Diagnostic::error(
                        rules::SPAD_OOB,
                        i,
                        format!(
                            "write of rows {s}..{e} runs past the {}-row scratchpad",
                            spad.rows
                        ),
                    ));
                    continue;
                }
                if let WriteOutcome::Straddle = regions.write(s, e) {
                    diags.push(Diagnostic::warn(
                        rules::SPAD_OVERLAP,
                        i,
                        format!("write of rows {s}..{e} straddles distinct live allocations"),
                    ));
                }
            }
            RoccCmd::Mvout {
                rows, cols, base, ..
            } => {
                let (s, e) = span(base, rows, cols, spad.dim);
                if e > spad.rows {
                    diags.push(Diagnostic::error(
                        rules::SPAD_OOB,
                        i,
                        format!(
                            "read of rows {s}..{e} runs past the {}-row scratchpad",
                            spad.rows
                        ),
                    ));
                    continue;
                }
                if let Some(gap) = regions.first_gap(s, e) {
                    diags.push(Diagnostic::error(
                        rules::SPAD_UNWRITTEN,
                        i,
                        format!("mvout reads rows {s}..{e} but row {gap} was never written"),
                    ));
                }
            }
            // LoopMatmul sequences its own internal scratchpad traffic.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_isa::TraceBuilder;

    const SPAD: SpadShape = SpadShape { rows: 64, dim: 4 };

    fn run(trace: &Trace) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        check(trace, SPAD, &mut diags);
        diags
    }

    fn mvin(b: &mut TraceBuilder, rows: u16, cols: u16, base: u32) {
        b.rocc(RoccCmd::Mvin { rows, cols, base }, &[]);
    }

    fn mvout(b: &mut TraceBuilder, rows: u16, cols: u16, base: u32) {
        b.rocc(
            RoccCmd::Mvout {
                rows,
                cols,
                pool_stride: 1,
                base,
            },
            &[],
        );
    }

    #[test]
    fn in_bounds_round_trip_is_clean() {
        let mut b = TraceBuilder::new();
        mvin(&mut b, 12, 12, 0); // 12 * ceil(12/4) = 36 rows
        mvout(&mut b, 12, 12, 0);
        assert!(run(&b.finish()).is_empty());
    }

    #[test]
    fn capacity_overrun_is_an_error() {
        let mut b = TraceBuilder::new();
        mvin(&mut b, 16, 20, 0); // 16 * 5 = 80 rows > 64
        let diags = run(&b.finish());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, rules::SPAD_OOB);
    }

    #[test]
    fn mvout_of_unwritten_rows_is_an_error() {
        let mut b = TraceBuilder::new();
        mvin(&mut b, 4, 4, 0);
        mvout(&mut b, 8, 4, 0); // rows 4..8 were never written
        let diags = run(&b.finish());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, rules::SPAD_UNWRITTEN);
        assert!(diags[0].message.contains("row 4"));
    }

    #[test]
    fn straddling_write_warns() {
        let mut b = TraceBuilder::new();
        mvin(&mut b, 8, 4, 0); // region 0..8
        mvin(&mut b, 8, 4, 8); // region 8..16
        mvin(&mut b, 8, 4, 4); // straddles both
        let diags = run(&b.finish());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, rules::SPAD_OVERLAP);
        assert_eq!(diags[0].index, 2);
    }

    #[test]
    fn refill_and_coalescing_are_silent() {
        let mut b = TraceBuilder::new();
        mvin(&mut b, 8, 4, 0); // region 0..8
        mvin(&mut b, 8, 4, 0); // exact refill
        mvin(&mut b, 4, 4, 2); // sub-span refill
        mvin(&mut b, 8, 4, 8); // adjacent region 8..16
        mvin(&mut b, 16, 4, 0); // covers both whole regions: coalesce
        mvout(&mut b, 16, 4, 0);
        assert!(run(&b.finish()).is_empty());
    }

    #[test]
    fn compute_tile_writes_count_as_writes() {
        let mut b = TraceBuilder::new();
        b.rocc(
            RoccCmd::ComputeTile {
                rows: 4,
                cols: 1,
                ks: 4,
                gemv: false,
                out_base: 10,
            },
            &[],
        );
        mvout(&mut b, 4, 1, 10);
        assert!(run(&b.finish()).is_empty());
    }
}
