//! # soc-verify — static analysis over generated micro-op traces
//!
//! Every software mapping in this workspace is a code generator emitting
//! [`soc_isa::Trace`]s, and the timing models trust those traces: a
//! fabricated register, a stale `vsetvli`, or a missing fence silently
//! produces wrong cycle counts instead of a crash. This crate is the
//! safety net — a multi-pass static analyzer that replays a trace against
//! the architectural rules the generators must obey and reports structured
//! [`Diagnostic`]s.
//!
//! ## Passes
//!
//! | pass | rules | severity |
//! |------|-------|----------|
//! | SSA discipline | `ssa-use-before-def`, `ssa-redefinition` | error |
//! | vector config | `vset-missing`, `vset-stale` | error |
//! | vector config | `vset-dead` | perf |
//! | accelerator hazards | `hazard-load-race`, `hazard-mvin-race` | error |
//! | scratchpad residency | `spad-oob`, `spad-unwritten` | error |
//! | scratchpad residency | `spad-overlap` | warn |
//! | perf lints | `fence-redundant`, `store-dead` | perf |
//!
//! The scratchpad pass needs to know the accelerator geometry; pass it via
//! [`VerifyConfig::with_spad`], or use [`VerifyConfig::default`] to skip
//! that pass for scalar/vector targets.
//!
//! ## Example
//!
//! ```
//! use soc_isa::TraceBuilder;
//! use soc_verify::{verify, VerifyConfig};
//!
//! let mut b = TraceBuilder::new();
//! b.vload(12, 2); // vector op with no vsetvli in effect
//! let report = verify(&b.finish(), &VerifyConfig::default());
//! assert!(!report.is_clean());
//! assert_eq!(report.diagnostics()[0].rule, "vset-missing");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diag;
mod hazard;
mod lints;
mod scratchpad;
mod ssa;
mod vconfig;

pub use diag::{rules, Diagnostic, Report, Severity};

use soc_isa::Trace;

/// Banked-scratchpad geometry of the accelerator a trace targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpadShape {
    /// Capacity in rows of `dim` elements.
    pub rows: u32,
    /// Mesh dimension — elements per scratchpad row.
    pub dim: usize,
}

/// Target-specific facts the analyzer needs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyConfig {
    /// Scratchpad geometry, when the trace targets a Gemmini-style
    /// accelerator. `None` disables the residency pass.
    pub spad: Option<SpadShape>,
}

impl VerifyConfig {
    /// Configuration with the scratchpad-residency pass enabled.
    pub fn with_spad(rows: u32, dim: usize) -> Self {
        VerifyConfig {
            spad: Some(SpadShape { rows, dim }),
        }
    }
}

/// Whether traces should be statically verified before being fed to a
/// timing model: always in debug builds, and in release builds when the
/// `SOC_VERIFY=1` environment variable is set (read once per process).
pub fn verification_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| {
        cfg!(debug_assertions)
            || std::env::var("SOC_VERIFY").is_ok_and(|v| v != "0" && !v.is_empty())
    })
}

/// An error-severity verification finding that rejected a trace.
#[derive(Debug, Clone)]
pub struct TraceRejection {
    /// What generated the rejected trace (executor/pipeline name).
    pub backend: String,
    /// The rendered report.
    pub report: String,
}

/// The shared verification gate every timing model runs its generated
/// traces through: a no-op when [`verification_enabled`] is off,
/// otherwise rejects any trace with error-severity findings.
///
/// # Errors
///
/// [`TraceRejection`] carrying `what` and the rendered report when the
/// trace is not clean.
pub fn gate(trace: &Trace, config: &VerifyConfig, what: &str) -> Result<(), TraceRejection> {
    if !verification_enabled() {
        return Ok(());
    }
    let report = verify(trace, config);
    if report.is_clean() {
        Ok(())
    } else {
        Err(TraceRejection {
            backend: what.to_string(),
            report: report.render(),
        })
    }
}

/// Runs every pass over `trace` and returns the combined report, ordered
/// by op index (ties broken by severity).
pub fn verify(trace: &Trace, config: &VerifyConfig) -> Report {
    let mut diags = Vec::new();
    ssa::check(trace, &mut diags);
    vconfig::check(trace, &mut diags);
    hazard::check(trace, &mut diags);
    if let Some(spad) = config.spad {
        scratchpad::check(trace, spad, &mut diags);
    }
    lints::check(trace, &mut diags);
    diags.sort_by_key(|d| (d.index, d.severity));
    Report { diags }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_isa::{RoccCmd, TraceBuilder};

    #[test]
    fn empty_trace_is_clean() {
        let report = verify(&Trace::new(), &VerifyConfig::default());
        assert!(report.is_clean());
        assert!(report.diagnostics().is_empty());
        assert!(report.render().contains("clean"));
    }

    #[test]
    fn findings_are_ordered_by_index() {
        let mut b = TraceBuilder::new();
        b.vload(4, 1); // vset-missing at 0
        let x = b.load();
        b.store(&[x]); // store-dead at 2
        let report = verify(&b.finish(), &VerifyConfig::default());
        let idx: Vec<usize> = report.diagnostics().iter().map(|d| d.index).collect();
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        assert_eq!(idx, sorted);
    }

    #[test]
    fn spad_pass_only_runs_when_configured() {
        let mut b = TraceBuilder::new();
        b.rocc(
            RoccCmd::Mvout {
                rows: 4,
                cols: 1,
                pool_stride: 1,
                base: 9999,
            },
            &[],
        );
        b.fence();
        let without = verify(&b.finish(), &VerifyConfig::default());
        assert!(without.is_clean());
        let mut b = TraceBuilder::new();
        b.rocc(
            RoccCmd::Mvout {
                rows: 4,
                cols: 1,
                pool_stride: 1,
                base: 9999,
            },
            &[],
        );
        b.fence();
        let with = verify(&b.finish(), &VerifyConfig::with_spad(64, 4));
        assert_eq!(with.error_count(), 1);
        assert_eq!(with.diagnostics()[0].rule, rules::SPAD_OOB);
    }

    #[test]
    fn render_groups_by_rule_and_caps_output() {
        let mut b = TraceBuilder::new();
        for _ in 0..20 {
            let x = b.load();
            b.store(&[x]);
        }
        let report = verify(&b.finish(), &VerifyConfig::default());
        assert_eq!(report.perf_count(), 20);
        let rendered = report.render();
        assert!(rendered.contains("store-dead (20)"));
        assert!(rendered.contains("and 12 more"));
    }
}
