//! SSA-discipline pass: every virtual register is defined exactly once,
//! before any use.
//!
//! [`soc_isa::TraceBuilder`] allocates destinations from a monotonically
//! increasing counter, so well-formed generators can never trip this pass.
//! A violation means a generator fabricated a `VReg` by hand (or spliced
//! traces from two builders without renumbering) — the dependence edges the
//! timing models walk would then connect unrelated ops.

use crate::diag::{rules, Diagnostic};
use soc_isa::Trace;

/// Dense membership set over the trace's register space.
struct RegSet {
    defined: Vec<bool>,
}

impl RegSet {
    fn new() -> Self {
        RegSet {
            defined: Vec::new(),
        }
    }

    fn contains(&self, r: u32) -> bool {
        self.defined.get(r as usize).copied().unwrap_or(false)
    }

    fn insert(&mut self, r: u32) {
        let i = r as usize;
        if i >= self.defined.len() {
            self.defined.resize(i + 1, false);
        }
        self.defined[i] = true;
    }
}

pub(crate) fn check(trace: &Trace, diags: &mut Vec<Diagnostic>) {
    let mut defined = RegSet::new();
    for (i, op) in trace.ops().iter().enumerate() {
        for src in op.sources() {
            if !defined.contains(src.0) {
                diags.push(Diagnostic::error(
                    rules::SSA_USE_BEFORE_DEF,
                    i,
                    format!("reads v{} before any op defines it", src.0),
                ));
            }
        }
        if let Some(dst) = op.dst {
            if defined.contains(dst.0) {
                diags.push(Diagnostic::error(
                    rules::SSA_REDEF,
                    i,
                    format!("redefines v{}, already written by an earlier op", dst.0),
                ));
            }
            defined.insert(dst.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_isa::{MicroOp, OpClass, TraceBuilder, VReg};

    fn run(trace: &Trace) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        check(trace, &mut diags);
        diags
    }

    #[test]
    fn builder_traces_are_clean() {
        let mut b = TraceBuilder::new();
        let x = b.load();
        let y = b.fp(OpClass::FpFma, &[x, x]);
        let t = b.store(&[y]);
        b.load_after(t);
        assert!(run(&b.finish()).is_empty());
    }

    #[test]
    fn use_before_def_is_flagged() {
        let mut b = TraceBuilder::new();
        // Hand-fabricated register: never defined by any op.
        b.fp(OpClass::FpAdd, &[VReg(999)]);
        let diags = run(&b.finish());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, rules::SSA_USE_BEFORE_DEF);
        assert_eq!(diags[0].index, 0);
    }

    #[test]
    fn redefinition_is_flagged() {
        let mut b = TraceBuilder::new();
        let x = b.load();
        b.push(MicroOp::scalar(OpClass::FpAdd, Some(x), &[]));
        let diags = run(&b.finish());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, rules::SSA_REDEF);
        assert_eq!(diags[0].index, 1);
    }
}
