//! Diagnostic vocabulary shared by all verifier passes.

use std::collections::BTreeMap;
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The trace is wrong: it would deadlock, race, or compute garbage on
    /// the modelled hardware.
    Error,
    /// Suspicious but possibly intentional (e.g. aliasing scratchpad
    /// regions in a streaming kernel).
    Warn,
    /// Correct but wasteful: redundant synchronization or dead work.
    Perf,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
            Severity::Perf => "perf",
        })
    }
}

/// Stable rule identifiers, one per check the verifier performs.
pub mod rules {
    /// A micro-op reads a virtual register no earlier op defined.
    pub const SSA_USE_BEFORE_DEF: &str = "ssa-use-before-def";
    /// Two micro-ops define the same virtual register.
    pub const SSA_REDEF: &str = "ssa-redefinition";
    /// A vector op executes with no `vsetvli` in effect.
    pub const VSET_MISSING: &str = "vset-missing";
    /// A vector op's `vl`/`SEW`/`LMUL` disagree with the active `vsetvli`.
    pub const VSET_STALE: &str = "vset-stale";
    /// A `vsetvli` is replaced (or the trace ends) before any vector op
    /// uses it.
    pub const VSET_DEAD: &str = "vset-dead";
    /// A scalar load issues while an accelerator store (`mvout` /
    /// `loop_matmul`) is outstanding and unfenced.
    pub const HAZARD_LOAD_RACE: &str = "hazard-load-race";
    /// An accelerator DMA read (`mvin` / `loop_matmul`) issues while
    /// scalar stores are unfenced.
    pub const HAZARD_MVIN_RACE: &str = "hazard-mvin-race";
    /// A scratchpad access runs past the configured capacity.
    pub const SPAD_OOB: &str = "spad-oob";
    /// An `mvout` reads scratchpad rows nothing ever wrote.
    pub const SPAD_UNWRITTEN: &str = "spad-unwritten";
    /// A write straddles distinct live scratchpad allocations.
    pub const SPAD_OVERLAP: &str = "spad-overlap";
    /// A fence with nothing to order since the previous fence.
    pub const FENCE_REDUNDANT: &str = "fence-redundant";
    /// A store whose memory token no later op consumes.
    pub const STORE_DEAD: &str = "store-dead";
}

/// A single finding, anchored to one micro-op of the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier (see [`rules`]).
    pub rule: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Index of the offending op in the trace.
    pub index: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    pub(crate) fn error(rule: &'static str, index: usize, message: String) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Error,
            index,
            message,
        }
    }

    pub(crate) fn warn(rule: &'static str, index: usize, message: String) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Warn,
            index,
            message,
        }
    }

    pub(crate) fn perf(rule: &'static str, index: usize, message: String) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Perf,
            index,
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{:<6} [{} {}] {}",
            self.index, self.severity, self.rule, self.message
        )
    }
}

/// Outcome of verifying one trace: every finding from every pass, in op
/// order.
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub(crate) diags: Vec<Diagnostic>,
}

impl Report {
    /// All findings, ordered by op index then severity.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Findings of one severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == severity).count()
    }

    /// Number of [`Severity::Error`] findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of [`Severity::Warn`] findings.
    pub fn warn_count(&self) -> usize {
        self.count(Severity::Warn)
    }

    /// Number of [`Severity::Perf`] findings.
    pub fn perf_count(&self) -> usize {
        self.count(Severity::Perf)
    }

    /// Whether the trace is free of errors (warnings and perf lints are
    /// allowed).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Renders a human-readable report: a per-rule summary followed by the
    /// first few findings of each rule (large traces repeat the same
    /// finding thousands of times; the cap keeps the report readable).
    pub fn render(&self) -> String {
        const PER_RULE: usize = 8;
        let mut out = String::new();
        if self.diags.is_empty() {
            out.push_str("clean: no findings\n");
            return out;
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} perf lint(s)\n",
            self.error_count(),
            self.warn_count(),
            self.perf_count()
        ));
        let mut by_rule: BTreeMap<&'static str, Vec<&Diagnostic>> = BTreeMap::new();
        for d in &self.diags {
            by_rule.entry(d.rule).or_default().push(d);
        }
        for (rule, diags) in by_rule {
            out.push_str(&format!("\n{rule} ({}):\n", diags.len()));
            for d in diags.iter().take(PER_RULE) {
                out.push_str(&format!("  {d}\n"));
            }
            if diags.len() > PER_RULE {
                out.push_str(&format!("  ... and {} more\n", diags.len() - PER_RULE));
            }
        }
        out
    }
}
