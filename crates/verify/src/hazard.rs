//! Decoupled-accelerator hazard analysis.
//!
//! Gemmini's DMA engines are not coherent with the core's load/store
//! pipeline, and its reservation station tracks only the explicit register
//! dependencies the code generator supplies — *not* read-after-write
//! hazards through main memory. Software is responsible for fencing:
//!
//! * the CPU may not **load** data an outstanding `mvout` (or the store
//!   phase of a `loop_matmul` FSM) is still writing, and
//! * the accelerator may not **`mvin`** (or `loop_matmul`-stream) data the
//!   CPU's store buffer has not drained.
//!
//! This pass replays the trace with two hazard windows — unfenced
//! accelerator stores and unfenced CPU stores — and flags the first racing
//! access in each window. One finding per window keeps a single missing
//! fence from producing hundreds of identical diagnostics (a scalar
//! reduction after an unfenced `mvout` loads every element).

use crate::diag::{rules, Diagnostic};
use soc_isa::{MicroOp, OpClass, Payload, RoccCmd, Trace, VReg};

/// Whether `op` carries a direct register dependency on every token in
/// `tokens` — the one non-fence way a load can be ordered after
/// accelerator traffic.
fn depends_on_all(op: &MicroOp, tokens: &[Option<VReg>]) -> bool {
    tokens
        .iter()
        .all(|t| t.is_some_and(|t| op.sources().any(|s| s == t)))
}

pub(crate) fn check(trace: &Trace, diags: &mut Vec<Diagnostic>) {
    // Outstanding accelerator stores since the last fence: op index and
    // result token.
    let mut accel_stores: Vec<(usize, Option<VReg>)> = Vec::new();
    // First unfenced CPU store, if any.
    let mut cpu_store: Option<usize> = None;
    // Per-window dedup flags.
    let mut load_race_reported = false;
    let mut mvin_race_reported = false;

    for (i, op) in trace.ops().iter().enumerate() {
        match op.class {
            OpClass::Fence => {
                accel_stores.clear();
                cpu_store = None;
                load_race_reported = false;
                mvin_race_reported = false;
            }
            OpClass::Store => {
                cpu_store.get_or_insert(i);
                mvin_race_reported = false;
            }
            OpClass::Load if !accel_stores.is_empty() && !load_race_reported => {
                let toks: Vec<Option<VReg>> = accel_stores.iter().map(|&(_, t)| t).collect();
                if !depends_on_all(op, &toks) {
                    let (at, _) = accel_stores[0];
                    diags.push(Diagnostic::error(
                        rules::HAZARD_LOAD_RACE,
                        i,
                        format!(
                            "scalar load races the unfenced accelerator store at \
                             #{at} ({} outstanding)",
                            accel_stores.len()
                        ),
                    ));
                    load_race_reported = true;
                }
            }
            OpClass::Rocc => {
                if let Payload::Rocc(cmd) = op.payload {
                    let dma_reads =
                        matches!(cmd, RoccCmd::Mvin { .. } | RoccCmd::LoopMatmul { .. });
                    let dma_writes =
                        matches!(cmd, RoccCmd::Mvout { .. } | RoccCmd::LoopMatmul { .. });
                    if dma_reads {
                        if let Some(at) = cpu_store {
                            if !mvin_race_reported {
                                diags.push(Diagnostic::error(
                                    rules::HAZARD_MVIN_RACE,
                                    i,
                                    format!(
                                        "accelerator DMA read races the unfenced CPU \
                                         store at #{at}"
                                    ),
                                ));
                                mvin_race_reported = true;
                            }
                        }
                    }
                    if dma_writes {
                        accel_stores.push((i, op.dst));
                        load_race_reported = false;
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_isa::TraceBuilder;

    fn run(trace: &Trace) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        check(trace, &mut diags);
        diags
    }

    fn mvout(b: &mut TraceBuilder) -> VReg {
        b.rocc(
            RoccCmd::Mvout {
                rows: 4,
                cols: 1,
                pool_stride: 1,
                base: 0,
            },
            &[],
        )
    }

    fn mvin(b: &mut TraceBuilder) -> VReg {
        b.rocc(
            RoccCmd::Mvin {
                rows: 4,
                cols: 1,
                base: 0,
            },
            &[],
        )
    }

    #[test]
    fn fenced_round_trip_is_clean() {
        let mut b = TraceBuilder::new();
        mvout(&mut b);
        b.fence();
        b.load();
        let x = b.load();
        b.store(&[x]);
        b.fence();
        mvin(&mut b);
        assert!(run(&b.finish()).is_empty());
    }

    #[test]
    fn load_racing_mvout_is_an_error() {
        let mut b = TraceBuilder::new();
        mvout(&mut b);
        b.load();
        b.load();
        let diags = run(&b.finish());
        // One finding for the whole window, not one per load.
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, rules::HAZARD_LOAD_RACE);
        assert_eq!(diags[0].index, 1);
    }

    #[test]
    fn token_dependent_load_is_ordered() {
        let mut b = TraceBuilder::new();
        let t = mvout(&mut b);
        b.load_after(t);
        assert!(run(&b.finish()).is_empty());
    }

    #[test]
    fn mvin_racing_cpu_store_is_an_error() {
        let mut b = TraceBuilder::new();
        let x = b.load();
        b.store(&[x]);
        mvin(&mut b);
        let diags = run(&b.finish());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, rules::HAZARD_MVIN_RACE);
        assert_eq!(diags[0].index, 2);
    }

    #[test]
    fn loop_matmul_is_both_a_dma_read_and_write() {
        let mut b = TraceBuilder::new();
        let x = b.load();
        b.store(&[x]);
        b.rocc(RoccCmd::LoopMatmul { m: 8, n: 8, k: 8 }, &[]);
        b.load();
        let diags = run(&b.finish());
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0].rule, rules::HAZARD_MVIN_RACE);
        assert_eq!(diags[1].rule, rules::HAZARD_LOAD_RACE);
    }
}
