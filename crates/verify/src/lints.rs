//! Performance lints: findings that don't make a trace wrong, just slower
//! than it needs to be.
//!
//! * [`rules::FENCE_REDUNDANT`] — a fence orders accelerator DMA against
//!   CPU memory traffic; if nothing fence-ordered (no RoCC command, no
//!   scalar store) happened since the previous fence, it only stalls the
//!   frontend. The paper measures fences at hundreds of cycles each, so a
//!   redundant one is real money.
//! * [`rules::STORE_DEAD`] — a store whose memory token no later op
//!   consumes. Within a fused kernel that usually marks a value that
//!   could have stayed in registers (the memory round-trip the paper's
//!   operator fusion removes); stores that publish final results to the
//!   caller also trip it, which is why it's a lint and not an error.

use crate::diag::{rules, Diagnostic};
use soc_isa::{OpClass, Trace};

pub(crate) fn check(trace: &Trace, diags: &mut Vec<Diagnostic>) {
    // Registers consumed anywhere in the trace, for dead-store detection.
    let mut consumed = vec![false; 0];
    for op in trace.ops() {
        for src in op.sources() {
            let i = src.0 as usize;
            if i >= consumed.len() {
                consumed.resize(i + 1, false);
            }
            consumed[i] = true;
        }
    }

    // Anything fence-ordered since the previous fence (or trace start)?
    let mut significant = false;
    for (i, op) in trace.ops().iter().enumerate() {
        match op.class {
            OpClass::Fence => {
                if !significant {
                    diags.push(Diagnostic::perf(
                        rules::FENCE_REDUNDANT,
                        i,
                        "fence with no accelerator command or store since the previous fence"
                            .to_string(),
                    ));
                }
                significant = false;
            }
            OpClass::Rocc | OpClass::Store => significant = true,
            _ => {}
        }
        if op.class == OpClass::Store {
            if let Some(tok) = op.dst {
                if !consumed.get(tok.0 as usize).copied().unwrap_or(false) {
                    diags.push(Diagnostic::perf(
                        rules::STORE_DEAD,
                        i,
                        format!("store token v{} is never consumed", tok.0),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_isa::{RoccCmd, TraceBuilder};

    fn run(trace: &Trace) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        check(trace, &mut diags);
        diags
    }

    #[test]
    fn fence_after_rocc_is_significant() {
        let mut b = TraceBuilder::new();
        b.rocc(RoccCmd::Config, &[]);
        b.fence();
        assert!(run(&b.finish()).is_empty());
    }

    #[test]
    fn back_to_back_fences_are_redundant() {
        let mut b = TraceBuilder::new();
        b.rocc(RoccCmd::Config, &[]);
        b.fence();
        b.fence();
        let diags = run(&b.finish());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, rules::FENCE_REDUNDANT);
        assert_eq!(diags[0].index, 2);
    }

    #[test]
    fn leading_fence_is_redundant() {
        let mut b = TraceBuilder::new();
        b.fence();
        let diags = run(&b.finish());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, rules::FENCE_REDUNDANT);
    }

    #[test]
    fn consumed_store_token_is_clean() {
        let mut b = TraceBuilder::new();
        let x = b.load();
        let t = b.store(&[x]);
        b.load_after(t);
        assert!(run(&b.finish()).is_empty());
    }

    #[test]
    fn unconsumed_store_token_is_a_lint() {
        let mut b = TraceBuilder::new();
        let x = b.load();
        b.store(&[x]);
        let diags = run(&b.finish());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, rules::STORE_DEAD);
        assert_eq!(diags[0].index, 1);
    }
}
