//! Vector-configuration state machine: every vector op must execute under
//! a dominating `vsetvli` whose `vl`/`SEW`/`LMUL` agree with the op's own
//! [`soc_isa::VectorSpec`].
//!
//! The hardware silently executes under whatever configuration happens to
//! be architecturally live, so a mismatch is a *correctness* bug: a
//! strip-mined loop tail that forgets to reset `vl`, for example, clips or
//! over-reads its last iteration. That exact bug class is what this pass
//! caught in the Saturn reduction kernels.

use crate::diag::{rules, Diagnostic};
use soc_isa::{OpClass, Payload, Trace, Vtype};

pub(crate) fn check(trace: &Trace, diags: &mut Vec<Diagnostic>) {
    // Index and configuration of the live vsetvli, plus whether any vector
    // op has executed under it yet.
    let mut current: Option<(usize, Vtype)> = None;
    let mut used = false;
    for (i, op) in trace.ops().iter().enumerate() {
        match op.class {
            OpClass::VSet => {
                if let Payload::VSet(cfg) = op.payload {
                    if let Some((prev, _)) = current {
                        if !used {
                            diags.push(Diagnostic::perf(
                                rules::VSET_DEAD,
                                prev,
                                format!("vsetvli replaced by op #{i} before any vector op used it"),
                            ));
                        }
                    }
                    current = Some((i, cfg));
                    used = false;
                }
            }
            OpClass::Vector => {
                if let Payload::Vector(spec) = op.payload {
                    match current {
                        None => diags.push(Diagnostic::error(
                            rules::VSET_MISSING,
                            i,
                            format!(
                                "vector op (vl={}, e{}, m{}) with no vsetvli in effect",
                                spec.vl, spec.sew, spec.lmul
                            ),
                        )),
                        Some((vset_at, cfg)) => {
                            if !cfg.matches(&spec) {
                                diags.push(Diagnostic::error(
                                    rules::VSET_STALE,
                                    i,
                                    format!(
                                        "vector op wants (vl={}, e{}, m{}) but the vsetvli \
                                         at #{vset_at} set (vl={}, e{}, m{})",
                                        spec.vl, spec.sew, spec.lmul, cfg.vl, cfg.sew, cfg.lmul
                                    ),
                                ));
                            }
                        }
                    }
                    used = true;
                }
            }
            _ => {}
        }
    }
    if let Some((i, _)) = current {
        if !used {
            diags.push(Diagnostic::perf(
                rules::VSET_DEAD,
                i,
                "vsetvli still unused when the trace ends".to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_isa::{TraceBuilder, VecOpKind, VectorSpec};

    fn run(trace: &Trace) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        check(trace, &mut diags);
        diags
    }

    #[test]
    fn matching_config_is_clean() {
        let mut b = TraceBuilder::new();
        b.vset_f32(12, 2);
        let v = b.vload(12, 2);
        b.vstore(12, 2, v);
        assert!(run(&b.finish()).is_empty());
    }

    #[test]
    fn missing_vset_is_an_error() {
        let mut b = TraceBuilder::new();
        b.vload(12, 2);
        let diags = run(&b.finish());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, rules::VSET_MISSING);
    }

    #[test]
    fn stale_config_is_an_error() {
        let mut b = TraceBuilder::new();
        b.vset_f32(16, 2);
        b.vload(16, 2);
        // Tail iteration forgot to re-vsetvli for the shorter vl.
        b.vector(VectorSpec::f32(VecOpKind::Arith, 4, 2), &[]);
        let diags = run(&b.finish());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, rules::VSET_STALE);
        assert_eq!(diags[0].index, 2);
    }

    #[test]
    fn dead_vset_is_a_perf_lint() {
        let mut b = TraceBuilder::new();
        b.vset_f32(16, 2);
        b.vset_f32(8, 2);
        b.vload(8, 2);
        let diags = run(&b.finish());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, rules::VSET_DEAD);
        assert_eq!(diags[0].index, 0);
    }

    #[test]
    fn trailing_unused_vset_is_flagged() {
        let mut b = TraceBuilder::new();
        b.vset_f32(16, 2);
        let diags = run(&b.finish());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, rules::VSET_DEAD);
    }
}
