//! # soc-vector — Saturn short-vector unit timing model
//!
//! Models the vector-machine corner of the paper's design space: **Saturn**,
//! a compact RVV vector unit tightly integrated with an in-order scalar
//! core (Rocket or Shuttle). The model captures the microarchitectural
//! mechanisms the paper's Saturn analysis turns on:
//!
//! * **Occupancy accounting** — a vector instruction occupies its pipe for
//!   `⌈VL·SEW/DLEN⌉` cycles (one element group per cycle), so halving DLEN
//!   halves throughput for long vectors but changes nothing for the 4- and
//!   12-element operands of TinyMPC's iterative kernels.
//! * **LMUL register grouping** — grouped instructions cover more elements
//!   per instruction (relieving the scalar frontend, the win for
//!   strip-mining kernels) but occupy the sequencer for at least `LMUL`
//!   cycles, which *hurts* short-vector iterative kernels (Figure 4).
//! * **Serial reductions** — Saturn implements `vfred*` one element per
//!   cycle, which is why the hand-optimized GEMV uses `vfmacc.vf`
//!   broadcast-scalar accumulation instead of in-register reductions.
//! * **Decoupled command queue** — the scalar core stalls when the queue
//!   fills; with single-issue Rocket in front, short-vector code becomes
//!   frontend-bound, motivating both the Shuttle frontend and LMUL.
//! * **Chaining** — dependent vector instructions overlap element groups.
//!
//! The crate also hosts the vector software mappings ([`VectorKernels`]):
//! the vectorized-`matlib` library style and the hand-optimized fused +
//! unrolled style of Section V-A of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codegen;
mod config;
mod model;

pub use codegen::{VectorKernels, VectorStyle};
pub use config::SaturnConfig;
pub use model::SaturnUnit;
