//! Saturn configuration points.

/// Configuration of a Saturn vector unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaturnConfig {
    /// Configuration name, e.g. `"V512D256"`.
    pub name: &'static str,
    /// Vector register length in bits.
    pub vlen: u32,
    /// Datapath width in bits (element groups of `dlen/sew` elements are
    /// processed per cycle).
    pub dlen: u32,
    /// Depth of the scalar-to-vector command queue.
    pub queue_depth: usize,
    /// Dispatch-to-first-element latency of a vector instruction.
    pub startup_latency: u64,
    /// Extra cycles before a chained consumer can start behind its
    /// producer.
    pub chain_latency: u64,
    /// Scalar-to-vector dispatch-port occupancy per vector instruction:
    /// the handshake between the scalar pipeline and the vector sequencer
    /// sustains at most one vector instruction per `dispatch_penalty`
    /// cycles. This is the frontend bottleneck that motivates both the
    /// Shuttle frontend and LMUL register grouping in the paper.
    pub dispatch_penalty: u64,
}

impl SaturnConfig {
    /// The reference V512 D128 design (4 f32 lanes).
    pub fn v512d128() -> Self {
        SaturnConfig {
            name: "V512D128",
            vlen: 512,
            dlen: 128,
            queue_depth: 4,
            startup_latency: 4,
            chain_latency: 2,
            dispatch_penalty: 3,
        }
    }

    /// The reference V512 D256 design (8 f32 lanes).
    pub fn v512d256() -> Self {
        SaturnConfig {
            name: "V512D256",
            ..Self::v512d128()
        }
        .with_dlen(256)
    }

    /// A V512 D512 design (16 f32 lanes) — the equal-PE comparison point
    /// against a 4×4 Gemmini mesh in the paper's Figure 19.
    pub fn v512d512() -> Self {
        SaturnConfig {
            name: "V512D512",
            ..Self::v512d128()
        }
        .with_dlen(512)
    }

    /// An area-minimal V256 D64 design (2 f32 lanes) — the paper's open
    /// question: "minimal Saturn configurations could result in improved
    /// performance in this domain due to Saturn's instruction sequencing".
    pub fn v256d64() -> Self {
        SaturnConfig {
            name: "V256D64",
            vlen: 256,
            ..Self::v512d128()
        }
        .with_dlen(64)
    }

    /// A small V256 D128 design (4 f32 lanes, half the register file).
    pub fn v256d128() -> Self {
        SaturnConfig {
            name: "V256D128",
            vlen: 256,
            ..Self::v512d128()
        }
    }

    fn with_dlen(mut self, dlen: u32) -> Self {
        self.dlen = dlen;
        self
    }

    /// Number of `sew`-bit lanes (elements processed per cycle).
    pub fn lanes(&self, sew: u8) -> u32 {
        (self.dlen / sew as u32).max(1)
    }

    /// Maximum vector length for a given element width and LMUL.
    pub fn vlmax(&self, sew: u8, lmul: u8) -> u32 {
        self.vlen * lmul as u32 / sew as u32
    }

    /// All Saturn configurations profiled in the paper.
    pub fn all() -> Vec<SaturnConfig> {
        vec![Self::v512d128(), Self::v512d256(), Self::v512d512()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vlmax_and_lanes() {
        let c = SaturnConfig::v512d128();
        assert_eq!(c.lanes(32), 4);
        assert_eq!(c.vlmax(32, 1), 16);
        assert_eq!(c.vlmax(32, 8), 128);
        assert_eq!(SaturnConfig::v512d256().lanes(32), 8);
        assert_eq!(SaturnConfig::v512d512().lanes(32), 16);
    }
}
