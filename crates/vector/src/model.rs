//! The Saturn vector-unit timing model (an [`Accelerator`]).

use crate::SaturnConfig;
use soc_cpu::{Accelerator, DispatchResult};
use soc_isa::{Cycles, MicroOp, Payload, VReg, VecOpKind, VectorSpec};
use std::collections::{HashMap, VecDeque};

/// Timing state of one in-flight or completed vector instruction.
#[derive(Debug, Clone, Copy)]
struct VInst {
    start: Cycles,
    finish: Cycles,
}

/// Saturn: a decoupled short-vector unit fed by an in-order scalar core.
///
/// Two execution pipes are modelled — a memory pipe (vector loads/stores)
/// and an arithmetic pipe — each processing one element group
/// (`DLEN/SEW` elements) per cycle. Dependent instructions chain: a
/// consumer may begin `chain_latency` cycles after its producer starts,
/// and finishes no earlier than one cycle after its producer finishes.
///
/// # Examples
///
/// ```
/// use soc_cpu::{simulate_with_accel, CoreConfig};
/// use soc_isa::TraceBuilder;
/// use soc_vector::{SaturnConfig, SaturnUnit};
///
/// let mut b = TraceBuilder::new();
/// let v = b.vload(16, 1);
/// b.vstore(16, 1, v);
/// let mut saturn = SaturnUnit::new(SaturnConfig::v512d128());
/// let cycles = simulate_with_accel(&CoreConfig::rocket(), &b.finish(), &mut saturn);
/// assert!(cycles >= 8); // two instructions, 4 element groups each
/// ```
#[derive(Debug, Clone)]
pub struct SaturnUnit {
    config: SaturnConfig,
    /// Per-register production times for chaining.
    regs: HashMap<VReg, VInst>,
    /// Busy horizon of the memory pipe.
    mem_free: Cycles,
    /// Busy horizon of the arithmetic pipe.
    arith_free: Cycles,
    /// Start cycles of queued (dispatched, not yet started) instructions.
    queue: VecDeque<Cycles>,
    /// Busy horizon of the scalar-to-vector dispatch port.
    port_free: Cycles,
    /// Completion horizon of all work, including stores.
    drain: Cycles,
    /// Total element-group cycles of useful work (for utilization
    /// reporting).
    busy_cycles: Cycles,
}

impl SaturnUnit {
    /// Creates an idle Saturn unit.
    pub fn new(config: SaturnConfig) -> Self {
        SaturnUnit {
            config,
            regs: HashMap::new(),
            mem_free: 0,
            arith_free: 0,
            queue: VecDeque::new(),
            port_free: 0,
            drain: 0,
            busy_cycles: 0,
        }
    }

    /// The unit's configuration.
    pub fn config(&self) -> &SaturnConfig {
        &self.config
    }

    /// Cycles the execution pipes spent on element groups (utilization
    /// numerator for the run since the last reset).
    pub fn busy_cycles(&self) -> Cycles {
        self.busy_cycles
    }

    /// Occupancy in cycles of an instruction with the given spec.
    pub fn occupancy(&self, spec: &VectorSpec) -> Cycles {
        let lanes = self.config.lanes(spec.sew) as u64;
        let vl = spec.vl as u64;
        match spec.kind {
            // Serial reduction: one element per cycle (the paper's
            // observation about Saturn's vfred* implementation).
            VecOpKind::Reduction => vl.max(1),
            // Strided accesses extract one element per cycle.
            VecOpKind::LoadStrided | VecOpKind::StoreStrided => vl.max(1),
            // Scalar moves/broadcasts take a cycle per register group.
            VecOpKind::Move => spec.lmul as u64,
            // Unit-stride memory and arithmetic process element groups.
            // A register-grouped (LMUL > 1) instruction is sequenced one
            // register at a time over the whole group, regardless of VL —
            // the mechanism that makes high LMUL counter-productive for
            // the short vectors of the iterative kernels (Figure 4) while
            // long strip-mines are unaffected (their VL fills the group).
            VecOpKind::Arith | VecOpKind::MulAdd | VecOpKind::Load | VecOpKind::Store => {
                vl.div_ceil(lanes).max(self.group_walk(spec.lmul))
            }
            // `VecOpKind` is non-exhaustive; treat unknown future kinds as
            // ordinary element-group arithmetic.
            _ => vl.div_ceil(lanes).max(self.group_walk(spec.lmul)),
        }
    }

    /// Cycles to walk a register group of `lmul` registers (0 when not
    /// grouped).
    fn group_walk(&self, lmul: u8) -> Cycles {
        if lmul > 1 {
            lmul as u64 * (self.config.vlen as u64).div_ceil(self.config.dlen as u64)
        } else {
            0
        }
    }

    fn is_mem(kind: VecOpKind) -> bool {
        matches!(
            kind,
            VecOpKind::Load | VecOpKind::Store | VecOpKind::LoadStrided | VecOpKind::StoreStrided
        )
    }
}

impl Accelerator for SaturnUnit {
    fn dispatch(
        &mut self,
        op: &MicroOp,
        issue_cycle: Cycles,
        operands_ready: Cycles,
    ) -> DispatchResult {
        let spec = match op.payload {
            Payload::Vector(spec) => spec,
            // A non-vector command reaching Saturn is a modelling error in
            // the codegen; treat it as a 1-cycle no-op.
            _ => {
                return DispatchResult {
                    accepted_at: issue_cycle.max(operands_ready),
                    completes_at: issue_cycle.max(operands_ready) + 1,
                }
            }
        };

        // Dispatch-port occupancy: the scalar core hands over at most one
        // vector instruction per `dispatch_penalty` cycles.
        let mut accepted = issue_cycle.max(operands_ready).max(self.port_free);
        // Queue backpressure: an entry frees when its instruction starts.
        while self.queue.len() >= self.config.queue_depth {
            let head_start = self.queue.pop_front().expect("queue nonempty");
            accepted = accepted.max(head_start);
        }
        self.port_free = accepted + self.config.dispatch_penalty;

        // Chaining: consumers may start `chain_latency` after producers
        // start, and finish after producers finish.
        let mut chain_start = accepted;
        let mut chain_finish = 0;
        for src in op.sources() {
            if let Some(p) = self.regs.get(&src) {
                chain_start = chain_start.max(p.start + self.config.chain_latency);
                chain_finish = chain_finish.max(p.finish + 1);
            }
        }

        let occ = self.occupancy(&spec);
        let pipe_free = if Self::is_mem(spec.kind) {
            self.mem_free
        } else {
            self.arith_free
        };
        let start = chain_start.max(pipe_free);
        let finish = (start + self.config.startup_latency + occ - 1).max(chain_finish);

        if Self::is_mem(spec.kind) {
            self.mem_free = start + occ;
        } else {
            self.arith_free = start + occ;
        }
        self.busy_cycles += occ;
        self.queue.push_back(start);
        self.drain = self.drain.max(finish);

        if let Some(dst) = op.dst {
            self.regs.insert(dst, VInst { start, finish });
        }

        DispatchResult {
            accepted_at: accepted,
            completes_at: finish,
        }
    }

    fn drain_cycle(&self) -> Cycles {
        self.drain
    }

    fn reset(&mut self) {
        self.regs.clear();
        self.queue.clear();
        self.mem_free = 0;
        self.arith_free = 0;
        self.port_free = 0;
        self.drain = 0;
        self.busy_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_cpu::{simulate_with_accel, CoreConfig};
    use soc_isa::{TraceBuilder, VectorSpec};

    fn occ(cfg: SaturnConfig, kind: VecOpKind, vl: u32, lmul: u8) -> Cycles {
        SaturnUnit::new(cfg).occupancy(&VectorSpec::f32(kind, vl, lmul))
    }

    #[test]
    fn occupancy_follows_dlen() {
        let d128 = SaturnConfig::v512d128();
        let d256 = SaturnConfig::v512d256();
        assert_eq!(occ(d128, VecOpKind::Arith, 16, 1), 4);
        assert_eq!(occ(d256, VecOpKind::Arith, 16, 1), 2);
        // Short vectors see no DLEN benefit.
        assert_eq!(occ(d128, VecOpKind::Arith, 4, 1), 1);
        assert_eq!(occ(d256, VecOpKind::Arith, 4, 1), 1);
    }

    #[test]
    fn lmul_floors_occupancy() {
        let d256 = SaturnConfig::v512d256();
        // vl=12 fits in 2 element groups, but LMUL=8 walks 8 registers of
        // 2 element groups each.
        assert_eq!(occ(d256, VecOpKind::Arith, 12, 1), 2);
        assert_eq!(occ(d256, VecOpKind::Arith, 12, 8), 16);
        // Long strip-mines amortize: vl=128 with LMUL=8 is 16 groups — the
        // same as the group walk, so nothing is wasted.
        assert_eq!(occ(d256, VecOpKind::Arith, 128, 8), 16);
    }

    #[test]
    fn reductions_are_serial() {
        let d256 = SaturnConfig::v512d256();
        assert_eq!(occ(d256, VecOpKind::Reduction, 100, 1), 100);
    }

    #[test]
    fn queue_backpressure_bounds_runahead() {
        // Many long vector ops from a 1-wide core: the queue (depth 4)
        // fills and the frontend stalls at the vector unit's rate.
        let mut b = TraceBuilder::new();
        for _ in 0..32 {
            b.vector(VectorSpec::f32(VecOpKind::Arith, 128, 8), &[]);
        }
        let mut saturn = SaturnUnit::new(SaturnConfig::v512d128());
        let cycles = simulate_with_accel(&CoreConfig::rocket(), &b.finish(), &mut saturn);
        // 32 ops * 32 groups each = 1024 busy cycles on one pipe.
        assert!(cycles >= 1024, "got {cycles}");
    }

    #[test]
    fn chaining_overlaps_load_and_arith() {
        // load -> dependent arith, repeated: with chaining, a dependent
        // arith does not wait for its producer load to fully finish. The
        // run is dispatch-port bound (2 instructions × 3-cycle port
        // occupancy per pair); without chaining each pair would
        // additionally serialize on the 7-cycle load completion.
        let mut b = TraceBuilder::new();
        for _ in 0..16 {
            let v = b.vload(16, 1);
            b.vector(VectorSpec::f32(VecOpKind::Arith, 16, 1), &[v]);
        }
        let mut saturn = SaturnUnit::new(SaturnConfig::v512d128());
        let cycles = simulate_with_accel(&CoreConfig::rocket(), &b.finish(), &mut saturn);
        // Unchained lower bound would be ~16 * 13; chained is port-bound.
        assert!(cycles < 16 * 13, "got {cycles}");
        assert!(cycles >= 96, "got {cycles}");
    }

    #[test]
    fn short_vectors_are_frontend_bound_on_rocket() {
        // vl=4 ops occupy the backend 1 cycle each, but the scalar-vector
        // dispatch interface sustains one instruction per
        // `dispatch_penalty` cycles — the backend idles (the paper's
        // motivation for Shuttle + LMUL).
        let n: u64 = 64;
        let cfg = SaturnConfig::v512d256();
        let mut b = TraceBuilder::new();
        for _ in 0..n {
            b.vector(VectorSpec::f32(VecOpKind::Arith, 4, 1), &[]);
        }
        let mut saturn = SaturnUnit::new(cfg);
        let cycles = simulate_with_accel(&CoreConfig::rocket(), &b.finish(), &mut saturn);
        assert!(cycles >= n * cfg.dispatch_penalty, "got {cycles}");
        // Backend was busy only n cycles out of ~3n: utilization < 40%.
        assert_eq!(saturn.busy_cycles(), n);
    }

    #[test]
    fn drain_covers_outstanding_stores() {
        let mut b = TraceBuilder::new();
        let v = b.vload(128, 8);
        b.vstore(128, 8, v);
        b.fence();
        let mut saturn = SaturnUnit::new(SaturnConfig::v512d128());
        let cycles = simulate_with_accel(&CoreConfig::rocket(), &b.finish(), &mut saturn);
        // Load 32 groups + store 32 groups with chaining overlap.
        assert!(cycles >= 34, "got {cycles}");
    }

    #[test]
    fn reset_clears_state() {
        let mut saturn = SaturnUnit::new(SaturnConfig::v512d128());
        let mut b = TraceBuilder::new();
        b.vload(16, 1);
        let _ = simulate_with_accel(&CoreConfig::rocket(), &b.finish(), &mut saturn);
        saturn.reset();
        assert_eq!(saturn.busy_cycles(), 0);
        assert_eq!(saturn.drain_cycle(), 0);
    }
}
