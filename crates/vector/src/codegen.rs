//! Vector software mappings of the linear-algebra kernels (Section V-A of
//! the paper).
//!
//! Two styles:
//!
//! * [`VectorStyle::Matlib`] — the vectorized-`matlib` library: every
//!   operator is a separate function (store results, reload in the next
//!   call), with a scalar strip-mining loop (`vsetvli` + bookkeeping +
//!   branch per stripe) and no unrolling.
//! * [`VectorStyle::Fused`] — the hand-optimized mapping: operators fused
//!   across calls (temporaries stay in vector registers), loops fully
//!   unrolled (no scalar bookkeeping), and `vfmacc.vf` broadcast-scalar
//!   GEMV with column-major accumulation.
//!
//! Both styles are parameterized by LMUL so the paper's Figure 4 sweep can
//! be reproduced.

use crate::SaturnConfig;
use soc_isa::{OpClass, TraceBuilder, VReg, VecOpKind, VectorSpec};

/// Vector code-generation style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VectorStyle {
    /// Vectorized `matlib` library calls.
    Matlib,
    /// Hand-optimized: fused operators + software unrolling.
    Fused,
}

/// Vector kernel code generator for a given Saturn configuration.
///
/// # Examples
///
/// ```
/// use soc_cpu::{simulate_with_accel, CoreConfig};
/// use soc_isa::TraceBuilder;
/// use soc_vector::{SaturnConfig, SaturnUnit, VectorKernels, VectorStyle};
///
/// let cfg = SaturnConfig::v512d256();
/// let mut b = TraceBuilder::new();
/// VectorKernels::new(cfg, VectorStyle::Fused, 1).gemv(&mut b, 12, 4);
/// let mut saturn = SaturnUnit::new(cfg);
/// let cycles = simulate_with_accel(&CoreConfig::rocket(), &b.finish(), &mut saturn);
/// assert!(cycles > 0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct VectorKernels {
    config: SaturnConfig,
    style: VectorStyle,
    lmul: u8,
}

impl VectorKernels {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if `lmul` is not 1, 2, 4 or 8.
    pub fn new(config: SaturnConfig, style: VectorStyle, lmul: u8) -> Self {
        assert!(matches!(lmul, 1 | 2 | 4 | 8), "LMUL must be 1, 2, 4 or 8");
        VectorKernels {
            config,
            style,
            lmul,
        }
    }

    /// The configured style.
    pub fn style(&self) -> VectorStyle {
        self.style
    }

    /// The configured LMUL.
    pub fn lmul(&self) -> u8 {
        self.lmul
    }

    fn is_matlib(&self) -> bool {
        self.style == VectorStyle::Matlib
    }

    /// RVV unit-stride memory ops have no immediate address offsets, so
    /// every distinct vector load needs scalar address generation.
    fn vload(&self, b: &mut TraceBuilder, vl: u32) -> VReg {
        b.int_ops(1);
        b.vector(VectorSpec::f32(VecOpKind::Load, vl, self.lmul), &[])
    }

    /// Vector store with its scalar address generation.
    fn vstore(&self, b: &mut TraceBuilder, vl: u32, src: VReg) {
        b.int_ops(1);
        b.vector(VectorSpec::f32(VecOpKind::Store, vl, self.lmul), &[src]);
    }

    fn vlmax(&self) -> u32 {
        self.config.vlmax(32, self.lmul)
    }

    fn call_overhead(&self, b: &mut TraceBuilder) {
        if self.is_matlib() {
            b.int_ops(5);
        }
    }

    fn loop_overhead(&self, b: &mut TraceBuilder) {
        if self.is_matlib() {
            b.int_ops(2);
            b.branch(&[]);
        }
    }

    /// Element-wise strip-mining pass over `n` elements: `inputs` vector
    /// loads per stripe, a chain of `arith_ops` dependent vector arithmetic
    /// ops, one vector store.
    pub fn stripmine(&self, b: &mut TraceBuilder, n: usize, inputs: usize, arith_ops: usize) {
        self.call_overhead(b);
        let vlmax = self.vlmax() as usize;
        let mut remaining = n;
        while remaining > 0 {
            let vl = remaining.min(vlmax) as u32;
            b.vset_f32(vl, self.lmul);
            let loaded: Vec<VReg> = (0..inputs).map(|_| self.vload(b, vl)).collect();
            let mut v = if arith_ops == 0 {
                *loaded.first().expect("stripmine needs inputs or arith ops")
            } else {
                b.vector(
                    VectorSpec::f32(VecOpKind::Arith, vl, self.lmul),
                    &loaded[..loaded.len().min(2)],
                )
            };
            for _ in 1..arith_ops {
                v = b.vector(VectorSpec::f32(VecOpKind::Arith, vl, self.lmul), &[v]);
            }
            self.vstore(b, vl, v);
            remaining -= vl as usize;
            self.loop_overhead(b);
        }
    }

    /// A chain of element-wise operators over `n` elements.
    ///
    /// In the fused style this is a single strip-mining pass with the whole
    /// chain in registers; in `matlib` style each operator is a separate
    /// library call, paying the store/reload round-trip the paper's
    /// operator-fusion optimization removes.
    pub fn fused_stripmine(&self, b: &mut TraceBuilder, n: usize, inputs: usize, arith_ops: usize) {
        match self.style {
            VectorStyle::Matlib => {
                for i in 0..arith_ops.max(1) {
                    let ins = if i == 0 { inputs } else { 2 };
                    self.stripmine(b, n, ins, 1.min(arith_ops));
                }
            }
            VectorStyle::Fused => self.stripmine(b, n, inputs, arith_ops),
        }
    }

    /// GEMV `y = A·x` (`A` is `m × k`).
    ///
    /// The hand-optimized (fused) style uses the column-major `vfmacc.vf`
    /// broadcast mapping the paper converged on; the `matlib` style uses
    /// the naive vectorization of a row-wise dot-product loop —
    /// `vfmul` + serial `vfredosum` per row — which is what "vectorize
    /// every matlib function" yields and why hand-optimization was needed.
    pub fn gemv(&self, b: &mut TraceBuilder, m: usize, k: usize) {
        if self.is_matlib() {
            self.gemv_with_reduction(b, m, k);
            return;
        }
        self.call_overhead(b);
        let vlmax = self.vlmax() as usize;
        let mut row = 0;
        while row < m {
            let vl = (m - row).min(vlmax) as u32;
            b.vset_f32(vl, self.lmul);
            let mut acc = if self.is_matlib() {
                // Function boundary: the accumulator starts from memory.
                self.vload(b, vl)
            } else {
                b.vector(VectorSpec::f32(VecOpKind::Move, vl, self.lmul), &[])
            };
            for _p in 0..k {
                // Scalar load of x[p], broadcast by vfmacc.vf.
                let x = b.load();
                let col = self.vload(b, vl);
                acc = b.vector(
                    VectorSpec::f32(VecOpKind::MulAdd, vl, self.lmul),
                    &[col, x, acc],
                );
                self.loop_overhead(b);
            }
            self.vstore(b, vl, acc);
            row += vl as usize;
            self.loop_overhead(b);
        }
    }

    /// Row-wise GEMV using in-register reductions (`vfredosum`) — the
    /// alternative mapping the paper evaluated and rejected because Saturn
    /// reduces serially. Kept for the ablation benchmarks.
    pub fn gemv_with_reduction(&self, b: &mut TraceBuilder, m: usize, k: usize) {
        self.call_overhead(b);
        let vlmax = self.vlmax() as usize;
        for _i in 0..m {
            let mut partials: Vec<VReg> = Vec::new();
            let mut remaining = k;
            let mut last_vl = 0u32;
            while remaining > 0 {
                let vl = remaining.min(vlmax) as u32;
                b.vset_f32(vl, self.lmul);
                last_vl = vl;
                let a = self.vload(b, vl);
                let x = self.vload(b, vl);
                let prod = b.vector(VectorSpec::f32(VecOpKind::Arith, vl, self.lmul), &[a, x]);
                partials.push(b.vector(
                    VectorSpec::f32(VecOpKind::Reduction, vl, self.lmul),
                    &[prod],
                ));
                remaining -= vl as usize;
                self.loop_overhead(b);
            }
            // Move the reduced scalar out and store. The move runs at
            // vl=1/m1, so the trailing stripe's config must be replaced
            // first — skipping this vsetvli would execute the move under a
            // stale configuration.
            if last_vl != 1 || self.lmul != 1 {
                b.vset_f32(1, 1);
            }
            let s = b.vector(
                VectorSpec::f32(VecOpKind::Move, 1, 1),
                &partials[..partials.len().min(2)],
            );
            b.store(&[s]);
            self.loop_overhead(b);
        }
    }

    /// GEMM `C = A·B` (`A` is `m × k`, `B` is `k × n`), mapped as column
    /// GEMVs with `vfmacc.vf`.
    ///
    /// The hand-optimized style blocks the `j` loop four output columns at
    /// a time so each loaded column of `A` is reused by four `vfmacc.vf`
    /// instructions with different broadcast scalars — quartering the
    /// vector-load pressure on the frontend. The `matlib` style computes
    /// one output column per call, reloading `A` every time.
    pub fn gemm(&self, b: &mut TraceBuilder, m: usize, n: usize, k: usize) {
        self.call_overhead(b);
        let vlmax = self.vlmax() as usize;
        let j_block = if self.is_matlib() { 1 } else { 4 };
        let mut row = 0;
        while row < m {
            let vl = (m - row).min(vlmax) as u32;
            b.vset_f32(vl, self.lmul);
            let mut j = 0;
            while j < n {
                let jb = j_block.min(n - j);
                let mut accs: Vec<VReg> = (0..jb)
                    .map(|_| {
                        if self.is_matlib() {
                            self.vload(b, vl)
                        } else {
                            b.vector(VectorSpec::f32(VecOpKind::Move, vl, self.lmul), &[])
                        }
                    })
                    .collect();
                for _p in 0..k {
                    let col = self.vload(b, vl);
                    for acc in accs.iter_mut() {
                        let x = b.load();
                        *acc = b.vector(
                            VectorSpec::f32(VecOpKind::MulAdd, vl, self.lmul),
                            &[col, x, *acc],
                        );
                    }
                    self.loop_overhead(b);
                }
                for acc in &accs {
                    self.vstore(b, vl, *acc);
                }
                self.loop_overhead(b);
                j += jb;
            }
            row += vl as usize;
        }
    }

    /// Global reduction `max(|x - y|)` over `n` elements. Returns the
    /// register holding the scalar result.
    ///
    /// The fused style keeps a running element-wise max in a vector
    /// register across stripes and reduces once at the end; the library
    /// style reduces serially inside the call.
    pub fn reduce_max_abs_diff(&self, b: &mut TraceBuilder, n: usize) -> VReg {
        self.call_overhead(b);
        let vlmax = self.vlmax() as usize;
        let mut remaining = n;
        let mut running: Option<VReg> = None;
        let mut first_vl = 0u32;
        let mut last_vl = 0u32;
        while remaining > 0 {
            let vl = remaining.min(vlmax) as u32;
            if first_vl == 0 {
                first_vl = vl;
            }
            b.vset_f32(vl, self.lmul);
            last_vl = vl;
            let x = self.vload(b, vl);
            let y = self.vload(b, vl);
            let d = b.vector(VectorSpec::f32(VecOpKind::Arith, vl, self.lmul), &[x, y]);
            let a = b.vector(VectorSpec::f32(VecOpKind::Arith, vl, self.lmul), &[d]);
            running = Some(match running {
                Some(r) => b.vector(VectorSpec::f32(VecOpKind::Arith, vl, self.lmul), &[r, a]),
                None => a,
            });
            remaining -= vl as usize;
            self.loop_overhead(b);
        }
        let acc = running.unwrap_or_else(|| {
            b.vset_f32(1, 1);
            last_vl = 1;
            first_vl = 1;
            b.vector(VectorSpec::f32(VecOpKind::Move, 1, 1), &[])
        });
        // Final serial reduction over one vector register's worth. It runs
        // at the *first* stripe's length, so if the trailing (remainder)
        // stripe left a shorter vl configured, it must be re-established —
        // without this vsetvli the reduction would run under a stale
        // configuration and silently drop elements.
        let red_vl = first_vl.max(1);
        if last_vl != red_vl {
            b.vset_f32(red_vl, self.lmul);
        }
        let red = b.vector(
            VectorSpec::f32(VecOpKind::Reduction, red_vl, self.lmul),
            &[acc],
        );
        // vfmv.f.s: move the scalar element to the FP register file.
        if red_vl != 1 || self.lmul != 1 {
            b.vset_f32(1, 1);
        }
        let s = b.vector(VectorSpec::f32(VecOpKind::Move, 1, 1), &[red]);
        b.fp(OpClass::FpSimple, &[s])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SaturnUnit;
    use soc_cpu::{simulate_with_accel, CoreConfig};
    use soc_isa::Trace;

    fn run(cfg: SaturnConfig, core: CoreConfig, f: impl Fn(&mut TraceBuilder)) -> u64 {
        let mut b = TraceBuilder::new();
        f(&mut b);
        let t: Trace = b.finish();
        let mut saturn = SaturnUnit::new(cfg);
        simulate_with_accel(&core, &t, &mut saturn)
    }

    #[test]
    fn lmul_helps_long_stripmines_on_rocket() {
        let cfg = SaturnConfig::v512d256();
        let n = 240; // TinyMPC-scale strip-mining length (nx * horizon * 2)
        let l1 = run(cfg, CoreConfig::rocket(), |b| {
            VectorKernels::new(cfg, VectorStyle::Fused, 1).stripmine(b, n, 2, 2)
        });
        let l8 = run(cfg, CoreConfig::rocket(), |b| {
            VectorKernels::new(cfg, VectorStyle::Fused, 8).stripmine(b, n, 2, 2)
        });
        assert!(
            l8 < l1,
            "LMUL=8 ({l8}) should beat LMUL=1 ({l1}) on long stripmines"
        );
    }

    #[test]
    fn lmul_hurts_short_iterative_kernels() {
        let cfg = SaturnConfig::v512d256();
        // A 4-element kernel (TinyMPC's input dimension).
        let l1 = run(cfg, CoreConfig::rocket(), |b| {
            let k = VectorKernels::new(cfg, VectorStyle::Fused, 1);
            for _ in 0..20 {
                k.gemv(b, 4, 12);
            }
        });
        let l8 = run(cfg, CoreConfig::rocket(), |b| {
            let k = VectorKernels::new(cfg, VectorStyle::Fused, 8);
            for _ in 0..20 {
                k.gemv(b, 4, 12);
            }
        });
        assert!(
            l8 > l1,
            "LMUL=8 ({l8}) should hurt short GEMV vs LMUL=1 ({l1})"
        );
    }

    #[test]
    fn fused_beats_matlib() {
        let cfg = SaturnConfig::v512d256();
        let lib = run(cfg, CoreConfig::rocket(), |b| {
            VectorKernels::new(cfg, VectorStyle::Matlib, 1).fused_stripmine(b, 120, 2, 3)
        });
        let fused = run(cfg, CoreConfig::rocket(), |b| {
            VectorKernels::new(cfg, VectorStyle::Fused, 1).fused_stripmine(b, 120, 2, 3)
        });
        assert!(
            (fused as f64) < lib as f64 * 0.7,
            "fused {fused} should clearly beat matlib {lib}"
        );
    }

    #[test]
    fn vfmacc_gemv_beats_serial_reduction_gemv() {
        let cfg = SaturnConfig::v512d256();
        let k = VectorKernels::new(cfg, VectorStyle::Fused, 1);
        let bcast = run(cfg, CoreConfig::rocket(), |b| k.gemv(b, 12, 12));
        let reduce = run(cfg, CoreConfig::rocket(), |b| {
            k.gemv_with_reduction(b, 12, 12)
        });
        assert!(bcast < reduce, "vfmacc {bcast} vs reduction {reduce}");
    }

    #[test]
    fn shuttle_frontend_helps_short_vectors() {
        let cfg = SaturnConfig::v512d256();
        let mk = |core: CoreConfig| {
            run(cfg, core, |b| {
                let k = VectorKernels::new(cfg, VectorStyle::Fused, 1);
                for _ in 0..10 {
                    k.gemv(b, 4, 12);
                    k.stripmine(b, 4, 2, 1);
                }
            })
        };
        let rocket = mk(CoreConfig::rocket());
        let shuttle = mk(CoreConfig::shuttle());
        assert!(shuttle < rocket, "shuttle {shuttle} vs rocket {rocket}");
    }

    #[test]
    fn dlen_scales_long_but_not_short() {
        let long = |cfg: SaturnConfig| {
            run(cfg, CoreConfig::shuttle(), |b| {
                VectorKernels::new(cfg, VectorStyle::Fused, 8).stripmine(b, 1024, 2, 2)
            })
        };
        let d128 = long(SaturnConfig::v512d128());
        let d256 = long(SaturnConfig::v512d256());
        assert!(
            (d256 as f64) < d128 as f64 * 0.7,
            "D256 {d256} should clearly beat D128 {d128} on long vectors"
        );

        let short = |cfg: SaturnConfig| {
            run(cfg, CoreConfig::rocket(), |b| {
                let k = VectorKernels::new(cfg, VectorStyle::Fused, 1);
                for _ in 0..50 {
                    k.gemv(b, 4, 12);
                }
            })
        };
        let s128 = short(SaturnConfig::v512d128());
        let s256 = short(SaturnConfig::v512d256());
        let ratio = s128 as f64 / s256 as f64;
        assert!(
            ratio < 1.15,
            "short kernels should not benefit from DLEN: {s128} vs {s256}"
        );
    }

    #[test]
    fn reduction_result_reaches_scalar_core() {
        let cfg = SaturnConfig::v512d128();
        let cycles = run(cfg, CoreConfig::rocket(), |b| {
            let k = VectorKernels::new(cfg, VectorStyle::Fused, 1);
            let r = k.reduce_max_abs_diff(b, 100);
            // Scalar consumer of the reduction result.
            b.fp(OpClass::FpSimple, &[r]);
        });
        // Must include the serial reduction tail.
        assert!(cycles > 30, "got {cycles}");
    }

    #[test]
    #[should_panic(expected = "LMUL must be 1, 2, 4 or 8")]
    fn rejects_bad_lmul() {
        VectorKernels::new(SaturnConfig::v512d128(), VectorStyle::Fused, 3);
    }
}
