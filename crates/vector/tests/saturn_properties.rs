//! Property-based tests for the Saturn timing model.

use proptest::prelude::*;
use soc_cpu::{simulate_with_accel, CoreConfig};
use soc_isa::{TraceBuilder, VecOpKind, VectorSpec};
use soc_vector::{SaturnConfig, SaturnUnit, VectorKernels, VectorStyle};

fn lmuls() -> impl Strategy<Value = u8> {
    prop_oneof![Just(1u8), Just(2), Just(4), Just(8)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Occupancy is monotone in VL for every op kind and configuration.
    #[test]
    fn occupancy_monotone_in_vl(vl in 1u32..512, lmul in lmuls()) {
        for cfg in SaturnConfig::all() {
            let unit = SaturnUnit::new(cfg);
            for kind in [VecOpKind::Arith, VecOpKind::MulAdd, VecOpKind::Load,
                         VecOpKind::Store, VecOpKind::Reduction] {
                let o1 = unit.occupancy(&VectorSpec::f32(kind, vl, lmul));
                let o2 = unit.occupancy(&VectorSpec::f32(kind, vl + 1, lmul));
                prop_assert!(o2 >= o1, "{cfg:?} {kind:?}: occ({}) {o2} < occ({vl}) {o1}", vl + 1);
            }
        }
    }

    /// A wider datapath never increases occupancy.
    #[test]
    fn wider_dlen_never_slower(vl in 1u32..512, lmul in lmuls()) {
        let d128 = SaturnUnit::new(SaturnConfig::v512d128());
        let d256 = SaturnUnit::new(SaturnConfig::v512d256());
        for kind in [VecOpKind::Arith, VecOpKind::Load] {
            let spec = VectorSpec::f32(kind, vl, lmul);
            prop_assert!(d256.occupancy(&spec) <= d128.occupancy(&spec));
        }
    }

    /// End-to-end: a GEMV of any MPC-plausible size completes, costs more
    /// than zero, and grows with the reduction dimension.
    #[test]
    fn gemv_cost_grows_with_k(m in 1usize..32, k in 1usize..32) {
        let cfg = SaturnConfig::v512d256();
        let gen = VectorKernels::new(cfg, VectorStyle::Fused, 1);
        let run = |m: usize, k: usize| {
            let mut b = TraceBuilder::new();
            gen.gemv(&mut b, m, k);
            let mut unit = SaturnUnit::new(cfg);
            simulate_with_accel(&CoreConfig::rocket(), &b.finish(), &mut unit)
        };
        let base = run(m, k);
        let deeper = run(m, k + 4);
        prop_assert!(base > 0);
        prop_assert!(deeper > base, "gemv({m},{}) {deeper} <= gemv({m},{k}) {base}", k + 4);
    }

    /// The vector unit's busy cycles never exceed elapsed time on any
    /// single pipe (conservation of bandwidth, 2 pipes).
    #[test]
    fn busy_cycles_bounded(n_ops in 1usize..64, vl in 1u32..64) {
        let cfg = SaturnConfig::v512d128();
        let mut b = TraceBuilder::new();
        for i in 0..n_ops {
            if i % 2 == 0 {
                b.vload(vl, 1);
            } else {
                b.vector(VectorSpec::f32(VecOpKind::Arith, vl, 1), &[]);
            }
        }
        let mut unit = SaturnUnit::new(cfg);
        let elapsed = simulate_with_accel(&CoreConfig::rocket(), &b.finish(), &mut unit);
        prop_assert!(unit.busy_cycles() <= 2 * elapsed, "busy {} > 2x elapsed {elapsed}", unit.busy_cycles());
    }

    /// Matlib style is never faster than the fused style for the same
    /// element-wise job.
    #[test]
    fn matlib_never_beats_fused(n in 4usize..200, inputs in 1usize..3, ops in 1usize..4) {
        let cfg = SaturnConfig::v512d256();
        let run = |style| {
            let gen = VectorKernels::new(cfg, style, 1);
            let mut b = TraceBuilder::new();
            gen.fused_stripmine(&mut b, n, inputs, ops);
            let mut unit = SaturnUnit::new(cfg);
            simulate_with_accel(&CoreConfig::rocket(), &b.finish(), &mut unit)
        };
        prop_assert!(run(VectorStyle::Fused) <= run(VectorStyle::Matlib));
    }
}
