//! Property-based tests for the Saturn timing model.
//!
//! Cases come from a deterministic in-file PRNG so every failure
//! reproduces exactly from the printed seed.

use soc_cpu::{simulate_with_accel, CoreConfig};
use soc_isa::{TraceBuilder, VecOpKind, VectorSpec};
use soc_vector::{SaturnConfig, SaturnUnit, VectorKernels, VectorStyle};

/// SplitMix64 — deterministic, dependency-free case generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn below(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    fn lmul(&mut self) -> u8 {
        [1u8, 2, 4, 8][self.below(0, 4) as usize]
    }
}

/// Occupancy is monotone in VL for every op kind and configuration.
#[test]
fn occupancy_monotone_in_vl() {
    for seed in 0..64u64 {
        let mut rng = Rng(seed);
        let vl = rng.below(1, 512) as u32;
        let lmul = rng.lmul();
        for cfg in SaturnConfig::all() {
            let unit = SaturnUnit::new(cfg);
            for kind in [
                VecOpKind::Arith,
                VecOpKind::MulAdd,
                VecOpKind::Load,
                VecOpKind::Store,
                VecOpKind::Reduction,
            ] {
                let o1 = unit.occupancy(&VectorSpec::f32(kind, vl, lmul));
                let o2 = unit.occupancy(&VectorSpec::f32(kind, vl + 1, lmul));
                assert!(
                    o2 >= o1,
                    "{cfg:?} {kind:?}: occ({}) {o2} < occ({vl}) {o1}",
                    vl + 1
                );
            }
        }
    }
}

/// A wider datapath never increases occupancy.
#[test]
fn wider_dlen_never_slower() {
    for seed in 100..164u64 {
        let mut rng = Rng(seed);
        let vl = rng.below(1, 512) as u32;
        let lmul = rng.lmul();
        let d128 = SaturnUnit::new(SaturnConfig::v512d128());
        let d256 = SaturnUnit::new(SaturnConfig::v512d256());
        for kind in [VecOpKind::Arith, VecOpKind::Load] {
            let spec = VectorSpec::f32(kind, vl, lmul);
            assert!(d256.occupancy(&spec) <= d128.occupancy(&spec));
        }
    }
}

/// End-to-end: a GEMV of any MPC-plausible size completes, costs more
/// than zero, and grows with the reduction dimension.
#[test]
fn gemv_cost_grows_with_k() {
    for seed in 200..264u64 {
        let mut rng = Rng(seed);
        let (m, k) = (rng.below(1, 32) as usize, rng.below(1, 32) as usize);
        let cfg = SaturnConfig::v512d256();
        let gen = VectorKernels::new(cfg, VectorStyle::Fused, 1);
        let run = |m: usize, k: usize| {
            let mut b = TraceBuilder::new();
            gen.gemv(&mut b, m, k);
            let mut unit = SaturnUnit::new(cfg);
            simulate_with_accel(&CoreConfig::rocket(), &b.finish(), &mut unit)
        };
        let base = run(m, k);
        let deeper = run(m, k + 4);
        assert!(base > 0);
        assert!(
            deeper > base,
            "seed {seed}: gemv({m},{}) {deeper} <= gemv({m},{k}) {base}",
            k + 4
        );
    }
}

/// The vector unit's busy cycles never exceed elapsed time on any single
/// pipe (conservation of bandwidth, 2 pipes).
#[test]
fn busy_cycles_bounded() {
    for seed in 300..364u64 {
        let mut rng = Rng(seed);
        let n_ops = rng.below(1, 64) as usize;
        let vl = rng.below(1, 64) as u32;
        let cfg = SaturnConfig::v512d128();
        let mut b = TraceBuilder::new();
        for i in 0..n_ops {
            if i % 2 == 0 {
                b.vload(vl, 1);
            } else {
                b.vector(VectorSpec::f32(VecOpKind::Arith, vl, 1), &[]);
            }
        }
        let mut unit = SaturnUnit::new(cfg);
        let elapsed = simulate_with_accel(&CoreConfig::rocket(), &b.finish(), &mut unit);
        assert!(
            unit.busy_cycles() <= 2 * elapsed,
            "seed {seed}: busy {} > 2x elapsed {elapsed}",
            unit.busy_cycles()
        );
    }
}

/// Matlib style is never faster than the fused style for the same
/// element-wise job.
#[test]
fn matlib_never_beats_fused() {
    for seed in 400..464u64 {
        let mut rng = Rng(seed);
        let n = rng.below(4, 200) as usize;
        let inputs = rng.below(1, 3) as usize;
        let ops = rng.below(1, 4) as usize;
        let cfg = SaturnConfig::v512d256();
        let run = |style| {
            let gen = VectorKernels::new(cfg, style, 1);
            let mut b = TraceBuilder::new();
            gen.fused_stripmine(&mut b, n, inputs, ops);
            let mut unit = SaturnUnit::new(cfg);
            simulate_with_accel(&CoreConfig::rocket(), &b.finish(), &mut unit)
        };
        assert!(run(VectorStyle::Fused) <= run(VectorStyle::Matlib));
    }
}
