//! # matlib-accel — runtime-dispatched hardware-FMA kernels.
//!
//! The baseline `x86_64` target has no FMA feature, so `f32::mul_add`
//! compiles to an `fmaf` libcall (~13 cycles per element) — the single
//! largest cost in matlib's gemv inner loop. Every CPU since ~2013
//! has the FMA instruction set, and the hardware instruction computes
//! the *same* correctly-rounded fused result as the libcall, so a
//! runtime-detected fast path is free of numerical risk.
//!
//! **Bit-identity contract.** Each kernel here reproduces the generic
//! loop in `matlib::gemv_into` operation-for-operation: one fused
//! multiply-add per element, strictly sequential accumulation within a
//! row (rows are independent, but the dot-product order is never
//! reassociated), and the trailing `+ 0.0` that canonicalizes `-0.0`.
//! Because fused rounding is exact and unique, hardware FMA and the
//! `fmaf`/`fma` libcalls agree on every input, including subnormals,
//! signed zeros and NaN payload propagation — the differential tests
//! below assert it.
//!
//! This is the only crate in the workspace that uses `unsafe`
//! (`matlib` and `tinympc` are `#![forbid(unsafe_code)]`): calling a
//! `#[target_feature(enable = "fma")]` function requires an `unsafe`
//! block, discharged by the `is_x86_feature_detected!` guard in front
//! of it. Non-`x86_64` builds (and pre-FMA CPUs) return `false` and
//! the caller keeps its generic loop.

#![deny(unsafe_op_in_unsafe_fn)]

#[cfg(target_arch = "x86_64")]
mod x86 {
    /// Row-major gemv, `y = A·x`, with one hardware FMA per element.
    ///
    /// Mirrors `matlib::gemv_into`'s generic loop exactly: sequential
    /// per-row accumulation, `+ 0.0` canonicalization.
    #[target_feature(enable = "fma")]
    pub fn gemv_rows_f32(a: &[f32], x: &[f32], y: &mut [f32]) {
        let cols = x.len();
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &a[i * cols..(i + 1) * cols];
            let mut acc = 0.0f32;
            for (&aip, &xp) in row.iter().zip(x.iter()) {
                acc = aip.mul_add(xp, acc);
            }
            *yi = acc + 0.0;
        }
    }

    /// `f64` variant of [`gemv_rows_f32`].
    #[target_feature(enable = "fma")]
    pub fn gemv_rows_f64(a: &[f64], x: &[f64], y: &mut [f64]) {
        let cols = x.len();
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &a[i * cols..(i + 1) * cols];
            let mut acc = 0.0f64;
            for (&aip, &xp) in row.iter().zip(x.iter()) {
                acc = aip.mul_add(xp, acc);
            }
            *yi = acc + 0.0;
        }
    }
}

/// True when the running CPU has a fused-multiply-add unit the
/// accelerated kernels can use. The detection result is cached by the
/// standard library, so this is an atomic load after the first call.
#[inline]
pub fn available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Accelerated row-major `y = A·x` for `f32`; returns `false` (leaving
/// `y` untouched) when no hardware kernel is available.
///
/// `a` holds `y.len()` rows of `x.len()` columns.
///
/// # Panics
///
/// Panics if `a.len() != x.len() * y.len()` (the kernel's row slicing
/// bounds-checks the same invariant the caller already validated).
#[inline]
pub fn gemv_f32(a: &[f32], x: &[f32], y: &mut [f32]) -> bool {
    #[cfg(target_arch = "x86_64")]
    if available() {
        assert_eq!(a.len(), x.len() * y.len(), "gemv_f32 shape");
        // SAFETY: `available()` just confirmed the FMA feature at
        // runtime; the kernel uses no other target features.
        unsafe { x86::gemv_rows_f32(a, x, y) };
        return true;
    }
    let _ = (a, x, y);
    false
}

/// Accelerated row-major `y = A·x` for `f64`; see [`gemv_f32`].
///
/// # Panics
///
/// Panics if `a.len() != x.len() * y.len()`.
#[inline]
pub fn gemv_f64(a: &[f64], x: &[f64], y: &mut [f64]) -> bool {
    #[cfg(target_arch = "x86_64")]
    if available() {
        assert_eq!(a.len(), x.len() * y.len(), "gemv_f64 shape");
        // SAFETY: as in `gemv_f32`.
        unsafe { x86::gemv_rows_f64(a, x, y) };
        return true;
    }
    let _ = (a, x, y);
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic value stream mixing magnitudes, signs, zeros and
    /// subnormal-scale values — the cases where an unfaithful FMA
    /// substitute (e.g. double-rounded f64 emulation) would diverge.
    fn stream(seed: u64) -> impl FnMut() -> f64 {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let u = (s >> 11) as f64 / (1u64 << 53) as f64;
            match s % 7 {
                0 => 0.0,
                1 => -0.0,
                2 => (u - 0.5) * 1e-38,
                3 => (u - 0.5) * 1e30,
                _ => (u - 0.5) * 4.0,
            }
        }
    }

    fn reference_f32(a: &[f32], x: &[f32], y: &mut [f32]) {
        let cols = x.len();
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for (p, &xp) in x.iter().enumerate() {
                acc = a[i * cols + p].mul_add(xp, acc);
            }
            *yi = acc + 0.0;
        }
    }

    fn reference_f64(a: &[f64], x: &[f64], y: &mut [f64]) {
        let cols = x.len();
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0f64;
            for (p, &xp) in x.iter().enumerate() {
                acc = a[i * cols + p].mul_add(xp, acc);
            }
            *yi = acc + 0.0;
        }
    }

    #[test]
    fn f32_kernel_is_bit_identical_to_libcall_path() {
        if !available() {
            return; // nothing to differentiate on this host
        }
        let mut next = stream(7);
        for (rows, cols) in [(12, 12), (12, 4), (4, 12), (6, 3), (2, 1), (1, 17), (33, 9)] {
            let a: Vec<f32> = (0..rows * cols).map(|_| next() as f32).collect();
            let x: Vec<f32> = (0..cols).map(|_| next() as f32).collect();
            let mut fast = vec![0.0f32; rows];
            let mut slow = vec![0.0f32; rows];
            assert!(gemv_f32(&a, &x, &mut fast));
            reference_f32(&a, &x, &mut slow);
            let fast_bits: Vec<u32> = fast.iter().map(|v| v.to_bits()).collect();
            let slow_bits: Vec<u32> = slow.iter().map(|v| v.to_bits()).collect();
            assert_eq!(fast_bits, slow_bits, "{rows}x{cols}");
        }
    }

    #[test]
    fn f64_kernel_is_bit_identical_to_libcall_path() {
        if !available() {
            return;
        }
        let mut next = stream(11);
        for (rows, cols) in [(12, 12), (12, 4), (6, 3), (2, 1), (21, 5)] {
            let a: Vec<f64> = (0..rows * cols).map(|_| next()).collect();
            let x: Vec<f64> = (0..cols).map(|_| next()).collect();
            let mut fast = vec![0.0f64; rows];
            let mut slow = vec![0.0f64; rows];
            assert!(gemv_f64(&a, &x, &mut fast));
            reference_f64(&a, &x, &mut slow);
            let fast_bits: Vec<u64> = fast.iter().map(|v| v.to_bits()).collect();
            let slow_bits: Vec<u64> = slow.iter().map(|v| v.to_bits()).collect();
            assert_eq!(fast_bits, slow_bits, "{rows}x{cols}");
        }
    }

    #[test]
    fn negative_zero_is_canonicalized_like_the_generic_path() {
        if !available() {
            return;
        }
        // A row whose fused products sum to -0.0: the trailing `+ 0.0`
        // must canonicalize it to +0.0, exactly as gemv_into does.
        let a = [-1.0f32, 1.0];
        let x = [0.0f32, -0.0];
        let mut y = [f32::NAN];
        assert!(gemv_f32(&a, &x, &mut y));
        assert_eq!(y[0].to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn empty_and_degenerate_shapes() {
        if !available() {
            return;
        }
        let mut y: [f32; 0] = [];
        assert!(gemv_f32(&[], &[1.0, 2.0], &mut y));
        let mut y = [1.0f32; 3];
        assert!(gemv_f32(&[], &[], &mut y));
        assert_eq!(y, [0.0; 3]); // empty rows: y = 0-length dot = +0.0
    }
}
