//! The analyzer as a verified pricing seam: interval queries over
//! `BackendPipeline` traces, a [`tinympc::KernelExecutor`] that prices
//! from one interval side, and the batch
//! [`soc_dse::experiments::CycleSource`] implementation the sweep engine
//! tiers on.
//!
//! Every trace analyzed here passes through the `soc-verify` gate first —
//! the analyzer claims bounds only for programs the static verifier
//! accepts, mirroring how the trace simulators gate their own inputs.

use crate::{steady_bounds, trace_bounds, CycleInterval, Side};
use soc_backend::{pipeline_for, BackendPipeline, KernelShape, Platform, Residency};
use soc_dse::experiments::{CycleSource, KernelRequest, Scenario, SolveRequest, SolveSummary};
use soc_isa::Trace;
use std::collections::HashMap;
use std::sync::Arc;
use tinympc::{AdmmSolver, KernelExecutor, KernelId, ProblemDims, SolverSettings};

fn gate(trace: &Trace, config: &soc_verify::VerifyConfig, what: &str) -> tinympc::Result<()> {
    soc_verify::gate(trace, config, what).map_err(|r| tinympc::Error::InvalidTrace {
        backend: r.backend,
        report: r.report,
    })
}

/// Steady-state cycle bounds for one solver kernel on a backend (the
/// analytical counterpart of `BackendPipeline::steady_cycles`).
///
/// # Errors
///
/// [`tinympc::Error::InvalidTrace`] if the lowered trace fails
/// verification.
pub fn kernel_bounds(
    pipeline: &dyn BackendPipeline,
    kernel: KernelId,
    dims: &ProblemDims,
) -> tinympc::Result<CycleInterval> {
    let (trace, mark) = pipeline.timed_trace(kernel, dims);
    gate(&trace, &pipeline.verify_config(), &pipeline.name())?;
    Ok(steady_bounds(
        pipeline.core(),
        &pipeline.accel_model(),
        &trace,
        mark,
    ))
}

/// One-time setup cost bounds (the analytical counterpart of
/// `BackendPipeline::setup_cost`).
///
/// # Errors
///
/// [`tinympc::Error::InvalidTrace`] if the setup trace fails
/// verification.
pub fn setup_bounds(
    pipeline: &dyn BackendPipeline,
    dims: &ProblemDims,
) -> tinympc::Result<CycleInterval> {
    let trace = pipeline.setup_trace(dims);
    if trace.ops().is_empty() {
        return Ok(CycleInterval::exact(0));
    }
    gate(
        &trace,
        &pipeline.verify_config(),
        &format!("{} setup", pipeline.name()),
    )?;
    Ok(trace_bounds(
        pipeline.core(),
        &pipeline.accel_model(),
        &trace,
    ))
}

/// Cycle bounds for a standalone GEMV/GEMM of the given size (the
/// analytical counterpart of `BackendPipeline::standalone_cycles`).
pub fn standalone_bounds(
    pipeline: &dyn BackendPipeline,
    shape: KernelShape,
    residency: Residency,
    i: usize,
    k: usize,
) -> CycleInterval {
    let (trace, mark) = pipeline.standalone_trace(shape, residency, i, k);
    if mark == 0 {
        trace_bounds(pipeline.core(), &pipeline.accel_model(), &trace)
    } else {
        steady_bounds(pipeline.core(), &pipeline.accel_model(), &trace, mark)
    }
}

/// A [`KernelExecutor`] that prices every kernel from one side of its
/// analytical interval, memoized per `(kernel, dims)` like the trace
/// pricers.
pub struct AnalyticalExecutor {
    pipeline: Arc<dyn BackendPipeline>,
    side: Side,
    kernel_memo: HashMap<(KernelId, ProblemDims), u64>,
    setup_memo: HashMap<ProblemDims, u64>,
}

impl AnalyticalExecutor {
    /// Creates an executor pricing `pipeline` from `side`.
    pub fn new(pipeline: Arc<dyn BackendPipeline>, side: Side) -> Self {
        AnalyticalExecutor {
            pipeline,
            side,
            kernel_memo: HashMap::new(),
            setup_memo: HashMap::new(),
        }
    }

    /// Creates an executor for a registry platform.
    pub fn for_platform(platform: &Platform, side: Side) -> Self {
        Self::new(pipeline_for(platform), side)
    }
}

impl KernelExecutor for AnalyticalExecutor {
    fn name(&self) -> String {
        format!(
            "{} [analytical {}]",
            self.pipeline.name(),
            self.side.label()
        )
    }

    fn kernel_cycles(&mut self, kernel: KernelId, dims: &ProblemDims) -> tinympc::Result<u64> {
        if let Some(&c) = self.kernel_memo.get(&(kernel, *dims)) {
            return Ok(c);
        }
        let c = kernel_bounds(self.pipeline.as_ref(), kernel, dims)?.pick(self.side);
        self.kernel_memo.insert((kernel, *dims), c);
        Ok(c)
    }

    fn setup_cycles(&mut self, dims: &ProblemDims) -> tinympc::Result<u64> {
        if let Some(&c) = self.setup_memo.get(dims) {
            return Ok(c);
        }
        let c = setup_bounds(self.pipeline.as_ref(), dims)?.pick(self.side);
        self.setup_memo.insert(*dims, c);
        Ok(c)
    }
}

/// Runs the ADMM solve with analytical pricing from one interval side,
/// mirroring the trace path's solve setup exactly. With the default
/// solver settings (no cycle budget) pricing cannot perturb the
/// iteration count, so the per-side totals bracket the trace-priced
/// total.
///
/// # Errors
///
/// Propagates solver construction/solve errors, including
/// [`tinympc::Error::InvalidTrace`] from the verification gate.
pub fn analytical_solve(
    platform: &Platform,
    horizon: usize,
    side: Side,
) -> tinympc::Result<SolveSummary> {
    analytical_solve_scenario(platform, &Scenario::hover(), horizon, side)
}

/// [`analytical_solve`] over an arbitrary scenario: the scenario's
/// plant, reference window and initial state, priced analytically —
/// mirroring `solve_scenario_cycles` exactly (hover stays bit-identical
/// to the legacy path).
///
/// # Errors
///
/// Propagates solver construction/solve errors, including
/// [`tinympc::Error::InvalidTrace`] from the verification gate.
pub fn analytical_solve_scenario(
    platform: &Platform,
    scenario: &Scenario,
    horizon: usize,
    side: Side,
) -> tinympc::Result<SolveSummary> {
    let problem = scenario.problem::<f32>(horizon)?;
    let mut solver = AdmmSolver::new(problem, SolverSettings::default())?;
    solver.set_reference(&scenario.reference::<f32>(horizon, 0))?;
    let x0 = scenario.initial_state::<f32>();
    let mut executor = AnalyticalExecutor::for_platform(platform, side);
    let status = solver.solve_in_place(x0.as_slice(), &mut executor)?;
    Ok(SolveSummary {
        total_cycles: status.total_cycles,
        iterations: status.iterations,
        converged: status.converged,
        kernel_cycles: solver.last_kernel_cycles().to_map(),
    })
}

/// End-to-end solve cycle bounds: the ADMM solve run once per side.
///
/// # Errors
///
/// Propagates errors from either side's solve.
pub fn solve_bounds(platform: &Platform, horizon: usize) -> tinympc::Result<CycleInterval> {
    solve_bounds_scenario(platform, &Scenario::hover(), horizon)
}

/// [`solve_bounds`] over an arbitrary scenario.
///
/// # Errors
///
/// Propagates errors from either side's solve.
pub fn solve_bounds_scenario(
    platform: &Platform,
    scenario: &Scenario,
    horizon: usize,
) -> tinympc::Result<CycleInterval> {
    let lo = analytical_solve_scenario(platform, scenario, horizon, Side::Lower)?;
    let hi = analytical_solve_scenario(platform, scenario, horizon, Side::Upper)?;
    Ok(CycleInterval::new(
        lo.total_cycles.min(hi.total_cycles),
        hi.total_cycles,
    ))
}

/// The analyzer as a batch [`CycleSource`]: a drop-in replacement for the
/// trace-simulating source that prices everything from one side of its
/// analytical interval.
#[derive(Debug, Clone, Copy)]
pub struct AnalyticalSource {
    side: Side,
}

impl AnalyticalSource {
    /// A source pricing from `side`.
    pub fn new(side: Side) -> Self {
        AnalyticalSource { side }
    }

    /// A source pricing every point optimistically.
    pub fn lower() -> Self {
        Self::new(Side::Lower)
    }

    /// A source pricing every point pessimistically.
    pub fn upper() -> Self {
        Self::new(Side::Upper)
    }

    /// The side this source prices from.
    pub fn side(&self) -> Side {
        self.side
    }
}

impl CycleSource for AnalyticalSource {
    fn solve_batch(&self, requests: &[SolveRequest]) -> Vec<tinympc::Result<SolveSummary>> {
        requests
            .iter()
            .map(|r| analytical_solve_scenario(&r.platform, &r.scenario, r.horizon, self.side))
            .collect()
    }

    fn kernel_batch(&self, requests: &[KernelRequest]) -> Vec<u64> {
        requests
            .iter()
            .map(|r| {
                standalone_bounds(
                    pipeline_for(&r.platform).as_ref(),
                    r.shape,
                    r.residency,
                    r.i,
                    r.k,
                )
                .pick(self.side)
            })
            .collect()
    }
}
