//! Abstract pipeline machines: single-pass interpreters over micro-op
//! programs that track the same lattice of dispatch state the simulators
//! evolve (vector configuration rides in each op's payload; issue-width,
//! fence/RoCC stalls and scratchpad residency live in the abstract
//! accelerator), but produce cycle *bounds* instead of replayed cycles.
//!
//! * [`run_inorder`] replicates the in-order scoreboard exactly — one
//!   deterministic forward pass, so its result is both bounds at once.
//! * [`run_ooo`] runs the out-of-order model with the issue-slot
//!   allocator swapped per [`Policy`]: `Lower` grants every op its
//!   earliest possible slot (no structural conflict can make the real
//!   greedy allocator faster), `Upper` allocates without backfilling
//!   (monotone, and never earlier than greedy under pointwise-later
//!   inputs). Everything else — frontend, ROB, IQ capacity, commit
//!   bandwidth, the accelerator — is the exact algorithm.
//!
//! Both machines snapshot their completion horizon at the steady-state
//! mark: because processing is forward-only and deterministic, the state
//! after `mark` ops equals a fresh run of the prefix, which is exactly
//! what the simulators' two-emission steady-state measurement computes.

use crate::accel::{fresh, Mode};
use crate::CycleInterval;
use soc_backend::AccelModel;
use soc_cpu::{CoreConfig, CoreKind, IssueQueues};
use soc_isa::{Cycles, FuKind, MicroOp, OpClass, Trace};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Completion horizons of one abstract run: after the whole program and
/// at the steady-state mark.
struct RunPair {
    full: Cycles,
    head: Cycles,
}

/// Which side of the bracket an out-of-order run computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Policy {
    Lower,
    Upper,
}

/// No-backfill issue-slot allocator: admits at most `width` claims per
/// cycle and never returns to an earlier cycle once it has moved on.
/// Under inputs that are pointwise later than an exact run's, its claim
/// times dominate the greedy backfilling allocator's.
#[derive(Default)]
struct Slots {
    cur: Cycles,
    used: u32,
}

impl Slots {
    fn claim(&mut self, t: Cycles, width: u32) -> Cycles {
        if t > self.cur {
            self.cur = t;
            self.used = 1;
        } else if self.used < width {
            self.used += 1;
        } else {
            self.cur += 1;
            self.used = 1;
        }
        self.cur
    }
}

const PIPES: usize = 3;

/// Issue pipe index: 0 = memory, 1 = integer (and the RoCC/vector command
/// port), 2 = floating point. Mirrors the simulator's `Pipe` enum.
fn pipe_of(fu: FuKind) -> usize {
    match fu {
        FuKind::Load | FuKind::Store => 0,
        FuKind::IntAlu | FuKind::IntMul | FuKind::Branch => 1,
        FuKind::Fpu | FuKind::FpDiv => 2,
        FuKind::VecUnit | FuKind::Rocc => 1,
    }
}

fn max_reg(ops: &[MicroOp]) -> usize {
    ops.iter()
        .flat_map(|op| op.dst.into_iter().chain(op.sources()))
        .map(|r| r.0 as usize + 1)
        .max()
        .unwrap_or(0)
}

/// Exact abstract interpretation of the in-order scoreboard
/// (`InOrderCore::run`), snapshotting the completion horizon at `mark`.
fn run_inorder(
    config: &CoreConfig,
    issue_width: u32,
    model: &AccelModel,
    trace: &Trace,
    mark: usize,
) -> RunPair {
    let mut accel = fresh(model, Mode::Exact);
    let regs = max_reg(trace.ops());
    let mut ready = vec![0u64; regs];
    let mut accel_produced = vec![false; regs];

    let mut cycle: Cycles = 0;
    let mut issued_this_cycle: u32 = 0;
    let mut fpu_this_cycle: u32 = 0;
    let mut mem_this_cycle: u32 = 0;
    let mut fpdiv_free: Cycles = 0;
    let mut last_complete: Cycles = 0;
    let mut head: Cycles = 0;

    macro_rules! advance_to {
        ($t:expr) => {
            if $t > cycle {
                cycle = $t;
                issued_this_cycle = 0;
                fpu_this_cycle = 0;
                mem_this_cycle = 0;
            }
        };
    }
    macro_rules! next_cycle {
        () => {
            advance_to!(cycle + 1)
        };
    }

    for (idx, op) in trace.ops().iter().enumerate() {
        if idx == mark {
            head = last_complete.max(cycle).max(accel.drain());
        }
        let is_accel = matches!(op.class.fu(), FuKind::VecUnit | FuKind::Rocc);
        let operands_ready = op
            .sources()
            .filter(|r| !(is_accel && accel_produced[r.0 as usize]))
            .map(|r| ready[r.0 as usize])
            .max()
            .unwrap_or(0);
        advance_to!(operands_ready);

        if issued_this_cycle >= issue_width {
            next_cycle!();
        }

        match op.class.fu() {
            FuKind::Fpu => {
                while fpu_this_cycle >= config.fpu_count {
                    next_cycle!();
                }
                fpu_this_cycle += 1;
            }
            FuKind::FpDiv => {
                advance_to!(fpdiv_free);
                fpdiv_free = cycle + config.latency.latency(OpClass::FpDiv);
            }
            FuKind::Load | FuKind::Store => {
                while mem_this_cycle >= config.mem_ports {
                    next_cycle!();
                }
                mem_this_cycle += 1;
            }
            FuKind::IntAlu | FuKind::IntMul | FuKind::Branch => {}
            FuKind::VecUnit | FuKind::Rocc => {
                if op.class == OpClass::Fence {
                    let drain = accel.drain();
                    advance_to!(drain);
                    issued_this_cycle += 1;
                    continue;
                }
                let (accepted_at, completes_at) = accel.dispatch(op, cycle, operands_ready);
                if let Some(dst) = op.dst {
                    ready[dst.0 as usize] = completes_at;
                    accel_produced[dst.0 as usize] = true;
                }
                last_complete = last_complete.max(completes_at);
                advance_to!(accepted_at);
                let cost = if op.class.fu() == FuKind::VecUnit {
                    let covered = match op.payload {
                        soc_isa::Payload::Vector(spec) => {
                            let regs = (spec.vl * spec.sew as u32).div_ceil(512);
                            regs.clamp(1, spec.lmul.max(1) as u32)
                        }
                        _ => 1,
                    };
                    (config.vector_dispatch_slots / covered).max(1)
                } else {
                    1
                };
                issued_this_cycle += cost;
                while issued_this_cycle >= issue_width {
                    issued_this_cycle -= issue_width;
                    cycle += 1;
                    fpu_this_cycle = 0;
                    mem_this_cycle = 0;
                }
                continue;
            }
        }

        let complete = cycle + config.latency.latency(op.class);
        if let Some(dst) = op.dst {
            ready[dst.0 as usize] = complete;
        }
        last_complete = last_complete.max(complete);
        issued_this_cycle += 1;
    }

    let full = last_complete.max(cycle).max(accel.drain());
    if mark >= trace.ops().len() {
        head = full;
    }
    RunPair { full, head }
}

/// One bracketing run of the out-of-order model (`OutOfOrderCore::run`)
/// with the issue-slot allocator swapped per `policy`.
#[allow(clippy::too_many_arguments)]
fn run_ooo(
    config: &CoreConfig,
    fetch_width: u32,
    decode_width: u32,
    rob_size: u32,
    queues: &IssueQueues,
    model: &AccelModel,
    trace: &Trace,
    mark: usize,
    policy: Policy,
) -> RunPair {
    let mode = match policy {
        Policy::Lower => Mode::Lower,
        Policy::Upper => Mode::Upper,
    };
    let mut accel = fresh(model, mode);
    let regs = max_reg(trace.ops());
    let mut ready = vec![0u64; regs];
    let mut accel_produced = vec![false; regs];

    let mut dispatch_cycle: Cycles = 0;
    let mut dispatched_this: u32 = 0;

    let mut rob: VecDeque<Cycles> = VecDeque::with_capacity(rob_size as usize);
    let mut prev_retire: Cycles = 0;
    let mut commit_cycle: Cycles = 0;
    let mut commits_this: u32 = 0;

    let mut slots: [Slots; PIPES] = Default::default();
    let mut iq: [BinaryHeap<Reverse<Cycles>>; PIPES] = Default::default();

    let mut fpdiv_free: Cycles = 0;
    let mut last_retire: Cycles = 0;
    let mut head: Cycles = 0;

    let fp_width = queues.fp_issue.min(config.fpu_count);

    for (idx, op) in trace.ops().iter().enumerate() {
        if idx == mark {
            head = last_retire.max(accel.drain());
        }
        if dispatched_this >= decode_width {
            dispatch_cycle += 1;
            dispatched_this = 0;
        }
        if rob.len() >= rob_size as usize {
            let rob_head = rob.pop_front().expect("rob nonempty");
            if rob_head + 1 > dispatch_cycle {
                dispatch_cycle = rob_head + 1;
                dispatched_this = 0;
            }
        }

        let pipe = pipe_of(op.class.fu());
        while iq[pipe].len() >= queues.iq_entries as usize {
            let Reverse(earliest) = iq[pipe].pop().expect("queue nonempty");
            if earliest + 1 > dispatch_cycle {
                dispatch_cycle = earliest + 1;
                dispatched_this = 0;
            }
        }

        let is_accel = matches!(op.class.fu(), FuKind::VecUnit | FuKind::Rocc);
        let operands_ready = op
            .sources()
            .filter(|r| !(is_accel && accel_produced[r.0 as usize]))
            .map(|r| ready[r.0 as usize])
            .max()
            .unwrap_or(0);
        let earliest = dispatch_cycle.max(operands_ready);

        let complete = match op.class {
            OpClass::Fence => earliest.max(accel.drain()),
            OpClass::Vector | OpClass::Rocc => {
                let (accepted_at, completes_at) = accel.dispatch(op, earliest, operands_ready);
                if accepted_at + 1 > dispatch_cycle {
                    dispatch_cycle = accepted_at;
                }
                if let Some(dst) = op.dst {
                    accel_produced[dst.0 as usize] = true;
                }
                completes_at
            }
            _ => {
                let width = match pipe {
                    0 => queues.mem_issue.min(config.mem_ports),
                    1 => queues.int_issue,
                    _ => fp_width,
                };
                let mut start = earliest;
                if op.class == OpClass::FpDiv {
                    start = start.max(fpdiv_free);
                }
                let issue = match policy {
                    Policy::Lower => start,
                    Policy::Upper => slots[pipe].claim(start, width.max(1)),
                };
                if op.class == OpClass::FpDiv {
                    fpdiv_free = issue + config.latency.latency(OpClass::FpDiv);
                }
                iq[pipe].push(Reverse(issue));
                issue + config.latency.latency(op.class)
            }
        };

        if let Some(dst) = op.dst {
            ready[dst.0 as usize] = complete;
        }

        let rc = complete.max(prev_retire);
        if rc > commit_cycle {
            commit_cycle = rc;
            commits_this = 0;
        }
        if commits_this >= decode_width {
            commit_cycle += 1;
            commits_this = 0;
        }
        commits_this += 1;
        prev_retire = commit_cycle;
        last_retire = last_retire.max(commit_cycle);
        rob.push_back(commit_cycle);

        dispatched_this += 1;
        if fetch_width < decode_width && dispatched_this >= fetch_width {
            dispatch_cycle += 1;
            dispatched_this = 0;
        }
    }

    let full = last_retire.max(accel.drain());
    if mark >= trace.ops().len() {
        head = full;
    }
    RunPair { full, head }
}

/// Closed-form lower bound on the retirement horizon of `ops`,
/// independent of the abstract run: per-pipe issue-bandwidth ceilings
/// (`⌈n_pipe / width⌉`), the unpipelined FP-divider chain, and frontend
/// decode bandwidth. Tightens the `Lower` policy's result, whose
/// unbounded slot allocator ignores structural conflicts.
fn retire_floor(
    config: &CoreConfig,
    decode_width: u32,
    queues: &IssueQueues,
    ops: &[MicroOp],
) -> Cycles {
    let n = ops.len() as u64;
    if n == 0 {
        return 0;
    }
    let mut per_pipe = [0u64; PIPES];
    let mut fpdiv = 0u64;
    for op in ops {
        let fu = op.class.fu();
        if matches!(fu, FuKind::VecUnit | FuKind::Rocc) {
            continue;
        }
        per_pipe[pipe_of(fu)] += 1;
        if fu == FuKind::FpDiv {
            fpdiv += 1;
        }
    }
    let widths = [
        queues.mem_issue.min(config.mem_ports).max(1) as u64,
        queues.int_issue.max(1) as u64,
        queues.fp_issue.min(config.fpu_count).max(1) as u64,
    ];
    let mut floor = (n - 1) / decode_width.max(1) as u64;
    for (count, width) in per_pipe.iter().zip(widths) {
        floor = floor.max(count.div_ceil(width));
    }
    floor.max(fpdiv * config.latency.latency(OpClass::FpDiv))
}

/// Interval over all four horizon values of a (possibly marked) trace.
struct Analysis {
    lo_full: Cycles,
    hi_full: Cycles,
    lo_head: Cycles,
    hi_head: Cycles,
}

fn analyze(config: &CoreConfig, model: &AccelModel, trace: &Trace, mark: usize) -> Analysis {
    match config.kind {
        CoreKind::InOrder { issue_width } => {
            let r = run_inorder(config, issue_width, model, trace, mark);
            Analysis {
                lo_full: r.full,
                hi_full: r.full,
                lo_head: r.head,
                hi_head: r.head,
            }
        }
        CoreKind::OutOfOrder {
            fetch_width,
            decode_width,
            rob_size,
            queues,
        } => {
            let lo = run_ooo(
                config,
                fetch_width,
                decode_width,
                rob_size,
                &queues,
                model,
                trace,
                mark,
                Policy::Lower,
            );
            let hi = run_ooo(
                config,
                fetch_width,
                decode_width,
                rob_size,
                &queues,
                model,
                trace,
                mark,
                Policy::Upper,
            );
            let ops = trace.ops();
            let floor_full = retire_floor(config, decode_width, &queues, ops);
            let floor_head =
                retire_floor(config, decode_width, &queues, &ops[..mark.min(ops.len())]);
            Analysis {
                lo_full: lo.full.max(floor_full),
                hi_full: hi.full,
                lo_head: lo.head.max(floor_head),
                hi_head: hi.head,
            }
        }
    }
}

/// Bounds on simulating a whole trace from a cold pipeline (the analytical
/// counterpart of `BackendPipeline::simulate`).
pub fn trace_bounds(config: &CoreConfig, model: &AccelModel, trace: &Trace) -> CycleInterval {
    let a = analyze(config, model, trace, 0);
    CycleInterval::new(a.lo_full.min(a.hi_full), a.hi_full)
}

/// Bounds on the steady-state cost of a double-emission trace with its
/// first emission ending at `mark` (the analytical counterpart of
/// `steady_cost`): `full − head`, bracketed as
/// `[lo_full − hi_head, hi_full − lo_head]` and clamped to at least one
/// cycle exactly like the simulator's measurement.
pub fn steady_bounds(
    config: &CoreConfig,
    model: &AccelModel,
    trace: &Trace,
    mark: usize,
) -> CycleInterval {
    let a = analyze(config, model, trace, mark);
    let lo = a.lo_full.saturating_sub(a.hi_head).max(1);
    let hi = a.hi_full.saturating_sub(a.lo_head).max(1);
    CycleInterval::new(lo.min(hi), hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_backend::steady_cost;
    use soc_cpu::{simulate_with_accel, Accelerator, NullAccelerator};
    use soc_dse::rng::SplitMix64;
    use soc_gemmini::{GemminiConfig, GemminiUnit};
    use soc_isa::{OpClass, RoccCmd, TraceBuilder, VecOpKind, VectorSpec};
    use soc_vector::{SaturnConfig, SaturnUnit};

    fn cores() -> Vec<CoreConfig> {
        vec![
            CoreConfig::rocket(),
            CoreConfig::tiny_rocket(),
            CoreConfig::shuttle(),
            CoreConfig::small_boom(),
            CoreConfig::medium_boom(),
            CoreConfig::large_boom(),
            CoreConfig::mega_boom(),
        ]
    }

    /// A random but structurally sensible scalar/mixed trace.
    fn random_scalar_trace(rng: &mut SplitMix64, n: usize) -> Trace {
        let mut b = TraceBuilder::new();
        let mut live: Vec<soc_isa::VReg> = Vec::new();
        for _ in 0..n {
            let pick = |rng: &mut SplitMix64, live: &[soc_isa::VReg]| {
                if live.is_empty() {
                    vec![]
                } else {
                    let k = rng.range_usize(0, 2.min(live.len()));
                    (0..k)
                        .map(|_| live[rng.range_usize(0, live.len() - 1)])
                        .collect()
                }
            };
            match rng.range_usize(0, 8) {
                0 | 1 => live.push(b.load()),
                2 => {
                    let srcs = pick(rng, &live);
                    b.store(&srcs);
                }
                3 | 4 => {
                    let srcs = pick(rng, &live);
                    live.push(b.fp(OpClass::FpFma, &srcs));
                }
                5 => {
                    let srcs = pick(rng, &live);
                    live.push(b.fp(OpClass::FpAdd, &srcs));
                }
                6 => {
                    b.int_ops(rng.range_usize(1, 3));
                }
                7 => {
                    let srcs = pick(rng, &live);
                    b.branch(&srcs);
                }
                8 => {
                    let srcs = pick(rng, &live);
                    live.push(b.fp(OpClass::FpDiv, &srcs));
                }
                _ => unreachable!(),
            }
            if live.len() > 8 {
                live.drain(..4);
            }
        }
        b.finish()
    }

    fn random_vector_trace(rng: &mut SplitMix64, n: usize) -> Trace {
        let mut b = TraceBuilder::new();
        let mut live: Vec<soc_isa::VReg> = Vec::new();
        for _ in 0..n {
            match rng.range_usize(0, 5) {
                0 => {
                    let vl = rng.range_usize(1, 128) as u32;
                    let lmul = [1u8, 2, 4, 8][rng.range_usize(0, 3)];
                    live.push(b.vload(vl, lmul));
                }
                1 | 2 => {
                    let vl = rng.range_usize(1, 128) as u32;
                    let lmul = [1u8, 2, 4, 8][rng.range_usize(0, 3)];
                    let kind = [VecOpKind::Arith, VecOpKind::MulAdd, VecOpKind::Reduction]
                        [rng.range_usize(0, 2)];
                    let srcs: Vec<_> = if live.is_empty() {
                        vec![]
                    } else {
                        vec![live[rng.range_usize(0, live.len() - 1)]]
                    };
                    live.push(b.vector(VectorSpec::f32(kind, vl, lmul), &srcs));
                }
                3 => {
                    if let Some(&v) = live.last() {
                        b.vstore(rng.range_usize(1, 64) as u32, 1, v);
                    } else {
                        live.push(b.vload(16, 1));
                    }
                }
                4 => {
                    b.int_ops(rng.range_usize(1, 2));
                }
                5 => b.fence(),
                _ => unreachable!(),
            }
            if live.len() > 6 {
                live.drain(..3);
            }
        }
        b.finish()
    }

    fn random_gemmini_trace(rng: &mut SplitMix64, n: usize) -> Trace {
        let mut b = TraceBuilder::new();
        let mut live: Vec<soc_isa::VReg> = Vec::new();
        for _ in 0..n {
            let srcs: Vec<_> = if live.is_empty() {
                vec![]
            } else {
                vec![live[rng.range_usize(0, live.len() - 1)]]
            };
            match rng.range_usize(0, 6) {
                0 | 1 => {
                    let rows = rng.range_usize(1, 16) as u16;
                    let cols = rng.range_usize(1, 16) as u16;
                    live.push(b.rocc(
                        RoccCmd::Mvin {
                            rows,
                            cols,
                            base: 0,
                        },
                        &srcs,
                    ));
                }
                2 => {
                    let rows = rng.range_usize(1, 8) as u16;
                    live.push(b.rocc(
                        RoccCmd::Mvout {
                            rows,
                            cols: 4,
                            pool_stride: 0,
                            base: 0,
                        },
                        &srcs,
                    ));
                }
                3 | 4 => {
                    let rows = rng.range_usize(1, 8) as u16;
                    let ks = rng.range_usize(1, 32) as u16;
                    let gemv = rng.unit_f64() < 0.5;
                    live.push(b.rocc(
                        RoccCmd::ComputeTile {
                            rows,
                            cols: if gemv { 1 } else { 4 },
                            ks,
                            gemv,
                            out_base: 0,
                        },
                        &srcs,
                    ));
                }
                5 => {
                    live.push(b.rocc(RoccCmd::Preload, &[]));
                    b.int_ops(1);
                }
                6 => b.fence(),
                _ => unreachable!(),
            }
            if live.len() > 6 {
                live.drain(..3);
            }
        }
        b.finish()
    }

    fn check(
        config: &CoreConfig,
        model: &AccelModel,
        mk_accel: &dyn Fn() -> Box<dyn Accelerator>,
        trace: &Trace,
        ctx: &str,
    ) {
        // Whole-trace bounds vs the real simulator.
        let mut accel = mk_accel();
        let sim = simulate_with_accel(config, trace, accel.as_mut());
        let b = trace_bounds(config, model, trace);
        assert!(
            b.contains(sim),
            "{ctx} on {}: simulated {sim} outside {b}",
            config.name
        );
        if matches!(config.kind, CoreKind::InOrder { .. }) {
            assert!(b.is_exact(), "{ctx} on {}: in-order not exact", config.name);
        }
        // Steady bounds vs the simulator's two-emission measurement, using
        // the trace's midpoint as an arbitrary mark.
        let mark = trace.ops().len() / 2;
        if mark > 0 {
            let steady = steady_cost(config, trace, mark, mk_accel);
            let sb = steady_bounds(config, model, trace, mark);
            assert!(
                sb.contains(steady),
                "{ctx} on {}: steady {steady} outside {sb}",
                config.name
            );
            if matches!(config.kind, CoreKind::InOrder { .. }) {
                assert!(sb.is_exact());
            }
        }
    }

    #[test]
    fn scalar_random_traces_are_bounded_everywhere() {
        let mut rng = SplitMix64::new(0xb0b5);
        for round in 0..40 {
            let n = rng.range_usize(5, 120);
            let t = random_scalar_trace(&mut rng, n);
            for core in cores() {
                check(
                    &core,
                    &AccelModel::None,
                    &|| Box::new(NullAccelerator),
                    &t,
                    &format!("scalar round {round}"),
                );
            }
        }
    }

    #[test]
    fn saturn_random_traces_are_bounded_everywhere() {
        let mut rng = SplitMix64::new(0x5a7a);
        let configs = [
            SaturnConfig::v512d128(),
            SaturnConfig::v512d256(),
            SaturnConfig::v256d64(),
        ];
        for round in 0..25 {
            let n = rng.range_usize(5, 80);
            let t = random_vector_trace(&mut rng, n);
            for sc in configs {
                for core in cores() {
                    check(
                        &core,
                        &AccelModel::Saturn(sc),
                        &|| Box::new(SaturnUnit::new(sc)),
                        &t,
                        &format!("saturn round {round}"),
                    );
                }
            }
        }
    }

    #[test]
    fn gemmini_random_traces_are_bounded_everywhere() {
        let mut rng = SplitMix64::new(0x6e44);
        let configs = [
            GemminiConfig::os_4x4_32kb(),
            GemminiConfig::ws_4x4_64kb(),
            GemminiConfig::os_8x8_64kb(),
            GemminiConfig::os_4x4_32kb().with_gemv_support(),
        ];
        for round in 0..25 {
            let n = rng.range_usize(5, 60);
            let t = random_gemmini_trace(&mut rng, n);
            for gc in configs {
                for core in cores() {
                    check(
                        &core,
                        &AccelModel::Gemmini(gc),
                        &|| Box::new(GemminiUnit::new(gc)),
                        &t,
                        &format!("gemmini round {round}"),
                    );
                }
            }
        }
    }

    #[test]
    fn empty_trace_is_degenerate() {
        let t = TraceBuilder::new().finish();
        let b = trace_bounds(&CoreConfig::rocket(), &AccelModel::None, &t);
        assert_eq!(b, CycleInterval::exact(0));
    }

    #[test]
    fn floors_tighten_ooo_lower_bounds() {
        // A long stream of independent FMAs: the unbounded-slot lower
        // machine alone would let them all issue at once; the FP-pipe
        // floor must keep the lower bound at roughly n / fp_width.
        let n = 200u64;
        let mut b = TraceBuilder::new();
        for _ in 0..n {
            b.fp(OpClass::FpFma, &[]);
        }
        let t = b.finish();
        let config = CoreConfig::mega_boom(); // 2 FPUs
        let bounds = trace_bounds(&config, &AccelModel::None, &t);
        assert!(bounds.lo >= n / 2, "lo {} too loose", bounds.lo);
        let mut null = NullAccelerator;
        let sim = simulate_with_accel(&config, &t, &mut null);
        assert!(bounds.contains(sim));
    }
}
