//! Abstract accelerator transfer functions.
//!
//! Independent reimplementations of the three accelerator timing models
//! (`NullAccelerator`, `SaturnUnit`, `GemminiUnit`) as transfer functions
//! over dispatch times, built from each unit's *configuration* rather
//! than its simulator object — so the analyzer cross-validates the
//! models instead of merely calling them.
//!
//! Every transfer function here is a composition of `max`, `+` and
//! `div_ceil` over its inputs — monotone — with one exception: Gemmini's
//! pipeline-fill charge, which is paid only when a compute tile starts on
//! an *idle* mesh and therefore can shrink as inputs grow. [`Mode`]
//! resolves it: exactly (in-order analysis), never (lower bracket), or
//! always (upper bracket).

use soc_backend::AccelModel;
use soc_gemmini::{Dataflow, GemminiConfig};
use soc_isa::{Cycles, MicroOp, Payload, RoccCmd, VReg, VecOpKind, VectorSpec};
use soc_vector::SaturnConfig;
use std::collections::{HashMap, VecDeque};

/// How the abstract accelerator resolves timing decisions that are not
/// monotone in dispatch time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    /// Replicate the simulator's decision exactly (sound only when the
    /// feeding machine is itself exact, i.e. in-order cores).
    Exact,
    /// Resolve every such decision toward fewer cycles.
    Lower,
    /// Resolve every such decision toward more cycles.
    Upper,
}

/// An accelerator as a pure timing transfer function: present a command
/// at `issue` with operands ready at `operands`, get back
/// `(accepted_at, completes_at)`.
pub(crate) trait AbstractAccel {
    fn dispatch(&mut self, op: &MicroOp, issue: Cycles, operands: Cycles) -> (Cycles, Cycles);
    fn drain(&self) -> Cycles;
}

/// A fresh abstract accelerator for the backend's declared model.
pub(crate) fn fresh(model: &AccelModel, mode: Mode) -> Box<dyn AbstractAccel> {
    match model {
        AccelModel::None => Box::new(NullModel),
        AccelModel::Saturn(c) => Box::new(SaturnModel::new(*c)),
        AccelModel::Gemmini(c) => Box::new(GemminiModel::new(*c, mode)),
    }
}

/// No accelerator: every command is a 1-cycle no-op, nothing drains.
struct NullModel;

impl AbstractAccel for NullModel {
    fn dispatch(&mut self, _op: &MicroOp, issue: Cycles, operands: Cycles) -> (Cycles, Cycles) {
        let t = issue.max(operands);
        (t, t + 1)
    }

    fn drain(&self) -> Cycles {
        0
    }
}

/// Saturn's decoupled two-pipe vector unit with chaining, a bounded
/// dispatch queue, and a rate-limited scalar→vector port. Fully monotone,
/// so one implementation serves every [`Mode`].
struct SaturnModel {
    config: SaturnConfig,
    regs: HashMap<VReg, (Cycles, Cycles)>,
    mem_free: Cycles,
    arith_free: Cycles,
    queue: VecDeque<Cycles>,
    port_free: Cycles,
    drain: Cycles,
}

impl SaturnModel {
    fn new(config: SaturnConfig) -> Self {
        SaturnModel {
            config,
            regs: HashMap::new(),
            mem_free: 0,
            arith_free: 0,
            queue: VecDeque::new(),
            port_free: 0,
            drain: 0,
        }
    }

    fn group_walk(&self, lmul: u8) -> Cycles {
        if lmul > 1 {
            lmul as u64 * (self.config.vlen as u64).div_ceil(self.config.dlen as u64)
        } else {
            0
        }
    }

    fn occupancy(&self, spec: &VectorSpec) -> Cycles {
        let lanes = self.config.lanes(spec.sew) as u64;
        let vl = spec.vl as u64;
        match spec.kind {
            VecOpKind::Reduction => vl.max(1),
            VecOpKind::LoadStrided | VecOpKind::StoreStrided => vl.max(1),
            VecOpKind::Move => spec.lmul as u64,
            _ => vl.div_ceil(lanes).max(self.group_walk(spec.lmul)),
        }
    }

    fn is_mem(kind: VecOpKind) -> bool {
        matches!(
            kind,
            VecOpKind::Load | VecOpKind::Store | VecOpKind::LoadStrided | VecOpKind::StoreStrided
        )
    }
}

impl AbstractAccel for SaturnModel {
    fn dispatch(&mut self, op: &MicroOp, issue: Cycles, operands: Cycles) -> (Cycles, Cycles) {
        let spec = match op.payload {
            Payload::Vector(spec) => spec,
            _ => {
                let t = issue.max(operands);
                return (t, t + 1);
            }
        };

        let mut accepted = issue.max(operands).max(self.port_free);
        while self.queue.len() >= self.config.queue_depth {
            let head_start = self.queue.pop_front().expect("queue nonempty");
            accepted = accepted.max(head_start);
        }
        self.port_free = accepted + self.config.dispatch_penalty;

        let mut chain_start = accepted;
        let mut chain_finish = 0;
        for src in op.sources() {
            if let Some(&(s, f)) = self.regs.get(&src) {
                chain_start = chain_start.max(s + self.config.chain_latency);
                chain_finish = chain_finish.max(f + 1);
            }
        }

        let occ = self.occupancy(&spec);
        let pipe_free = if Self::is_mem(spec.kind) {
            self.mem_free
        } else {
            self.arith_free
        };
        let start = chain_start.max(pipe_free);
        let finish = (start + self.config.startup_latency + occ - 1).max(chain_finish);

        if Self::is_mem(spec.kind) {
            self.mem_free = start + occ;
        } else {
            self.arith_free = start + occ;
        }
        self.queue.push_back(start);
        self.drain = self.drain.max(finish);
        if let Some(dst) = op.dst {
            self.regs.insert(dst, (start, finish));
        }
        (accepted, finish)
    }

    fn drain(&self) -> Cycles {
        self.drain
    }
}

/// Gemmini's three decoupled controllers (load / store / execute) behind
/// a reservation station, with explicit codegen dependencies. Monotone
/// except for the mesh pipeline-fill charge, resolved per [`Mode`].
struct GemminiModel {
    config: GemminiConfig,
    mode: Mode,
    regs: HashMap<VReg, Cycles>,
    load_free: Cycles,
    store_free: Cycles,
    ex_free: Cycles,
    rs: VecDeque<Cycles>,
    drain: Cycles,
}

impl GemminiModel {
    fn new(config: GemminiConfig, mode: Mode) -> Self {
        GemminiModel {
            config,
            mode,
            regs: HashMap::new(),
            load_free: 0,
            store_free: 0,
            ex_free: 0,
            rs: VecDeque::new(),
            drain: 0,
        }
    }

    fn compute_cycles(&self, rows: u64, cols: u64, ks: u64, gemv: bool) -> Cycles {
        let dim = self.config.dim as u64;
        if gemv && self.config.gemv_support {
            (rows * ks).div_ceil(dim * dim).max(1)
        } else if cols == 1 {
            ks + dim
        } else {
            ks.max(1)
        }
    }

    fn compute_fill(&self, gemv: bool) -> Cycles {
        if gemv && self.config.gemv_support {
            2
        } else {
            match self.config.dataflow {
                Dataflow::OutputStationary => self.config.dim as u64,
                Dataflow::WeightStationary => 2 * self.config.dim as u64,
            }
        }
    }

    fn dma_transfer(&self, rows: u16, cols: u16) -> Cycles {
        (rows as u64 * cols as u64 * 4).div_ceil(self.config.dma_bytes_per_cycle)
    }

    fn record(&mut self, op: &MicroOp, finish: Cycles) {
        self.rs.push_back(finish);
        self.drain = self.drain.max(finish);
        if let Some(dst) = op.dst {
            self.regs.insert(dst, finish);
        }
    }
}

impl AbstractAccel for GemminiModel {
    fn dispatch(&mut self, op: &MicroOp, issue: Cycles, operands: Cycles) -> (Cycles, Cycles) {
        let cmd = match op.payload {
            Payload::Rocc(cmd) => cmd,
            _ => {
                let t = issue.max(operands);
                return (t, t + 1);
            }
        };

        let mut accepted = issue.max(operands);
        while self.rs.len() >= self.config.rs_entries {
            let head_done = self.rs.pop_front().expect("rs nonempty");
            accepted = accepted.max(head_done);
        }

        let mut dep_ready = accepted;
        for src in op.sources() {
            if let Some(&t) = self.regs.get(&src) {
                dep_ready = dep_ready.max(t);
            }
        }

        let finish = match cmd {
            RoccCmd::Mvin { rows, cols, .. } => {
                let transfer = self.dma_transfer(rows, cols);
                let start = dep_ready.max(self.load_free);
                self.load_free = start + transfer;
                start + transfer + self.config.dma_latency
            }
            RoccCmd::Mvout { rows, cols, .. } => {
                let transfer = self.dma_transfer(rows, cols);
                let start = dep_ready.max(self.store_free);
                self.store_free = start + transfer;
                start + transfer + self.config.dma_latency
            }
            RoccCmd::Preload => {
                let cost = match self.config.dataflow {
                    Dataflow::WeightStationary => self.config.dim as u64,
                    Dataflow::OutputStationary => 1,
                };
                let start = dep_ready.max(self.ex_free);
                self.ex_free = start + cost;
                self.ex_free
            }
            RoccCmd::ComputeTile {
                rows,
                cols,
                ks,
                gemv,
                ..
            } => {
                let start = dep_ready.max(self.ex_free);
                let mut cost = self.compute_cycles(rows as u64, cols as u64, ks as u64, gemv);
                // The fill charge depends on whether the mesh sat idle —
                // the one anti-monotone decision in the model.
                let fill = match self.mode {
                    Mode::Exact => start > self.ex_free || self.ex_free == 0,
                    Mode::Lower => false,
                    Mode::Upper => true,
                };
                if fill {
                    cost += self.compute_fill(gemv);
                }
                self.ex_free = start + cost;
                self.ex_free
            }
            RoccCmd::LoopMatmul { m, n, k } => {
                let dim = self.config.dim as u64;
                let tiles = (m as u64).div_ceil(dim) * (n as u64).div_ceil(dim);
                let k_tiles = (k as u64).div_ceil(dim);
                let mesh = tiles * k_tiles * (dim + dim);
                let dma_elems = m as u64 * k as u64 + k as u64 * n as u64 + m as u64 * n as u64;
                let dma = (dma_elems * 4).div_ceil(self.config.dma_bytes_per_cycle);
                let cost = mesh.max(dma) + self.config.dma_latency + 10;
                let start = dep_ready
                    .max(self.ex_free)
                    .max(self.load_free)
                    .max(self.store_free);
                self.load_free = start + cost;
                self.store_free = start + cost;
                self.ex_free = start + cost;
                self.ex_free
            }
            // Config, Flush, and any future command: 1-cycle execute-pipe
            // traffic.
            _ => {
                let start = dep_ready.max(self.ex_free);
                self.ex_free = start + 1;
                self.ex_free
            }
        };

        self.record(op, finish);
        (accepted, finish)
    }

    fn drain(&self) -> Cycles {
        self.drain
    }
}
