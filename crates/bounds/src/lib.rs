//! # soc-bounds — static cycle-bound analysis of micro-op programs
//!
//! A static analyzer that abstract-interprets lowered micro-op programs
//! to produce per-kernel `[lower, upper]` steady-state cycle intervals
//! *without materializing or replaying a trace through the simulators*.
//! It is the second [`soc_dse::experiments::CycleSource`] implementation
//! behind the `BackendPipeline` seam: the trace simulators answer "how
//! many cycles did this run take", this crate answers "how many cycles
//! *can* it take" — and proves the two agree.
//!
//! ## The bound lattice
//!
//! Every timing decision in the workspace's pipeline models is a
//! composition of `max`, `+`, and `div_ceil` over dispatch times — all
//! monotone — with two exceptions handled explicitly below. The analyzer
//! exploits this:
//!
//! * **In-order cores** (Rocket, Shuttle) are a deterministic single
//!   forward pass. The analyzer runs one abstract machine that replicates
//!   the scoreboard bit-for-bit, so the interval is a *singleton* and the
//!   claim is [`soc_backend::BoundClaim::Exact`].
//! * **Out-of-order cores** (the BOOM family) have one non-monotone
//!   component: the greedy backfilling issue-slot allocator, whose claim
//!   times can *decrease* when inputs arrive later. The analyzer brackets
//!   it with two monotone policies — an unbounded allocator (`issue =
//!   start`, never worse than any real allocator) below and a
//!   no-backfill allocator (never better) above — and runs the otherwise
//!   exact machine once per side. The claim is
//!   [`soc_backend::BoundClaim::Bounded`].
//! * **Gemmini's pipeline-fill charge** (paid when a compute tile starts
//!   on an idle mesh) is the second non-monotone decision; the abstract
//!   accelerator resolves it exactly on in-order cores and conservatively
//!   per side (never charge / always charge) inside the OoO bracket.
//!
//! The lower side is additionally tightened with closed-form retirement
//! floors (per-pipe issue-bandwidth ceilings, the unpipelined FP-divider
//! chain, and frontend decode bandwidth).
//!
//! Steady-state intervals mirror the simulators' two-emission
//! measurement: for a trace with a steady-state mark, `steady =
//! full − head` is bracketed as `[lo_full − hi_head, hi_full − lo_head]`.
//!
//! ## Verified analytical pricing
//!
//! [`AnalyticalExecutor`] implements [`tinympc::KernelExecutor`] by
//! pricing each kernel from one side of its interval, and
//! [`AnalyticalSource`] implements the batch
//! [`soc_dse::experiments::CycleSource`] seam. Both gate every analyzed
//! trace through `soc-verify` first — bounds are only claimed for
//! programs the static verifier accepts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accel;
mod interval;
mod machine;
mod source;

pub use interval::{CycleInterval, Side};
pub use machine::{steady_bounds, trace_bounds};
pub use source::{
    analytical_solve, analytical_solve_scenario, kernel_bounds, setup_bounds, solve_bounds,
    solve_bounds_scenario, standalone_bounds, AnalyticalExecutor, AnalyticalSource,
};
