//! The interval domain the analyzer computes over.

/// Which side of a [`CycleInterval`] an analytical pricer charges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Optimistic: price every kernel at its lower bound.
    Lower,
    /// Pessimistic: price every kernel at its upper bound.
    Upper,
}

impl Side {
    /// Stable lowercase label for reports and cache keys.
    pub fn label(self) -> &'static str {
        match self {
            Side::Lower => "lower",
            Side::Upper => "upper",
        }
    }
}

/// A closed integer interval `[lo, hi]` of cycle counts.
///
/// The analyzer's contract: the trace-simulated cycle count always lies
/// inside the interval, and `lo == hi` exactly when the backend's
/// [`soc_backend::BoundClaim`] is `Exact`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleInterval {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
}

impl CycleInterval {
    /// A non-empty interval. Debug-asserts `lo <= hi`.
    pub fn new(lo: u64, hi: u64) -> Self {
        debug_assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
        CycleInterval { lo, hi: hi.max(lo) }
    }

    /// The singleton interval `[v, v]`.
    pub fn exact(v: u64) -> Self {
        CycleInterval { lo: v, hi: v }
    }

    /// Whether `v` lies inside the interval.
    pub fn contains(&self, v: u64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether the interval is a singleton.
    pub fn is_exact(&self) -> bool {
        self.lo == self.hi
    }

    /// Absolute width `hi − lo`.
    pub fn width(&self) -> u64 {
        self.hi - self.lo
    }

    /// Width relative to the lower bound (0.0 for exact intervals).
    pub fn rel_width(&self) -> f64 {
        self.width() as f64 / self.lo.max(1) as f64
    }

    /// The bound a pricer on the given [`Side`] charges.
    pub fn pick(&self, side: Side) -> u64 {
        match side {
            Side::Lower => self.lo,
            Side::Upper => self.hi,
        }
    }
}

impl std::fmt::Display for CycleInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_exact() {
            write!(f, "{}", self.lo)
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_basics() {
        let i = CycleInterval::new(10, 14);
        assert!(i.contains(10) && i.contains(14) && !i.contains(15));
        assert_eq!(i.width(), 4);
        assert_eq!(i.pick(Side::Lower), 10);
        assert_eq!(i.pick(Side::Upper), 14);
        assert!(!i.is_exact());
        assert_eq!(format!("{i}"), "[10, 14]");
        let e = CycleInterval::exact(7);
        assert!(e.is_exact() && e.contains(7));
        assert_eq!(format!("{e}"), "7");
        assert!((CycleInterval::new(100, 110).rel_width() - 0.1).abs() < 1e-12);
    }
}
