//! Scalar-core area, calibrated per preset against the paper's Table I.

use crate::AreaBreakdown;
use soc_cpu::{CoreConfig, CoreKind};

/// Calibrated totals (µm², ASAP7) from Table I of the paper.
fn calibrated_total(name: &str) -> Option<f64> {
    Some(match name {
        "TinyRocket" => 186_963.0,
        "Rocket" => 486_287.0,
        "Shuttle" => 826_608.0,
        "SmallBoom" => 1_212_513.0,
        "MediumBoom" => 1_537_374.0,
        "LargeBoom" => 2_570_964.0,
        // Table I prints "381,402,3"; read as 3,814,023 (see DESIGN.md).
        "MegaBoom" => 3_814_023.0,
        _ => return None,
    })
}

/// Analytic fallback for configurations without a calibrated total.
fn analytic_total(config: &CoreConfig) -> f64 {
    let base = 150_000.0;
    let caches = 180_000.0;
    let fpu = 120_000.0 * config.fpu_count as f64;
    match &config.kind {
        CoreKind::InOrder { issue_width } => base + caches + fpu + 90_000.0 * *issue_width as f64,
        CoreKind::OutOfOrder {
            decode_width,
            rob_size,
            queues,
            ..
        } => {
            base + caches
                + fpu
                + 260_000.0 * *decode_width as f64
                + 3_500.0 * *rob_size as f64
                + 25_000.0 * (queues.mem_issue + queues.int_issue + queues.fp_issue) as f64
        }
    }
}

/// Area of a scalar core with a representative component split.
///
/// Calibrated presets reproduce the paper's Table I totals exactly; other
/// configurations use an analytic model with the same proportional split.
///
/// # Examples
///
/// ```
/// use soc_area::cpu_area;
/// use soc_cpu::CoreConfig;
///
/// let rocket = cpu_area(&CoreConfig::rocket());
/// assert_eq!(rocket.total().round(), 486_287.0);
/// ```
pub fn cpu_area(config: &CoreConfig) -> AreaBreakdown {
    let total = calibrated_total(config.name).unwrap_or_else(|| analytic_total(config));
    // Representative split for an embedded RISC-V tile: frontend (fetch,
    // decode, branch prediction), integer datapath, FP datapath, L1
    // caches, uncore glue.
    let (frontend, intdp, fpdp, caches) = match &config.kind {
        CoreKind::InOrder { .. } => (0.14, 0.18, 0.25, 0.38),
        CoreKind::OutOfOrder { .. } => (0.22, 0.24, 0.20, 0.28),
    };
    let glue = 1.0 - frontend - intdp - fpdp - caches;
    AreaBreakdown::new(
        config.name,
        vec![
            ("frontend".to_string(), total * frontend),
            ("int-datapath".to_string(), total * intdp),
            ("fp-datapath".to_string(), total * fpdp),
            ("l1-caches".to_string(), total * caches),
            ("uncore-glue".to_string(), total * glue),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table1() {
        assert_eq!(cpu_area(&CoreConfig::rocket()).total().round(), 486_287.0);
        assert_eq!(
            cpu_area(&CoreConfig::mega_boom()).total().round(),
            3_814_023.0
        );
        assert_eq!(
            cpu_area(&CoreConfig::tiny_rocket()).total().round(),
            186_963.0
        );
    }

    #[test]
    fn boom_family_monotone_in_area() {
        let a = [
            cpu_area(&CoreConfig::small_boom()).total(),
            cpu_area(&CoreConfig::medium_boom()).total(),
            cpu_area(&CoreConfig::large_boom()).total(),
            cpu_area(&CoreConfig::mega_boom()).total(),
        ];
        assert!(a.windows(2).all(|w| w[0] < w[1]), "{a:?}");
    }

    #[test]
    fn analytic_fallback_used_for_custom_config() {
        let mut custom = CoreConfig::rocket();
        custom.name = "CustomCore";
        let b = cpu_area(&custom);
        assert!(b.total() > 100_000.0);
        // Components sum to the total.
        assert!((b.total() - b.components.iter().map(|(_, a)| a).sum::<f64>()).abs() < 1e-6);
    }
}
