//! # soc-area — ASAP7-calibrated analytical area model
//!
//! The paper synthesizes every design point in the ASAP7 predictive 7-nm
//! PDK and reports areas in µm² (Table I), a Gemmini-vs-Saturn component
//! breakdown (Figure 21), and the cost of the GEMV hardware extension
//! (Table II). We cannot run a VLSI flow here, so this crate provides an
//! **analytical, component-level area model calibrated against the
//! paper's published numbers**:
//!
//! * Scalar cores are calibrated per preset (TinyRocket … MegaBOOM) with
//!   an analytic fallback for unlisted configurations.
//! * Saturn scales linearly in datapath lanes on top of a fixed register
//!   file (synthesized from flip-flops — 16× less dense than SRAM, the
//!   paper's headline area observation) and sequencer.
//! * Gemmini is dominated by scratchpad SRAM (per-KiB) plus per-bank
//!   logic; the mesh is per-PE; the execute controller grows with DIM and
//!   carries the GEMV extension's 9.2 % (4×4) / 18 % (8×8) overhead.
//!
//! Note: the paper's Table II (a ~256 KiB default-Gemmini tile) and
//! Table I (32/64 KiB MPC-sized configurations) are synthesized from
//! different configurations; [`table2_breakdown`] reproduces the former
//! with its own calibration, while [`gemmini_area`] targets the latter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod breakdown;
mod cpu;
mod gemmini;
mod saturn;

pub use breakdown::AreaBreakdown;
pub use cpu::cpu_area;
pub use gemmini::{gemmini_area, gemmini_platform_area, table2_breakdown};
pub use saturn::{saturn_area, saturn_platform_area};
