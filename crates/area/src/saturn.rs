//! Saturn vector-unit area (Figure 21's right-hand breakdown).

use crate::{cpu_area, AreaBreakdown};
use soc_cpu::CoreConfig;
use soc_vector::SaturnConfig;

/// Area of a Saturn vector unit.
///
/// Calibration (from Table I deltas over the Rocket frontend):
/// V512 D128 = 853,808 µm², V512 D256 = 1,299,973 µm² — linear in lanes
/// over a fixed register file and sequencer. The register file is
/// synthesized from flip-flops (the paper notes Gemmini's SRAM scratchpad
/// holds 16× the capacity in only 35 % more area), which is why it is the
/// largest fixed component here.
pub fn saturn_area(config: &SaturnConfig) -> AreaBreakdown {
    let lanes = config.lanes(32) as f64;
    // Fixed: VLEN-proportional flip-flop register file + sequencer.
    let regfile = 280_000.0 * (config.vlen as f64 / 512.0);
    let sequencer = 127_644.0;
    // Per-lane: FP FMA, vector integer ALU, memory interface.
    let fma = 55_000.0 * lanes;
    let vint = 40_000.0 * lanes;
    let vmem = 16_541.0 * lanes;
    AreaBreakdown::new(
        format!("Saturn {}", config.name),
        vec![
            ("vector-regfile (flops)".to_string(), regfile),
            ("sequencer+control".to_string(), sequencer),
            ("fp-fma-lanes".to_string(), fma),
            ("vint-lanes".to_string(), vint),
            ("vmem-interface".to_string(), vmem),
        ],
    )
}

/// Total area of a Saturn platform (frontend core + vector unit).
///
/// Shuttle-fronted references additionally carry a dual-ported
/// vector-memory coupling (calibrated from Table I:
/// `RefV512D128Shuttle − Shuttle − Saturn(D128)`).
pub fn saturn_platform_area(saturn: &SaturnConfig, core: &CoreConfig) -> AreaBreakdown {
    let mut b = AreaBreakdown::new(format!("{}{}", saturn.name, core.name), Vec::new());
    b.absorb(core.name, &cpu_area(core));
    b.absorb("saturn", &saturn_area(saturn));
    if core.name == "Shuttle" {
        // Dual-issue frontends widen the vector-memory coupling with the
        // datapath: calibrated linearly in DLEN from Table I's two Shuttle
        // reference points.
        let coupling = 449_307.0 + 1_035.0 * saturn.dlen as f64;
        b.components
            .push(("vector-mem-coupling".to_string(), coupling));
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table1_rocket_references() {
        let d128 = saturn_platform_area(&SaturnConfig::v512d128(), &CoreConfig::rocket());
        let d256 = saturn_platform_area(&SaturnConfig::v512d256(), &CoreConfig::rocket());
        assert!(
            (d128.total() - 1_340_095.0).abs() < 1_000.0,
            "{}",
            d128.total()
        );
        assert!(
            (d256.total() - 1_786_260.0).abs() < 1_000.0,
            "{}",
            d256.total()
        );
    }

    #[test]
    fn matches_table1_shuttle_references() {
        let d128 = saturn_platform_area(&SaturnConfig::v512d128(), &CoreConfig::shuttle());
        let d256 = saturn_platform_area(&SaturnConfig::v512d256(), &CoreConfig::shuttle());
        assert!(
            (d128.total() - 2_262_203.0).abs() < 1_000.0,
            "{}",
            d128.total()
        );
        assert!(
            (d256.total() - 2_840_849.0).abs() < 1_000.0,
            "{}",
            d256.total()
        );
    }

    #[test]
    fn regfile_dominates_fixed_cost() {
        let b = saturn_area(&SaturnConfig::v512d128());
        let rf = b.component("vector-regfile (flops)").unwrap();
        assert!(rf > b.component("sequencer+control").unwrap());
    }

    #[test]
    fn wider_datapath_costs_more() {
        assert!(
            saturn_area(&SaturnConfig::v512d512()).total()
                > saturn_area(&SaturnConfig::v512d256()).total()
        );
    }
}
