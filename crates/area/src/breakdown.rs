//! Component-level area report.

use std::fmt;

/// A named design with per-component areas in µm².
#[derive(Debug, Clone, PartialEq)]
pub struct AreaBreakdown {
    /// Design name.
    pub name: String,
    /// `(component, µm²)` pairs.
    pub components: Vec<(String, f64)>,
}

impl AreaBreakdown {
    /// Creates a breakdown from components.
    pub fn new(name: impl Into<String>, components: Vec<(String, f64)>) -> Self {
        AreaBreakdown {
            name: name.into(),
            components,
        }
    }

    /// Total area in µm².
    pub fn total(&self) -> f64 {
        self.components.iter().map(|(_, a)| a).sum()
    }

    /// Total area in mm².
    pub fn total_mm2(&self) -> f64 {
        self.total() / 1.0e6
    }

    /// Area of a named component, if present.
    pub fn component(&self, name: &str) -> Option<f64> {
        self.components
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, a)| *a)
    }

    /// Percentage share of a named component.
    pub fn share(&self, name: &str) -> Option<f64> {
        self.component(name).map(|a| 100.0 * a / self.total())
    }

    /// Merges another breakdown's components under a prefix (for platform
    /// composition).
    pub fn absorb(&mut self, prefix: &str, other: &AreaBreakdown) {
        for (n, a) in &other.components {
            self.components.push((format!("{prefix}/{n}"), *a));
        }
    }
}

impl fmt::Display for AreaBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}  total {:.0} um^2 ({:.3} mm^2)",
            self.name,
            self.total(),
            self.total_mm2()
        )?;
        for (n, a) in &self.components {
            writeln!(f, "  {n:<28} {a:>12.0}  {:5.1}%", 100.0 * a / self.total())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_shares() {
        let b = AreaBreakdown::new("x", vec![("a".into(), 75.0), ("b".into(), 25.0)]);
        assert_eq!(b.total(), 100.0);
        assert_eq!(b.share("a"), Some(75.0));
        assert_eq!(b.component("c"), None);
    }

    #[test]
    fn absorb_prefixes() {
        let mut b = AreaBreakdown::new("p", vec![("core".into(), 10.0)]);
        let other = AreaBreakdown::new("q", vec![("mesh".into(), 5.0)]);
        b.absorb("gemmini", &other);
        assert_eq!(b.component("gemmini/mesh"), Some(5.0));
        assert_eq!(b.total(), 15.0);
    }
}
