//! Gemmini accelerator area (Figure 21's left-hand breakdown and
//! Table II).

use crate::{cpu_area, AreaBreakdown};
use soc_cpu::CoreConfig;
use soc_gemmini::{Dataflow, GemminiConfig};

/// Scratchpad SRAM density calibrated from Table I (the 64 KiB − 32 KiB
/// delta of the OS configurations): µm² per KiB.
const SPAD_UM2_PER_KB: f64 = 6_864.0;
/// Per-bank access/mux logic for the MPC-sized (Table I) scratchpads.
/// Chosen so a 32 KiB scratchpad lands ~35% above Saturn's 2 KiB
/// flip-flop register file — the paper's headline SRAM-vs-flip-flop
/// density observation (Figure 21).
const BANK_LOGIC_UM2: f64 = 40_000.0;
/// Per-PE area (FP32 FMA + pipeline registers) from Table II's mesh rows:
/// 43,828/16 ≈ 173,683/64.
const PE_UM2: f64 = 2_739.0;
/// Execute-controller area by mesh dimension, from Table II.
fn execute_controller(dim: usize, gemv: bool) -> f64 {
    let base = match dim {
        4 => 71_910.0,
        8 => 212_708.0,
        // Quadratic-ish interpolation anchored at DIM=4.
        d => 71_910.0 * (d as f64 / 4.0).powf(1.56),
    };
    // The GEMV extension grows the execute controller 9.2 % at 4×4 and
    // 18 % at 8×8 (it distributes DIM² operands per cycle).
    let overhead = if gemv {
        1.0 + 0.092 * (dim as f64 / 4.0)
    } else {
        1.0
    };
    base * overhead
}

/// Area of a Gemmini accelerator instance (Table-I-scale MPC
/// configurations).
pub fn gemmini_area(config: &GemminiConfig) -> AreaBreakdown {
    let mesh_scale = if config.gemv_support { 1.011 } else { 1.0 };
    let mesh = (config.dim * config.dim) as f64 * PE_UM2 * mesh_scale;
    let spad = config.scratchpad_kb as f64 * SPAD_UM2_PER_KB
        + config.scratchpad_banks as f64 * BANK_LOGIC_UM2;
    let acc = config.accumulator_kb as f64 * SPAD_UM2_PER_KB * 1.4; // dual-ported
    let ws_datapath = match config.dataflow {
        Dataflow::WeightStationary => 181_196.0,
        Dataflow::OutputStationary => 0.0,
    };
    let ec = execute_controller(config.dim, config.gemv_support);
    let rs = 63_583.0;
    let load = 11_669.0;
    let store = 13_872.0;
    // DMA engine + system-bus glue (calibrated residue of the Table I OS
    // 32 KiB configuration).
    let glue = 435_701.0;
    AreaBreakdown::new(
        format!("Gemmini {}", config.name),
        vec![
            ("scratchpad".to_string(), spad),
            ("accumulator".to_string(), acc),
            ("mesh".to_string(), mesh),
            ("execute-controller".to_string(), ec),
            ("reservation-station".to_string(), rs),
            ("load-controller".to_string(), load),
            ("store-controller".to_string(), store),
            ("ws-datapath".to_string(), ws_datapath),
            ("dma+glue".to_string(), glue),
        ],
    )
}

/// Total area of a Gemmini platform (scalar frontend + accelerator).
pub fn gemmini_platform_area(gemmini: &GemminiConfig, core: &CoreConfig) -> AreaBreakdown {
    let mut b = AreaBreakdown::new(format!("{}{}", gemmini.name, core.name), Vec::new());
    b.absorb(core.name, &cpu_area(core));
    b.absorb("gemmini", &gemmini_area(gemmini));
    b
}

/// Reproduces the paper's Table II: the component breakdown of a
/// default-sized Gemmini RocketTile (≈227 KiB scratchpad) with and without
/// GEMV support, at 4×4 and 8×8.
///
/// Returns rows named exactly as in the paper. Calibrated against the
/// published 4×4/8×8 GEMM columns; the GEMV columns apply the published
/// component overheads.
///
/// # Panics
///
/// Panics if `dim` is not 4 or 8 (the paper evaluates only these).
pub fn table2_breakdown(dim: usize, gemv: bool) -> AreaBreakdown {
    assert!(dim == 4 || dim == 8, "Table II covers DIM 4 and 8 only");
    // Published GEMM-column anchors.
    let (spad, mesh, rs, lc, sc, other) = match dim {
        4 => (
            1_998_509.0,
            43_828.0,
            63_583.0,
            11_669.0,
            13_872.0,
            493_463.0,
        ),
        _ => (
            1_908_131.0,
            173_683.0,
            61_377.0,
            11_987.0,
            13_378.0,
            154_585.0,
        ),
    };
    let ec = execute_controller(dim, gemv);
    let spad = if gemv {
        // DIM+1 banks rounded to the next power of two: extra bank
        // logic, calibrated per mesh size from the paper's published
        // GEMV columns (per-bank cost depends on bank sizing).
        let delta = if dim == 4 { 441_035.0 } else { 145_970.0 };
        spad + delta
    } else {
        spad
    };
    let mesh = if gemv { mesh * 1.011 } else { mesh };
    let name = format!("{dim}x{dim} {}", if gemv { "GEMV" } else { "GEMM" });
    AreaBreakdown::new(
        name,
        vec![
            ("Scratchpad".to_string(), spad),
            ("Mesh".to_string(), mesh),
            ("ExecuteController".to_string(), ec),
            ("ReservationStation".to_string(), rs),
            ("LoadController".to_string(), lc),
            ("StoreController".to_string(), sc),
            ("Other".to_string(), other),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_gemmini_totals() {
        let os32 = gemmini_platform_area(&GemminiConfig::os_4x4_32kb(), &CoreConfig::rocket());
        let os64 = gemmini_platform_area(&GemminiConfig::os_4x4_64kb(), &CoreConfig::rocket());
        let ws64 = gemmini_platform_area(&GemminiConfig::ws_4x4_64kb(), &CoreConfig::rocket());
        assert!(
            (os32.total() - 1_506_498.0).abs() < 5_000.0,
            "{}",
            os32.total()
        );
        assert!(
            (os64.total() - 1_726_167.0).abs() < 5_000.0,
            "{}",
            os64.total()
        );
        assert!(
            (ws64.total() - 1_916_970.0).abs() < 20_000.0,
            "{}",
            ws64.total()
        );
    }

    #[test]
    fn gemv_support_costs_about_two_percent_table2() {
        let plain = table2_breakdown(4, false);
        let gemv = table2_breakdown(4, true);
        let growth = gemv.total() / plain.total();
        // Paper: RocketTile grows from 2.98 M to 3.43 M µm² (bank-logic
        // dominated); the *mesh itself* is nearly untouched.
        assert!(growth > 1.0 && growth < 1.25, "growth {growth}");
        let mesh_growth = gemv.component("Mesh").unwrap() / plain.component("Mesh").unwrap();
        assert!(mesh_growth < 1.02, "mesh growth {mesh_growth}");
    }

    #[test]
    fn execute_controller_overhead_scales_with_dim() {
        let ec4 = execute_controller(4, true) / execute_controller(4, false);
        let ec8 = execute_controller(8, true) / execute_controller(8, false);
        assert!((ec4 - 1.092).abs() < 0.001);
        assert!((ec8 - 1.184).abs() < 0.001);
    }

    #[test]
    fn table2_matches_published_anchors() {
        let b4 = table2_breakdown(4, false);
        assert_eq!(b4.component("Mesh").unwrap().round(), 43_828.0);
        assert_eq!(b4.component("ExecuteController").unwrap().round(), 71_910.0);
        let b8 = table2_breakdown(8, false);
        assert_eq!(b8.component("Mesh").unwrap().round(), 173_683.0);
    }

    #[test]
    fn scratchpad_dominates_gemmini() {
        let b = gemmini_area(&GemminiConfig::os_4x4_64kb());
        let spad_share = b.share("scratchpad").unwrap();
        assert!(spad_share > 30.0, "scratchpad share {spad_share}");
    }

    #[test]
    #[should_panic(expected = "Table II covers DIM 4 and 8 only")]
    fn table2_rejects_other_dims() {
        table2_breakdown(16, false);
    }
}
