//! Energy model — an extension beyond the paper's published data.
//!
//! The paper's introduction frames the design space in energy terms
//! (microcontrollers too slow, out-of-order CPUs "less than 1 GOP/J",
//! GPUs 100 W+, spatial accelerators ~34 GOP/J) but reports no per-design
//! energy numbers. This module attaches a first-order, 7-nm-class energy
//! model to the same activity counts the timing models already produce:
//! per-event dynamic energies plus area-proportional leakage.
//!
//! The absolute numbers are order-of-magnitude estimates (documented
//! constants below); the *relative* story they produce — accelerators
//! deliver more control-loop work per joule than wide out-of-order cores
//! at a fraction of the area — is the robust output.

use crate::experiments::solve_cycles;
use crate::platform::Platform;
use soc_backend::pipeline_for;
use soc_isa::{Payload, RoccCmd, TraceStats};
use tinympc::KernelId;

pub use soc_backend::EnergyParams;

/// Per-solve energy report.
#[derive(Debug, Clone)]
pub struct EnergyReport {
    /// Platform name.
    pub platform: String,
    /// Dynamic energy, nanojoules per solve.
    pub dynamic_nj: f64,
    /// Leakage energy, nanojoules per solve.
    pub leakage_nj: f64,
    /// Simulated cycles per solve.
    pub cycles: u64,
    /// MPC solves per millijoule.
    pub solves_per_mj: f64,
}

impl EnergyReport {
    /// Total energy per solve in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.dynamic_nj + self.leakage_nj
    }
}

/// Activity counts from one trace, including accelerator-side work.
#[derive(Debug, Clone, Copy, Default)]
struct Activity {
    stats: TraceStats,
    mesh_macs: u64,
    dram_bytes: u64,
    spad_bytes: u64,
}

fn activity_of(trace: &soc_isa::Trace) -> Activity {
    let mut a = Activity {
        stats: trace.stats(),
        ..Default::default()
    };
    for op in trace.ops() {
        if let Payload::Rocc(cmd) = op.payload {
            match cmd {
                RoccCmd::Mvin { rows, cols, .. } | RoccCmd::Mvout { rows, cols, .. } => {
                    let bytes = rows as u64 * cols as u64 * 4;
                    a.dram_bytes += bytes;
                    a.spad_bytes += bytes;
                }
                RoccCmd::ComputeTile { rows, cols, ks, .. } => {
                    a.mesh_macs += rows as u64 * cols as u64 * ks as u64;
                    // Operands stream from the scratchpad.
                    a.spad_bytes += (rows as u64 * ks as u64 + ks as u64 * cols as u64) * 4;
                }
                RoccCmd::LoopMatmul { m, n, k } => {
                    a.mesh_macs += m as u64 * n as u64 * k as u64;
                    let bytes =
                        (m as u64 * k as u64 + k as u64 * n as u64 + m as u64 * n as u64) * 4;
                    a.dram_bytes += bytes;
                    a.spad_bytes += bytes;
                }
                _ => {}
            }
        }
    }
    a
}

/// Estimates the energy of one TinyMPC solve on a platform.
///
/// # Errors
///
/// Propagates solver failures.
pub fn solve_energy(
    platform: &Platform,
    horizon: usize,
    params: &EnergyParams,
) -> tinympc::Result<EnergyReport> {
    let outcome = solve_cycles(platform, horizon)?;
    let iterations = outcome.result.iterations as u64;
    let dims = tinympc::ProblemDims {
        nx: 12,
        nu: 4,
        horizon,
    };

    // Accumulate per-kernel activity weighted by invocation counts.
    let mut total = Activity::default();
    let scale = |a: &mut Activity, b: Activity, times: u64| {
        let mut s = b.stats;
        let mut scaled = TraceStats::default();
        for _ in 0..times {
            scaled.merge(&s);
        }
        s = scaled;
        a.stats.merge(&s);
        a.mesh_macs += b.mesh_macs * times;
        a.dram_bytes += b.dram_bytes * times;
        a.spad_bytes += b.spad_bytes * times;
    };
    let pipeline = pipeline_for(platform);
    for kernel in KernelId::ALL {
        let times = iterations * kernel.invocations_per_iteration(horizon) as u64;
        let trace = pipeline.energy_trace(kernel, &dims);
        scale(&mut total, activity_of(&trace), times);
    }

    let s = total.stats;
    let ooo = matches!(platform.core.kind, soc_cpu::CoreKind::OutOfOrder { .. });
    let scalar_insts = s.int_ops + s.branches + s.loads + s.stores + s.scalar_fp;
    let mut dynamic_pj = s.int_ops as f64 * params.int_op_pj
        + s.branches as f64 * params.int_op_pj
        + (s.loads + s.stores) as f64 * params.mem_op_pj
        + s.scalar_fp as f64 * params.fp_op_pj
        + s.vector_elems as f64 * params.vector_elem_pj
        + s.vector_insts as f64 * params.int_op_pj
        + s.rocc_cmds as f64 * params.int_op_pj
        + total.mesh_macs as f64 * params.mesh_mac_pj
        + total.dram_bytes as f64 * params.dram_byte_pj
        + total.spad_bytes as f64 * params.spad_byte_pj;
    if ooo {
        dynamic_pj += scalar_insts as f64 * params.ooo_overhead_pj;
    }

    let area_mm2 = platform.area().total_mm2();
    let seconds = outcome.result.total_cycles as f64 / (params.clock_ghz * 1.0e9);
    let leakage_nj = params.leakage_mw_per_mm2 * area_mm2 * seconds * 1.0e6;

    let dynamic_nj = dynamic_pj / 1.0e3;
    let total_nj = dynamic_nj + leakage_nj;
    Ok(EnergyReport {
        platform: platform.name.clone(),
        dynamic_nj,
        leakage_nj,
        cycles: outcome.result.total_cycles,
        solves_per_mj: 1.0e6 / total_nj,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_is_positive_and_finite_everywhere() {
        for p in Platform::table1_registry() {
            let r = solve_energy(&p, 10, &EnergyParams::default()).unwrap();
            assert!(r.dynamic_nj > 0.0 && r.dynamic_nj.is_finite(), "{}", p.name);
            assert!(r.leakage_nj > 0.0, "{}", p.name);
        }
    }

    #[test]
    fn accelerators_beat_big_ooo_on_energy() {
        let params = EnergyParams::default();
        let by_name = |n: &str| {
            let p = Platform::table1_registry()
                .into_iter()
                .find(|p| p.name == n)
                .unwrap();
            solve_energy(&p, 10, &params).unwrap()
        };
        let mega = by_name("MegaBoom");
        let saturn = by_name("RefV512D256Shuttle");
        let gemmini = by_name("OSGemminiRocket32KB");
        assert!(
            saturn.total_nj() < mega.total_nj(),
            "saturn {} nJ vs mega {} nJ",
            saturn.total_nj(),
            mega.total_nj()
        );
        assert!(
            gemmini.total_nj() < mega.total_nj(),
            "gemmini {} nJ vs mega {} nJ",
            gemmini.total_nj(),
            mega.total_nj()
        );
    }

    #[test]
    fn leakage_scales_with_area_times_time() {
        let params = EnergyParams::default();
        let rocket = solve_energy(&Platform::rocket_eigen(), 10, &params).unwrap();
        let mega = {
            let p = Platform::table1_registry()
                .into_iter()
                .find(|p| p.name == "MegaBoom")
                .unwrap();
            solve_energy(&p, 10, &params).unwrap()
        };
        // Mega: ~7.8x area but ~1/3 the time -> leakage within ~2.6x.
        let ratio = mega.leakage_nj / rocket.leakage_nj;
        assert!(ratio > 1.5 && ratio < 5.0, "leakage ratio {ratio}");
    }
}
