//! # soc-dse — design-space exploration for real-time optimal control
//!
//! The paper's primary contribution as a library: a framework that maps
//! the TinyMPC workload onto every hardware back-end in the design space
//! (scalar CPUs, Saturn vector configurations, Gemmini systolic arrays),
//! prices each kernel with the back-ends' cycle-level models, attaches the
//! calibrated ASAP7 area model, and produces the paper's comparisons —
//! per-kernel speedup breakdowns, random-size GEMV/GEMM speedup heatmaps,
//! end-to-end cycles-per-solve, and the area-vs-performance Pareto
//! frontier.
//!
//! ## Layout
//!
//! Back-end dispatch lives in the `soc-backend` crate: each family is a
//! [`soc_backend::BackendPipeline`] instance and
//! [`soc_backend::pipeline_for`] is the single point where a platform's
//! backend description resolves to behavior. This crate consumes that
//! seam:
//!
//! * [`platform`] — the configuration registry (every Table I design
//!   point) and area/performance plumbing, re-exported from
//!   `soc-backend`.
//! * [`experiments`] — runnable reproductions of each table and figure.
//! * [`workloads`] — random kernel-size generators and closed-loop
//!   reference trajectories.
//! * [`energy`] — a first-order energy model (an extension beyond the
//!   paper's published data; see its module docs).
//! * [`verify`] — sweeps the `soc-verify` static analyzer over every
//!   trace the pipelines feed their timing models.
//! * [`report`] — plain-text/markdown rendering of results.
//!
//! ## Quickstart
//!
//! ```
//! use soc_dse::platform::Platform;
//! use soc_dse::experiments::solve_cycles;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let rocket = Platform::rocket_eigen();
//! let outcome = solve_cycles(&rocket, 10)?;
//! assert!(outcome.result.converged);
//! assert!(outcome.result.total_cycles > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
pub mod experiments;
pub mod platform;
pub mod report;
pub mod rng;
pub mod verify;
pub mod workloads;
