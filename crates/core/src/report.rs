//! Plain-text / markdown rendering of experiment results.

/// Geometric mean of the finite, strictly positive values in `values`.
///
/// Computed in log space so large grids cannot overflow the running
/// product, and guarded against degenerate cells: non-finite or
/// non-positive entries are skipped, and an empty (or fully degenerate)
/// input yields the multiplicative identity `1.0` instead of NaN.
///
/// # Examples
///
/// ```
/// assert_eq!(soc_dse::report::geomean([]), 1.0);
/// assert!((soc_dse::report::geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
/// assert_eq!(soc_dse::report::geomean([0.0, f64::NAN, -3.0]), 1.0);
/// ```
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0f64;
    let mut n = 0usize;
    for v in values {
        if v.is_finite() && v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Renders a markdown table.
///
/// # Examples
///
/// ```
/// let s = soc_dse::report::markdown_table(
///     &["config", "cycles"],
///     &[vec!["Rocket".to_string(), "392261".to_string()]],
/// );
/// assert!(s.contains("| Rocket |"));
/// ```
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Renders a horizontal ASCII bar chart (for the kernel-breakdown
/// figures). `rows` are `(label, value)`; bars are scaled to `width`
/// characters at the maximum value.
pub fn bar_chart(rows: &[(String, f64)], width: usize) -> String {
    let max = rows
        .iter()
        .map(|(_, v)| *v)
        .fold(f64::MIN, f64::max)
        .max(1e-12);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, v) in rows {
        let n = ((v / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "{label:<label_w$}  {:>10.2}  {}\n",
            v,
            "#".repeat(n.max(1))
        ));
    }
    out
}

/// Renders a 2-D grid of ratios (the heatmap figures) with row/column
/// labels and a geometric-mean footer.
pub fn heatmap_text(
    title: &str,
    row_labels: &[usize],
    col_labels: &[usize],
    values: &[Vec<f64>],
) -> String {
    let mut out = format!("{title}\n  I\\K ");
    for c in col_labels {
        out.push_str(&format!("{c:>7}"));
    }
    out.push('\n');
    let mut count = 0usize;
    for (r, row) in values.iter().enumerate() {
        out.push_str(&format!("{:>5} ", row_labels[r]));
        for v in row {
            out.push_str(&format!("{v:>7.2}"));
            count += 1;
        }
        out.push('\n');
    }
    if count > 0 {
        out.push_str(&format!(
            "  geometric mean: {:.2}x\n",
            geomean(values.iter().flatten().copied())
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(t.lines().count(), 3);
        assert!(t.starts_with("| a | b |"));
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let s = bar_chart(&[("x".into(), 1.0), ("y".into(), 2.0)], 10);
        let lines: Vec<_> = s.lines().collect();
        assert!(lines[1].matches('#').count() > lines[0].matches('#').count());
    }

    #[test]
    fn heatmap_reports_geomean() {
        let s = heatmap_text("t", &[4, 8], &[4, 8], &[vec![2.0, 2.0], vec![2.0, 2.0]]);
        assert!(s.contains("geometric mean: 2.00x"));
    }

    #[test]
    fn heatmap_text_survives_degenerate_cells() {
        let s = heatmap_text("t", &[4], &[4, 8], &[vec![0.0, f64::NAN]]);
        assert!(s.contains("geometric mean: 1.00x"), "{s}");
    }

    #[test]
    fn geomean_guards_degenerate_inputs() {
        assert_eq!(geomean([]), 1.0);
        assert_eq!(geomean([0.0]), 1.0);
        assert_eq!(geomean([-2.0, f64::INFINITY, f64::NAN]), 1.0);
        // Degenerate cells are excluded, not poisonous.
        assert!((geomean([0.0, 4.0]) - 4.0).abs() < 1e-12);
        // Large grids no longer overflow a running product.
        let big = geomean((0..100).map(|_| 1e300));
        assert!((big - 1e300).abs() / 1e300 < 1e-10);
    }
}
