//! Plain-text / markdown rendering of experiment results.

/// Renders a markdown table.
///
/// # Examples
///
/// ```
/// let s = soc_dse::report::markdown_table(
///     &["config", "cycles"],
///     &[vec!["Rocket".to_string(), "392261".to_string()]],
/// );
/// assert!(s.contains("| Rocket |"));
/// ```
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Renders a horizontal ASCII bar chart (for the kernel-breakdown
/// figures). `rows` are `(label, value)`; bars are scaled to `width`
/// characters at the maximum value.
pub fn bar_chart(rows: &[(String, f64)], width: usize) -> String {
    let max = rows
        .iter()
        .map(|(_, v)| *v)
        .fold(f64::MIN, f64::max)
        .max(1e-12);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, v) in rows {
        let n = ((v / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "{label:<label_w$}  {:>10.2}  {}\n",
            v,
            "#".repeat(n.max(1))
        ));
    }
    out
}

/// Renders a 2-D grid of ratios (the heatmap figures) with row/column
/// labels and a geometric-mean footer.
pub fn heatmap_text(
    title: &str,
    row_labels: &[usize],
    col_labels: &[usize],
    values: &[Vec<f64>],
) -> String {
    let mut out = format!("{title}\n  I\\K ");
    for c in col_labels {
        out.push_str(&format!("{c:>7}"));
    }
    out.push('\n');
    let mut product = 1.0f64;
    let mut count = 0usize;
    for (r, row) in values.iter().enumerate() {
        out.push_str(&format!("{:>5} ", row_labels[r]));
        for v in row {
            out.push_str(&format!("{v:>7.2}"));
            product *= v;
            count += 1;
        }
        out.push('\n');
    }
    if count > 0 {
        out.push_str(&format!(
            "  geometric mean: {:.2}x\n",
            product.powf(1.0 / count as f64)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(t.lines().count(), 3);
        assert!(t.starts_with("| a | b |"));
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let s = bar_chart(&[("x".into(), 1.0), ("y".into(), 2.0)], 10);
        let lines: Vec<_> = s.lines().collect();
        assert!(lines[1].matches('#').count() > lines[0].matches('#').count());
    }

    #[test]
    fn heatmap_reports_geomean() {
        let s = heatmap_text("t", &[4, 8], &[4, 8], &[vec![2.0, 2.0], vec![2.0, 2.0]]);
        assert!(s.contains("geometric mean: 2.00x"));
    }
}
