//! Runnable reproductions of the paper's experiments: end-to-end TinyMPC
//! solves, per-kernel breakdowns, standalone kernel sweeps, and the
//! Pareto analysis.
//!
//! Every experiment that prices more than one design point is expressed
//! against a [`CycleSource`]: a batch oracle for solve and standalone
//! kernel cycle counts. [`SerialSource`] is the reference implementation
//! (compute every request in order, on this thread); the `soc-sweep`
//! crate provides a parallel, memoized implementation that must remain
//! bit-identical to it.

use crate::platform::Platform;
use soc_backend::pipeline_for;
use std::collections::BTreeMap;
use tinympc::{AdmmSolver, KernelId, NullObserver, SolveResult, SolverSettings};

pub use soc_backend::{KernelShape, Residency};
pub use soc_scenarios::{evaluate_closed_loop, ClosedLoopReport, Scenario, ScenarioCatalog};

/// Outcome of an end-to-end solve on a platform.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// Platform display name.
    pub platform: String,
    /// Full solver result including per-kernel cycle attribution.
    pub result: SolveResult<f32>,
}

impl SolveOutcome {
    /// Cycles per ADMM iteration (total divided by iterations).
    pub fn cycles_per_iteration(&self) -> f64 {
        self.result.total_cycles as f64 / self.result.iterations.max(1) as f64
    }
}

/// Solves the quadrotor hover problem on a platform, charging cycles to
/// its executor. Equivalent to [`solve_scenario_cycles`] with the
/// `hover` scenario (bit for bit — the scenario path is the only solve
/// path).
///
/// # Errors
///
/// Propagates solver construction/solve failures.
pub fn solve_cycles(platform: &Platform, horizon: usize) -> tinympc::Result<SolveOutcome> {
    solve_cycles_with(platform, horizon, SolverSettings::default())
}

/// [`solve_cycles`] with explicit solver settings (tolerance, iteration
/// budget, residual-check interval).
///
/// # Errors
///
/// Propagates solver construction/solve failures.
pub fn solve_cycles_with(
    platform: &Platform,
    horizon: usize,
    settings: SolverSettings,
) -> tinympc::Result<SolveOutcome> {
    solve_scenario_cycles_with(platform, &Scenario::hover(), horizon, settings)
}

/// Solves one MPC instance of `scenario` on a platform, charging cycles
/// to its executor: the scenario's plant at `horizon`, its reference
/// window at rollout step 0, from its characteristic initial state.
///
/// For the `hover` scenario this is bit-identical to the legacy
/// hover-only path (the hover reference is all zeros, exactly the
/// workspace default).
///
/// # Errors
///
/// Propagates solver construction/solve failures.
pub fn solve_scenario_cycles(
    platform: &Platform,
    scenario: &Scenario,
    horizon: usize,
) -> tinympc::Result<SolveOutcome> {
    solve_scenario_cycles_with(platform, scenario, horizon, SolverSettings::default())
}

/// [`solve_scenario_cycles`] with explicit solver settings.
///
/// # Errors
///
/// Propagates solver construction/solve failures.
pub fn solve_scenario_cycles_with(
    platform: &Platform,
    scenario: &Scenario,
    horizon: usize,
    settings: SolverSettings,
) -> tinympc::Result<SolveOutcome> {
    let problem = scenario.problem::<f32>(horizon)?;
    let mut solver = AdmmSolver::new(problem, settings)?;
    solver.set_reference(&scenario.reference::<f32>(horizon, 0))?;
    let x0 = scenario.initial_state::<f32>();
    let mut executor = platform.executor();
    let result = solver.solve_observed(&x0, executor.as_mut(), &mut NullObserver)?;
    Ok(SolveOutcome {
        platform: platform.name.clone(),
        result,
    })
}

/// Prices one scenario solve and returns just the cycle summary — the
/// batch-oracle hot path. Runs the solver's in-place entry point, so no
/// trajectory, `u0` vector or per-solve result struct is materialized;
/// bit-identical in cycles and iterations to
/// [`solve_scenario_cycles`] (same math, same charge schedule).
///
/// # Errors
///
/// Propagates solver construction/solve failures.
pub fn solve_scenario_summary(
    platform: &Platform,
    scenario: &Scenario,
    horizon: usize,
) -> tinympc::Result<SolveSummary> {
    let problem = scenario.problem::<f32>(horizon)?;
    let mut solver = AdmmSolver::new(problem, SolverSettings::default())?;
    solver.set_reference(&scenario.reference::<f32>(horizon, 0))?;
    let x0 = scenario.initial_state::<f32>();
    let mut executor = platform.executor();
    let status = solver.solve_in_place(x0.as_slice(), executor.as_mut())?;
    Ok(SolveSummary {
        total_cycles: status.total_cycles,
        iterations: status.iterations,
        converged: status.converged,
        kernel_cycles: solver.last_kernel_cycles().to_map(),
    })
}

/// Prices an arbitrary MPC problem (any state/input dimensions) on a
/// platform — the workload-sensitivity entry point.
///
/// # Errors
///
/// Propagates solver construction/solve failures.
pub fn solve_problem_cycles(
    platform: &Platform,
    problem: tinympc::TinyMpcProblem<f32>,
    settings: SolverSettings,
) -> tinympc::Result<SolveOutcome> {
    let mut solver = AdmmSolver::new(problem, settings)?;
    let x0 = solver.problem().hover_offset_state(0.2);
    let mut executor = platform.executor();
    let result = solver.solve_observed(&x0, executor.as_mut(), &mut NullObserver)?;
    Ok(SolveOutcome {
        platform: platform.name.clone(),
        result,
    })
}

/// Cycle-relevant summary of one end-to-end solve — everything the sweep
/// experiments (Table I, kernel speedups) need, and nothing that cannot
/// be cheaply cached (no trajectories, no residual history).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveSummary {
    /// Simulated cycles for the whole solve.
    pub total_cycles: u64,
    /// ADMM iterations performed.
    pub iterations: usize,
    /// Whether the solver reported convergence.
    pub converged: bool,
    /// Per-kernel cycle attribution.
    pub kernel_cycles: BTreeMap<KernelId, u64>,
}

impl From<&SolveOutcome> for SolveSummary {
    fn from(outcome: &SolveOutcome) -> Self {
        SolveSummary {
            total_cycles: outcome.result.total_cycles,
            iterations: outcome.result.iterations,
            converged: outcome.result.converged,
            kernel_cycles: outcome.result.kernel_cycles.clone(),
        }
    }
}

/// A request to price one end-to-end MPC solve of a scenario.
#[derive(Debug, Clone)]
pub struct SolveRequest {
    /// Platform to charge cycles to.
    pub platform: Platform,
    /// Workload to solve.
    pub scenario: Scenario,
    /// MPC horizon length.
    pub horizon: usize,
}

impl SolveRequest {
    /// A solve request for an arbitrary scenario.
    pub fn new(platform: Platform, scenario: Scenario, horizon: usize) -> Self {
        Self {
            platform,
            scenario,
            horizon,
        }
    }

    /// A quadrotor-hover solve request — the compatibility default all
    /// legacy (pre-scenario) call sites map onto.
    pub fn hover(platform: Platform, horizon: usize) -> Self {
        Self::new(platform, Scenario::hover(), horizon)
    }
}

/// A request to price one standalone kernel invocation.
#[derive(Debug, Clone)]
pub struct KernelRequest {
    /// Platform to charge cycles to.
    pub platform: Platform,
    /// GEMV or GEMM.
    pub shape: KernelShape,
    /// Cold (one-shot, DMA charged) or warm (steady-state).
    pub residency: Residency,
    /// Matrix height.
    pub i: usize,
    /// Matrix width / reduction length.
    pub k: usize,
}

/// Batch oracle for cycle counts.
///
/// Implementations MUST return exactly one element per request, in
/// request order, and MUST be deterministic: the same batch always
/// yields the same answers, bit for bit, regardless of how the work is
/// scheduled internally. [`SerialSource`] is the reference; the
/// `soc-sweep` engine is the parallel, memoized implementation and is
/// tested bit-identical against it.
pub trait CycleSource {
    /// Prices a batch of end-to-end solves.
    fn solve_batch(&self, requests: &[SolveRequest]) -> Vec<tinympc::Result<SolveSummary>>;

    /// Prices a batch of standalone kernels.
    fn kernel_batch(&self, requests: &[KernelRequest]) -> Vec<u64>;
}

/// Reference [`CycleSource`]: computes every request in order on the
/// calling thread with no caching. The bit-exact baseline every other
/// source is measured against.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialSource;

impl CycleSource for SerialSource {
    fn solve_batch(&self, requests: &[SolveRequest]) -> Vec<tinympc::Result<SolveSummary>> {
        requests
            .iter()
            .map(|r| solve_scenario_summary(&r.platform, &r.scenario, r.horizon))
            .collect()
    }

    fn kernel_batch(&self, requests: &[KernelRequest]) -> Vec<u64> {
        requests
            .iter()
            .map(|r| standalone_kernel(&r.platform, r.shape, r.residency, r.i, r.k))
            .collect()
    }
}

/// One row of the paper's Table I.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Configuration name.
    pub name: String,
    /// Total platform area (µm²).
    pub area_um2: f64,
    /// Simulated cycles per MPC solve.
    pub cycles_per_solve: u64,
    /// Achievable MPC rate at a 1 GHz clock.
    pub mpc_hz: f64,
}

/// Regenerates Table I: area and cycles-per-solve for every registry
/// platform, submitting the solves through `source` as one batch.
/// Solves the hover scenario (the paper's workload).
///
/// # Errors
///
/// Propagates solver failures.
pub fn table1_with(source: &dyn CycleSource, horizon: usize) -> tinympc::Result<Vec<Table1Row>> {
    table1_scenario_with(source, &Scenario::hover(), horizon)
}

/// [`table1_with`] over an arbitrary scenario: the same back-end
/// registry, priced on a different workload.
///
/// # Errors
///
/// Propagates solver failures.
pub fn table1_scenario_with(
    source: &dyn CycleSource,
    scenario: &Scenario,
    horizon: usize,
) -> tinympc::Result<Vec<Table1Row>> {
    let registry = Platform::table1_registry();
    let requests: Vec<SolveRequest> = registry
        .iter()
        .map(|p| SolveRequest::new(p.clone(), scenario.clone(), horizon))
        .collect();
    let summaries = source.solve_batch(&requests);
    assert_eq!(summaries.len(), requests.len(), "CycleSource contract");
    registry
        .iter()
        .zip(summaries)
        .map(|(p, summary)| {
            let cycles = summary?.total_cycles;
            Ok(Table1Row {
                name: p.name.clone(),
                area_um2: p.area().total(),
                cycles_per_solve: cycles,
                mpc_hz: 1.0e9 / cycles.max(1) as f64,
            })
        })
        .collect()
}

/// Regenerates Table I via the serial reference path.
///
/// # Errors
///
/// Propagates solver failures.
pub fn table1(horizon: usize) -> tinympc::Result<Vec<Table1Row>> {
    table1_with(&SerialSource, horizon)
}

/// Marks the Pareto-optimal points among `(area, cycles)` pairs (both
/// minimized). Returns one flag per input point.
pub fn pareto_frontier(points: &[(f64, f64)]) -> Vec<bool> {
    points
        .iter()
        .map(|&(a, c)| {
            !points
                .iter()
                .any(|&(a2, c2)| a2 <= a && c2 <= c && (a2 < a || c2 < c))
        })
        .collect()
}

/// Per-kernel cycles of one solve on a platform (Figures 16–19 raw data).
///
/// # Errors
///
/// Propagates solver failures.
pub fn kernel_breakdown(
    platform: &Platform,
    horizon: usize,
) -> tinympc::Result<BTreeMap<KernelId, u64>> {
    Ok(solve_cycles(platform, horizon)?.result.kernel_cycles)
}

/// Per-kernel speedup of `platform` over `baseline` (both solving the
/// same problem), submitting both solves through `source` as one batch.
///
/// # Errors
///
/// Propagates solver failures.
pub fn kernel_speedups_with(
    source: &dyn CycleSource,
    platform: &Platform,
    baseline: &Platform,
    horizon: usize,
) -> tinympc::Result<Vec<(KernelId, f64)>> {
    let requests = [
        SolveRequest::hover(platform.clone(), horizon),
        SolveRequest::hover(baseline.clone(), horizon),
    ];
    let mut summaries = source.solve_batch(&requests).into_iter();
    let (Some(a), Some(b)) = (summaries.next(), summaries.next()) else {
        panic!("CycleSource contract: two requests, two answers");
    };
    let (a, b) = (a?.kernel_cycles, b?.kernel_cycles);
    Ok(KernelId::ALL
        .iter()
        .filter_map(|k| {
            let (ca, cb) = (a.get(k).copied()?, b.get(k).copied()?);
            Some((*k, cb as f64 / ca.max(1) as f64))
        })
        .collect())
}

/// [`kernel_speedups_with`] via the serial reference path.
///
/// # Errors
///
/// Propagates solver failures.
pub fn kernel_speedups(
    platform: &Platform,
    baseline: &Platform,
    horizon: usize,
) -> tinympc::Result<Vec<(KernelId, f64)>> {
    kernel_speedups_with(&SerialSource, platform, baseline, horizon)
}

/// Cycles for a standalone GEMV/GEMM of the given size on a platform.
///
/// Measured in steady state (the kernel is emitted twice and the second
/// copy is charged), matching the paper's kernel-level methodology:
/// Gemmini operates on scratchpad-resident operands and Saturn streams
/// from the L1, without cold DMA warm-up dominating the comparison.
pub fn standalone_kernel(
    platform: &Platform,
    shape: KernelShape,
    residency: Residency,
    i: usize,
    k: usize,
) -> u64 {
    pipeline_for(platform).standalone_cycles(shape, residency, i, k)
}

/// A 2-D sweep of relative speedups over (I, K) kernel sizes.
#[derive(Debug, Clone)]
pub struct Heatmap {
    /// Row axis: matrix heights (I).
    pub heights: Vec<usize>,
    /// Column axis: matrix widths / reduction lengths (K).
    pub widths: Vec<usize>,
    /// `values[r][c]` = speedup of the numerator platform over the
    /// denominator at `(heights[r], widths[c])`.
    pub values: Vec<Vec<f64>>,
}

impl Heatmap {
    /// Geometric mean of all cells.
    ///
    /// Guarded: computed in log space (a 64×64 grid of large ratios
    /// would overflow a running product to `inf`), skips non-finite and
    /// non-positive cells, and returns `1.0` for an empty or fully
    /// degenerate grid instead of NaN.
    pub fn geomean(&self) -> f64 {
        crate::report::geomean(self.values.iter().flatten().copied())
    }

    /// Arithmetic mean of all cells (the paper quotes arithmetic "on
    /// average ~Nx" speedups).
    pub fn mean(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for row in &self.values {
            for v in row {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            1.0
        } else {
            sum / n as f64
        }
    }
}

/// Sweeps `(I, K)` sizes and reports the speedup of `numerator` over
/// `denominator` (cycles_denominator / cycles_numerator), submitting
/// all `2 · |heights| · |widths|` kernel pricings through `source` as
/// one batch.
pub fn speedup_heatmap_with(
    source: &dyn CycleSource,
    numerator: &Platform,
    denominator: &Platform,
    shape: KernelShape,
    residency: Residency,
    heights: &[usize],
    widths: &[usize],
) -> Heatmap {
    let mut requests = Vec::with_capacity(2 * heights.len() * widths.len());
    for &i in heights {
        for &k in widths {
            for platform in [numerator, denominator] {
                requests.push(KernelRequest {
                    platform: platform.clone(),
                    shape,
                    residency,
                    i,
                    k,
                });
            }
        }
    }
    let cycles = source.kernel_batch(&requests);
    assert_eq!(cycles.len(), requests.len(), "CycleSource contract");
    let mut pairs = cycles.chunks_exact(2);
    let values = heights
        .iter()
        .map(|_| {
            widths
                .iter()
                .map(|_| {
                    let pair = pairs.next().expect("one (num, den) pair per cell");
                    let (n, d) = (pair[0].max(1), pair[1].max(1));
                    d as f64 / n as f64
                })
                .collect()
        })
        .collect();
    Heatmap {
        heights: heights.to_vec(),
        widths: widths.to_vec(),
        values,
    }
}

/// [`speedup_heatmap_with`] via the serial reference path.
pub fn speedup_heatmap(
    numerator: &Platform,
    denominator: &Platform,
    shape: KernelShape,
    residency: Residency,
    heights: &[usize],
    widths: &[usize],
) -> Heatmap {
    speedup_heatmap_with(
        &SerialSource,
        numerator,
        denominator,
        shape,
        residency,
        heights,
        widths,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use soc_cpu::CoreConfig;
    use soc_gemmini::{GemminiConfig, GemminiOpts};
    use soc_vector::SaturnConfig;

    #[test]
    fn pareto_marks_dominated_points() {
        let pts = [(1.0, 10.0), (2.0, 5.0), (3.0, 6.0), (4.0, 1.0)];
        let flags = pareto_frontier(&pts);
        assert_eq!(flags, vec![true, true, false, true]);
    }

    #[test]
    fn hover_scenario_is_bit_identical_to_the_legacy_path() {
        // The pre-scenario solve path: quadrotor_hover problem, no
        // set_reference (workspace xref stays zeroed), x0 offset 0.2.
        let platform = Platform::rocket_eigen();
        let problem = tinympc::problems::quadrotor_hover::<f32>(10).unwrap();
        let legacy = solve_problem_cycles(&platform, problem, SolverSettings::default()).unwrap();
        let scenario = solve_scenario_cycles(&platform, &Scenario::hover(), 10).unwrap();
        assert_eq!(legacy.result.total_cycles, scenario.result.total_cycles);
        assert_eq!(legacy.result.iterations, scenario.result.iterations);
        assert_eq!(
            legacy.result.u0, scenario.result.u0,
            "u0 must match bit for bit"
        );
    }

    #[test]
    fn scenarios_change_the_priced_workload() {
        let platform = Platform::rocket_eigen();
        let hover = solve_scenario_cycles(&platform, &Scenario::hover(), 10).unwrap();
        let dint = solve_scenario_cycles(&platform, &Scenario::double_integrator(), 10).unwrap();
        // A 2×1 plant must be far cheaper per ADMM iteration than the
        // 12×4 quad (iteration counts differ between workloads).
        assert!(dint.cycles_per_iteration() < hover.cycles_per_iteration() / 4.0);
        // And the SOC scenario must still solve to a finite input.
        let soc = solve_scenario_cycles(&platform, &Scenario::soft_landing(), 10).unwrap();
        assert!(soc.result.u0.is_finite());
    }

    #[test]
    fn rocket_solve_produces_breakdown() {
        let outcome = solve_cycles(&Platform::rocket_eigen(), 10).unwrap();
        assert!(outcome.result.converged);
        assert!(outcome.result.total_cycles > 10_000);
        assert_eq!(outcome.result.kernel_cycles.len(), 15);
    }

    #[test]
    fn saturn_beats_rocket_end_to_end() {
        let rocket = solve_cycles(&Platform::rocket_eigen(), 10).unwrap();
        let saturn = solve_cycles(
            &Platform::saturn(CoreConfig::shuttle(), SaturnConfig::v512d256()),
            10,
        )
        .unwrap();
        assert!(
            saturn.result.total_cycles < rocket.result.total_cycles,
            "saturn {} vs rocket {}",
            saturn.result.total_cycles,
            rocket.result.total_cycles
        );
    }

    #[test]
    fn standalone_gemv_saturn_beats_plain_gemmini() {
        // Figure 13: Saturn over original (GEMM-only) Gemmini on GEMV.
        let saturn = Platform::saturn(CoreConfig::rocket(), SaturnConfig::v512d512());
        let gemmini = Platform::gemmini(
            CoreConfig::rocket(),
            GemminiConfig::os_4x4_32kb(),
            GemminiOpts::optimized(),
        );
        let h = speedup_heatmap(
            &saturn,
            &gemmini,
            KernelShape::Gemv,
            Residency::Cold,
            &workloads::heatmap_heights()[..3],
            &workloads::heatmap_widths()[..3],
        );
        assert!(
            h.mean() > 1.0,
            "Saturn should beat plain Gemmini on GEMV: {}",
            h.mean()
        );
    }

    #[test]
    fn gemv_extension_flips_the_comparison() {
        // Figure 14: GEMV-Gemmini over Saturn on GEMV.
        let saturn = Platform::saturn(CoreConfig::rocket(), SaturnConfig::v512d512());
        let plain = Platform::gemmini(
            CoreConfig::rocket(),
            GemminiConfig::os_4x4_32kb(),
            GemminiOpts::optimized(),
        );
        let ext = Platform::gemmini(
            CoreConfig::rocket(),
            GemminiConfig::os_4x4_32kb().with_gemv_support(),
            GemminiOpts::optimized(),
        );
        let hs = workloads::heatmap_heights();
        let ws_ = workloads::heatmap_widths();
        let plain_vs_saturn = speedup_heatmap(
            &plain,
            &saturn,
            KernelShape::Gemv,
            Residency::Cold,
            &hs[..4],
            &ws_[..4],
        );
        let ext_vs_saturn = speedup_heatmap(
            &ext,
            &saturn,
            KernelShape::Gemv,
            Residency::Cold,
            &hs[..4],
            &ws_[..4],
        );
        assert!(
            ext_vs_saturn.mean() > plain_vs_saturn.mean(),
            "extension should improve Gemmini vs Saturn: {} vs {}",
            ext_vs_saturn.mean(),
            plain_vs_saturn.mean()
        );
    }

    #[test]
    fn heatmap_stats() {
        let h = Heatmap {
            heights: vec![1, 2],
            widths: vec![1, 2],
            values: vec![vec![1.0, 4.0], vec![4.0, 1.0]],
        };
        assert!((h.geomean() - 2.0).abs() < 1e-12);
        assert!((h.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn heatmap_geomean_survives_degenerate_cells() {
        // Empty grid: multiplicative identity, not NaN (0^(1/0)).
        let empty = Heatmap {
            heights: vec![],
            widths: vec![],
            values: vec![],
        };
        assert_eq!(empty.geomean(), 1.0);
        assert_eq!(empty.mean(), 1.0);

        // All-degenerate cells (zero speedup, NaN from 0/0 pricing):
        // skipped, not propagated.
        let degenerate = Heatmap {
            heights: vec![4],
            widths: vec![4, 8, 16],
            values: vec![vec![0.0, f64::NAN, -1.0]],
        };
        assert_eq!(degenerate.geomean(), 1.0);

        // Degenerate cells must not poison healthy ones.
        let mixed = Heatmap {
            heights: vec![4],
            widths: vec![4, 8],
            values: vec![vec![f64::NAN, 9.0]],
        };
        assert!((mixed.geomean() - 9.0).abs() < 1e-12);

        // A large grid of large ratios must not overflow to inf (the
        // old running-product implementation did).
        let big = Heatmap {
            heights: vec![0; 64],
            widths: vec![0; 64],
            values: vec![vec![1e30; 64]; 64],
        };
        let g = big.geomean();
        assert!(g.is_finite(), "geomean overflowed: {g}");
        assert!((g - 1e30).abs() / 1e30 < 1e-10);
    }

    #[test]
    fn serial_source_matches_direct_calls() {
        let rocket = Platform::rocket_eigen();
        let saturn = Platform::saturn(CoreConfig::shuttle(), SaturnConfig::v512d256());

        // Solve batch ≡ solve_cycles, element for element.
        let requests = [
            SolveRequest::hover(rocket.clone(), 8),
            SolveRequest::hover(saturn.clone(), 8),
        ];
        let batch = SerialSource.solve_batch(&requests);
        assert_eq!(batch.len(), 2);
        for (req, got) in requests.iter().zip(&batch) {
            let direct = SolveSummary::from(&solve_cycles(&req.platform, req.horizon).unwrap());
            assert_eq!(got.as_ref().unwrap(), &direct);
        }

        // Kernel batch ≡ standalone_kernel, element for element.
        let kreqs = [
            KernelRequest {
                platform: rocket.clone(),
                shape: KernelShape::Gemv,
                residency: Residency::Cold,
                i: 8,
                k: 8,
            },
            KernelRequest {
                platform: saturn,
                shape: KernelShape::Gemm,
                residency: Residency::Warm,
                i: 12,
                k: 12,
            },
        ];
        let cycles = SerialSource.kernel_batch(&kreqs);
        for (req, got) in kreqs.iter().zip(&cycles) {
            assert_eq!(
                *got,
                standalone_kernel(&req.platform, req.shape, req.residency, req.i, req.k)
            );
        }
    }
}
