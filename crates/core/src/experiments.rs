//! Runnable reproductions of the paper's experiments: end-to-end TinyMPC
//! solves, per-kernel breakdowns, standalone kernel sweeps, and the
//! Pareto analysis.

use crate::platform::{Backend, Platform};
use soc_cpu::ScalarKernels;
use soc_gemmini::{GemminiKernels, GemminiUnit, MatId};
use soc_isa::TraceBuilder;
use soc_vector::{SaturnUnit, VectorKernels};
use std::collections::BTreeMap;
use tinympc::{problems, AdmmSolver, KernelId, SolveResult, SolverSettings};

/// Outcome of an end-to-end solve on a platform.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// Platform display name.
    pub platform: String,
    /// Full solver result including per-kernel cycle attribution.
    pub result: SolveResult<f32>,
}

impl SolveOutcome {
    /// Cycles per ADMM iteration (total divided by iterations).
    pub fn cycles_per_iteration(&self) -> f64 {
        self.result.total_cycles as f64 / self.result.iterations.max(1) as f64
    }
}

/// Solves the quadrotor hover problem on a platform, charging cycles to
/// its executor.
///
/// # Errors
///
/// Propagates solver construction/solve failures.
pub fn solve_cycles(platform: &Platform, horizon: usize) -> tinympc::Result<SolveOutcome> {
    solve_cycles_with(platform, horizon, SolverSettings::default())
}

/// [`solve_cycles`] with explicit solver settings (tolerance, iteration
/// budget, residual-check interval).
///
/// # Errors
///
/// Propagates solver construction/solve failures.
pub fn solve_cycles_with(
    platform: &Platform,
    horizon: usize,
    settings: SolverSettings,
) -> tinympc::Result<SolveOutcome> {
    let problem = problems::quadrotor_hover::<f32>(horizon)?;
    solve_problem_cycles(platform, problem, settings)
}

/// Prices an arbitrary MPC problem (any state/input dimensions) on a
/// platform — the workload-sensitivity entry point.
///
/// # Errors
///
/// Propagates solver construction/solve failures.
pub fn solve_problem_cycles(
    platform: &Platform,
    problem: tinympc::TinyMpcProblem<f32>,
    settings: SolverSettings,
) -> tinympc::Result<SolveOutcome> {
    let mut solver = AdmmSolver::new(problem, settings)?;
    let x0 = solver.problem().hover_offset_state(0.2);
    let mut executor = platform.executor();
    let result = solver.solve(&x0, executor.as_mut())?;
    Ok(SolveOutcome {
        platform: platform.name.clone(),
        result,
    })
}

/// One row of the paper's Table I.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Configuration name.
    pub name: String,
    /// Total platform area (µm²).
    pub area_um2: f64,
    /// Simulated cycles per MPC solve.
    pub cycles_per_solve: u64,
    /// Achievable MPC rate at a 1 GHz clock.
    pub mpc_hz: f64,
}

/// Regenerates Table I: area and cycles-per-solve for every registry
/// platform.
///
/// # Errors
///
/// Propagates solver failures.
pub fn table1(horizon: usize) -> tinympc::Result<Vec<Table1Row>> {
    Platform::table1_registry()
        .iter()
        .map(|p| {
            let outcome = solve_cycles(p, horizon)?;
            let cycles = outcome.result.total_cycles;
            Ok(Table1Row {
                name: p.name.clone(),
                area_um2: p.area().total(),
                cycles_per_solve: cycles,
                mpc_hz: 1.0e9 / cycles.max(1) as f64,
            })
        })
        .collect()
}

/// Marks the Pareto-optimal points among `(area, cycles)` pairs (both
/// minimized). Returns one flag per input point.
pub fn pareto_frontier(points: &[(f64, f64)]) -> Vec<bool> {
    points
        .iter()
        .map(|&(a, c)| {
            !points
                .iter()
                .any(|&(a2, c2)| a2 <= a && c2 <= c && (a2 < a || c2 < c))
        })
        .collect()
}

/// Per-kernel cycles of one solve on a platform (Figures 16–19 raw data).
///
/// # Errors
///
/// Propagates solver failures.
pub fn kernel_breakdown(
    platform: &Platform,
    horizon: usize,
) -> tinympc::Result<BTreeMap<KernelId, u64>> {
    Ok(solve_cycles(platform, horizon)?.result.kernel_cycles)
}

/// Per-kernel speedup of `platform` over `baseline` (both solving the
/// same problem).
///
/// # Errors
///
/// Propagates solver failures.
pub fn kernel_speedups(
    platform: &Platform,
    baseline: &Platform,
    horizon: usize,
) -> tinympc::Result<Vec<(KernelId, f64)>> {
    let a = kernel_breakdown(platform, horizon)?;
    let b = kernel_breakdown(baseline, horizon)?;
    Ok(KernelId::ALL
        .iter()
        .filter_map(|k| {
            let (ca, cb) = (a.get(k).copied()?, b.get(k).copied()?);
            Some((*k, cb as f64 / ca.max(1) as f64))
        })
        .collect())
}

/// Standalone kernel shape for the sweep experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelShape {
    /// Matrix-vector product of an `I × K` matrix.
    Gemv,
    /// Matrix-matrix product `I × K` times `K × K`.
    Gemm,
}

/// Operand residency for standalone kernel measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// Operands arrive from memory: Gemmini pays mvin/mvout DMA, matching
    /// a one-shot kernel invocation (Figures 13-15, where GEMV's lack of
    /// reuse is the point).
    Cold,
    /// Operands are already resident (scratchpad / L1) and the kernel is
    /// measured in steady state (Figure 8, which isolates mesh
    /// utilization).
    Warm,
}

/// Cycles for a standalone GEMV/GEMM of the given size on a platform.
///
/// Measured in steady state (the kernel is emitted twice and the second
/// copy is charged), matching the paper's kernel-level methodology:
/// Gemmini operates on scratchpad-resident operands and Saturn streams
/// from the L1, without cold DMA warm-up dominating the comparison.
pub fn standalone_kernel(
    platform: &Platform,
    shape: KernelShape,
    residency: Residency,
    i: usize,
    k: usize,
) -> u64 {
    let reps = match residency {
        Residency::Cold => 1,
        Residency::Warm => 2,
    };
    match &platform.backend {
        Backend::Scalar(style) => {
            let gen = ScalarKernels::new(*style);
            let mut b = TraceBuilder::new();
            let emit = |b: &mut TraceBuilder| match shape {
                KernelShape::Gemv => gen.gemv(b, i, k),
                KernelShape::Gemm => gen.gemm(b, i, k, k),
            };
            emit(&mut b);
            let mark = b.len();
            if reps == 2 {
                emit(&mut b);
                crate::executors::steady_cost(&platform.core, &b.finish(), mark, || {
                    Box::new(soc_cpu::NullAccelerator)
                })
            } else {
                let mut null = soc_cpu::NullAccelerator;
                soc_cpu::simulate_with_accel(&platform.core, &b.finish(), &mut null)
            }
        }
        Backend::Saturn {
            config,
            style,
            lmul,
        } => {
            // The paper's standalone kernels dynamically compute VLMAX:
            // pick the smallest LMUL whose register group covers the
            // output rows, up to the paper's LMUL=8 for tall matrices.
            let fitted = [1u8, 2, 4, 8]
                .into_iter()
                .find(|&l| config.vlmax(32, l) as usize >= i)
                .unwrap_or(8);
            let lmul = lmul.unwrap_or(fitted);
            let gen = VectorKernels::new(*config, *style, lmul);
            let mut b = TraceBuilder::new();
            let emit = |b: &mut TraceBuilder| match shape {
                KernelShape::Gemv => gen.gemv(b, i, k),
                KernelShape::Gemm => gen.gemm(b, i, k, k),
            };
            emit(&mut b);
            let mark = b.len();
            let cfg = *config;
            if reps == 2 {
                emit(&mut b);
                crate::executors::steady_cost(&platform.core, &b.finish(), mark, move || {
                    Box::new(SaturnUnit::new(cfg))
                })
            } else {
                b.fence();
                let mut unit = SaturnUnit::new(cfg);
                soc_cpu::simulate_with_accel(&platform.core, &b.finish(), &mut unit)
            }
        }
        Backend::Gemmini { config, opts } => {
            let mut gen = GemminiKernels::new(*config, *opts);
            let mut b = TraceBuilder::new();
            let (a_id, x_id, y_id) = (MatId(0), MatId(1), MatId(2));
            let emit = |gen: &mut GemminiKernels, b: &mut TraceBuilder| match shape {
                KernelShape::Gemv => gen.gemv(b, i, k, a_id, x_id, y_id),
                KernelShape::Gemm => gen.gemm(b, i, k, k, a_id, x_id, y_id),
            };
            emit(&mut gen, &mut b);
            let mark = b.len();
            let cfg = *config;
            if reps == 2 {
                emit(&mut gen, &mut b);
                crate::executors::steady_cost(&platform.core, &b.finish(), mark, move || {
                    Box::new(GemminiUnit::new(cfg))
                })
            } else {
                // One-shot: the result is stored back and synchronized.
                gen.sync_to_cpu(&mut b, i, y_id);
                b.fence();
                let mut unit = GemminiUnit::new(cfg);
                soc_cpu::simulate_with_accel(&platform.core, &b.finish(), &mut unit)
            }
        }
    }
}

/// A 2-D sweep of relative speedups over (I, K) kernel sizes.
#[derive(Debug, Clone)]
pub struct Heatmap {
    /// Row axis: matrix heights (I).
    pub heights: Vec<usize>,
    /// Column axis: matrix widths / reduction lengths (K).
    pub widths: Vec<usize>,
    /// `values[r][c]` = speedup of the numerator platform over the
    /// denominator at `(heights[r], widths[c])`.
    pub values: Vec<Vec<f64>>,
}

impl Heatmap {
    /// Geometric mean of all cells.
    pub fn geomean(&self) -> f64 {
        let mut product = 1.0f64;
        let mut n = 0usize;
        for row in &self.values {
            for v in row {
                product *= v;
                n += 1;
            }
        }
        if n == 0 {
            return 1.0;
        }
        product.powf(1.0 / n as f64)
    }

    /// Arithmetic mean of all cells (the paper quotes arithmetic "on
    /// average ~Nx" speedups).
    pub fn mean(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for row in &self.values {
            for v in row {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            1.0
        } else {
            sum / n as f64
        }
    }
}

/// Sweeps `(I, K)` sizes and reports the speedup of `numerator` over
/// `denominator` (cycles_denominator / cycles_numerator).
pub fn speedup_heatmap(
    numerator: &Platform,
    denominator: &Platform,
    shape: KernelShape,
    residency: Residency,
    heights: &[usize],
    widths: &[usize],
) -> Heatmap {
    let values = heights
        .iter()
        .map(|&i| {
            widths
                .iter()
                .map(|&k| {
                    let n = standalone_kernel(numerator, shape, residency, i, k).max(1);
                    let d = standalone_kernel(denominator, shape, residency, i, k).max(1);
                    d as f64 / n as f64
                })
                .collect()
        })
        .collect();
    Heatmap {
        heights: heights.to_vec(),
        widths: widths.to_vec(),
        values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use soc_cpu::CoreConfig;
    use soc_gemmini::{GemminiConfig, GemminiOpts};
    use soc_vector::SaturnConfig;

    #[test]
    fn pareto_marks_dominated_points() {
        let pts = [(1.0, 10.0), (2.0, 5.0), (3.0, 6.0), (4.0, 1.0)];
        let flags = pareto_frontier(&pts);
        assert_eq!(flags, vec![true, true, false, true]);
    }

    #[test]
    fn rocket_solve_produces_breakdown() {
        let outcome = solve_cycles(&Platform::rocket_eigen(), 10).unwrap();
        assert!(outcome.result.converged);
        assert!(outcome.result.total_cycles > 10_000);
        assert_eq!(outcome.result.kernel_cycles.len(), 15);
    }

    #[test]
    fn saturn_beats_rocket_end_to_end() {
        let rocket = solve_cycles(&Platform::rocket_eigen(), 10).unwrap();
        let saturn = solve_cycles(
            &Platform::saturn(CoreConfig::shuttle(), SaturnConfig::v512d256()),
            10,
        )
        .unwrap();
        assert!(
            saturn.result.total_cycles < rocket.result.total_cycles,
            "saturn {} vs rocket {}",
            saturn.result.total_cycles,
            rocket.result.total_cycles
        );
    }

    #[test]
    fn standalone_gemv_saturn_beats_plain_gemmini() {
        // Figure 13: Saturn over original (GEMM-only) Gemmini on GEMV.
        let saturn = Platform::saturn(CoreConfig::rocket(), SaturnConfig::v512d512());
        let gemmini = Platform::gemmini(
            CoreConfig::rocket(),
            GemminiConfig::os_4x4_32kb(),
            GemminiOpts::optimized(),
        );
        let h = speedup_heatmap(
            &saturn,
            &gemmini,
            KernelShape::Gemv,
            Residency::Cold,
            &workloads::heatmap_heights()[..3],
            &workloads::heatmap_widths()[..3],
        );
        assert!(
            h.mean() > 1.0,
            "Saturn should beat plain Gemmini on GEMV: {}",
            h.mean()
        );
    }

    #[test]
    fn gemv_extension_flips_the_comparison() {
        // Figure 14: GEMV-Gemmini over Saturn on GEMV.
        let saturn = Platform::saturn(CoreConfig::rocket(), SaturnConfig::v512d512());
        let plain = Platform::gemmini(
            CoreConfig::rocket(),
            GemminiConfig::os_4x4_32kb(),
            GemminiOpts::optimized(),
        );
        let ext = Platform::gemmini(
            CoreConfig::rocket(),
            GemminiConfig::os_4x4_32kb().with_gemv_support(),
            GemminiOpts::optimized(),
        );
        let hs = workloads::heatmap_heights();
        let ws_ = workloads::heatmap_widths();
        let plain_vs_saturn = speedup_heatmap(
            &plain,
            &saturn,
            KernelShape::Gemv,
            Residency::Cold,
            &hs[..4],
            &ws_[..4],
        );
        let ext_vs_saturn = speedup_heatmap(
            &ext,
            &saturn,
            KernelShape::Gemv,
            Residency::Cold,
            &hs[..4],
            &ws_[..4],
        );
        assert!(
            ext_vs_saturn.mean() > plain_vs_saturn.mean(),
            "extension should improve Gemmini vs Saturn: {} vs {}",
            ext_vs_saturn.mean(),
            plain_vs_saturn.mean()
        );
    }

    #[test]
    fn heatmap_stats() {
        let h = Heatmap {
            heights: vec![1, 2],
            widths: vec![1, 2],
            values: vec![vec![1.0, 4.0], vec![4.0, 1.0]],
        };
        assert!((h.geomean() - 2.0).abs() < 1e-12);
        assert!((h.mean() - 2.5).abs() < 1e-12);
    }
}
