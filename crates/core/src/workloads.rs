//! Workload generators: random kernel sizes for the heatmap sweeps and
//! reference trajectories for closed-loop examples.

use crate::rng::SplitMix64;
use matlib::{Scalar, Vector};

/// The matrix-height (I) axis used by the paper's heatmap figures.
pub fn heatmap_heights() -> Vec<usize> {
    vec![4, 8, 12, 16, 24, 32, 48, 64]
}

/// The matrix-width / reduction-length (K) axis used by the heatmaps.
pub fn heatmap_widths() -> Vec<usize> {
    vec![4, 8, 12, 16, 24, 32, 48, 64]
}

/// `n` random `(I, K)` kernel sizes in the paper's sweep range.
pub fn random_sizes(seed: u64, n: usize) -> Vec<(usize, usize)> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| (rng.range_usize(4, 64), rng.range_usize(4, 64)))
        .collect()
}

/// Hover reference: all-zero states.
pub fn hover_reference<T: Scalar>(nx: usize, horizon: usize) -> Vec<Vector<T>> {
    (0..horizon).map(|_| Vector::zeros(nx)).collect()
}

/// A figure-eight reference trajectory for the 12-state quadrotor,
/// sampled from control step `step` at period `dt`.
///
/// Positions trace a lemniscate in the horizontal plane at constant
/// altitude; velocity references are the analytic derivatives so the
/// tracking problem is dynamically consistent.
///
/// # Panics
///
/// Panics if `nx < 9` (needs position and velocity states).
pub fn figure8_reference<T: Scalar>(
    nx: usize,
    horizon: usize,
    step: usize,
    dt: f64,
) -> Vec<Vector<T>> {
    assert!(nx >= 9, "figure-eight reference needs at least 9 states");
    let amp = 0.35;
    let omega = 2.0 * std::f64::consts::PI / 6.0; // one loop per 6 s
    (0..horizon)
        .map(|i| {
            let t = (step + i) as f64 * dt;
            let mut x = Vector::zeros(nx);
            x[0] = T::from_f64(amp * (omega * t).sin());
            x[1] = T::from_f64(0.5 * amp * (2.0 * omega * t).sin());
            x[2] = T::from_f64(0.0);
            x[6] = T::from_f64(amp * omega * (omega * t).cos());
            x[7] = T::from_f64(amp * omega * (2.0 * omega * t).cos());
            x
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_sizes_are_in_range_and_deterministic() {
        let a = random_sizes(7, 50);
        let b = random_sizes(7, 50);
        assert_eq!(a, b);
        assert!(a
            .iter()
            .all(|&(i, k)| (4..=64).contains(&i) && (4..=64).contains(&k)));
        assert_ne!(random_sizes(8, 50), a);
    }

    #[test]
    fn figure8_is_smooth_and_bounded() {
        let r = figure8_reference::<f64>(12, 100, 0, 0.01);
        assert_eq!(r.len(), 100);
        for w in r.windows(2) {
            let dx = (w[1][0] - w[0][0]).abs();
            assert!(dx < 0.01, "reference jumps by {dx}");
        }
        assert!(r.iter().all(|v| v.max_abs() < 1.0));
    }

    #[test]
    fn heatmap_axes_nonempty() {
        assert!(!heatmap_heights().is_empty());
        assert_eq!(heatmap_heights().len(), heatmap_widths().len());
    }
}
