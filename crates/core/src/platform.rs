//! The design-point registry, re-exported from `soc-backend`.
//!
//! [`Platform`] and [`Backend`] live in the `soc-backend` crate next to
//! the pipeline implementations; this module keeps the historical
//! `soc_dse::platform::Platform` paths working for every consumer.

pub use soc_backend::{Backend, Platform};
