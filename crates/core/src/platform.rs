//! The design-point registry: every hardware+software configuration the
//! paper evaluates, with area and executor plumbing.

use crate::executors::{GemminiExecutor, SaturnExecutor, ScalarExecutor};
use soc_area::{cpu_area, gemmini_platform_area, saturn_platform_area, AreaBreakdown};
use soc_cpu::{CoreConfig, ScalarStyle};
use soc_gemmini::{GemminiConfig, GemminiOpts};
use soc_vector::{SaturnConfig, VectorStyle};
use tinympc::KernelExecutor;

/// The accelerator (or lack thereof) attached to the scalar core.
#[derive(Debug, Clone)]
pub enum Backend {
    /// Bare scalar core with a software mapping style.
    Scalar(ScalarStyle),
    /// Saturn vector unit.
    Saturn {
        /// Vector-unit configuration.
        config: SaturnConfig,
        /// Software mapping style.
        style: VectorStyle,
        /// Uniform LMUL override (`None` = the optimized per-class
        /// policy).
        lmul: Option<u8>,
    },
    /// Gemmini systolic array.
    Gemmini {
        /// Accelerator configuration.
        config: GemminiConfig,
        /// Software mapping options.
        opts: GemminiOpts,
    },
}

/// One design point: a scalar core plus an optional accelerator and the
/// software mapping used on it.
#[derive(Debug, Clone)]
pub struct Platform {
    /// Display name (Table I naming).
    pub name: String,
    /// The scalar frontend.
    pub core: CoreConfig,
    /// The attached back-end.
    pub backend: Backend,
}

impl Platform {
    /// Rocket running hand-optimized scalar code — the paper's baseline.
    pub fn rocket_eigen() -> Self {
        Platform {
            name: "Rocket".into(),
            core: CoreConfig::rocket(),
            backend: Backend::Scalar(ScalarStyle::Optimized),
        }
    }

    /// Rocket running `matlib` library code.
    pub fn rocket_matlib() -> Self {
        Platform {
            name: "Rocket (matlib)".into(),
            core: CoreConfig::rocket(),
            backend: Backend::Scalar(ScalarStyle::Library),
        }
    }

    /// A BOOM core running hand-optimized scalar code.
    pub fn boom(core: CoreConfig) -> Self {
        Platform {
            name: core.name.to_string(),
            core,
            backend: Backend::Scalar(ScalarStyle::Optimized),
        }
    }

    /// A Saturn reference design with the hand-optimized mapping.
    pub fn saturn(core: CoreConfig, config: SaturnConfig) -> Self {
        Platform {
            name: format!("Ref{}{}", config.name, core.name),
            core,
            backend: Backend::Saturn {
                config,
                style: VectorStyle::Fused,
                lmul: None,
            },
        }
    }

    /// A Saturn design with an explicit style and uniform LMUL.
    pub fn saturn_with(
        core: CoreConfig,
        config: SaturnConfig,
        style: VectorStyle,
        lmul: Option<u8>,
    ) -> Self {
        let style_tag = match style {
            VectorStyle::Matlib => "matlib",
            VectorStyle::Fused => "fused",
        };
        let lmul_tag = lmul.map_or(String::new(), |l| format!(",LMUL={l}"));
        Platform {
            name: format!("{}{} ({style_tag}{lmul_tag})", config.name, core.name),
            core,
            backend: Backend::Saturn {
                config,
                style,
                lmul,
            },
        }
    }

    /// A Gemmini design point.
    pub fn gemmini(core: CoreConfig, config: GemminiConfig, opts: GemminiOpts) -> Self {
        Platform {
            name: format!("{}{}", config.name, core.name),
            core,
            backend: Backend::Gemmini { config, opts },
        }
    }

    /// Every design point of the paper's Table I (performance rows).
    pub fn table1_registry() -> Vec<Platform> {
        let mut v = vec![
            Platform::rocket_eigen(),
            Platform::boom(CoreConfig::small_boom()),
            Platform::boom(CoreConfig::medium_boom()),
            Platform::boom(CoreConfig::large_boom()),
            Platform::boom(CoreConfig::mega_boom()),
            Platform::saturn(CoreConfig::rocket(), SaturnConfig::v512d128()),
            Platform::saturn(CoreConfig::rocket(), SaturnConfig::v512d256()),
            Platform::saturn(CoreConfig::shuttle(), SaturnConfig::v512d128()),
            Platform::saturn(CoreConfig::shuttle(), SaturnConfig::v512d256()),
        ];
        let mut os32 = Platform::gemmini(
            CoreConfig::rocket(),
            GemminiConfig::os_4x4_32kb(),
            GemminiOpts::optimized(),
        );
        os32.name = "OSGemminiRocket32KB".into();
        let mut os64 = Platform::gemmini(
            CoreConfig::rocket(),
            GemminiConfig::os_4x4_64kb(),
            GemminiOpts::optimized(),
        );
        os64.name = "OSGemminiRocket64KB".into();
        // The WS design was evaluated with only unrolling + static
        // mapping (no residency/fusion/pooling optimizations).
        let ws_opts = GemminiOpts {
            isa: soc_gemmini::IsaStyle::Fine,
            static_mapping: true,
            scratchpad_resident: false,
            fuse_activation: false,
            pooling_reduction: false,
        };
        let mut ws64 =
            Platform::gemmini(CoreConfig::rocket(), GemminiConfig::ws_4x4_64kb(), ws_opts);
        ws64.name = "WSGemminiRocket64KB".into();
        v.push(os32);
        v.push(os64);
        v.push(ws64);
        v
    }

    /// Builds the timing executor for this platform.
    pub fn executor(&self) -> Box<dyn KernelExecutor> {
        match &self.backend {
            Backend::Scalar(style) => Box::new(ScalarExecutor::new(self.core.clone(), *style)),
            Backend::Saturn {
                config,
                style,
                lmul,
            } => {
                let mut e = SaturnExecutor::new(self.core.clone(), *config, *style);
                if let Some(l) = lmul {
                    e = e.with_uniform_lmul(*l);
                }
                Box::new(e)
            }
            Backend::Gemmini { config, opts } => {
                Box::new(GemminiExecutor::new(self.core.clone(), *config, *opts))
            }
        }
    }

    /// Area of this platform (ASAP7-calibrated model).
    pub fn area(&self) -> AreaBreakdown {
        match &self.backend {
            Backend::Scalar(_) => cpu_area(&self.core),
            Backend::Saturn { config, .. } => saturn_platform_area(config, &self.core),
            Backend::Gemmini { config, .. } => gemmini_platform_area(config, &self.core),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_table1() {
        let reg = Platform::table1_registry();
        assert_eq!(reg.len(), 12);
        let names: Vec<_> = reg.iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"Rocket"));
        assert!(names.contains(&"MegaBoom"));
        assert!(names.contains(&"RefV512D256Shuttle"));
        assert!(names.contains(&"OSGemminiRocket32KB"));
        assert!(names.contains(&"WSGemminiRocket64KB"));
    }

    #[test]
    fn registry_areas_match_table1_anchors() {
        let reg = Platform::table1_registry();
        let area_of = |n: &str| {
            reg.iter()
                .find(|p| p.name == n)
                .map(|p| p.area().total())
                .unwrap_or(f64::NAN)
        };
        assert!((area_of("Rocket") - 486_287.0).abs() < 1.0);
        assert!((area_of("RefV512D128Rocket") - 1_340_095.0).abs() < 1_000.0);
        assert!((area_of("OSGemminiRocket32KB") - 1_506_498.0).abs() < 5_000.0);
    }

    #[test]
    fn executors_are_buildable_for_all_platforms() {
        for p in Platform::table1_registry() {
            let e = p.executor();
            assert!(!e.name().is_empty());
        }
    }
}
