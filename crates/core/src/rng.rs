//! Deterministic PRNG re-export.
//!
//! [`SplitMix64`] moved into `matlib` (the root of the dependency graph)
//! so the scenario and problem generators can draw from the same
//! generator as the sweeps and fault campaigns. This module keeps the
//! historical `soc_dse::rng::SplitMix64` path working.

pub use matlib::rng::SplitMix64;
