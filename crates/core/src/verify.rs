//! Glue between the [`Platform`] registry and the `soc-verify` static
//! analyzer: sweep every trace a platform's pipeline feeds its timing
//! model and collect the findings.
//!
//! The pipelines already run these checks as debug assertions on every
//! simulated trace (see `soc_backend::BackendPipeline::steady_cycles`);
//! this module exists for the `dse verify` subcommand and the
//! release-build integration tests, which want the full [`Report`]s
//! rather than a panic on first error.

use crate::platform::Platform;
use soc_backend::pipeline_for;
use soc_cpu::CoreConfig;
use soc_gemmini::{GemminiConfig, GemminiOpts, IsaStyle};
use soc_vector::{SaturnConfig, VectorStyle};
use soc_verify::{Report, VerifyConfig};
use tinympc::{KernelId, ProblemDims};

/// The analyzer's findings for one generated trace.
pub struct TraceReport {
    /// Kernel name, or `"workspace-preload"` for Gemmini's setup trace.
    pub trace: String,
    /// The combined findings of every verifier pass.
    pub report: Report,
}

/// Verifier configuration appropriate for `platform`'s back-end: the
/// scratchpad-residency pass runs only for design points whose pipeline
/// declares a scratchpad geometry.
pub fn verify_config(platform: &Platform) -> VerifyConfig {
    pipeline_for(platform).verify_config()
}

/// Statically verifies every trace `platform`'s pipeline feeds its timing
/// model — the double-emission trace of each TinyMPC kernel, plus the
/// workspace-preload trace for scratchpad-resident mappings — and
/// returns one report per trace.
pub fn verify_platform(platform: &Platform, dims: &ProblemDims) -> Vec<TraceReport> {
    let pipeline = pipeline_for(platform);
    let cfg = pipeline.verify_config();
    let mut out = Vec::new();
    for k in KernelId::ALL {
        let (trace, _) = pipeline.timed_trace(k, dims);
        out.push(TraceReport {
            trace: k.to_string(),
            report: soc_verify::verify(&trace, &cfg),
        });
    }
    let setup = pipeline.setup_trace(dims);
    if !setup.ops().is_empty() {
        out.push(TraceReport {
            trace: "workspace-preload".into(),
            report: soc_verify::verify(&setup, &cfg),
        });
    }
    out
}

/// Every shipped codegen configuration: the Table I registry plus the
/// software-mapping ablations the experiments sweep — the `matlib`
/// library mappings, the uniform-LMUL grid of Figure 4, and each Gemmini
/// optimization toggled off the optimized mapping.
pub fn shipped_configurations() -> Vec<Platform> {
    let mut v = Platform::table1_registry();
    v.push(Platform::rocket_matlib());
    v.push(Platform::saturn_with(
        CoreConfig::rocket(),
        SaturnConfig::v512d256(),
        VectorStyle::Matlib,
        None,
    ));
    for lmul in [1, 2, 4, 8] {
        v.push(Platform::saturn_with(
            CoreConfig::rocket(),
            SaturnConfig::v512d256(),
            VectorStyle::Fused,
            Some(lmul),
        ));
    }
    let config = GemminiConfig::os_4x4_32kb();
    let opt = GemminiOpts::optimized();
    let ablations = [
        ("baseline", GemminiOpts::baseline()),
        (
            "coarse-isa",
            GemminiOpts {
                isa: IsaStyle::Coarse,
                ..opt
            },
        ),
        (
            "dynamic-mapping",
            GemminiOpts {
                static_mapping: false,
                ..opt
            },
        ),
        (
            "no-residency",
            GemminiOpts {
                scratchpad_resident: false,
                ..opt
            },
        ),
        (
            "no-fusion",
            GemminiOpts {
                fuse_activation: false,
                ..opt
            },
        ),
        (
            "no-pooling",
            GemminiOpts {
                pooling_reduction: false,
                ..opt
            },
        ),
    ];
    for (tag, opts) in ablations {
        let mut p = Platform::gemmini(CoreConfig::rocket(), config, opts);
        p.name = format!("OSGemminiRocket32KB [{tag}]");
        v.push(p);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> ProblemDims {
        ProblemDims {
            nx: 12,
            nu: 4,
            horizon: 10,
        }
    }

    #[test]
    fn gemmini_platforms_get_a_spad_config() {
        let reg = Platform::table1_registry();
        let gem = reg.iter().find(|p| p.name.contains("Gemmini")).unwrap();
        assert!(verify_config(gem).spad.is_some());
        let rocket = reg.iter().find(|p| p.name == "Rocket").unwrap();
        assert!(verify_config(rocket).spad.is_none());
    }

    #[test]
    fn shipped_configurations_extend_table1() {
        let shipped = shipped_configurations();
        assert!(shipped.len() > Platform::table1_registry().len());
        assert!(shipped.iter().any(|p| p.name.contains("[baseline]")));
    }

    #[test]
    fn verify_platform_reports_every_kernel() {
        let reports = verify_platform(&Platform::rocket_eigen(), &dims());
        assert_eq!(reports.len(), KernelId::ALL.len());
    }

    #[test]
    fn scratchpad_resident_gemmini_includes_the_preload_trace() {
        let reg = Platform::table1_registry();
        let gem = reg
            .iter()
            .find(|p| p.name == "OSGemminiRocket32KB")
            .unwrap();
        let reports = verify_platform(gem, &dims());
        assert_eq!(reports.len(), KernelId::ALL.len() + 1);
        assert!(reports.iter().any(|r| r.trace == "workspace-preload"));
    }
}
