//! [`KernelExecutor`] implementations for every back-end family.
//!
//! Each executor maps a TinyMPC kernel to its back-end's software mapping
//! (a micro-op trace), replays it through the back-end's pipeline model,
//! and memoizes the **steady-state** cost: the kernel is emitted twice in
//! one trace and the cost of the second copy is charged, so cold-start
//! artifacts (first-touch scratchpad loads, pipeline fill) do not inflate
//! the per-iteration numbers. Gemmini's one-time workspace preload is
//! charged separately through [`KernelExecutor::setup_cycles`].

use soc_cpu::{
    simulate_with_accel, Accelerator, CoreConfig, NullAccelerator, ScalarKernels, ScalarStyle,
};
use soc_gemmini::{GemminiConfig, GemminiKernels, GemminiOpts, GemminiUnit};
use soc_isa::{OpClass, Trace, TraceBuilder};
use soc_vector::{SaturnConfig, SaturnUnit, VectorKernels, VectorStyle};
use std::collections::HashMap;
use tinympc::{KernelClass, KernelExecutor, KernelId, ProblemDims};

/// Simulates `trace` twice-emitted kernel material: returns
/// `cycles(full) − cycles(prefix)` where `prefix` is the first `mark` ops.
pub(crate) fn steady_cost(
    core: &CoreConfig,
    trace: &Trace,
    mark: usize,
    mut fresh_accel: impl FnMut() -> Box<dyn Accelerator>,
) -> u64 {
    let prefix: Trace = trace.ops()[..mark].iter().copied().collect();
    let mut a1 = fresh_accel();
    let full = simulate_with_accel(core, trace, a1.as_mut());
    let mut a2 = fresh_accel();
    let head = simulate_with_accel(core, &prefix, a2.as_mut());
    full.saturating_sub(head).max(1)
}

/// Whether traces should be statically verified before being fed to a
/// timing model: always in debug builds, and in release builds when the
/// `SOC_VERIFY=1` environment variable is set (read once per process).
pub(crate) fn verification_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| {
        cfg!(debug_assertions)
            || std::env::var("SOC_VERIFY").is_ok_and(|v| v != "0" && !v.is_empty())
    })
}

/// Statically verifies a generated trace before it is fed to a timing
/// model, surfacing any error-severity finding as a recoverable
/// [`tinympc::Error::InvalidTrace`] so callers can fall back to a
/// reference back-end instead of crashing.
pub(crate) fn verify_trace(
    trace: &Trace,
    config: &soc_verify::VerifyConfig,
    what: &str,
) -> tinympc::Result<()> {
    if !verification_enabled() {
        return Ok(());
    }
    let report = soc_verify::verify(trace, config);
    if report.is_clean() {
        Ok(())
    } else {
        Err(tinympc::Error::InvalidTrace {
            backend: what.to_string(),
            report: report.render(),
        })
    }
}

// ---------------------------------------------------------------------
// Scalar
// ---------------------------------------------------------------------

/// Times TinyMPC kernels on a bare scalar core (Rocket / Shuttle / BOOM)
/// with either the `matlib` library mapping or the hand-optimized
/// Eigen-equivalent mapping.
#[derive(Debug, Clone)]
pub struct ScalarExecutor {
    core: CoreConfig,
    kernels: ScalarKernels,
    memo: HashMap<(KernelId, ProblemDims), u64>,
}

impl ScalarExecutor {
    /// Creates an executor for `core` with the given mapping style.
    pub fn new(core: CoreConfig, style: ScalarStyle) -> Self {
        ScalarExecutor {
            core,
            kernels: ScalarKernels::new(style),
            memo: HashMap::new(),
        }
    }

    fn emit(&self, b: &mut TraceBuilder, k: KernelId, d: &ProblemDims) {
        let (nx, nu) = (d.nx, d.nu);
        let sx = d.state_elems();
        let su = d.input_elems();
        let ks = &self.kernels;
        use KernelId::*;
        match k {
            // u = −K∞ x − d
            ForwardPass1 => ks.gemv_with(b, nu, nx, &[OpClass::FpSimple, OpClass::FpAdd]),
            // x' = A x + B u
            ForwardPass2 => {
                ks.gemv(b, nx, nx);
                ks.gemv_with(b, nx, nu, &[OpClass::FpAdd]);
            }
            // d = Quu⁻¹ (Bᵀ p + r)
            BackwardPass1 => {
                ks.gemv_with(b, nu, nx, &[OpClass::FpAdd]);
                ks.gemv(b, nu, nu);
            }
            // p = q + (A−BK)ᵀ p − K∞ᵀ r
            BackwardPass2 => {
                ks.gemv_with(b, nx, nx, &[OpClass::FpAdd]);
                ks.gemv_with(b, nx, nu, &[OpClass::FpAdd]);
            }
            // p[N−1] = −P∞ xref − ρ(vnew − g)
            UpdateLinearCost4 => {
                ks.gemv_with(b, nx, nx, &[OpClass::FpSimple]);
                ks.fused_map(b, nx, 2, &[OpClass::FpAdd, OpClass::FpFma]);
            }
            // znew = clip(u + y)
            UpdateSlack1 => ks.fused_map(
                b,
                su,
                2,
                &[OpClass::FpAdd, OpClass::FpSimple, OpClass::FpSimple],
            ),
            UpdateSlack2 => ks.fused_map(
                b,
                sx,
                2,
                &[OpClass::FpAdd, OpClass::FpSimple, OpClass::FpSimple],
            ),
            // y += u − znew ; g += x − vnew
            UpdateDual1 => {
                ks.fused_map(b, su, 3, &[OpClass::FpAdd, OpClass::FpAdd]);
                ks.fused_map(b, sx, 3, &[OpClass::FpAdd, OpClass::FpAdd]);
            }
            // r = −ρ (znew − y)
            UpdateLinearCost1 => ks.fused_map(b, su, 2, &[OpClass::FpAdd, OpClass::FpMul]),
            // q = −(xref ⊙ Qdiag)
            UpdateLinearCost2 => ks.fused_map(b, sx, 2, &[OpClass::FpMul, OpClass::FpSimple]),
            // q −= ρ (vnew − g)
            UpdateLinearCost3 => ks.fused_map(b, sx, 3, &[OpClass::FpAdd, OpClass::FpFma]),
            PrimalResidualState | DualResidualState => {
                ks.reduce_max_abs_diff(b, sx);
            }
            PrimalResidualInput | DualResidualInput => {
                ks.reduce_max_abs_diff(b, su);
            }
        }
    }
}

impl ScalarExecutor {
    /// The micro-op trace of one invocation of `kernel` under this
    /// executor's software mapping (for listings and analysis).
    pub fn kernel_trace(&self, kernel: KernelId, dims: &ProblemDims) -> Trace {
        let mut b = TraceBuilder::new();
        self.emit(&mut b, kernel, dims);
        b.finish()
    }

    /// The double-emission trace the timing model replays, plus the op
    /// index where the steady-state copy begins.
    pub fn timed_trace(&self, kernel: KernelId, dims: &ProblemDims) -> (Trace, usize) {
        let mut b = TraceBuilder::new();
        self.emit(&mut b, kernel, dims);
        let mark = b.len();
        self.emit(&mut b, kernel, dims);
        (b.finish(), mark)
    }
}

impl KernelExecutor for ScalarExecutor {
    fn name(&self) -> String {
        let style = match self.kernels.style() {
            ScalarStyle::Library => "matlib",
            ScalarStyle::Optimized => "Eigen-opt",
        };
        format!("{} ({style})", self.core.name)
    }

    fn kernel_cycles(&mut self, kernel: KernelId, dims: &ProblemDims) -> tinympc::Result<u64> {
        if let Some(&c) = self.memo.get(&(kernel, *dims)) {
            return Ok(c);
        }
        let (trace, mark) = self.timed_trace(kernel, dims);
        verify_trace(
            &trace,
            &soc_verify::VerifyConfig::default(),
            "ScalarExecutor",
        )?;
        let c = steady_cost(&self.core, &trace, mark, || Box::new(NullAccelerator));
        self.memo.insert((kernel, *dims), c);
        Ok(c)
    }
}

// ---------------------------------------------------------------------
// Saturn
// ---------------------------------------------------------------------

/// Times TinyMPC kernels on a Saturn-equipped core.
///
/// LMUL is chosen per kernel class, matching the paper's optimized
/// mapping: iterative kernels keep `LMUL = lmul_iterative` (grouping hurts
/// their short vectors) while strip-mining kernels use
/// `lmul_stripmine`. Set both equal to reproduce the Figure 4 sweep.
#[derive(Debug, Clone)]
pub struct SaturnExecutor {
    core: CoreConfig,
    saturn: SaturnConfig,
    style: VectorStyle,
    /// LMUL for iterative (short-vector) kernels.
    pub lmul_iterative: u8,
    /// LMUL for strip-mining and reduction kernels.
    pub lmul_stripmine: u8,
    memo: HashMap<(KernelId, ProblemDims), u64>,
}

impl SaturnExecutor {
    /// Creates an executor with the paper's optimized LMUL policy
    /// (iterative 1, strip-mining 4).
    pub fn new(core: CoreConfig, saturn: SaturnConfig, style: VectorStyle) -> Self {
        SaturnExecutor {
            core,
            saturn,
            style,
            lmul_iterative: 1,
            lmul_stripmine: 4,
            memo: HashMap::new(),
        }
    }

    /// Forces one LMUL for every kernel (the Figure 4 sweep).
    pub fn with_uniform_lmul(mut self, lmul: u8) -> Self {
        self.lmul_iterative = lmul;
        self.lmul_stripmine = lmul;
        self.memo.clear();
        self
    }

    fn kernels_for(&self, k: KernelId) -> VectorKernels {
        let lmul = match k.class() {
            KernelClass::Iterative => self.lmul_iterative,
            KernelClass::StripMining | KernelClass::Reduction => self.lmul_stripmine,
        };
        VectorKernels::new(self.saturn, self.style, lmul)
    }

    fn emit(&self, b: &mut TraceBuilder, k: KernelId, d: &ProblemDims) {
        let (nx, nu) = (d.nx, d.nu);
        let sx = d.state_elems();
        let su = d.input_elems();
        let vk = self.kernels_for(k);
        use KernelId::*;
        match k {
            ForwardPass1 => {
                vk.gemv(b, nu, nx);
                vk.fused_stripmine(b, nu, 2, 2);
            }
            ForwardPass2 => {
                vk.gemv(b, nx, nx);
                vk.gemv(b, nx, nu);
                vk.fused_stripmine(b, nx, 2, 1);
            }
            BackwardPass1 => {
                vk.gemv(b, nu, nx);
                vk.fused_stripmine(b, nu, 2, 1);
                vk.gemv(b, nu, nu);
            }
            BackwardPass2 => {
                vk.gemv(b, nx, nx);
                vk.gemv(b, nx, nu);
                vk.fused_stripmine(b, nx, 3, 2);
            }
            UpdateLinearCost4 => {
                vk.gemv(b, nx, nx);
                vk.fused_stripmine(b, nx, 2, 3);
            }
            UpdateSlack1 => vk.fused_stripmine(b, su, 2, 3),
            UpdateSlack2 => vk.fused_stripmine(b, sx, 2, 3),
            UpdateDual1 => {
                vk.fused_stripmine(b, su, 3, 2);
                vk.fused_stripmine(b, sx, 3, 2);
            }
            UpdateLinearCost1 => vk.fused_stripmine(b, su, 2, 2),
            UpdateLinearCost2 => vk.fused_stripmine(b, sx, 2, 2),
            UpdateLinearCost3 => vk.fused_stripmine(b, sx, 3, 2),
            PrimalResidualState | DualResidualState => {
                vk.reduce_max_abs_diff(b, sx);
            }
            PrimalResidualInput | DualResidualInput => {
                vk.reduce_max_abs_diff(b, su);
            }
        }
    }

    /// The Saturn configuration being timed.
    pub fn saturn_config(&self) -> &SaturnConfig {
        &self.saturn
    }

    /// The micro-op trace of one invocation of `kernel` under this
    /// executor's software mapping (for listings and analysis).
    pub fn kernel_trace(&self, kernel: KernelId, dims: &ProblemDims) -> Trace {
        let mut b = TraceBuilder::new();
        self.emit(&mut b, kernel, dims);
        b.finish()
    }

    /// The double-emission trace the timing model replays, plus the op
    /// index where the steady-state copy begins.
    pub fn timed_trace(&self, kernel: KernelId, dims: &ProblemDims) -> (Trace, usize) {
        let mut b = TraceBuilder::new();
        self.emit(&mut b, kernel, dims);
        let mark = b.len();
        self.emit(&mut b, kernel, dims);
        (b.finish(), mark)
    }
}

impl KernelExecutor for SaturnExecutor {
    fn name(&self) -> String {
        let style = match self.style {
            VectorStyle::Matlib => "vec-matlib",
            VectorStyle::Fused => "hand-opt",
        };
        format!("Saturn {} / {} ({style})", self.saturn.name, self.core.name)
    }

    fn kernel_cycles(&mut self, kernel: KernelId, dims: &ProblemDims) -> tinympc::Result<u64> {
        if let Some(&c) = self.memo.get(&(kernel, *dims)) {
            return Ok(c);
        }
        let (trace, mark) = self.timed_trace(kernel, dims);
        verify_trace(
            &trace,
            &soc_verify::VerifyConfig::default(),
            "SaturnExecutor",
        )?;
        let saturn = self.saturn;
        let c = steady_cost(&self.core, &trace, mark, || {
            Box::new(SaturnUnit::new(saturn))
        });
        self.memo.insert((kernel, *dims), c);
        Ok(c)
    }
}

// ---------------------------------------------------------------------
// Gemmini
// ---------------------------------------------------------------------

/// Workspace matrix identities for the Gemmini scratchpad mapping
/// (Figure 11 of the paper).
mod ws {
    use soc_gemmini::MatId;
    pub const KINF: MatId = MatId(0);
    pub const KINF_T: MatId = MatId(1);
    pub const ADYN: MatId = MatId(2);
    pub const BDYN: MatId = MatId(3);
    pub const B_T: MatId = MatId(4);
    pub const AMBK_T: MatId = MatId(5);
    pub const QUU_INV: MatId = MatId(6);
    pub const PINF: MatId = MatId(7);
    pub const QDIAG: MatId = MatId(8);
    pub const IDENTITY: MatId = MatId(9);
    pub const NEG_IDENTITY: MatId = MatId(10);
    pub const RHO_IDENTITY: MatId = MatId(11);
    pub const X: MatId = MatId(20);
    pub const U: MatId = MatId(21);
    pub const D: MatId = MatId(22);
    pub const P: MatId = MatId(23);
    pub const Q: MatId = MatId(24);
    pub const R: MatId = MatId(25);
    pub const Y: MatId = MatId(26);
    pub const G: MatId = MatId(27);
    pub const ZNEW: MatId = MatId(28);
    pub const VNEW: MatId = MatId(29);
    pub const XREF: MatId = MatId(30);
    pub const TMP0: MatId = MatId(40);
    pub const TMP1: MatId = MatId(41);
    pub const TMP2: MatId = MatId(42);
}

/// Times TinyMPC kernels on a Gemmini-equipped core.
#[derive(Debug, Clone)]
pub struct GemminiExecutor {
    core: CoreConfig,
    gemmini: GemminiConfig,
    opts: GemminiOpts,
    memo: HashMap<(KernelId, ProblemDims), u64>,
}

impl GemminiExecutor {
    /// Creates an executor for the given hardware and mapping options.
    pub fn new(core: CoreConfig, gemmini: GemminiConfig, opts: GemminiOpts) -> Self {
        GemminiExecutor {
            core,
            gemmini,
            opts,
            memo: HashMap::new(),
        }
    }

    /// The Gemmini configuration being timed.
    pub fn gemmini_config(&self) -> &GemminiConfig {
        &self.gemmini
    }

    fn emit(&self, gen: &mut GemminiKernels, b: &mut TraceBuilder, k: KernelId, d: &ProblemDims) {
        let (nx, nu) = (d.nx, d.nu);
        let sx = d.state_elems();
        let su = d.input_elems();
        use ws::*;
        use KernelId::*;
        match k {
            ForwardPass1 => {
                gen.gemv(b, nu, nx, KINF, X, TMP0);
                gen.elementwise(b, nu, 1, &[TMP0, D], U);
            }
            ForwardPass2 => {
                gen.gemv(b, nx, nx, ADYN, X, TMP0);
                gen.gemv(b, nx, nu, BDYN, U, TMP1);
                gen.elementwise(b, nx, 1, &[TMP0, TMP1], X);
            }
            BackwardPass1 => {
                gen.gemv(b, nu, nx, B_T, P, TMP0);
                gen.elementwise(b, nu, 1, &[TMP0, R], TMP1);
                gen.gemv(b, nu, nu, QUU_INV, TMP1, D);
            }
            BackwardPass2 => {
                gen.gemv(b, nx, nx, AMBK_T, P, TMP0);
                gen.gemv(b, nx, nu, KINF_T, R, TMP1);
                gen.elementwise(b, nx, 2, &[Q, TMP0], P);
            }
            UpdateLinearCost4 => {
                gen.gemv(b, nx, nx, PINF, XREF, TMP0);
                gen.elementwise(b, nx, 2, &[VNEW, G], P);
            }
            UpdateSlack1 => {
                gen.elementwise(b, su, 1, &[U, Y], TMP0);
                gen.clip(b, su, TMP0, ZNEW);
            }
            UpdateSlack2 => {
                gen.elementwise(b, sx, 1, &[X, G], TMP0);
                gen.clip(b, sx, TMP0, VNEW);
            }
            UpdateDual1 => {
                gen.elementwise(b, su, 2, &[Y, U], Y);
                gen.elementwise(b, sx, 2, &[G, X], G);
            }
            UpdateLinearCost1 => gen.elementwise(b, su, 2, &[ZNEW, Y], R),
            UpdateLinearCost2 => gen.elementwise(b, sx, 2, &[XREF, QDIAG], Q),
            UpdateLinearCost3 => gen.elementwise(b, sx, 2, &[VNEW, G], Q),
            PrimalResidualState | DualResidualState => {
                gen.elementwise(b, sx, 1, &[X, VNEW], TMP2);
                gen.abs(b, sx, TMP2, TMP2);
                gen.max_reduce(b, sx, TMP2);
            }
            PrimalResidualInput | DualResidualInput => {
                gen.elementwise(b, su, 1, &[U, ZNEW], TMP2);
                gen.abs(b, su, TMP2, TMP2);
                gen.max_reduce(b, su, TMP2);
            }
        }
    }
}

impl GemminiExecutor {
    /// The micro-op trace of one invocation of `kernel` from a cold
    /// scratchpad (includes the mvins of its operands).
    pub fn kernel_trace(&self, kernel: KernelId, dims: &ProblemDims) -> Trace {
        let mut gen = GemminiKernels::new(self.gemmini, self.opts);
        let mut b = TraceBuilder::new();
        self.emit(&mut gen, &mut b, kernel, dims);
        b.finish()
    }

    /// The steady-state trace of one invocation (operands already
    /// resident): the first emission warms residency and is discarded.
    pub fn kernel_trace_steady(&self, kernel: KernelId, dims: &ProblemDims) -> Trace {
        let mut gen = GemminiKernels::new(self.gemmini, self.opts);
        let mut b = TraceBuilder::new();
        self.emit(&mut gen, &mut b, kernel, dims);
        let mark = b.len();
        self.emit(&mut gen, &mut b, kernel, dims);
        b.finish().ops()[mark..].iter().copied().collect()
    }

    /// The double-emission trace the timing model replays, plus the op
    /// index where the steady-state copy begins.
    pub fn timed_trace(&self, kernel: KernelId, dims: &ProblemDims) -> (Trace, usize) {
        let mut gen = GemminiKernels::new(self.gemmini, self.opts);
        let mut b = TraceBuilder::new();
        // First emission warms residency; second is the steady-state cost.
        self.emit(&mut gen, &mut b, kernel, dims);
        let mark = b.len();
        self.emit(&mut gen, &mut b, kernel, dims);
        (b.finish(), mark)
    }

    /// The one-time workspace-preload trace charged by
    /// [`KernelExecutor::setup_cycles`]. Empty when the configuration does
    /// not cache the solver workspace in the scratchpad.
    pub fn setup_trace(&self, dims: &ProblemDims) -> Trace {
        if !self.opts.scratchpad_resident {
            return Trace::new();
        }
        // One-time workspace preload: all cached matrices plus the
        // utility identities (Figure 10/11 of the paper).
        let (nx, nu) = (dims.nx, dims.nu);
        let mut gen = GemminiKernels::new(self.gemmini, self.opts);
        let mut b = TraceBuilder::new();
        use ws::*;
        for (id, r, c) in [
            (KINF, nu, nx),
            (KINF_T, nx, nu),
            (ADYN, nx, nx),
            (BDYN, nx, nu),
            (B_T, nu, nx),
            (AMBK_T, nx, nx),
            (QUU_INV, nu, nu),
            (PINF, nx, nx),
            (QDIAG, nx, nx),
            (IDENTITY, self.gemmini.dim, self.gemmini.dim),
            (NEG_IDENTITY, self.gemmini.dim, self.gemmini.dim),
            (RHO_IDENTITY, self.gemmini.dim, self.gemmini.dim),
        ] {
            gen.preload(&mut b, id, r, c);
        }
        b.fence();
        b.finish()
    }

    /// Verifier configuration matching this executor's scratchpad
    /// geometry.
    pub fn verify_config(&self) -> soc_verify::VerifyConfig {
        soc_verify::VerifyConfig::with_spad(self.gemmini.spad_rows(), self.gemmini.dim)
    }
}

impl KernelExecutor for GemminiExecutor {
    fn name(&self) -> String {
        format!("Gemmini {} / {}", self.gemmini.name, self.core.name)
    }

    fn kernel_cycles(&mut self, kernel: KernelId, dims: &ProblemDims) -> tinympc::Result<u64> {
        if let Some(&c) = self.memo.get(&(kernel, *dims)) {
            return Ok(c);
        }
        let (trace, mark) = self.timed_trace(kernel, dims);
        verify_trace(&trace, &self.verify_config(), "GemminiExecutor")?;
        let cfg = self.gemmini;
        let c = steady_cost(&self.core, &trace, mark, || Box::new(GemminiUnit::new(cfg)));
        self.memo.insert((kernel, *dims), c);
        Ok(c)
    }

    fn setup_cycles(&mut self, dims: &ProblemDims) -> tinympc::Result<u64> {
        let trace = self.setup_trace(dims);
        if trace.ops().is_empty() {
            return Ok(0);
        }
        verify_trace(&trace, &self.verify_config(), "GemminiExecutor setup")?;
        let mut unit = GemminiUnit::new(self.gemmini);
        Ok(simulate_with_accel(&self.core, &trace, &mut unit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> ProblemDims {
        ProblemDims {
            nx: 12,
            nu: 4,
            horizon: 10,
        }
    }

    #[test]
    fn scalar_memoization_is_stable() {
        let mut e = ScalarExecutor::new(CoreConfig::rocket(), ScalarStyle::Optimized);
        let a = e.kernel_cycles(KernelId::ForwardPass1, &dims()).unwrap();
        let b = e.kernel_cycles(KernelId::ForwardPass1, &dims()).unwrap();
        assert_eq!(a, b);
        assert!(a > 0);
    }

    #[test]
    fn eigen_beats_matlib_on_every_kernel() {
        let d = dims();
        let mut lib = ScalarExecutor::new(CoreConfig::rocket(), ScalarStyle::Library);
        let mut opt = ScalarExecutor::new(CoreConfig::rocket(), ScalarStyle::Optimized);
        for k in KernelId::ALL {
            let l = lib.kernel_cycles(k, &d).unwrap();
            let o = opt.kernel_cycles(k, &d).unwrap();
            assert!(o <= l, "{k}: optimized {o} vs library {l}");
        }
    }

    #[test]
    fn saturn_accelerates_stripmining_over_rocket() {
        let d = dims();
        let mut scalar = ScalarExecutor::new(CoreConfig::rocket(), ScalarStyle::Optimized);
        let mut saturn = SaturnExecutor::new(
            CoreConfig::rocket(),
            SaturnConfig::v512d256(),
            VectorStyle::Fused,
        );
        let s = scalar.kernel_cycles(KernelId::UpdateSlack2, &d).unwrap();
        let v = saturn.kernel_cycles(KernelId::UpdateSlack2, &d).unwrap();
        assert!(v < s, "saturn {v} vs scalar {s}");
    }

    #[test]
    fn uniform_lmul_sweep_changes_costs() {
        let d = dims();
        let mk = |l: u8| {
            SaturnExecutor::new(
                CoreConfig::rocket(),
                SaturnConfig::v512d256(),
                VectorStyle::Fused,
            )
            .with_uniform_lmul(l)
        };
        let strip1 = mk(1).kernel_cycles(KernelId::UpdateSlack2, &d).unwrap();
        let strip8 = mk(8).kernel_cycles(KernelId::UpdateSlack2, &d).unwrap();
        assert!(
            strip8 <= strip1,
            "LMUL=8 should help strip-mining: {strip8} vs {strip1}"
        );
        let it1 = mk(1).kernel_cycles(KernelId::BackwardPass1, &d).unwrap();
        let it8 = mk(8).kernel_cycles(KernelId::BackwardPass1, &d).unwrap();
        assert!(
            it8 >= it1,
            "LMUL=8 should not help iterative kernels: {it8} vs {it1}"
        );
    }

    #[test]
    fn gemmini_setup_charged_only_when_resident() {
        let d = dims();
        let mut opt = GemminiExecutor::new(
            CoreConfig::rocket(),
            GemminiConfig::os_4x4_32kb(),
            GemminiOpts::optimized(),
        );
        assert!(opt.setup_cycles(&d).unwrap() > 0);
        let mut base = GemminiExecutor::new(
            CoreConfig::rocket(),
            GemminiConfig::os_4x4_32kb(),
            GemminiOpts::baseline(),
        );
        assert_eq!(base.setup_cycles(&d).unwrap(), 0);
    }

    #[test]
    fn gemmini_optimized_beats_baseline_on_iterative_kernels() {
        let d = dims();
        let cfg = GemminiConfig::os_4x4_32kb();
        let mut opt = GemminiExecutor::new(CoreConfig::rocket(), cfg, GemminiOpts::optimized());
        let mut base = GemminiExecutor::new(CoreConfig::rocket(), cfg, GemminiOpts::baseline());
        for k in [KernelId::ForwardPass1, KernelId::BackwardPass2] {
            let o = opt.kernel_cycles(k, &d).unwrap();
            let b = base.kernel_cycles(k, &d).unwrap();
            assert!(o < b, "{k}: optimized {o} vs baseline {b}");
        }
    }

    #[test]
    fn all_kernels_have_positive_cost_everywhere() {
        let d = dims();
        let mut execs: Vec<Box<dyn KernelExecutor>> = vec![
            Box::new(ScalarExecutor::new(
                CoreConfig::rocket(),
                ScalarStyle::Optimized,
            )),
            Box::new(SaturnExecutor::new(
                CoreConfig::rocket(),
                SaturnConfig::v512d128(),
                VectorStyle::Fused,
            )),
            Box::new(GemminiExecutor::new(
                CoreConfig::rocket(),
                GemminiConfig::os_4x4_32kb(),
                GemminiOpts::optimized(),
            )),
        ];
        for e in execs.iter_mut() {
            for k in KernelId::ALL {
                assert!(e.kernel_cycles(k, &d).unwrap() > 0, "{k} on {}", e.name());
            }
        }
    }
}
