//! End-to-end properties of the fault-injection and degradation stack.

use soc_backend::PipelineExecutor;
use soc_dse::platform::Platform;
use soc_faults::{
    run_campaign, CampaignKind, DataInjector, DeadlineConfig, DeadlineSolver, DegradeRung,
    FaultKind, FaultPlan, FaultSite,
};
use tinympc::{problems, AdmmSolver, NullExecutor, SolverSettings};

fn quadrotor_solver() -> AdmmSolver<f32> {
    let p = problems::quadrotor_hover::<f32>(10).unwrap();
    AdmmSolver::new(p, SolverSettings::default()).unwrap()
}

/// Seeded property: every single-bit scratchpad (cached-matrix) upset is
/// either detected by some layer or its effect on the applied control is
/// bounded — never an unbounded silent corruption.
#[test]
fn scratchpad_faults_detected_or_bounded() {
    let proto = quadrotor_solver();
    let problem = proto.problem();
    let bound = f64::from(0.05 * (problem.u_max - problem.u_min));
    let plan = FaultPlan::generate(1234, 40, &[FaultSite::ScratchpadWord], 6);

    for fault in &plan.faults {
        let x0 = problem.hover_offset_state(0.25);
        let u_ref = {
            let mut reference = proto.clone();
            reference
                .solve_in_place(x0.as_slice(), &mut NullExecutor)
                .unwrap();
            matlib::Vector::from_slice(reference.u0())
        };
        let mut d = DeadlineSolver::new(proto.clone(), DeadlineConfig::new(u64::MAX));
        let o = d.solve_observed(&x0, &mut NullExecutor, &mut DataInjector::new(*fault));
        assert!(o.u0.is_finite(), "fault {fault}: non-finite control");
        let detected = o.retried || !d.cache_is_pristine();
        let deviation = f64::from(o.u0.max_abs_diff(&u_ref).unwrap());
        assert!(
            detected || deviation <= bound,
            "fault {fault} escaped: deviation {deviation:.4} > {bound:.4}"
        );
    }
}

/// Regression: as the budget shrinks the ladder fires strictly in order
/// (nominal → widened checks → early exit → LQR fallback) and never
/// upgrades.
#[test]
fn ladder_fires_in_order_under_shrinking_budget() {
    let proto = quadrotor_solver();
    let x0 = proto.problem().hover_offset_state(0.3);
    // Nominal cost on the scalar reference back-end.
    let mut e = PipelineExecutor::for_platform(&Platform::rocket_eigen());
    let nominal = proto
        .clone()
        .solve_in_place(x0.as_slice(), &mut e)
        .unwrap()
        .total_cycles;

    let budgets = [
        nominal * 4,
        nominal,
        nominal / 2,
        nominal / 8,
        nominal / 64,
        1,
    ];
    let mut rungs = Vec::new();
    for b in budgets {
        let mut d = DeadlineSolver::new(proto.clone(), DeadlineConfig::new(b));
        let mut e = PipelineExecutor::for_platform(&Platform::rocket_eigen());
        let o = d.solve(&x0, &mut e);
        assert!(o.u0.is_finite(), "budget {b}: non-finite control");
        assert!(
            o.total_cycles <= b || o.rung == DegradeRung::LqrFallback,
            "budget {b} overrun: {} cycles on rung {}",
            o.total_cycles,
            o.rung
        );
        rungs.push(o.rung);
    }
    for pair in rungs.windows(2) {
        assert!(pair[0] <= pair[1], "ladder went backwards: {:?}", rungs);
    }
    assert_eq!(*rungs.first().unwrap(), DegradeRung::Nominal);
    assert_eq!(*rungs.last().unwrap(), DegradeRung::LqrFallback);
}

/// The same seed must reproduce the same campaign report, byte for byte.
#[test]
fn campaign_reports_are_deterministic() {
    let a = run_campaign(7, CampaignKind::Smoke).unwrap();
    let b = run_campaign(7, CampaignKind::Smoke).unwrap();
    assert_eq!(a.render(), b.render());
    assert_eq!(a.backends.len(), 3, "three back-end families swept");
}

/// Under a below-nominal budget *and* active NaN injection the solver
/// still returns a finite, in-box control and records the rung.
#[test]
fn never_nan_under_tiny_budget_and_injection() {
    let proto = quadrotor_solver();
    let problem = proto.problem();
    let x0 = problem.hover_offset_state(0.35);
    let (u_min, u_max) = (problem.u_min, problem.u_max);
    let plan = FaultPlan::generate(99, 12, &[FaultSite::DmaWord], 3);
    let platform = Platform::table1_registry()
        .into_iter()
        .find(|p| p.name == "Rocket")
        .unwrap();

    // Nominal cycles so we can pick genuinely starved budgets.
    let nominal = proto
        .clone()
        .solve_in_place(
            x0.as_slice(),
            &mut PipelineExecutor::for_platform(&platform),
        )
        .unwrap()
        .total_cycles;

    for fault in &plan.faults {
        // Force the flip into the f32 exponent so NaN/Inf actually occur.
        let fault = soc_faults::Fault {
            kind: FaultKind::BitFlip { bit: 27 },
            ..*fault
        };
        for budget in [nominal / 10, nominal / 100, 1] {
            let mut d = DeadlineSolver::new(proto.clone(), DeadlineConfig::new(budget));
            let o = d.solve_observed(
                &x0,
                &mut PipelineExecutor::for_platform(&platform),
                &mut DataInjector::new(fault),
            );
            assert!(o.u0.is_finite(), "fault {fault}, budget {budget}: NaN u0");
            for i in 0..o.u0.len() {
                assert!(
                    o.u0[i] >= u_min && o.u0[i] <= u_max,
                    "fault {fault}, budget {budget}: u0[{i}] out of box"
                );
            }
        }
    }
}
