//! Seeded fault-injection campaigns across the shipped back-ends.
//!
//! A campaign takes one seed, derives a deterministic [`FaultPlan`] per
//! back-end, runs the quadrotor workload under injection with a deadline
//! budget of 1.5× the measured nominal solve, and classifies every trial:
//!
//! - **detected** — some detection layer fired (rejected trace,
//!   non-finite guard, divergence detector, workspace pin, post-solve
//!   cache scrub);
//! - **recovered** — detected *and* the applied `u0` still matches the
//!   fault-free reference within the SDC bound;
//! - **deadline-missed** — the solve degraded onto a budget rung;
//! - **masked** — undetected but the output deviation is within bound;
//! - **SDC** — silent data corruption: undetected *and* out of bound.
//!
//! The SDC bound is 5% of the input-box width — a control deviation an
//! outer loop absorbs in one step. Identical seeds produce identical
//! reports, across runs and across back-ends.

use crate::deadline::{DeadlineConfig, DeadlineSolver, DegradeRung};
use crate::inject::{DataInjector, FaultyExecutor, TraceFaultOutcome};
use crate::plan::{Fault, FaultKind, FaultPlan, FaultSite};
use crate::riscv::{run_instruction_campaign, InstructionStats};
use matlib::Vector;
use soc_backend::{pipeline_for, FaultSurface, PipelineExecutor};
use soc_dse::experiments::Scenario;
use soc_dse::platform::Platform;
use soc_dse::report::markdown_table;
use soc_dse::rng::SplitMix64;
use tinympc::{AdmmSolver, NullExecutor, SolverSettings, TerminationCause};

/// Campaign size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignKind {
    /// 24 trials per back-end — fast enough for CI.
    Smoke,
    /// 120 trials per back-end.
    Full,
}

impl CampaignKind {
    fn trials(self) -> usize {
        match self {
            CampaignKind::Smoke => 24,
            CampaignKind::Full => 120,
        }
    }

    fn instruction_trials(self) -> usize {
        match self {
            CampaignKind::Smoke => 16,
            CampaignKind::Full => 64,
        }
    }
}

/// Classification counters for one back-end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendStats {
    /// Registry name of the platform.
    pub backend: String,
    /// Trials run.
    pub trials: usize,
    /// Faults caught by any detection layer.
    pub detected: usize,
    /// Detected faults whose applied control still matched the
    /// reference within the SDC bound.
    pub recovered: usize,
    /// Solves that landed on a budget rung.
    pub deadline_missed: usize,
    /// Undetected faults with in-bound output deviation.
    pub masked: usize,
    /// Silent data corruptions (undetected, out of bound).
    pub sdc: usize,
}

/// Full campaign result.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// The seed everything was derived from.
    pub seed: u64,
    /// Name of the scenario the campaign flew.
    pub workload: String,
    /// Per-back-end data/command fault stats.
    pub backends: Vec<BackendStats>,
    /// Instruction-level stats from the functional RISC-V harness
    /// (reported separately: it exercises a different execution model).
    pub instruction: InstructionStats,
}

impl CampaignReport {
    /// Renders the report as markdown tables.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .backends
            .iter()
            .map(|b| {
                vec![
                    b.backend.clone(),
                    b.trials.to_string(),
                    b.detected.to_string(),
                    b.recovered.to_string(),
                    b.deadline_missed.to_string(),
                    b.masked.to_string(),
                    b.sdc.to_string(),
                ]
            })
            .collect();
        let mut out = format!(
            "Fault campaign (seed {}, workload {})\n\n",
            self.seed, self.workload
        );
        out.push_str(&markdown_table(
            &[
                "back-end",
                "trials",
                "detected",
                "recovered",
                "deadline-missed",
                "masked",
                "SDC",
            ],
            &rows,
        ));
        out.push_str("\nInstruction-level faults (functional RV32IMF GEMV harness)\n\n");
        let i = &self.instruction;
        out.push_str(&markdown_table(
            &["trials", "trapped", "masked", "silent-wrong"],
            &[vec![
                i.trials.to_string(),
                i.trapped.to_string(),
                i.masked.to_string(),
                i.silent_wrong.to_string(),
            ]],
        ));
        out
    }

    /// Total silent data corruptions on scalar back-ends — the quantity
    /// the CI smoke gate asserts to be zero.
    pub fn scalar_sdc(&self) -> usize {
        self.backends
            .iter()
            .filter(|b| b.backend == "Rocket")
            .map(|b| b.sdc)
            .sum()
    }
}

/// Maps a pipeline-declared fault surface onto the campaign's planner
/// vocabulary.
fn site_of(surface: FaultSurface) -> FaultSite {
    match surface {
        FaultSurface::StoredMatrixWord => FaultSite::ScratchpadWord,
        FaultSurface::DmaWord => FaultSite::DmaWord,
        FaultSurface::VectorRegister => FaultSite::VectorRegister,
        FaultSurface::CommandStream => FaultSite::RoccCommand,
    }
}

/// The back-ends a campaign sweeps — one representative per family —
/// with the fault sites derived from each pipeline's declared
/// [`FaultSurface`] rather than hand-coded per family.
fn campaign_targets() -> Vec<(Platform, Vec<FaultSite>)> {
    let registry = Platform::table1_registry();
    let pick = |name: &str| {
        registry
            .iter()
            .find(|p| p.name == name)
            .cloned()
            .unwrap_or_else(|| panic!("platform {name} missing from registry"))
    };
    ["Rocket", "RefV512D256Rocket", "OSGemminiRocket32KB"]
        .into_iter()
        .map(|name| {
            let p = pick(name);
            let sites = pipeline_for(&p)
                .fault_surface()
                .iter()
                .map(|&s| site_of(s))
                .collect();
            (p, sites)
        })
        .collect()
}

/// Builds the campaign's solver for a scenario: its plant at the
/// scenario's default horizon with the step-0 reference window set (for
/// hover this is bit-identical to the legacy hover-only prototype — the
/// hover window is all zeros, exactly the workspace default).
fn prototype_for(scenario: &Scenario) -> AdmmSolver<f32> {
    let horizon = scenario.default_horizon();
    let p = scenario.problem::<f32>(horizon).expect("scenario problem");
    let mut solver = AdmmSolver::new(p, SolverSettings::default()).expect("solver construction");
    solver
        .set_reference(&scenario.reference::<f32>(horizon, 0))
        .expect("reference window");
    solver
}

/// Runs one seeded campaign.
///
/// # Errors
///
/// Returns [`tinympc::Error::Campaign`] if a nominal (fault-free) solve
/// or the instruction harness fails — that means the environment is
/// broken, not that a fault escaped.
pub fn run_campaign(seed: u64, kind: CampaignKind) -> tinympc::Result<CampaignReport> {
    run_campaign_scenario(seed, kind, &Scenario::hover())
}

/// [`run_campaign`] flying an arbitrary scenario: the same fault plans,
/// deadline ladder and classification, against that scenario's plant,
/// reference and (randomly rescaled) initial states.
///
/// # Errors
///
/// Returns [`tinympc::Error::Campaign`] if a nominal (fault-free) solve
/// or the instruction harness fails.
pub fn run_campaign_scenario(
    seed: u64,
    kind: CampaignKind,
    scenario: &Scenario,
) -> tinympc::Result<CampaignReport> {
    let proto = prototype_for(scenario);
    let problem = proto.problem();
    let sdc_bound = 0.05 * (problem.u_max - problem.u_min);
    let mut backends = Vec::new();

    for (bi, (platform, sites)) in campaign_targets().into_iter().enumerate() {
        // Nominal timing on this back-end sets the deadline budget.
        let mut nominal_exec = PipelineExecutor::for_platform(&platform);
        let nominal = proto
            .clone()
            .solve_in_place(
                scenario.initial_state::<f32>().as_slice(),
                &mut nominal_exec,
            )
            .map_err(|e| tinympc::Error::Campaign {
                what: format!("nominal solve failed on {}: {e}", platform.name),
            })?;
        let budget = nominal.total_cycles * 3 / 2;
        // Plan the ladder around the measured fault-free iteration count,
        // not the generic default, so the 1.5× budget genuinely admits a
        // nominal solve on every back-end.
        let mut config = DeadlineConfig::new(budget);
        config.expected_iterations = nominal.iterations.max(1);

        let plan = FaultPlan::generate(
            seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(bi as u64 + 1)),
            kind.trials(),
            &sites,
            8,
        );
        let mut rng = SplitMix64::new(seed ^ ((bi as u64) << 32));
        let mut stats = BackendStats {
            backend: platform.name.clone(),
            trials: plan.faults.len(),
            detected: 0,
            recovered: 0,
            deadline_missed: 0,
            masked: 0,
            sdc: 0,
        };

        for fault in &plan.faults {
            // Each trial perturbs the scenario's characteristic initial
            // state by a random scale in [0.25, 1.75] — for hover this
            // spans the legacy 0.05..0.35 offset range.
            let x0 = scenario
                .initial_state::<f32>()
                .scale((0.25 + 1.5 * rng.unit_f64()) as f32);
            let u_ref = {
                let mut reference = proto.clone();
                reference
                    .solve_in_place(x0.as_slice(), &mut NullExecutor)
                    .map_err(|e| tinympc::Error::Campaign {
                        what: format!("reference solve failed: {e}"),
                    })?;
                Vector::from_slice(reference.u0())
            };
            let mut d = DeadlineSolver::new(proto.clone(), config);

            let outcome = if fault.site == FaultSite::RoccCommand {
                // Command-stream fault: route it through the executor so
                // the static verifier gets first shot at it.
                let mut faulty =
                    FaultyExecutor::new(PipelineExecutor::for_platform(&platform), *fault);
                let o = d.solve(&x0, &mut faulty);
                if faulty.outcome == TraceFaultOutcome::Undetected {
                    // The stream verified clean but the command is still
                    // wrong: model its architectural effect as the
                    // equivalent stored-data corruption and re-run.
                    let equivalent = Fault {
                        site: FaultSite::ScratchpadWord,
                        kind: FaultKind::BitFlip {
                            bit: (fault.word >> 32) as u8 % 32,
                        },
                        ..*fault
                    };
                    d = DeadlineSolver::new(proto.clone(), config);
                    d.solve_observed(
                        &x0,
                        &mut PipelineExecutor::for_platform(&platform),
                        &mut DataInjector::new(equivalent),
                    )
                } else {
                    o
                }
            } else {
                d.solve_observed(
                    &x0,
                    &mut PipelineExecutor::for_platform(&platform),
                    &mut DataInjector::new(*fault),
                )
            };

            let deviation = outcome
                .u0
                .max_abs_diff(&u_ref)
                .map(f64::from)
                .unwrap_or(f64::INFINITY);
            let within = deviation <= f64::from(sdc_bound);

            if outcome.retried || outcome.termination == TerminationCause::Diverged {
                stats.detected += 1;
                if within {
                    stats.recovered += 1;
                }
            } else if !d.cache_is_pristine() {
                // Post-solve scrub: the cached matrices no longer match
                // their checksummed pristine copy.
                stats.detected += 1;
                if within {
                    stats.recovered += 1;
                }
            } else if outcome.termination == TerminationCause::Deadline
                || outcome.rung >= DegradeRung::EarlyExit
            {
                stats.deadline_missed += 1;
            } else if within {
                stats.masked += 1;
            } else {
                stats.sdc += 1;
            }
        }
        backends.push(stats);
    }

    let instruction = run_instruction_campaign(seed ^ 0x5bf0_3635, kind.instruction_trials())
        .map_err(|e| tinympc::Error::Campaign {
            what: format!("instruction harness failed: {e}"),
        })?;
    Ok(CampaignReport {
        seed,
        workload: scenario.name().to_string(),
        backends,
        instruction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_buckets_partition_trials() {
        let r = run_campaign(3, CampaignKind::Smoke).unwrap();
        for b in &r.backends {
            let undetected = b.masked + b.sdc + b.deadline_missed;
            assert_eq!(
                b.detected + undetected,
                b.trials,
                "buckets must partition {}: {b:?}",
                b.backend
            );
        }
        assert_eq!(
            r.instruction.trapped + r.instruction.masked + r.instruction.silent_wrong,
            r.instruction.trials
        );
    }

    #[test]
    fn scalar_backend_has_no_silent_corruption() {
        let r = run_campaign(7, CampaignKind::Smoke).unwrap();
        assert_eq!(r.scalar_sdc(), 0, "{}", r.render());
    }

    #[test]
    fn scenario_campaign_flies_the_soc_workload() {
        let r = run_campaign_scenario(11, CampaignKind::Smoke, &Scenario::soft_landing()).unwrap();
        assert_eq!(r.workload, "soft-landing");
        assert!(r.render().contains("workload soft-landing"));
        for b in &r.backends {
            assert_eq!(
                b.detected + b.masked + b.sdc + b.deadline_missed,
                b.trials,
                "buckets must partition {}: {b:?}",
                b.backend
            );
        }
        // Identical seed, identical report — scenario campaigns keep
        // the determinism contract.
        let again =
            run_campaign_scenario(11, CampaignKind::Smoke, &Scenario::soft_landing()).unwrap();
        assert_eq!(r, again);
    }

    #[test]
    fn null_observer_is_a_clean_baseline() {
        // No fault: the deadline solver under the campaign budget must
        // match the reference exactly.
        let proto = prototype_for(&Scenario::hover());
        let x0 = proto.problem().hover_offset_state(0.2);
        let u_ref = {
            let mut reference = proto.clone();
            reference
                .solve_in_place(x0.as_slice(), &mut NullExecutor)
                .unwrap();
            Vector::from_slice(reference.u0())
        };
        let mut d = DeadlineSolver::new(proto, DeadlineConfig::new(u64::MAX));
        let o = d.solve(&x0, &mut NullExecutor);
        assert_eq!(o.rung, DegradeRung::Nominal);
        assert!(f64::from(o.u0.max_abs_diff(&u_ref).unwrap()) < 1e-6);
    }
}
