//! Deadline-aware graceful degradation.
//!
//! A control loop that misses its deadline is as broken as one that
//! computes the wrong answer. [`DeadlineSolver`] wraps [`AdmmSolver`]
//! with a hard cycle budget (derived from the control rate and the
//! platform's clock) and walks an explicit degradation ladder instead of
//! overrunning:
//!
//! 1. [`DegradeRung::Nominal`] — the full solve fits; run it unchanged.
//! 2. [`DegradeRung::WidenedCheck`] — residual checks are priced kernels
//!    too; widening `check_interval` buys compute iterations.
//! 3. [`DegradeRung::EarlyExit`] — run what fits and apply the best
//!    iterate so far (the clipped slack `u0` is always feasible).
//! 4. [`DegradeRung::LqrFallback`] — no iteration fits: apply the cached
//!    infinite-horizon LQR gain `u = clip(−K∞ x0)` directly.
//!
//! The same wrapper owns fault recovery: any solver error (rejected
//! trace, non-finite data, corrupted workspace) or detected divergence
//! triggers one bounded retry — workspace reset, pristine Riccati cache
//! restored, timing falls back to the scalar reference back-end — and if
//! the retry fails too, the LQR rung catches. `solve` is therefore
//! infallible: it always returns a finite, feasible `u0`.

use matlib::{Scalar, Vector};
use soc_backend::PipelineExecutor;
use soc_dse::platform::Platform;
use tinympc::{
    AdmmSolver, KernelExecutor, KernelId, NullObserver, SolveObserver, SolverSettings,
    TerminationCause, TinyMpcCache,
};

/// The degradation ladder, mildest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradeRung {
    /// Full solve within budget.
    Nominal,
    /// Residual checks widened to every `widen_factor` iterations.
    WidenedCheck,
    /// Budgeted early exit with the best iterate so far.
    EarlyExit,
    /// Cached LQR gain applied directly; no ADMM iteration ran.
    LqrFallback,
}

impl DegradeRung {
    /// Every rung, mildest first — the ladder order used for cohort
    /// walks and rung-occupancy histograms.
    pub const ALL: [DegradeRung; 4] = [
        DegradeRung::Nominal,
        DegradeRung::WidenedCheck,
        DegradeRung::EarlyExit,
        DegradeRung::LqrFallback,
    ];

    /// Ladder position, 0 (nominal) to 3 (LQR fallback).
    pub fn index(self) -> usize {
        match self {
            DegradeRung::Nominal => 0,
            DegradeRung::WidenedCheck => 1,
            DegradeRung::EarlyExit => 2,
            DegradeRung::LqrFallback => 3,
        }
    }

    /// The rung at ladder position `index` (clamped to the last rung).
    pub fn from_index(index: usize) -> DegradeRung {
        *DegradeRung::ALL
            .get(index)
            .unwrap_or(&DegradeRung::LqrFallback)
    }

    /// The next-harsher rung (saturating at the LQR fallback).
    pub fn demoted(self) -> DegradeRung {
        DegradeRung::from_index(self.index() + 1)
    }
}

impl std::fmt::Display for DegradeRung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DegradeRung::Nominal => "nominal",
            DegradeRung::WidenedCheck => "widened-check",
            DegradeRung::EarlyExit => "early-exit",
            DegradeRung::LqrFallback => "lqr-fallback",
        })
    }
}

/// Budget and ladder parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineConfig {
    /// Hard per-solve cycle budget.
    pub cycle_budget: u64,
    /// `check_interval` used on the widened rungs.
    pub widen_factor: usize,
    /// Iterations the ladder plans for when predicting whether a full
    /// solve fits (warm-started TinyMPC solves typically converge well
    /// under this).
    pub expected_iterations: usize,
}

impl DeadlineConfig {
    /// A config with the given budget and default ladder parameters.
    pub fn new(cycle_budget: u64) -> Self {
        DeadlineConfig {
            cycle_budget,
            widen_factor: 5,
            expected_iterations: 25,
        }
    }

    /// Budget from a control rate and core clock: one solve must fit in
    /// `clock_hz / control_hz` cycles.
    pub fn from_rates(control_hz: f64, clock_hz: f64) -> Self {
        DeadlineConfig::new((clock_hz / control_hz).max(1.0) as u64)
    }
}

/// Everything a caller needs to know about one degraded solve.
#[derive(Debug, Clone)]
pub struct SolveOutcome<T> {
    /// The control to apply — always finite and inside the input box.
    pub u0: Vector<T>,
    /// Which ladder rung produced it.
    pub rung: DegradeRung,
    /// Why the underlying iteration stopped.
    pub termination: TerminationCause,
    /// ADMM iterations performed (0 on [`DegradeRung::LqrFallback`]).
    pub iterations: usize,
    /// Simulated cycles of the applied solve.
    pub total_cycles: u64,
    /// Whether the bounded retry (workspace reset + scalar fallback
    /// timing) ran.
    pub retried: bool,
    /// Description of the detected fault that forced recovery, if any.
    pub fault: Option<String>,
}

/// Per-solve cost prediction probed from an executor.
struct CostModel {
    setup: u64,
    init: u64,
    iter: u64,
    check: u64,
}

impl CostModel {
    /// Cost of a full solve with a residual check every `1/interval`
    /// iterations.
    fn solve_cost(&self, iterations: usize, interval: usize) -> u64 {
        let checks = iterations.div_ceil(interval.max(1)) as u64;
        self.setup + self.init + self.iter * iterations as u64 + self.check * checks
    }
}

/// Predicted per-solve cycle cost of each ladder rung, probed once from
/// an executor.
///
/// This is the ladder generalized into data: a per-solve caller
/// compares these against its own budget
/// ([`DeadlineSolver::solve`] does exactly that), while an overload
/// policy — the `soc-serve` admission layer — sums them across whole
/// session cohorts and walks cohorts down the ladder until the
/// aggregate fits a tick's capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RungCosts {
    /// Full solve at the planned iteration count, nominal check
    /// interval.
    pub nominal: u64,
    /// Full solve with residual checks widened to `widen_factor`.
    pub widened: u64,
    /// A single budgeted iteration (the cheapest useful ADMM step).
    pub early_exit: u64,
    /// The cached-gain fallback `u = clip(−K∞ x0)` — charged as zero
    /// simulated cycles, matching [`SolveOutcome::total_cycles`] on the
    /// LQR rung (the gain multiply is negligible next to one ADMM
    /// iteration).
    pub lqr: u64,
}

impl RungCosts {
    /// Predicted cost of solving at `rung`.
    pub fn at(&self, rung: DegradeRung) -> u64 {
        match rung {
            DegradeRung::Nominal => self.nominal,
            DegradeRung::WidenedCheck => self.widened,
            DegradeRung::EarlyExit => self.early_exit,
            DegradeRung::LqrFallback => self.lqr,
        }
    }

    /// The mildest rung whose predicted cost fits `budget` (the LQR
    /// fallback always fits).
    pub fn mildest_within(&self, budget: u64) -> DegradeRung {
        for rung in DegradeRung::ALL {
            if self.at(rung) <= budget {
                return rung;
            }
        }
        DegradeRung::LqrFallback
    }
}

/// Outcome of a forced-rung, allocation-free solve
/// ([`DeadlineSolver::solve_in_place_at_rung`]). `Copy`, so recording
/// it never touches the heap; the applied control stays staged in the
/// solver's arena (or comes from
/// [`DeadlineSolver::lqr_u0_into`] when `rung` is the LQR fallback).
#[derive(Debug, Clone, Copy)]
pub struct RungStatus {
    /// The rung that actually produced the control (the requested rung,
    /// downgraded if the budget tripped mid-solve, or
    /// [`DegradeRung::LqrFallback`] after a detected fault).
    pub rung: DegradeRung,
    /// Why the underlying iteration stopped.
    pub termination: TerminationCause,
    /// ADMM iterations performed (0 on the LQR rung).
    pub iterations: usize,
    /// Simulated cycles of the applied solve.
    pub total_cycles: u64,
    /// Whether ADMM converged within tolerance.
    pub converged: bool,
    /// Set when a solver error or divergence forced the pristine-cache
    /// restore and the LQR fallback — the caller must fetch `u0` via
    /// [`DeadlineSolver::lqr_u0_into`].
    pub fell_back: bool,
}

/// [`AdmmSolver`] wrapped with a cycle budget, the degradation ladder
/// and bounded fault recovery.
#[derive(Debug, Clone)]
pub struct DeadlineSolver<T> {
    solver: AdmmSolver<T>,
    pristine_cache: TinyMpcCache<T>,
    base: SolverSettings,
    config: DeadlineConfig,
}

impl<T: Scalar> DeadlineSolver<T> {
    /// Wraps a solver, snapshotting its cache for recovery.
    pub fn new(solver: AdmmSolver<T>, config: DeadlineConfig) -> Self {
        let pristine_cache = solver.cache().clone();
        let base = solver.settings();
        DeadlineSolver {
            solver,
            pristine_cache,
            base,
            config,
        }
    }

    /// The wrapped solver.
    pub fn solver(&self) -> &AdmmSolver<T> {
        &self.solver
    }

    /// Mutable access to the wrapped solver — the serve session layer
    /// uses this to stream reference windows straight into the arena
    /// workspace between ticks.
    pub fn solver_mut(&mut self) -> &mut AdmmSolver<T> {
        &mut self.solver
    }

    /// The budget and ladder parameters.
    pub fn config(&self) -> DeadlineConfig {
        self.config
    }

    /// The pristine cache snapshot taken at construction.
    pub fn pristine_cache(&self) -> &TinyMpcCache<T> {
        &self.pristine_cache
    }

    /// Whether the live Riccati cache still matches the pristine
    /// snapshot bit-for-bit (a post-solve scrub for silent scratchpad
    /// corruption).
    pub fn cache_is_pristine(&self) -> bool {
        let live = self.solver.cache();
        let p = &self.pristine_cache;
        [
            (live.kinf.as_slice(), p.kinf.as_slice()),
            (live.kinf_t.as_slice(), p.kinf_t.as_slice()),
            (live.pinf.as_slice(), p.pinf.as_slice()),
            (live.quu_inv.as_slice(), p.quu_inv.as_slice()),
            (live.am_bk_t.as_slice(), p.am_bk_t.as_slice()),
            (live.b_t.as_slice(), p.b_t.as_slice()),
        ]
        .iter()
        .all(|(a, b)| {
            a.len() == b.len()
                && a.iter()
                    .zip(b.iter())
                    .all(|(x, y)| x.to_f64().to_bits() == y.to_f64().to_bits())
        })
    }

    /// Restores the pristine cache and resets duals/slacks.
    pub fn restore(&mut self) {
        *self.solver.cache_mut() = self.pristine_cache.clone();
        self.solver.cold_start();
    }

    /// Probes per-kernel costs and mirrors the solver's exact charge
    /// schedule (see `cycle_accounting_is_exact` in `tinympc`).
    fn probe(&mut self, executor: &mut dyn KernelExecutor) -> tinympc::Result<CostModel> {
        let dims = self.solver.dims();
        let n = dims.horizon as u64;
        let mut cost = |k: KernelId| executor.kernel_cycles(k, &dims);
        use KernelId::*;
        let lc = cost(UpdateLinearCost1)?
            + cost(UpdateLinearCost2)?
            + cost(UpdateLinearCost3)?
            + cost(UpdateLinearCost4)?;
        let iter = (cost(BackwardPass1)?
            + cost(BackwardPass2)?
            + cost(ForwardPass1)?
            + cost(ForwardPass2)?)
            * (n - 1)
            + cost(UpdateSlack1)?
            + cost(UpdateSlack2)?
            + cost(UpdateDual1)?
            + lc;
        let check = cost(PrimalResidualState)?
            + cost(DualResidualState)?
            + cost(PrimalResidualInput)?
            + cost(DualResidualInput)?;
        Ok(CostModel {
            setup: executor.setup_cycles(&dims)?,
            init: lc,
            iter,
            check,
        })
    }

    /// Converts the probed kernel costs into per-rung solve costs using
    /// this solver's ladder parameters.
    fn rung_costs_from(&self, c: &CostModel) -> RungCosts {
        let e = self.config.expected_iterations.max(1);
        let w = self.config.widen_factor.max(1);
        RungCosts {
            nominal: c.solve_cost(e, self.base.check_interval),
            widened: c.solve_cost(e, w),
            early_exit: c.solve_cost(1, 1),
            lqr: 0,
        }
    }

    /// Probes the executor and predicts the per-solve cycle cost of
    /// every ladder rung (see [`RungCosts`]). Pure pricing: no solve
    /// runs, no solver state changes.
    ///
    /// # Errors
    ///
    /// Propagates executor pricing failures (e.g. a rejected trace).
    pub fn rung_costs(&mut self, executor: &mut dyn KernelExecutor) -> tinympc::Result<RungCosts> {
        let c = self.probe(executor)?;
        Ok(self.rung_costs_from(&c))
    }

    /// Picks the mildest rung whose predicted cost fits the budget.
    fn select_rung(&self, c: &CostModel) -> DegradeRung {
        self.rung_costs_from(c)
            .mildest_within(self.config.cycle_budget)
    }

    /// Settings for a rung: the budget is always installed as a hard
    /// stop; widened rungs also stretch the residual check interval.
    fn settings_for(&self, rung: DegradeRung) -> SolverSettings {
        let mut s = self.base;
        s.cycle_budget = Some(self.config.cycle_budget);
        if matches!(rung, DegradeRung::WidenedCheck | DegradeRung::EarlyExit) {
            s.check_interval = self.config.widen_factor.max(1);
        }
        s
    }

    /// The ladder's last rung: `u = clip(−K∞ x0)` from the pristine
    /// cache. Structurally finite — `clip` squashes NaN to a bound.
    fn lqr_u0(&self, x0: &Vector<T>) -> Vector<T> {
        let p = self.solver.problem();
        let nu = p.b.cols();
        self.pristine_cache
            .kinf
            .matvec(x0)
            .map(|u| u.neg())
            .unwrap_or_else(|_| Vector::zeros(nu))
            .clip(p.u_min, p.u_max)
    }

    /// Allocation-free LQR fallback: writes `clip(−K∞ x0)` from the
    /// pristine cache into `out` (length `nu`). Structurally finite —
    /// a rejected matvec (non-finite `x0`) degrades to the clipped zero
    /// input, and `clip` squashes NaN to a bound.
    pub fn lqr_u0_into(&self, x0: &[T], out: &mut [T]) {
        let p = self.solver.problem();
        if matlib::gemv_into(&self.pristine_cache.kinf, x0, out).is_err() {
            out.fill(T::ZERO);
        }
        matlib::scale_in_place(out, -T::ONE);
        matlib::clamp_in_place(out, p.u_min, p.u_max);
    }

    fn lqr_outcome(&self, x0: &Vector<T>, retried: bool, fault: Option<String>) -> SolveOutcome<T> {
        SolveOutcome {
            u0: self.lqr_u0(x0),
            rung: DegradeRung::LqrFallback,
            termination: TerminationCause::Deadline,
            iterations: 0,
            total_cycles: 0,
            retried,
            fault,
        }
    }

    /// Solves within the budget, degrading and recovering as needed.
    /// Never fails and never returns a non-finite or out-of-box `u0`.
    pub fn solve(&mut self, x0: &Vector<T>, executor: &mut dyn KernelExecutor) -> SolveOutcome<T> {
        self.solve_observed(x0, executor, &mut NullObserver)
    }

    /// [`solve`](Self::solve) with an observer hook on the primary
    /// attempt (the recovery retry never re-injects).
    pub fn solve_observed(
        &mut self,
        x0: &Vector<T>,
        executor: &mut dyn KernelExecutor,
        observer: &mut dyn SolveObserver<T>,
    ) -> SolveOutcome<T> {
        if !x0.is_finite() || x0.len() != self.solver.dims().nx {
            // Garbage in: the LQR rung is the only safe answer (matvec
            // on a non-finite state is rejected by the math layer).
            return self.lqr_outcome(x0, false, Some("non-finite or misshapen x0".into()));
        }
        let rung = match self.probe(executor) {
            Ok(c) => self.select_rung(&c),
            // The back-end rejected a trace before any iteration ran.
            Err(e) => return self.recover(x0, e.to_string()),
        };
        if rung == DegradeRung::LqrFallback {
            return self.lqr_outcome(x0, false, None);
        }
        self.solver.set_settings(self.settings_for(rung));
        match self
            .solver
            .solve_in_place_observed(x0.as_slice(), executor, observer)
        {
            Ok(r) if r.termination != TerminationCause::Diverged => {
                self.finish(x0, r, rung, false, None)
            }
            Ok(r) => self.recover(
                x0,
                format!("divergent iterates (residuals {:?})", r.residuals),
            ),
            Err(e) => self.recover(x0, e.to_string()),
        }
    }

    /// Solves at an externally chosen ladder rung, allocation-free.
    ///
    /// This is the ladder's policy seam turned inside out: where
    /// [`solve`](Self::solve) probes costs and picks its own rung per
    /// solve, here the *caller* owns rung selection — the serve runtime
    /// walks whole session cohorts down the ladder under burst and
    /// forces each session's tick to the cohort's rung. The applied
    /// control stays staged in the solver arena (read it via
    /// `solver().u0()`); on [`DegradeRung::LqrFallback`] — requested or
    /// reached via fault fallback (`fell_back`) — fetch it with
    /// [`lqr_u0_into`](Self::lqr_u0_into) instead.
    ///
    /// Infallible like `solve`: any solver error or detected divergence
    /// restores the pristine cache and reports the LQR rung. A warm
    /// steady-state call performs zero heap allocations (fault paths
    /// excepted).
    pub fn solve_in_place_at_rung(
        &mut self,
        x0: &[T],
        executor: &mut dyn KernelExecutor,
        rung: DegradeRung,
    ) -> RungStatus {
        let lqr = |fell_back: bool| RungStatus {
            rung: DegradeRung::LqrFallback,
            termination: TerminationCause::Deadline,
            iterations: 0,
            total_cycles: 0,
            converged: false,
            fell_back,
        };
        if rung == DegradeRung::LqrFallback {
            return lqr(false);
        }
        if x0.len() != self.solver.dims().nx || x0.iter().any(|v| !v.is_finite()) {
            return lqr(true);
        }
        self.solver.set_settings(self.settings_for(rung));
        match self.solver.solve_in_place(x0, executor) {
            Ok(r) if r.termination != TerminationCause::Diverged => RungStatus {
                // Downgrade the label when the budget tripped mid-solve,
                // mirroring `finish`.
                rung: if r.termination == TerminationCause::Deadline {
                    rung.max(DegradeRung::EarlyExit)
                } else {
                    rung
                },
                termination: r.termination,
                iterations: r.iterations,
                total_cycles: r.total_cycles,
                converged: r.converged,
                fell_back: false,
            },
            // Fault path: restore the pristine cache and hand the tick
            // to the LQR rung (the cohort policy, not a retry loop,
            // decides what happens next tick).
            _ => {
                self.restore();
                lqr(true)
            }
        }
    }

    /// The bounded retry: reset state, restore the pristine cache, and
    /// re-solve with scalar reference timing. A second failure falls
    /// through to the LQR rung.
    fn recover(&mut self, x0: &Vector<T>, fault: String) -> SolveOutcome<T> {
        self.restore();
        let mut fallback = PipelineExecutor::for_platform(&Platform::rocket_eigen());
        let rung = match self.probe(&mut fallback) {
            Ok(c) => self.select_rung(&c),
            Err(_) => return self.lqr_outcome(x0, true, Some(fault)),
        };
        if rung == DegradeRung::LqrFallback {
            return self.lqr_outcome(x0, true, Some(fault));
        }
        self.solver.set_settings(self.settings_for(rung));
        match self.solver.solve_in_place(x0.as_slice(), &mut fallback) {
            Ok(r) if r.termination != TerminationCause::Diverged => {
                self.finish(x0, r, rung, true, Some(fault))
            }
            _ => self.lqr_outcome(x0, true, Some(fault)),
        }
    }

    /// Packages a successful solve, downgrading the rung label when the
    /// budget tripped mid-solve and clamping `u0` defensively. The
    /// applied control is read straight from the solver's arena — the
    /// one allocation here is the outgoing `u0` vector itself.
    fn finish(
        &mut self,
        x0: &Vector<T>,
        r: tinympc::SolveStatus,
        rung: DegradeRung,
        retried: bool,
        fault: Option<String>,
    ) -> SolveOutcome<T> {
        let rung = if r.termination == TerminationCause::Deadline {
            rung.max(DegradeRung::EarlyExit)
        } else {
            rung
        };
        let p = self.solver.problem();
        let mut u0 = Vector::from_slice(self.solver.u0());
        matlib::clamp_in_place(u0.as_mut_slice(), p.u_min, p.u_max);
        if !u0.is_finite() {
            u0 = self.lqr_u0(x0);
        }
        SolveOutcome {
            u0,
            rung,
            termination: r.termination,
            iterations: r.iterations,
            total_cycles: r.total_cycles,
            retried,
            fault,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinympc::{problems, NullExecutor};

    fn solver() -> AdmmSolver<f32> {
        let p = problems::quadrotor_hover::<f32>(10).unwrap();
        AdmmSolver::new(p, SolverSettings::default()).unwrap()
    }

    #[test]
    fn generous_budget_stays_nominal() {
        let mut d = DeadlineSolver::new(solver(), DeadlineConfig::new(u64::MAX));
        let x0 = d.solver().problem().hover_offset_state(0.2);
        let mut e = PipelineExecutor::for_platform(&Platform::rocket_eigen());
        let o = d.solve(&x0, &mut e);
        assert_eq!(o.rung, DegradeRung::Nominal);
        assert_eq!(o.termination, TerminationCause::Converged);
        assert!(!o.retried);
        assert!(o.u0.is_finite());
    }

    #[test]
    fn zero_budget_falls_back_to_lqr() {
        let mut d = DeadlineSolver::new(solver(), DeadlineConfig::new(1));
        let x0 = d.solver().problem().hover_offset_state(0.4);
        let o = d.solve(&x0, &mut NullExecutor);
        // NullExecutor charges nothing, so even budget 1 fits a full
        // solve; use a real executor for the pressure test below.
        assert!(o.u0.is_finite());
        let mut e = PipelineExecutor::for_platform(&Platform::rocket_eigen());
        let mut d = DeadlineSolver::new(solver(), DeadlineConfig::new(1));
        let o = d.solve(&x0, &mut e);
        assert_eq!(o.rung, DegradeRung::LqrFallback);
        assert_eq!(o.iterations, 0);
        assert!(o.u0.is_finite());
        let p = problems::quadrotor_hover::<f32>(10).unwrap();
        for i in 0..o.u0.len() {
            assert!(o.u0[i] >= p.u_min && o.u0[i] <= p.u_max);
        }
    }

    #[test]
    fn from_rates_divides_clock_by_control_rate() {
        let c = DeadlineConfig::from_rates(500.0, 1.0e9);
        assert_eq!(c.cycle_budget, 2_000_000);
    }

    #[test]
    fn rung_costs_order_and_budget_selection() {
        let mut d = DeadlineSolver::new(solver(), DeadlineConfig::new(u64::MAX));
        let mut e = PipelineExecutor::for_platform(&Platform::rocket_eigen());
        let c = d.rung_costs(&mut e).unwrap();
        // Harsher rungs must never predict more cycles than milder ones.
        assert!(c.nominal >= c.widened, "{c:?}");
        assert!(c.widened >= c.early_exit, "{c:?}");
        assert_eq!(c.lqr, 0);
        assert_eq!(c.mildest_within(u64::MAX), DegradeRung::Nominal);
        assert_eq!(c.mildest_within(c.widened), DegradeRung::WidenedCheck);
        assert_eq!(c.mildest_within(c.early_exit), DegradeRung::EarlyExit);
        assert_eq!(c.mildest_within(0), DegradeRung::LqrFallback);
    }

    #[test]
    fn ladder_indexing_round_trips() {
        for rung in DegradeRung::ALL {
            assert_eq!(DegradeRung::from_index(rung.index()), rung);
        }
        assert_eq!(DegradeRung::Nominal.demoted(), DegradeRung::WidenedCheck);
        assert_eq!(
            DegradeRung::LqrFallback.demoted(),
            DegradeRung::LqrFallback,
            "ladder saturates"
        );
    }

    #[test]
    fn forced_rung_solve_matches_the_requested_rung() {
        let mut d = DeadlineSolver::new(solver(), DeadlineConfig::new(u64::MAX));
        let x0 = d.solver().problem().hover_offset_state(0.2);
        let mut e = PipelineExecutor::for_platform(&Platform::rocket_eigen());
        let s = d.solve_in_place_at_rung(x0.as_slice(), &mut e, DegradeRung::Nominal);
        assert_eq!(s.rung, DegradeRung::Nominal);
        assert!(s.converged);
        assert!(!s.fell_back);
        assert!(s.total_cycles > 0);
        // The arena holds the applied control.
        assert!(d.solver().u0().iter().all(|v| v.is_finite()));
        // A forced widened rung runs with the stretched check interval.
        let s = d.solve_in_place_at_rung(x0.as_slice(), &mut e, DegradeRung::WidenedCheck);
        assert_eq!(s.rung, DegradeRung::WidenedCheck);
        // Forcing the LQR rung never touches the solver.
        let s = d.solve_in_place_at_rung(x0.as_slice(), &mut e, DegradeRung::LqrFallback);
        assert_eq!(s.iterations, 0);
        assert_eq!(s.total_cycles, 0);
    }

    #[test]
    fn lqr_u0_into_matches_allocating_lqr_and_survives_garbage() {
        let d = DeadlineSolver::new(solver(), DeadlineConfig::new(1));
        let x0 = d.solver().problem().hover_offset_state(0.4);
        let reference = d.lqr_u0(&x0);
        let mut out = vec![0.0f32; reference.len()];
        d.lqr_u0_into(x0.as_slice(), &mut out);
        for i in 0..out.len() {
            assert_eq!(out[i], reference[i]);
        }
        // Non-finite state: still finite, still inside the box.
        let bad = vec![f32::NAN; x0.len()];
        d.lqr_u0_into(&bad, &mut out);
        let p = d.solver().problem();
        for v in &out {
            assert!(v.is_finite() && *v >= p.u_min && *v <= p.u_max);
        }
    }

    #[test]
    fn forced_rung_garbage_state_falls_back() {
        let mut d = DeadlineSolver::new(solver(), DeadlineConfig::new(u64::MAX));
        let bad = vec![f32::NAN; 12];
        let s = d.solve_in_place_at_rung(&bad, &mut NullExecutor, DegradeRung::Nominal);
        assert_eq!(s.rung, DegradeRung::LqrFallback);
        assert!(s.fell_back);
    }

    #[test]
    fn restore_undoes_cache_corruption() {
        let mut d = DeadlineSolver::new(solver(), DeadlineConfig::new(u64::MAX));
        assert!(d.cache_is_pristine());
        d.solver.cache_mut().kinf.as_mut_slice()[0] += 1.0;
        assert!(!d.cache_is_pristine());
        d.restore();
        assert!(d.cache_is_pristine());
    }
}
