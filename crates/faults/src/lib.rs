//! # soc-faults — fault injection and deadline-aware degradation
//!
//! Real hardware breaks: scratchpad SRAMs take single-event upsets, DMA
//! engines corrupt words in flight, command queues drop or mangle
//! entries. A real-time controller also has a second failure mode no
//! functional test catches — missing its deadline. This crate makes both
//! failure classes first-class objects of the DSE framework:
//!
//! - [`plan`] — deterministic, seeded fault plans ([`FaultPlan`]): every
//!   campaign is a pure function of its seed.
//! - [`inject`] — injectors that apply a planned fault to solver data
//!   ([`DataInjector`]), to generated micro-op streams
//!   ([`corrupt_trace`]), or to a back-end's pricing path
//!   ([`FaultyExecutor`]).
//! - [`deadline`] — [`DeadlineSolver`], the degradation ladder
//!   (nominal → widened residual checks → budgeted early exit → cached
//!   LQR gain) plus bounded fault recovery. Its `solve` never fails and
//!   never returns a non-finite or out-of-box control.
//! - [`campaign`] — seeded campaigns sweeping the shipped back-end
//!   families, classifying every trial as detected / recovered /
//!   deadline-missed / masked / SDC.
//! - [`riscv`] — instruction-level bit flips on the functional RV32IMF
//!   machine as an ISA-level ground truth.
//! - [`chaos`] — seeded campaigns against the *platform itself*: worker
//!   panics, cache corruption, lock poisoning and slow items thrown at
//!   the sweep/bounds execution stack, each trial classified
//!   recovered / degraded / aborted (`dse chaos`).
//!
//! Detection itself is layered through the rest of the workspace: matlib
//! guards every hot-op output for non-finite values, the ADMM loop
//! carries a residual-divergence detector and a pinned-`x0` shadow word,
//! and the executors statically verify every generated micro-op stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod chaos;
pub mod deadline;
pub mod inject;
pub mod plan;
pub mod riscv;

pub use campaign::{
    run_campaign, run_campaign_scenario, BackendStats, CampaignKind, CampaignReport,
};
pub use chaos::{recoverable_strikes, run_chaos, ChaosOutcome, ChaosReport, ChaosTrial};
pub use deadline::{
    DeadlineConfig, DeadlineSolver, DegradeRung, RungCosts, RungStatus, SolveOutcome,
};
pub use inject::{corrupt_trace, DataInjector, FaultyExecutor, TraceFaultOutcome};
pub use plan::{Fault, FaultKind, FaultPlan, FaultSite};
pub use riscv::{run_instruction_campaign, InstructionStats};
