//! Chaos campaigns over the platform itself.
//!
//! The [`campaign`](crate::campaign) module injects faults into the
//! *modeled hardware*; this module injects faults into the *execution
//! stack that runs the experiments* — the shard pool, the sweep engine,
//! the on-disk cache — and asserts the recovery machinery holds its
//! contracts:
//!
//! - a worker panic mid-item is retried and the report stays
//!   byte-identical to a fault-free run;
//! - an item that fails every attempt renders as an explicit `FAILED`
//!   row and the partial sweep still completes, identically for every
//!   `--jobs` value;
//! - a corrupted cache entry is quarantined with a reason file, healed
//!   on recompute, and the next warm run regenerates nothing;
//! - a poisoned engine lock is recovered, not fatal;
//! - a slow item trips the per-item deadline watchdog without losing
//!   its result;
//! - the hardware fault campaign itself completes under its own
//!   classification invariants.
//!
//! Every trial is classified [`Recovered`](ChaosOutcome::Recovered)
//! (output identical to fault-free), [`Degraded`](ChaosOutcome::Degraded)
//! (bounded, explicit degradation — a `FAILED` row, a watchdog trip), or
//! [`Aborted`](ChaosOutcome::Aborted) (a contract was violated or the
//! trial died). The CI gate is **zero aborts**: `dse chaos --smoke`
//! exits nonzero if any trial aborts. Campaigns are pure functions of
//! their seed — the injection hook is keyed only on (batch ordinal,
//! work-item index, attempt), all scheduling-independent, so identical
//! seeds produce identical reports for any thread count.

use crate::campaign::{run_campaign, CampaignKind};
use soc_dse::experiments::{KernelRequest, KernelShape, Residency, SolveRequest};
use soc_dse::platform::Platform;
use soc_dse::report::markdown_table;
use soc_dse::rng::SplitMix64;
use soc_sweep::{run_sweep, ChaosAction, ChaosCtx, ChaosHook, RetryPolicy, SweepEngine, SweepSpec};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

/// How one chaos trial ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosOutcome {
    /// The fault was absorbed: output identical to a fault-free run.
    Recovered,
    /// The fault surfaced as bounded, explicit degradation (a `FAILED`
    /// row, a watchdog trip) and the run still completed
    /// deterministically.
    Degraded,
    /// A recovery contract was violated or the trial itself died —
    /// the outcome the CI gate asserts never happens.
    Aborted,
}

impl std::fmt::Display for ChaosOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ChaosOutcome::Recovered => "recovered",
            ChaosOutcome::Degraded => "degraded",
            ChaosOutcome::Aborted => "aborted",
        })
    }
}

/// One fault-injection trial and its classification.
#[derive(Debug, Clone)]
pub struct ChaosTrial {
    /// Which fault class / execution path the trial attacked.
    pub name: String,
    /// Classification.
    pub outcome: ChaosOutcome,
    /// Deterministic, human-readable evidence line.
    pub detail: String,
}

/// Full chaos-campaign result.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The seed every injection decision was derived from.
    pub seed: u64,
    /// True for the CI-sized campaign.
    pub smoke: bool,
    /// Every trial, in the fixed campaign order.
    pub trials: Vec<ChaosTrial>,
}

impl ChaosReport {
    /// Trials that violated a recovery contract.
    pub fn aborted(&self) -> usize {
        self.count(ChaosOutcome::Aborted)
    }

    fn count(&self, outcome: ChaosOutcome) -> usize {
        self.trials.iter().filter(|t| t.outcome == outcome).count()
    }

    /// Renders the report as a markdown table plus a summary line.
    /// Deterministic for a given seed and size.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .trials
            .iter()
            .map(|t| vec![t.name.clone(), t.outcome.to_string(), t.detail.clone()])
            .collect();
        let mut out = format!(
            "Chaos campaign (seed {}, {})\n\n",
            self.seed,
            if self.smoke { "smoke" } else { "full" }
        );
        out.push_str(&markdown_table(&["trial", "outcome", "detail"], &rows));
        out.push_str(&format!(
            "\n{} trials: {} recovered, {} degraded, {} aborted\n",
            self.trials.len(),
            self.count(ChaosOutcome::Recovered),
            self.count(ChaosOutcome::Degraded),
            self.aborted()
        ));
        out
    }
}

/// The standard recoverable-fault hook: panics the **first** attempt of
/// a seed-selected subset of work items (always including item 0 of
/// every batch, so at least one strike lands), leaving later attempts
/// clean — every strike is recovered by one retry. Keyed only on the
/// scheduling-independent [`ChaosCtx`], so an injected run's results are
/// identical for any `--jobs` value. This is the hook behind
/// `dse sweep --chaos-seed`.
pub fn recoverable_strikes(seed: u64) -> ChaosHook {
    Arc::new(move |ctx: &ChaosCtx| {
        if ctx.attempt != 1 {
            return None;
        }
        let mut mix = SplitMix64::new(seed ^ (ctx.batch << 32) ^ ctx.item as u64);
        (ctx.item == 0 || mix.next_u64().is_multiple_of(3))
            .then(|| ChaosAction::Panic("chaos: injected worker panic".into()))
    })
}

/// A fault that never clears: every attempt of one chosen work item
/// panics, exhausting the retry budget and surfacing as a `FAILED` row.
fn persistent_fault(batch: u64, item: usize) -> ChaosHook {
    Arc::new(move |ctx: &ChaosCtx| {
        (ctx.batch == batch && ctx.item == item)
            .then(|| ChaosAction::Panic("chaos: persistent fault".into()))
    })
}

/// Runs one trial body, translating both explicit contract violations
/// (`Err`) and panics into [`ChaosOutcome::Aborted`].
fn trial<F>(name: &str, body: F) -> ChaosTrial
where
    F: FnOnce() -> Result<(ChaosOutcome, String), String>,
{
    let (outcome, detail) = match catch_unwind(AssertUnwindSafe(body)) {
        Ok(Ok(classified)) => classified,
        Ok(Err(violation)) => (ChaosOutcome::Aborted, violation),
        Err(payload) => {
            let what = payload
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            (ChaosOutcome::Aborted, format!("trial panicked: {what}"))
        }
    };
    ChaosTrial {
        name: name.to_string(),
        outcome,
        detail,
    }
}

fn err(e: impl std::fmt::Display) -> String {
    e.to_string()
}

/// Worker panic mid-item, recovered by retry: the report must be
/// byte-identical to the fault-free run at every jobs count.
fn sweep_worker_panic(seed: u64, jobs_grid: &[usize]) -> Result<(ChaosOutcome, String), String> {
    let spec = SweepSpec::smoke();
    let reference = run_sweep(&spec, &SweepEngine::in_memory(1))
        .map_err(err)?
        .render();
    let mut retries = 0;
    for &jobs in jobs_grid {
        let engine = SweepEngine::in_memory(jobs).with_chaos(recoverable_strikes(seed));
        let report = run_sweep(&spec, &engine).map_err(err)?;
        if report.render() != reference {
            return Err(format!(
                "jobs={jobs}: recovered report diverged from clean run"
            ));
        }
        if report.failed_points != 0 {
            return Err(format!(
                "jobs={jobs}: {} item(s) failed outright under a recoverable fault",
                report.failed_points
            ));
        }
        retries += report.faults.retries;
    }
    if retries == 0 {
        return Err("no injected strike actually landed".to_string());
    }
    Ok((
        ChaosOutcome::Recovered,
        "injected worker panics retried; report byte-identical to the clean run at every jobs \
         count"
            .to_string(),
    ))
}

/// A persistent fault exhausts the retry budget: the sweep must still
/// complete, rendering one explicit `FAILED` row, identically for every
/// jobs count.
fn sweep_exhausted_retry(jobs_grid: &[usize]) -> Result<(ChaosOutcome, String), String> {
    let spec = SweepSpec::smoke();
    let mut renders = Vec::new();
    for &jobs in jobs_grid {
        let engine = SweepEngine::in_memory(jobs).with_chaos(persistent_fault(0, 0));
        let report = run_sweep(&spec, &engine).map_err(err)?;
        if report.failed_points != 1 {
            return Err(format!(
                "jobs={jobs}: expected exactly 1 failed point, saw {}",
                report.failed_points
            ));
        }
        renders.push(report.render());
    }
    if !renders[0].contains("FAILED") {
        return Err("partial report carries no explicit FAILED row".to_string());
    }
    if renders.windows(2).any(|w| w[0] != w[1]) {
        return Err("partial FAILED report differs across jobs counts".to_string());
    }
    Ok((
        ChaosOutcome::Degraded,
        "exhausted item rendered as an explicit FAILED row; partial sweep completed identically \
         at every jobs count"
            .to_string(),
    ))
}

/// The headline scenario: one corrupted cache entry *and* injected
/// worker panics in the same run. The report body must match the
/// fault-free run, the corrupt entry must be quarantined with a reason
/// file and healed by the recompute, and the next warm run must
/// regenerate nothing.
fn cache_corruption_heals(seed: u64) -> Result<(ChaosOutcome, String), String> {
    let dir = std::env::temp_dir().join(format!("soc-chaos-cache-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let result = cache_corruption_heals_in(seed, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn cache_corruption_heals_in(
    seed: u64,
    dir: &std::path::Path,
) -> Result<(ChaosOutcome, String), String> {
    let spec = SweepSpec::smoke();
    let cold = SweepEngine::with_cache_dir(1, dir).map_err(err)?;
    let reference = run_sweep(&spec, &cold).map_err(err)?;

    // Corrupt one entry deterministically: lexicographically first key,
    // torn in half (a crashed write without the atomic rename).
    let mut entries: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(err)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "entry"))
        .collect();
    entries.sort();
    let victim = entries.first().ok_or("cold run wrote no cache entries")?;
    let bytes = std::fs::read_to_string(victim).map_err(err)?;
    std::fs::write(victim, &bytes[..bytes.len() / 2]).map_err(err)?;

    let engine = SweepEngine::with_cache_dir(4, dir)
        .map_err(err)?
        .with_chaos(recoverable_strikes(seed));
    let report = run_sweep(&spec, &engine).map_err(err)?;
    if report.body != reference.body {
        return Err("report body diverged from the fault-free run".to_string());
    }
    if engine.corrupt_entries() != 1 {
        return Err(format!(
            "expected 1 quarantined entry, counted {}",
            engine.corrupt_entries()
        ));
    }
    if report.stats.misses != 1 {
        return Err(format!(
            "expected exactly the corrupted entry to miss, saw {} misses",
            report.stats.misses
        ));
    }
    let qdir = dir.join(soc_sweep::cache::QUARANTINE_DIR);
    let quarantined = std::fs::read_dir(&qdir).map_err(err)?.count();
    if quarantined != 2 {
        return Err(format!(
            "quarantine holds {quarantined} file(s), expected entry + reason"
        ));
    }

    // Healed: a cold re-open over the same directory regenerates nothing.
    let healed = SweepEngine::with_cache_dir(1, dir).map_err(err)?;
    let warm = run_sweep(&spec, &healed).map_err(err)?;
    if warm.stats.misses != 0 {
        return Err(format!(
            "healed cache still missed {} time(s) on the warm run",
            warm.stats.misses
        ));
    }
    if warm.body != reference.body {
        return Err("warm report body diverged after healing".to_string());
    }
    Ok((
        ChaosOutcome::Recovered,
        "corrupt entry quarantined with a reason file and healed on recompute; report body \
         byte-identical; next warm run regenerated nothing"
            .to_string(),
    ))
}

/// A panic while holding the engine lock poisons it; the engine must
/// recover the state and keep serving.
fn lock_poisoning() -> Result<(ChaosOutcome, String), String> {
    let spec = SweepSpec::smoke();
    let engine = SweepEngine::in_memory(2);
    let reference = run_sweep(&spec, &engine).map_err(err)?;
    engine.poison_for_chaos();
    let report = run_sweep(&spec, &engine).map_err(err)?;
    if report.faults.poison_recoveries == 0 {
        return Err("poisoning was never observed by the lock".to_string());
    }
    if report.body != reference.body {
        return Err("report body changed after lock recovery".to_string());
    }
    if report.stats.misses != 0 {
        return Err("recovered engine lost its memoized state".to_string());
    }
    Ok((
        ChaosOutcome::Recovered,
        "engine lock poisoned mid-run, recovered via into_inner; memoized state intact, report \
         body unchanged"
            .to_string(),
    ))
}

/// An injected delay overruns the per-item deadline: the watchdog must
/// record the trip while keeping the (correct) result.
fn slow_item_watchdog() -> Result<(ChaosOutcome, String), String> {
    let requests: Vec<KernelRequest> = [(4usize, 4usize), (8, 4), (8, 8)]
        .into_iter()
        .map(|(i, k)| KernelRequest {
            platform: Platform::rocket_eigen(),
            shape: KernelShape::Gemv,
            residency: Residency::Cold,
            i,
            k,
        })
        .collect();
    use soc_dse::experiments::CycleSource;
    let reference = SweepEngine::in_memory(1).kernel_batch(&requests);
    let policy = RetryPolicy {
        item_deadline: Some(Duration::from_millis(60)),
        ..RetryPolicy::default()
    };
    let hook: ChaosHook = Arc::new(|ctx: &ChaosCtx| {
        (ctx.item == 1 && ctx.attempt == 1).then(|| ChaosAction::Delay(Duration::from_millis(150)))
    });
    let engine = SweepEngine::in_memory(2)
        .with_retry_policy(policy)
        .with_chaos(hook);
    if engine.kernel_batch(&requests) != reference {
        return Err("slow item changed a cycle count".to_string());
    }
    if engine.fault_stats().watchdog_trips == 0 {
        return Err("deadline overrun was never recorded".to_string());
    }
    Ok((
        ChaosOutcome::Degraded,
        "injected slow item overran the 60 ms per-item deadline; result kept bit-identical, trip \
         recorded in fault stats"
            .to_string(),
    ))
}

/// Worker panic on the analytical-bounds path: recovered, results
/// identical to the clean run.
fn bounds_worker_panic(seed: u64) -> Result<(ChaosOutcome, String), String> {
    let requests: Vec<SolveRequest> = SweepSpec::smoke()
        .platforms
        .into_iter()
        .map(|platform| SolveRequest::hover(platform, 8))
        .collect();
    let clean: Vec<(u64, u64)> = SweepEngine::in_memory(1)
        .bounds_batch(&requests)
        .into_iter()
        .collect::<tinympc::Result<_>>()
        .map_err(err)?;
    let engine = SweepEngine::in_memory(2).with_chaos(recoverable_strikes(seed));
    let chaotic: Vec<(u64, u64)> = engine
        .bounds_batch(&requests)
        .into_iter()
        .collect::<tinympc::Result<_>>()
        .map_err(err)?;
    if chaotic != clean {
        return Err("recovered bounds diverged from the clean run".to_string());
    }
    if engine.fault_stats().retries == 0 {
        return Err("no injected strike actually landed".to_string());
    }
    Ok((
        ChaosOutcome::Recovered,
        "injected panic on the bounds path retried; intervals bit-identical to the clean run"
            .to_string(),
    ))
}

/// The hardware fault campaign under its own invariants: it must
/// complete, its classification buckets must partition the trials, and
/// (full campaigns only) a re-run must render identically.
fn faults_campaign(seed: u64, smoke: bool) -> Result<(ChaosOutcome, String), String> {
    let report = run_campaign(seed, CampaignKind::Smoke).map_err(err)?;
    for b in &report.backends {
        if b.detected + b.masked + b.sdc + b.deadline_missed != b.trials {
            return Err(format!(
                "classification buckets do not partition {} trials on {}",
                b.trials, b.backend
            ));
        }
    }
    if !smoke {
        let again = run_campaign(seed, CampaignKind::Smoke).map_err(err)?;
        if again.render() != report.render() {
            return Err("identical seeds rendered different campaign reports".to_string());
        }
    }
    Ok((
        ChaosOutcome::Recovered,
        "hardware fault campaign completed; classification buckets partition every trial"
            .to_string(),
    ))
}

/// Runs the full chaos campaign for one seed. `smoke` trims the jobs
/// grid and skips the campaign re-run so the CI gate stays
/// seconds-scale. Deterministic: identical `(seed, smoke)` pairs render
/// identical reports.
pub fn run_chaos(seed: u64, smoke: bool) -> ChaosReport {
    let jobs_grid: &[usize] = if smoke { &[1, 4] } else { &[1, 4, 16] };
    let trials = vec![
        trial("sweep/worker-panic", || sweep_worker_panic(seed, jobs_grid)),
        trial("sweep/exhausted-retry", || sweep_exhausted_retry(jobs_grid)),
        trial("sweep/cache-corruption", || cache_corruption_heals(seed)),
        trial("engine/lock-poisoning", lock_poisoning),
        trial("engine/slow-item-watchdog", slow_item_watchdog),
        trial("bounds/worker-panic", || bounds_worker_panic(seed)),
        trial("faults/campaign", || faults_campaign(seed, smoke)),
    ];
    ChaosReport {
        seed,
        smoke,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_7_smoke_has_zero_aborts() {
        let report = run_chaos(7, true);
        assert_eq!(report.aborted(), 0, "{}", report.render());
        let outcomes: Vec<ChaosOutcome> = report.trials.iter().map(|t| t.outcome).collect();
        assert_eq!(
            outcomes,
            vec![
                ChaosOutcome::Recovered,
                ChaosOutcome::Degraded,
                ChaosOutcome::Recovered,
                ChaosOutcome::Recovered,
                ChaosOutcome::Degraded,
                ChaosOutcome::Recovered,
                ChaosOutcome::Recovered,
            ],
            "{}",
            report.render()
        );
        let rendered = report.render();
        assert!(
            rendered.contains("Chaos campaign (seed 7, smoke)"),
            "{rendered}"
        );
        assert!(
            rendered.contains("7 trials: 5 recovered, 2 degraded, 0 aborted"),
            "{rendered}"
        );
    }

    #[test]
    fn recoverable_strikes_hook_is_deterministic_and_lands() {
        let hook = recoverable_strikes(7);
        // Item 0 of every batch always strikes its first attempt.
        for batch in 0..4 {
            let ctx = ChaosCtx {
                batch,
                item: 0,
                attempt: 1,
            };
            assert!(hook(&ctx).is_some(), "batch {batch}");
            assert!(
                hook(&ChaosCtx { attempt: 2, ..ctx }).is_none(),
                "second attempts are always clean"
            );
        }
        // Same context, same decision — and the two seeds differ
        // somewhere on a wider item range.
        let other = recoverable_strikes(8);
        let decisions = |h: &ChaosHook| -> Vec<bool> {
            (0..64)
                .map(|item| {
                    h(&ChaosCtx {
                        batch: 1,
                        item,
                        attempt: 1,
                    })
                    .is_some()
                })
                .collect()
        };
        assert_eq!(decisions(&hook), decisions(&hook));
        assert_ne!(decisions(&hook), decisions(&other));
    }

    #[test]
    fn a_panicking_trial_is_classified_aborted_not_fatal() {
        let t = trial("synthetic/panic", || panic!("boom"));
        assert_eq!(t.outcome, ChaosOutcome::Aborted);
        assert!(t.detail.contains("boom"), "{}", t.detail);
        let t = trial("synthetic/violation", || Err("contract broken".into()));
        assert_eq!(t.outcome, ChaosOutcome::Aborted);
        assert_eq!(t.detail, "contract broken");
    }
}
