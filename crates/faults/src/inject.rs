//! Fault injectors: wrappers that apply a planned [`Fault`] to solver
//! data, to generated micro-op streams, or to a back-end executor.

use crate::plan::{Fault, FaultKind, FaultSite};
use soc_backend::PipelineExecutor;
use soc_isa::{MicroOp, Payload, RoccCmd, Trace};
use tinympc::{
    KernelExecutor, KernelId, ProblemDims, SolveObserver, TinyMpcCache, TinyMpcWorkspace, WsField,
};

/// Flips one bit of an `f32` word.
fn flip_f32(v: f32, bit: u8) -> f32 {
    f32::from_bits(v.to_bits() ^ (1u32 << (bit % 32)))
}

// ---------------------------------------------------------------------
// Data-plane injection (scratchpad words, DMA words, vector registers)
// ---------------------------------------------------------------------

/// A [`SolveObserver`] that corrupts solver data at the fault's chosen
/// iteration.
///
/// - [`FaultSite::ScratchpadWord`] flips a bit of one word of the cached
///   solver matrices (`K∞`, `K∞ᵀ`, `P∞`, `Quu⁻¹`, `(A−BK)ᵀ`, `Bᵀ`) — the
///   data that lives in Gemmini's scratchpad (or the D-cache on scalar
///   cores) for the whole solve.
/// - [`FaultSite::DmaWord`] and [`FaultSite::VectorRegister`] flip a bit
///   of one in-flight workspace word (states, duals, linear-cost terms) —
///   data that crosses the DMA path or is resident in vector registers.
///
/// The fault strikes exactly once; [`DataInjector::injected`] records the
/// human-readable landing site afterwards.
#[derive(Debug, Clone)]
pub struct DataInjector {
    fault: Fault,
    /// Where the fault landed (`None` until it strikes — e.g. the solve
    /// converged before the fault's iteration).
    pub injected: Option<String>,
}

impl DataInjector {
    /// Creates an injector for one planned fault.
    pub fn new(fault: Fault) -> Self {
        DataInjector {
            fault,
            injected: None,
        }
    }

    fn corrupt_cache(&mut self, cache: &mut TinyMpcCache<f32>) {
        let bit = match self.fault.kind {
            FaultKind::BitFlip { bit } => bit,
            _ => 0,
        };
        let names = ["kinf", "kinf_t", "pinf", "quu_inv", "am_bk_t", "b_t"];
        let mats = [
            cache.kinf.as_mut_slice(),
            cache.kinf_t.as_mut_slice(),
            cache.pinf.as_mut_slice(),
            cache.quu_inv.as_mut_slice(),
            cache.am_bk_t.as_mut_slice(),
            cache.b_t.as_mut_slice(),
        ];
        let total: usize = mats.iter().map(|m| m.len()).sum();
        let mut idx = (self.fault.word as usize) % total.max(1);
        for (name, mat) in names.iter().zip(mats) {
            if idx < mat.len() {
                mat[idx] = flip_f32(mat[idx], bit);
                self.injected = Some(format!("{name}[{idx}] bit {bit}"));
                return;
            }
            idx -= mat.len();
        }
    }

    fn corrupt_workspace(&mut self, ws: &mut TinyMpcWorkspace<f32>) {
        let bit = match self.fault.kind {
            FaultKind::BitFlip { bit } => bit,
            _ => 0,
        };
        // Same field order (and therefore the same word → landing-site
        // mapping) as the pre-arena workspace, so seeded campaigns stay
        // deterministic across the refactor.
        let fields = [
            ("x", WsField::X),
            ("y", WsField::Y),
            ("g", WsField::G),
            ("p", WsField::P),
            ("q", WsField::Q),
            ("r", WsField::R),
            ("d", WsField::D),
        ];
        let total: usize = fields
            .iter()
            .map(|&(_, f)| ws.knots(f) * ws.knot_dim(f))
            .sum();
        let mut idx = (self.fault.word as usize) % total.max(1);
        for (name, field) in fields {
            let dim = ws.knot_dim(field);
            let len = ws.knots(field) * dim;
            if idx < len {
                let (k, e) = (idx / dim, idx % dim);
                let v = &mut ws.knot_mut(field, k)[e];
                *v = flip_f32(*v, bit);
                self.injected = Some(format!("{name}[{k}][{e}] bit {bit}"));
                return;
            }
            idx -= len;
        }
    }
}

impl SolveObserver<f32> for DataInjector {
    fn after_iteration(
        &mut self,
        iteration: usize,
        cache: &mut TinyMpcCache<f32>,
        workspace: &mut TinyMpcWorkspace<f32>,
    ) {
        if self.injected.is_some() || iteration != self.fault.iteration {
            return;
        }
        match self.fault.site {
            FaultSite::ScratchpadWord => self.corrupt_cache(cache),
            FaultSite::DmaWord | FaultSite::VectorRegister => self.corrupt_workspace(workspace),
            // Command-stream and instruction faults are injected by
            // `FaultyExecutor` / the RISC-V harness, not here.
            FaultSite::RoccCommand | FaultSite::InstructionWord => {}
        }
    }
}

// ---------------------------------------------------------------------
// Command-stream injection (RoCC micro-ops)
// ---------------------------------------------------------------------

/// Applies a command-stream fault to a generated micro-op trace.
///
/// Only RoCC-carrying ops are targeted (the fault models a corrupted
/// command in flight to Gemmini); traces without RoCC ops are returned
/// unchanged. The op index is chosen deterministically from the fault's
/// entropy word.
pub fn corrupt_trace(trace: &Trace, fault: &Fault) -> Trace {
    let rocc: Vec<usize> = trace
        .ops()
        .iter()
        .enumerate()
        .filter(|(_, op)| matches!(op.payload, Payload::Rocc(_)))
        .map(|(i, _)| i)
        .collect();
    if rocc.is_empty() {
        return trace.ops().iter().copied().collect();
    }
    let victim = rocc[(fault.word as usize) % rocc.len()];
    let mut ops: Vec<MicroOp> = trace.ops().to_vec();
    match fault.kind {
        FaultKind::DroppedOp => {
            ops.remove(victim);
        }
        FaultKind::BitFlip { bit } => {
            if let Payload::Rocc(cmd) = &mut ops[victim].payload {
                match cmd {
                    // Flip a bit of the scratchpad address in flight.
                    RoccCmd::Mvin { base, .. } | RoccCmd::Mvout { base, .. } => {
                        *base ^= 1 << (bit % 20)
                    }
                    RoccCmd::ComputeTile { out_base, .. } => *out_base ^= 1 << (bit % 20),
                    // Shape-carrying FSM command: flip a dimension bit.
                    RoccCmd::LoopMatmul { m, .. } => *m ^= 1 << (bit % 12),
                    // Payload-free commands: the flip lands in reserved
                    // bits and is architecturally absorbed.
                    _ => {}
                }
            }
        }
        FaultKind::CorruptedField => {
            if let Payload::Rocc(cmd) = &mut ops[victim].payload {
                match cmd {
                    // Blow up the tile shape: the transfer now walks far
                    // past the end of the scratchpad.
                    RoccCmd::Mvin { rows, .. } | RoccCmd::Mvout { rows, .. } => *rows = u16::MAX,
                    RoccCmd::ComputeTile { rows, .. } => *rows = u16::MAX,
                    RoccCmd::LoopMatmul { m, .. } => *m = u16::MAX,
                    _ => {}
                }
            }
        }
    }
    ops.into_iter().collect()
}

// ---------------------------------------------------------------------
// Back-end executors with injection
// ---------------------------------------------------------------------

/// What happened to a command-stream fault routed through a
/// [`FaultyExecutor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceFaultOutcome {
    /// The targeted pricing call has not happened yet.
    #[default]
    Pending,
    /// The static verifier rejected the corrupted stream.
    Detected,
    /// The corrupted stream passed verification (a candidate silent
    /// corruption).
    Undetected,
}

/// An executor wrapper that corrupts the micro-op stream of one pricing
/// call — chosen deterministically from the fault's entropy word — and
/// verifies the corrupted stream **unconditionally** (fault campaigns
/// must behave the same in release builds).
///
/// If the verifier flags the stream, the call fails with
/// [`tinympc::Error::InvalidTrace`] and the solver's recovery path takes
/// over; otherwise the nominal cost is charged and
/// [`FaultyExecutor::outcome`] records the escape.
#[derive(Debug, Clone)]
pub struct FaultyExecutor {
    inner: PipelineExecutor,
    fault: Fault,
    target_call: u64,
    calls: u64,
    /// Detection outcome of the injected command-stream fault.
    pub outcome: TraceFaultOutcome,
}

impl FaultyExecutor {
    /// Wraps `inner`, scheduling `fault` on one of the first 64 pricing
    /// calls.
    pub fn new(inner: PipelineExecutor, fault: Fault) -> Self {
        FaultyExecutor {
            inner,
            fault,
            target_call: fault.word % 64,
            calls: 0,
            outcome: TraceFaultOutcome::Pending,
        }
    }
}

impl KernelExecutor for FaultyExecutor {
    fn name(&self) -> String {
        format!("{} + fault({})", self.inner.name(), self.fault)
    }

    fn kernel_cycles(&mut self, kernel: KernelId, dims: &ProblemDims) -> tinympc::Result<u64> {
        let call = self.calls;
        self.calls += 1;
        if call == self.target_call && self.outcome == TraceFaultOutcome::Pending {
            let bad = corrupt_trace(&self.inner.timed_trace(kernel, dims).0, &self.fault);
            let report = soc_verify::verify(&bad, &self.inner.verify_config());
            if report.error_count() > 0 {
                self.outcome = TraceFaultOutcome::Detected;
                return Err(tinympc::Error::InvalidTrace {
                    backend: self.inner.name(),
                    report: report.render(),
                });
            }
            self.outcome = TraceFaultOutcome::Undetected;
        }
        self.inner.kernel_cycles(kernel, dims)
    }

    fn setup_cycles(&mut self, dims: &ProblemDims) -> tinympc::Result<u64> {
        self.inner.setup_cycles(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_dse::platform::Platform;

    fn dims() -> ProblemDims {
        ProblemDims {
            nx: 12,
            nu: 4,
            horizon: 10,
        }
    }

    fn gemmini() -> PipelineExecutor {
        let p = Platform::table1_registry()
            .into_iter()
            .find(|p| p.name == "OSGemminiRocket32KB")
            .expect("registry platform");
        PipelineExecutor::for_platform(&p)
    }

    #[test]
    fn corrupted_field_is_caught_by_verifier() {
        let e = gemmini();
        let trace = e.timed_trace(KernelId::ForwardPass2, &dims()).0;
        let fault = Fault {
            site: FaultSite::RoccCommand,
            kind: FaultKind::CorruptedField,
            iteration: 1,
            word: 3,
        };
        let bad = corrupt_trace(&trace, &fault);
        let report = soc_verify::verify(&bad, &e.verify_config());
        assert!(
            report.error_count() > 0,
            "u16::MAX tile rows must overrun the scratchpad:\n{}",
            report.render()
        );
    }

    #[test]
    fn scalar_traces_have_no_rocc_ops_to_corrupt() {
        let p = Platform::table1_registry()
            .into_iter()
            .find(|p| p.name == "Rocket")
            .unwrap();
        let e = PipelineExecutor::for_platform(&p);
        let trace = e.timed_trace(KernelId::ForwardPass1, &dims()).0;
        let fault = Fault {
            site: FaultSite::RoccCommand,
            kind: FaultKind::DroppedOp,
            iteration: 1,
            word: 11,
        };
        assert_eq!(corrupt_trace(&trace, &fault).len(), trace.len());
    }

    #[test]
    fn bit_flip_changes_exactly_one_f32_bit() {
        let v = 1.5f32;
        let w = flip_f32(v, 31);
        assert_eq!(w, -1.5);
        assert_eq!(flip_f32(w, 31), v);
    }
}
