//! Instruction-level fault injection on the functional RISC-V machine.
//!
//! The harness assembles the repository's reference RV32IMF GEMV kernel,
//! runs it once cleanly, then re-runs it with one instruction-word bit
//! flipped per trial. Flips that break decoding, jump out of memory or
//! hang the program are trapped by the machine ([`soc_riscv::ExecError`]);
//! flips that complete are compared bit-for-bit against the clean output
//! vector. This gives the campaign a ground-truth execution model to
//! contrast with the micro-op-level back-ends.

use soc_dse::rng::SplitMix64;
use soc_riscv::{assemble, Machine};

/// The same GEMV kernel the `riscv_kernel` example validates against
/// `matlib`: `y[0..m] = A[m×k] · x[k]` with operand bases in `a0..a2`
/// and sizes in `a3`/`a4`.
const GEMV_ASM: &str = r#"
    li   t0, 0            # i
row:
    bge  t0, a3, done
    fmv.w.x ft0, zero     # acc = 0
    li   t1, 0            # j
    mul  t4, t0, a4
    slli t4, t4, 2
    add  t2, a0, t4       # &A[i][0]
    mv   t3, a1           # &x[0]
col:
    bge  t1, a4, rowend
    flw  ft1, (t2)
    flw  ft2, (t3)
    fmadd.s ft0, ft1, ft2, ft0
    addi t2, t2, 4
    addi t3, t3, 4
    addi t1, t1, 1
    j    col
rowend:
    slli t5, t0, 2
    add  t6, a2, t5
    fsw  ft0, (t6)
    addi t0, t0, 1
    j    row
done:
    ecall
"#;

const M: usize = 8;
const K: usize = 8;
const A_BASE: u32 = 0x4000;
const X_BASE: u32 = 0x8000;
const Y_BASE: u32 = 0xc000;

/// Classification counters for instruction-level faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstructionStats {
    /// Bit-flip trials run.
    pub trials: usize,
    /// Flips trapped by the machine (decode failure, out-of-bounds
    /// access, misalignment, or a hang caught by the step budget).
    pub trapped: usize,
    /// Flips whose run completed with a bit-identical output vector.
    pub masked: usize,
    /// Flips whose run completed with a wrong output — silent data
    /// corruption at the ISA level.
    pub silent_wrong: usize,
}

/// Builds a machine loaded with the GEMV program and operands.
fn fresh_machine() -> Result<(Machine, usize), String> {
    let prog = assemble(GEMV_ASM).map_err(|e| format!("assembler: {e}"))?;
    let mut m = Machine::new(64 * 1024);
    m.load_program(0, &prog);
    for r in 0..M {
        for c in 0..K {
            let v = ((r * 3 + c) % 7) as f32 * 0.3 - 0.9;
            m.write_f32(A_BASE + ((r * K + c) * 4) as u32, v)
                .map_err(|e| e.to_string())?;
        }
    }
    for i in 0..K {
        let v = (i % 5) as f32 * 0.4 - 0.8;
        m.write_f32(X_BASE + (i * 4) as u32, v)
            .map_err(|e| e.to_string())?;
    }
    m.set_x(10, A_BASE);
    m.set_x(11, X_BASE);
    m.set_x(12, Y_BASE);
    m.set_x(13, M as u32);
    m.set_x(14, K as u32);
    Ok((m, prog.len()))
}

fn read_output(m: &Machine) -> Result<[u32; M], String> {
    let mut y = [0u32; M];
    for (i, slot) in y.iter_mut().enumerate() {
        *slot = m
            .read_f32(Y_BASE + (i * 4) as u32)
            .map_err(|e| e.to_string())?
            .to_bits();
    }
    Ok(y)
}

/// Runs `trials` single-bit instruction flips, deterministic in `seed`.
///
/// # Errors
///
/// Returns a message if the *clean* baseline fails to assemble or run —
/// faulty runs never error, they are classified.
pub fn run_instruction_campaign(seed: u64, trials: usize) -> Result<InstructionStats, String> {
    let (mut clean, prog_len) = fresh_machine()?;
    let baseline_steps = clean.run(200_000).map_err(|e| format!("baseline: {e}"))?;
    let baseline = read_output(&clean)?;

    let mut rng = SplitMix64::new(seed);
    let mut stats = InstructionStats {
        trials,
        trapped: 0,
        masked: 0,
        silent_wrong: 0,
    };
    for _ in 0..trials {
        let inst = rng.range_usize(0, prog_len - 1);
        let bit = rng.range_usize(0, 31) as u32;
        let (mut m, _) = fresh_machine()?;
        let addr = (inst * 4) as u32;
        // Patch the encoded instruction word in memory: the machine
        // fetches and decodes from memory every step, so the flip is
        // architecturally visible.
        let word = m.read_f32(addr).map_err(|e| e.to_string())?.to_bits();
        m.write_f32(addr, f32::from_bits(word ^ (1 << bit)))
            .map_err(|e| e.to_string())?;
        // Generous step budget: a flip that turns the loop infinite is
        // caught as StepBudgetExhausted, i.e. a watchdog trap.
        match m.run(baseline_steps * 8 + 1_000) {
            Err(_) => stats.trapped += 1,
            Ok(_) => match read_output(&m) {
                Ok(y) if y == baseline => stats.masked += 1,
                _ => stats.silent_wrong += 1,
            },
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_runs_clean() {
        let (mut m, _) = fresh_machine().unwrap();
        m.run(200_000).unwrap();
        let y = read_output(&m).unwrap();
        // Spot-check one element against the closed form.
        let mut acc = 0.0f32;
        for c in 0..K {
            let a = ((c) % 7) as f32 * 0.3 - 0.9;
            let x = (c % 5) as f32 * 0.4 - 0.8;
            acc = a.mul_add(x, acc);
        }
        assert!((f32::from_bits(y[0]) - acc).abs() < 1e-5);
    }

    #[test]
    fn campaign_is_deterministic_and_partitions() {
        let a = run_instruction_campaign(11, 12).unwrap();
        let b = run_instruction_campaign(11, 12).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.trapped + a.masked + a.silent_wrong, a.trials);
    }

    #[test]
    fn some_flips_are_trapped() {
        // With 32 trials over a ~25-instruction program, at least one
        // flip must land in an opcode field and break decoding.
        let s = run_instruction_campaign(5, 32).unwrap();
        assert!(s.trapped > 0, "{s:?}");
    }
}
