//! Deterministic fault plans.
//!
//! A [`FaultPlan`] is a pure function of a seed: the same seed always
//! produces the same sequence of faults, so every campaign, CI run and
//! bug report is exactly reproducible. Randomness comes from the same
//! SplitMix64 generator the DSE crate uses for everything else.

use soc_dse::rng::SplitMix64;

/// The hardware structure a fault lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A word of the Gemmini scratchpad holding cached solver matrices
    /// (`K∞`, `P∞`, `Quu⁻¹`, …).
    ScratchpadWord,
    /// A word in flight on the DMA path between main memory and a
    /// back-end (modeled as corruption of a workspace vector word).
    DmaWord,
    /// A RoCC command of a generated Gemmini micro-op stream (dropped,
    /// or with a corrupted field).
    RoccCommand,
    /// A word of a Saturn vector register (modeled as corruption of an
    /// in-flight workspace vector word).
    VectorRegister,
    /// A bit of an encoded instruction word in the functional RISC-V
    /// machine's memory.
    InstructionWord,
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FaultSite::ScratchpadWord => "scratchpad-word",
            FaultSite::DmaWord => "dma-word",
            FaultSite::RoccCommand => "rocc-command",
            FaultSite::VectorRegister => "vector-register",
            FaultSite::InstructionWord => "instruction-word",
        })
    }
}

/// What the fault does to the affected structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip one bit of the affected 32-bit word.
    BitFlip {
        /// Bit index (0 = LSB, 31 = sign bit of an f32 word).
        bit: u8,
    },
    /// Silently drop a micro-op from a command stream.
    DroppedOp,
    /// Overwrite a structural field (tile shape, address) of a command
    /// with an out-of-spec value.
    CorruptedField,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::BitFlip { bit } => write!(f, "bit-flip(b{bit})"),
            FaultKind::DroppedOp => f.write_str("dropped-op"),
            FaultKind::CorruptedField => f.write_str("corrupted-field"),
        }
    }
}

/// One injected fault: a site, a kind, and deterministic coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Where the fault lands.
    pub site: FaultSite,
    /// What it does.
    pub kind: FaultKind,
    /// The ADMM iteration (1-based) after which the fault strikes — the
    /// solver's iteration counter is the cycle-level proxy used to tag
    /// faults in reports.
    pub iteration: usize,
    /// Raw entropy word the injector maps onto a concrete location
    /// (matrix word index, micro-op index, instruction address…), so
    /// the plan stays independent of any one structure's size.
    pub word: u64,
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {} @iter{} w{:#x}",
            self.site, self.kind, self.iteration, self.word
        )
    }
}

/// A reproducible sequence of faults derived from one seed.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// The seed the plan was generated from.
    pub seed: u64,
    /// The faults, in injection order (one per campaign trial).
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// Generates `count` faults drawn uniformly from `sites`, striking
    /// at iterations `1..=max_iteration`. Deterministic in `seed`.
    pub fn generate(seed: u64, count: usize, sites: &[FaultSite], max_iteration: usize) -> Self {
        let mut rng = SplitMix64::new(seed);
        let faults = (0..count)
            .map(|_| {
                let site = sites[rng.range_usize(0, sites.len().saturating_sub(1))];
                let kind = match site {
                    // Data sites always take single-bit upsets.
                    FaultSite::ScratchpadWord
                    | FaultSite::DmaWord
                    | FaultSite::VectorRegister
                    | FaultSite::InstructionWord => FaultKind::BitFlip {
                        bit: rng.range_usize(0, 31) as u8,
                    },
                    // Command streams additionally see dropped and
                    // structurally corrupted ops.
                    FaultSite::RoccCommand => match rng.range_usize(0, 2) {
                        0 => FaultKind::BitFlip {
                            bit: rng.range_usize(0, 31) as u8,
                        },
                        1 => FaultKind::DroppedOp,
                        _ => FaultKind::CorruptedField,
                    },
                };
                Fault {
                    site,
                    kind,
                    iteration: rng.range_usize(1, max_iteration.max(1)),
                    word: rng.next_u64(),
                }
            })
            .collect();
        FaultPlan { seed, faults }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic() {
        let sites = [FaultSite::ScratchpadWord, FaultSite::RoccCommand];
        let a = FaultPlan::generate(42, 32, &sites, 20);
        let b = FaultPlan::generate(42, 32, &sites, 20);
        assert_eq!(a.faults, b.faults);
        let c = FaultPlan::generate(43, 32, &sites, 20);
        assert_ne!(a.faults, c.faults);
    }

    #[test]
    fn faults_respect_site_list_and_iteration_range() {
        let sites = [FaultSite::DmaWord];
        let plan = FaultPlan::generate(7, 64, &sites, 10);
        assert_eq!(plan.faults.len(), 64);
        for f in &plan.faults {
            assert_eq!(f.site, FaultSite::DmaWord);
            assert!(matches!(f.kind, FaultKind::BitFlip { bit } if bit < 32));
            assert!((1..=10).contains(&f.iteration));
        }
    }
}
