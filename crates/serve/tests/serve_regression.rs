//! Integration guards for the serving runtime: worker-count-invariant
//! reports and the zero-allocation steady-state contract.
//!
//! The lib crate is `#![forbid(unsafe_code)]`; the counting global
//! allocator needs `unsafe impl GlobalAlloc`, which is why the
//! allocation guard lives here (a separate test crate), mirroring
//! `crates/tinympc/tests/alloc_regression.rs`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use soc_serve::{plan_load, run_bench, BenchConfig, ServeRuntime};

/// Counts every allocation and reallocation routed through the global
/// allocator. Frees are not counted — the contract is "no hidden
/// allocation", and a free without a matching alloc is impossible.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The bench report body is a pure function of (sessions, ticks, seed):
/// every metric in it is computed from simulated cycles, which are
/// identical no matter how the tick batch is sharded across workers.
#[test]
fn bench_report_is_byte_identical_across_worker_counts() {
    let render = |workers: usize| {
        let cfg = BenchConfig {
            sessions: 96,
            ticks: 12,
            seed: 7,
            workers,
            smoke: false,
        };
        let out = run_bench(&cfg, &|| 0).expect("bench run");
        (out.report, out.json)
    };
    let (report1, json1) = render(1);
    for workers in [4, 16] {
        let (report, json) = render(workers);
        assert_eq!(report, report1, "report body diverged at workers={workers}");
        // The JSON's `deterministic` section must match too; the `host`
        // section may differ (wall times), so compare the deterministic
        // prefix, which ends right before the "host" key.
        let cut = |s: &str| {
            let at = s.find("\"host\"").expect("host section present");
            s[..at].to_string()
        };
        assert_eq!(
            cut(&json),
            cut(&json1),
            "deterministic JSON diverged at workers={workers}"
        );
    }
}

/// Same seed, same config, run twice: identical bytes (no hidden
/// iteration-order or time dependence in the report).
#[test]
fn bench_report_is_reproducible_for_a_fixed_seed() {
    let cfg = BenchConfig {
        sessions: 64,
        ticks: 8,
        seed: 21,
        workers: 3,
        smoke: false,
    };
    let a = run_bench(&cfg, &|| 0).expect("bench run");
    let b = run_bench(&cfg, &|| 0).expect("bench run");
    assert_eq!(a.report, b.report);
}

/// Steady-state serving performs zero heap allocations: after the
/// warm-up ticks every solve, plant update, reference restream, rung
/// demotion and histogram record works out of preallocated storage.
#[test]
fn steady_state_ticks_perform_zero_heap_allocations() {
    let plan = plan_load(48, 7);
    let mut rt = ServeRuntime::new(&plan, 16, 7, 2).expect("runtime");
    let run = rt.run(16, &alloc_count);
    assert!(run.warmup_ticks >= 1, "warm-up window missing");
    assert_eq!(
        run.steady_allocs, 0,
        "steady-state ticks allocated {} times",
        run.steady_allocs
    );
    assert_eq!(run.pool.items, 48 * 16, "every session-tick ran");
}

/// The full bench entry point reports the same zero-allocation result
/// through its probe plumbing (what `dse bench-serve --smoke` gates on).
#[test]
fn bench_probe_observes_zero_steady_state_allocations() {
    let cfg = BenchConfig {
        sessions: 48,
        ticks: 12,
        seed: 7,
        workers: 2,
        smoke: true,
    };
    let out = run_bench(&cfg, &alloc_count).expect("bench run");
    assert_eq!(
        out.host.steady_allocs, 0,
        "probe saw {} steady-state allocations",
        out.host.steady_allocs
    );
    assert!(
        out.gate_failures.is_empty(),
        "smoke gates failed: {:?}",
        out.gate_failures
    );
}
