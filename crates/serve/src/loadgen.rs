//! Seeded load generation: session mixes and the burst model.
//!
//! Everything here is a pure function of the seed: the cohort mix, the
//! per-session perturbations (drawn downstream in cohort order), and
//! the tick-by-tick burst factor. That makes the whole bench replayable
//! — same seed, same sessions, same overload pattern — which is what
//! lets the determinism test demand byte-identical reports across
//! worker counts.

use matlib::rng::SplitMix64;
use soc_backend::Platform;
use soc_cpu::CoreConfig;
use soc_gemmini::{GemminiConfig, GemminiOpts};
use soc_scenarios::{Scenario, ScenarioCatalog};
use soc_vector::SaturnConfig;

/// The serving platform set: one representative per back-end family —
/// the scalar in-order baseline, the mid-size Saturn vector unit, and
/// the optimized output-stationary Gemmini.
pub fn serving_platforms() -> Vec<Platform> {
    vec![
        Platform::rocket_eigen(),
        Platform::saturn(CoreConfig::rocket(), SaturnConfig::v512d256()),
        Platform::gemmini(
            CoreConfig::rocket(),
            GemminiConfig::os_4x4_32kb(),
            GemminiOpts::optimized(),
        ),
    ]
}

/// Control rate a scenario's sessions run at (Hz). Together with the
/// 1 GHz reporting clock this fixes each cohort's per-solve cycle
/// budget: fast attitude-rate loops get tight deadlines, slow orbital
/// maneuvers get loose ones.
pub fn control_hz(scenario: &Scenario) -> f64 {
    match scenario.dims() {
        (12, 4) => 500.0, // quadrotor attitude/position loops
        (6, 3) => 100.0,  // rendezvous / soft landing
        _ => 1000.0,      // double integrator and small test plants
    }
}

/// One cohort of the load plan: a workload, a platform index into
/// [`serving_platforms`], and how many sessions landed on it.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortSpec {
    /// The workload.
    pub scenario: Scenario,
    /// Index into [`serving_platforms`].
    pub platform: usize,
    /// Sessions assigned to this cohort.
    pub sessions: usize,
}

/// A seeded assignment of `sessions` tenants to (scenario, platform)
/// cohorts.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadPlan {
    /// Non-empty cohorts in catalog-major, platform-minor order (so
    /// the report's cohort table is stable).
    pub cohorts: Vec<CohortSpec>,
}

impl LoadPlan {
    /// Total sessions across all cohorts.
    pub fn sessions(&self) -> usize {
        self.cohorts.iter().map(|c| c.sessions).sum()
    }
}

/// Draws the session mix: each session independently picks a scenario
/// from the standard catalog and a platform from the serving set.
/// Cohorts that drew zero sessions are dropped.
pub fn plan_load(sessions: usize, seed: u64) -> LoadPlan {
    let catalog = ScenarioCatalog::standard().into_scenarios();
    let platforms = serving_platforms().len();
    let mut rng = SplitMix64::new(seed ^ 0x5E55_104D);
    let mut counts = vec![0usize; catalog.len() * platforms];
    for _ in 0..sessions {
        let s = rng.range_usize(0, catalog.len() - 1);
        let p = rng.range_usize(0, platforms - 1);
        counts[s * platforms + p] += 1;
    }
    let mut cohorts = Vec::new();
    for (s, scenario) in catalog.iter().enumerate() {
        for p in 0..platforms {
            let sessions = counts[s * platforms + p];
            if sessions > 0 {
                cohorts.push(CohortSpec {
                    scenario: scenario.clone(),
                    platform: p,
                    sessions,
                });
            }
        }
    }
    LoadPlan { cohorts }
}

/// A seeded square-pulse overload model. Most ticks run at factor 1.0
/// (rendered as `x100 = 100`); with 8% probability per idle tick a
/// burst starts, multiplying aggregate demand by 2–4× for 5–15 ticks.
/// Factors are integer percents so demand arithmetic stays exact.
#[derive(Debug)]
pub struct BurstModel {
    rng: SplitMix64,
    remaining: usize,
    factor_x100: u64,
}

impl BurstModel {
    /// A burst stream for `seed`.
    pub fn new(seed: u64) -> Self {
        BurstModel {
            rng: SplitMix64::new(seed ^ 0xB0B5_7B0B),
            remaining: 0,
            factor_x100: 100,
        }
    }

    /// Advances one tick and returns the demand factor ×100 (100 =
    /// nominal load).
    pub fn step(&mut self) -> u64 {
        if self.remaining > 0 {
            self.remaining -= 1;
            return self.factor_x100;
        }
        if self.rng.unit_f64() < 0.08 {
            self.factor_x100 = 100 * self.rng.range_usize(2, 4) as u64;
            self.remaining = self.rng.range_usize(5, 15);
            return self.factor_x100;
        }
        self.factor_x100 = 100;
        100
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_seed_deterministic_and_conserve_sessions() {
        let a = plan_load(1000, 7);
        let b = plan_load(1000, 7);
        assert_eq!(a, b);
        assert_eq!(a.sessions(), 1000);
        let c = plan_load(1000, 8);
        assert_ne!(a, c, "different seeds draw different mixes");
        // With 1000 sessions over 21 cohorts every cohort is hit.
        assert_eq!(a.cohorts.len(), 7 * serving_platforms().len());
    }

    #[test]
    fn bursts_pulse_and_return_to_nominal() {
        let mut burst = BurstModel::new(7);
        let factors: Vec<u64> = (0..400).map(|_| burst.step()).collect();
        assert!(factors.contains(&100), "idles exist");
        assert!(factors.iter().any(|&f| f > 100), "bursts exist");
        assert!(factors
            .iter()
            .all(|&f| f == 100 || (200..=400).contains(&f)));
        // Deterministic replay.
        let mut again = BurstModel::new(7);
        let replay: Vec<u64> = (0..400).map(|_| again.step()).collect();
        assert_eq!(factors, replay);
    }

    #[test]
    fn control_rates_cover_the_catalog() {
        for scenario in ScenarioCatalog::standard().scenarios() {
            assert!(control_hz(scenario) > 0.0);
        }
    }
}
