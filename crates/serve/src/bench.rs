//! `run_bench` — the engine behind `dse bench-serve`.
//!
//! Builds a seeded load plan, admits it into a [`ServeRuntime`], runs
//! the tick loop, and splits the results along the determinism
//! contract: the **report body** (stdout, `results/serve_perf.txt`)
//! contains only worker-count-invariant numbers; **host statistics**
//! (wall-clock percentiles, sessions/sec, allocation counts, pool
//! retries) go to stderr and the `BENCH_serve.json` artifact.

use std::sync::atomic::Ordering;

use crate::loadgen::plan_load;
use crate::report::render_occupancy;
use crate::runtime::ServeRuntime;

/// Configuration of one bench run.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Concurrent sessions to admit.
    pub sessions: usize,
    /// Ticks to run.
    pub ticks: usize,
    /// Seed for the load plan, admissions and burst model.
    pub seed: u64,
    /// Executor workers.
    pub workers: usize,
    /// CI mode: gate on zero aborted sessions, zero steady-state
    /// allocations, and p99 solve latency within the worst cohort
    /// budget.
    pub smoke: bool,
}

impl BenchConfig {
    /// Defaults: 256 sessions, 100 ticks, seed 7.
    pub fn new(workers: usize) -> Self {
        BenchConfig {
            sessions: 256,
            ticks: 100,
            seed: 7,
            workers,
            smoke: false,
        }
    }
}

/// Host-side, scheduling-dependent statistics.
#[derive(Debug, Clone)]
pub struct HostStats {
    /// Median per-tick wall time, ns.
    pub tick_p50_ns: u64,
    /// p99 per-tick wall time, ns.
    pub tick_p99_ns: u64,
    /// Session-ticks per wall-clock second.
    pub session_ticks_per_sec: f64,
    /// Heap allocations observed in the steady-state window.
    pub steady_allocs: u64,
    /// Pool retries (re-run panicked items) across the run.
    pub retries: usize,
    /// Pool watchdog trips across the run.
    pub watchdog_trips: usize,
    /// Executor workers used.
    pub workers: usize,
}

/// Everything one bench run produced.
#[derive(Debug, Clone)]
pub struct BenchOutput {
    /// The deterministic report body (worker-count-invariant).
    pub report: String,
    /// The `BENCH_serve.json` artifact (includes host stats).
    pub json: String,
    /// Host statistics for stderr diagnostics.
    pub host: HostStats,
    /// Smoke-gate violations (empty when all gates pass or `smoke` is
    /// off).
    pub gate_failures: Vec<String>,
}

fn percentile_sorted(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Runs the bench. `alloc_probe` reads the process allocation counter
/// (pass `&|| 0` without a counting allocator; steady-state allocation
/// reporting then degrades to 0, and the smoke allocation gate is
/// vacuous).
///
/// # Errors
///
/// Propagates admission failures (solver construction, kernel pricing).
pub fn run_bench(cfg: &BenchConfig, alloc_probe: &dyn Fn() -> u64) -> tinympc::Result<BenchOutput> {
    let plan = plan_load(cfg.sessions, cfg.seed);
    let mut rt = ServeRuntime::new(&plan, cfg.ticks, cfg.seed, cfg.workers)?;
    let run = rt.run(cfg.ticks, alloc_probe);

    // ---- deterministic report body ----
    let m = rt.metrics();
    let session_ticks = m.session_ticks.load(Ordering::Relaxed);
    let misses = m.misses.load(Ordering::Relaxed);
    let fallbacks = m.fallbacks.load(Ordering::Relaxed);
    let aborted = m.aborted.load(Ordering::Relaxed);
    let rungs = m.rung_snapshot();
    let p50 = m.cycles.percentile(50.0);
    let p99 = m.cycles.percentile(99.0);
    let p999 = m.cycles.percentile(99.9);
    let miss_rate = if session_ticks == 0 {
        0.0
    } else {
        misses as f64 / session_ticks as f64
    };

    let mut report = String::new();
    report.push_str("# soc-serve — batched multi-tenant solver service\n");
    report.push_str(&format!(
        "config: sessions={} ticks={} seed={}\n",
        cfg.sessions, cfg.ticks, cfg.seed
    ));
    report.push_str(&format!(
        "capacity: {} cycles/tick ({}% of aggregate baseline demand)\n\n",
        rt.capacity(),
        125
    ));
    report.push_str(
        "| cohort | scenario | platform | sessions | budget (cyc) | baseline | occupancy n/w/e/l |\n",
    );
    report.push_str("|---|---|---|---|---|---|---|\n");
    for (i, c) in rt.cohorts().iter().enumerate() {
        report.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} |\n",
            i,
            c.model.scenario().name(),
            c.model.platform_name(),
            c.sessions(),
            c.model.budget(),
            c.model.baseline(),
            render_occupancy(&c.occupancy()),
        ));
    }
    report.push_str(&format!(
        "\nsolve latency (simulated cycles): p50={p50} p99={p99} p99.9={p999}\n"
    ));
    report.push_str(&format!(
        "deadline misses: {misses} / {session_ticks} session-ticks ({:.4}%)\n",
        miss_rate * 100.0
    ));
    report.push_str(&format!(
        "rung occupancy (session-ticks): nominal={} widened-check={} early-exit={} lqr-fallback={}\n",
        rungs[0], rungs[1], rungs[2], rungs[3]
    ));
    report.push_str(&format!("fault fallbacks: {fallbacks}\n"));
    report.push_str(&format!("aborted session-ticks: {aborted}\n"));

    // ---- host statistics ----
    let mut wall = run.wall_ns.clone();
    wall.sort_unstable();
    let total_ns: u128 = run.wall_ns.iter().map(|&n| u128::from(n)).sum();
    let host = HostStats {
        tick_p50_ns: percentile_sorted(&wall, 50.0),
        tick_p99_ns: percentile_sorted(&wall, 99.0),
        session_ticks_per_sec: if total_ns == 0 {
            0.0
        } else {
            session_ticks as f64 * 1.0e9 / total_ns as f64
        },
        steady_allocs: run.steady_allocs,
        retries: run.pool.retries,
        watchdog_trips: run.pool.watchdog_trips,
        workers: rt.workers(),
    };

    // ---- JSON artifact ----
    let cohort_json: Vec<String> = rt
        .cohorts()
        .iter()
        .map(|c| {
            let occ = c.occupancy();
            format!(
                "{{\"scenario\": \"{}\", \"platform\": \"{}\", \"sessions\": {}, \"budget\": {}, \"baseline\": \"{}\", \"occupancy\": [{}, {}, {}, {}]}}",
                c.model.scenario().name(),
                c.model.platform_name(),
                c.sessions(),
                c.model.budget(),
                c.model.baseline(),
                occ[0], occ[1], occ[2], occ[3]
            )
        })
        .collect();
    let json = format!(
        "{{\"bench\": \"serve\", \"schema\": \"soc-serve-bench/v1\",\n \
         \"config\": {{\"sessions\": {}, \"ticks\": {}, \"seed\": {}, \"smoke\": {}}},\n \
         \"deterministic\": {{\"p50_cycles\": {}, \"p99_cycles\": {}, \"p999_cycles\": {}, \
         \"session_ticks\": {}, \"misses\": {}, \"miss_rate\": {:.6}, \
         \"rung_ticks\": {{\"nominal\": {}, \"widened_check\": {}, \"early_exit\": {}, \"lqr_fallback\": {}}}, \
         \"fallbacks\": {}, \"aborted\": {}, \"capacity_cycles\": {}}},\n \
         \"cohorts\": [\n  {}\n ],\n \
         \"host\": {{\"workers\": {}, \"tick_p50_ns\": {}, \"tick_p99_ns\": {}, \
         \"session_ticks_per_sec\": {:.1}, \"steady_state_allocs\": {}, \
         \"retries\": {}, \"watchdog_trips\": {}}}}}\n",
        cfg.sessions,
        cfg.ticks,
        cfg.seed,
        cfg.smoke,
        p50,
        p99,
        p999,
        session_ticks,
        misses,
        miss_rate,
        rungs[0],
        rungs[1],
        rungs[2],
        rungs[3],
        fallbacks,
        aborted,
        rt.capacity(),
        cohort_json.join(",\n  "),
        host.workers,
        host.tick_p50_ns,
        host.tick_p99_ns,
        host.session_ticks_per_sec,
        host.steady_allocs,
        host.retries,
        host.watchdog_trips,
    );

    // ---- smoke gates ----
    let mut gate_failures = Vec::new();
    if cfg.smoke {
        if aborted != 0 {
            gate_failures.push(format!("{aborted} session-ticks aborted (expected 0)"));
        }
        if host.steady_allocs != 0 {
            gate_failures.push(format!(
                "{} heap allocations in the steady-state window (expected 0)",
                host.steady_allocs
            ));
        }
        let worst_budget = rt
            .cohorts()
            .iter()
            .map(|c| c.model.budget())
            .max()
            .unwrap_or(0);
        if p99 > worst_budget {
            gate_failures.push(format!(
                "p99 solve latency {p99} cycles exceeds the worst cohort budget {worst_budget}"
            ));
        }
    }

    Ok(BenchOutput {
        report,
        json,
        host,
        gate_failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let cfg = BenchConfig {
            sessions: 24,
            ticks: 6,
            seed: 7,
            workers: 2,
            smoke: true,
        };
        let out = run_bench(&cfg, &|| 0).unwrap();
        assert!(out.report.contains("sessions=24 ticks=6 seed=7"));
        assert!(out.report.contains("rung occupancy"));
        assert!(out.json.contains("\"schema\": \"soc-serve-bench/v1\""));
        assert!(
            out.gate_failures.iter().all(|g| !g.contains("aborted")),
            "no aborts expected: {:?}",
            out.gate_failures
        );
    }

    #[test]
    fn report_body_is_worker_count_invariant() {
        let run = |workers| {
            let cfg = BenchConfig {
                sessions: 20,
                ticks: 8,
                seed: 11,
                workers,
                smoke: false,
            };
            run_bench(&cfg, &|| 0).unwrap().report
        };
        let one = run(1);
        assert_eq!(one, run(3));
        assert_eq!(one, run(7));
    }
}
