//! # soc-serve — the batched multi-tenant solver service
//!
//! The rest of the workspace answers *design-time* questions: how many
//! cycles does one solve cost on one platform? This crate answers the
//! *deployment-time* question the paper's SoC sizing implies: how many
//! concurrent control loops can one part sustain, and what happens when
//! demand bursts past capacity? It turns the execution core into a
//! long-lived session runtime:
//!
//! * [`costs`] — [`CachedCosts`], a `Copy` per-kernel cycle table
//!   snapshotted once per (platform, dims) from the process-wide
//!   [`soc_backend::priced_for`] interner. Sessions carry it by value,
//!   so the tick hot path prices kernels without touching the
//!   interner's locks (and without allocating).
//! * [`session`] — [`CohortModel`] (one per scenario × platform:
//!   Riccati cache computed once, flat reference trajectory, rung cost
//!   vector) and [`Session`] (a warm [`DeadlineSolver`] clone plus
//!   plant state and scratch — everything one tenant's tick touches).
//! * [`runtime`] — [`ServeRuntime`]: recurring tick batches on the
//!   persistent [`soc_sweep::TickExecutor`], with
//!   [`DegradeRung`]-ladder *cohort shedding* as the admission policy —
//!   under burst, whole cohorts walk Nominal → WidenedCheck →
//!   EarlyExit → LqrFallback until aggregate demand fits tick capacity.
//! * [`loadgen`] — seeded session mixes over the scenario catalog and a
//!   serving platform set, plus the square-pulse [`BurstModel`].
//! * [`report`] — commutative atomic [`CycleHistogram`]s and the
//!   deterministic report body.
//! * [`bench`] — [`run_bench`]: the `dse bench-serve` engine.
//!
//! ## Determinism contract
//!
//! For a fixed config, the rendered report body is byte-identical for
//! any `--workers`: every number in it derives from simulated cycles,
//! seeded PRNG streams, and commutative atomic accumulation. Host
//! wall-clock metrics (ns percentiles, sessions/sec, allocation
//! counts) are scheduling-dependent and go to stderr and the JSON
//! artifact only.
//!
//! ## Allocation contract
//!
//! After a two-tick warm-up, the steady-state tick loop performs zero
//! heap allocations: references stream into the arena workspace via
//! `knot_mut`, solves run through
//! [`DeadlineSolver::solve_in_place_at_rung`], plant updates use
//! `gemv_into`/`add_into` scratch, and metrics land in atomics.
//! `crates/serve/tests/serve_alloc.rs` enforces this with a counting
//! global allocator.
//!
//! [`DeadlineSolver`]: soc_faults::DeadlineSolver
//! [`DegradeRung`]: soc_faults::DegradeRung
//! [`CachedCosts`]: costs::CachedCosts
//! [`CohortModel`]: session::CohortModel
//! [`Session`]: session::Session
//! [`ServeRuntime`]: runtime::ServeRuntime
//! [`BurstModel`]: loadgen::BurstModel
//! [`CycleHistogram`]: report::CycleHistogram
//! [`run_bench`]: bench::run_bench

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod costs;
pub mod loadgen;
pub mod report;
pub mod runtime;
pub mod session;

pub use bench::{run_bench, BenchConfig, BenchOutput, HostStats};
pub use costs::CachedCosts;
pub use loadgen::{plan_load, BurstModel, LoadPlan};
pub use report::CycleHistogram;
pub use runtime::{RunStats, ServeRuntime};
pub use session::{CohortModel, Session};
