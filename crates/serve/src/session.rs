//! Cohorts and sessions — the tenancy model of the serve runtime.
//!
//! A **cohort** is every session flying the same workload on the same
//! platform: one `(scenario, platform, dims)` triple. Everything
//! expensive is computed once per cohort at admission — the DARE
//! (Riccati) cache inside the prototype [`DeadlineSolver`], the
//! [`CachedCosts`] pricing snapshot, the [`RungCosts`] ladder costs,
//! and the flat reference trajectory. A **session** is one tenant: a
//! warm clone of the prototype solver (cheap memcpy of the shared
//! cache), its own plant state, and preallocated scratch. Cloning the
//! prototype is what lets ten thousand quadrotor sessions share one
//! Riccati solve and one pricing pass while keeping their warm-start
//! state private.

use crate::costs::CachedCosts;
use matlib::rng::SplitMix64;
use soc_backend::Platform;
use soc_faults::{DeadlineConfig, DeadlineSolver, DegradeRung, RungCosts, RungStatus};
use soc_scenarios::Scenario;
use tinympc::{AdmmSolver, ProblemDims, SolverSettings, WsField};

/// Phase-offset slots sessions are staggered across, so cohort members
/// track shifted copies of the reference instead of moving in lockstep.
pub const PHASE_SLOTS: usize = 32;

/// Everything shared by one cohort of sessions, computed once at
/// admission.
#[derive(Debug)]
pub struct CohortModel {
    scenario: Scenario,
    platform_name: String,
    horizon: usize,
    dims: ProblemDims,
    costs: CachedCosts,
    rung_costs: RungCosts,
    budget: u64,
    baseline: DegradeRung,
    prototype: DeadlineSolver<f32>,
    /// Reference states `r(0..knots)`, row-major `nx` per knot. Covers
    /// every (tick + phase + horizon) window a session can request.
    flat_ref: Vec<f32>,
    knots: usize,
}

impl CohortModel {
    /// Builds a cohort model: plant + DARE cache once, kernel pricing
    /// once (through the process-wide interner), ladder costs once, and
    /// the reference trajectory flattened out to `ticks` plant steps.
    ///
    /// # Errors
    ///
    /// Propagates solver construction and back-end pricing failures.
    pub fn build(
        scenario: &Scenario,
        platform: &Platform,
        horizon: usize,
        ticks: usize,
        control_hz: f64,
    ) -> tinympc::Result<Self> {
        let problem = scenario.problem::<f32>(horizon)?;
        let dims = problem.dims();
        let solver = AdmmSolver::new(problem, SolverSettings::default())?;
        let config = DeadlineConfig::from_rates(control_hz, CLOCK_HZ);
        let mut prototype = DeadlineSolver::new(solver, config);
        let mut costs = CachedCosts::price(platform, dims)?;
        let rung_costs = prototype.rung_costs(&mut costs)?;
        let baseline = rung_costs.mildest_within(config.cycle_budget);

        let knots = ticks + horizon + PHASE_SLOTS;
        let mut flat_ref = Vec::with_capacity(knots * dims.nx);
        for t in 0..knots {
            let window = scenario.reference::<f32>(1, t);
            flat_ref.extend_from_slice(window[0].as_slice());
        }

        Ok(CohortModel {
            scenario: scenario.clone(),
            platform_name: platform.name.clone(),
            horizon,
            dims,
            costs,
            rung_costs,
            budget: config.cycle_budget,
            baseline,
            prototype,
            flat_ref,
            knots,
        })
    }

    /// The cohort's workload.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The cohort's platform name (Table-I identifier).
    pub fn platform_name(&self) -> &str {
        &self.platform_name
    }

    /// Per-rung predicted solve costs.
    pub fn rung_costs(&self) -> RungCosts {
        self.rung_costs
    }

    /// Per-solve cycle budget (deadline) of this cohort.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// The mildest rung whose predicted cost fits the per-solve budget
    /// — where the cohort sits when the service is unloaded.
    pub fn baseline(&self) -> DegradeRung {
        self.baseline
    }

    /// Problem dimensions.
    pub fn dims(&self) -> ProblemDims {
        self.dims
    }

    /// Admits one session: a warm clone of the prototype solver, a
    /// seeded perturbation of the scenario's initial state, and a
    /// seeded phase offset into the reference trajectory.
    pub fn new_session(&self, rng: &mut SplitMix64) -> Session {
        let nx = self.dims.nx;
        let nu = self.dims.nu;
        let mut x = self.scenario.initial_state::<f32>().as_slice().to_vec();
        for v in &mut x {
            // Scale plus a small additive nudge, so all-zero states
            // still spread out across the cohort.
            let scale = 0.9 + 0.2 * rng.unit_f64();
            let nudge = 0.02 * (rng.unit_f64() - 0.5);
            *v = *v * scale as f32 + nudge as f32;
        }
        Session {
            solver: self.prototype.clone(),
            costs: self.costs,
            phase: rng.range_usize(0, PHASE_SLOTS - 1),
            x,
            ax: vec![0.0; nx],
            bu: vec![0.0; nx],
            lqr_u: vec![0.0; nu],
            ticks: 0,
            misses: 0,
            fallbacks: 0,
        }
    }
}

/// Simulated core clock the serve deadline budgets are derived from
/// (the repo's reporting convention: "MPC Hz @ 1 GHz").
pub const CLOCK_HZ: f64 = 1.0e9;

/// One tenant: a warm solver clone plus everything its tick touches.
/// All buffers are sized at admission; [`Session::tick`] performs zero
/// heap allocations.
#[derive(Debug)]
pub struct Session {
    solver: DeadlineSolver<f32>,
    costs: CachedCosts,
    phase: usize,
    /// Current plant state.
    x: Vec<f32>,
    /// Plant-update scratch: `A·x` and `B·u`.
    ax: Vec<f32>,
    bu: Vec<f32>,
    /// LQR-fallback control scratch.
    lqr_u: Vec<f32>,
    ticks: u64,
    misses: u64,
    fallbacks: u64,
}

impl Session {
    /// Runs one control tick at the cohort-assigned `rung`: stream the
    /// reference window into the arena, solve in place, apply `u0` to
    /// the plant. Returns the achieved [`RungStatus`] (the assigned
    /// rung, downgraded on a mid-solve deadline trip, or the LQR rung
    /// after a fault fallback).
    pub fn tick(&mut self, model: &CohortModel, step: usize, rung: DegradeRung) -> RungStatus {
        let nx = model.dims.nx;
        let horizon = model.horizon;
        // Stream the reference window straight into the arena: the
        // allocation-free equivalent of `set_reference`.
        let start = (step + self.phase).min(model.knots - horizon);
        let ws = self.solver.solver_mut().workspace_mut();
        for i in 0..horizon {
            let knot = &model.flat_ref[(start + i) * nx..(start + i + 1) * nx];
            ws.knot_mut(WsField::XRef, i).copy_from_slice(knot);
        }

        let status = self
            .solver
            .solve_in_place_at_rung(&self.x, &mut self.costs, rung);

        // Plant update x⁺ = A·x + B·u₀ with the applied control: the
        // arena-staged u0, or the cached gain on the LQR rung.
        let u: &[f32] = if status.rung == DegradeRung::LqrFallback {
            self.solver.lqr_u0_into(&self.x, &mut self.lqr_u);
            &self.lqr_u
        } else {
            self.solver.solver().u0()
        };
        let p = self.solver.solver().problem();
        // Scratch is sized to the plant; these cannot fail.
        let _ = matlib::gemv_into(&p.a, &self.x, &mut self.ax);
        let _ = matlib::gemv_into(&p.b, u, &mut self.bu);
        let _ = matlib::add_into(&self.ax, &self.bu, &mut self.x);

        self.ticks += 1;
        if status.total_cycles > model.budget {
            self.misses += 1;
        }
        if status.fell_back {
            self.fallbacks += 1;
        }
        status
    }

    /// Session-ticks run so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Ticks whose applied solve overran the cohort's cycle budget.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Ticks that hit the fault-fallback path.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }

    /// Current plant state (testing hook).
    pub fn state(&self) -> &[f32] {
        &self.x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CohortModel {
        CohortModel::build(&Scenario::hover(), &Platform::rocket_eigen(), 10, 16, 100.0).unwrap()
    }

    #[test]
    fn cohort_model_prices_a_consistent_ladder() {
        let m = model();
        let c = m.rung_costs();
        assert!(c.nominal >= c.widened && c.widened >= c.early_exit);
        assert_eq!(m.baseline(), c.mildest_within(m.budget()));
        assert_eq!(m.flat_ref.len(), m.knots * m.dims().nx);
    }

    #[test]
    fn sessions_are_seed_deterministic() {
        let m = model();
        let mut a_rng = SplitMix64::new(9);
        let mut b_rng = SplitMix64::new(9);
        let a = m.new_session(&mut a_rng);
        let b = m.new_session(&mut b_rng);
        assert_eq!(a.state(), b.state());
        assert_eq!(a.phase, b.phase);
    }

    #[test]
    fn ticks_converge_and_regulate_the_plant() {
        let m = CohortModel::build(&Scenario::hover(), &Platform::rocket_eigen(), 10, 40, 100.0)
            .unwrap();
        let mut rng = SplitMix64::new(3);
        let mut s = m.new_session(&mut rng);
        // Hover's reference is zero: track the commanded position
        // coordinate (full-state norm transiently grows as the
        // controller induces velocity to fly the offset out).
        let start = s.state()[0].abs();
        for step in 0..40 {
            let status = s.tick(&m, step, m.baseline());
            assert!(!status.fell_back, "fault path must not trigger");
        }
        assert!(s.state().iter().all(|v| v.is_finite()));
        let end = s.state()[0].abs();
        assert!(
            end < start,
            "hover regulation must contract the offset: {start} -> {end}"
        );
        assert_eq!(s.ticks(), 40);
    }

    #[test]
    fn lqr_rung_applies_the_cached_gain() {
        let m = model();
        let mut rng = SplitMix64::new(4);
        let mut s = m.new_session(&mut rng);
        let status = s.tick(&m, 0, DegradeRung::LqrFallback);
        assert_eq!(status.rung, DegradeRung::LqrFallback);
        assert_eq!(status.total_cycles, 0);
        assert!(s.state().iter().all(|v| v.is_finite()));
    }
}
