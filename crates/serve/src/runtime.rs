//! The session runtime: recurring tick batches with cohort shedding.
//!
//! Each tick is one batch on the persistent work-stealing
//! [`TickExecutor`]: every admitted session claims an item, streams its
//! reference window, solves at its cohort's assigned rung, and steps
//! its plant. Before the batch launches, the driver runs the admission
//! policy — the [`DegradeRung`] ladder generalized from per-solve
//! budget selection to whole-service overload control. Aggregate
//! demand (sessions × predicted rung cost × burst factor) is compared
//! against tick capacity; while it overflows, the costliest cohort is
//! demoted one rung, saturating at the LQR fallback whose predicted
//! cost is zero. The walk is serial, integer-exact and seeded, so rung
//! assignments — and therefore the whole report — are identical for
//! any worker count.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use matlib::rng::SplitMix64;
use soc_faults::DegradeRung;
use soc_sweep::{BatchJob, RetryPolicy, ShardFailure, ShardStats, TickExecutor};

use crate::loadgen::{control_hz, serving_platforms, BurstModel, LoadPlan};
use crate::report::Metrics;
use crate::session::{CohortModel, Session};

/// Headroom over aggregate baseline demand: capacity is 125% of what
/// the admitted sessions cost per tick at their baseline rungs, so
/// nominal load fits and bursts (2–4×) force the shedding walk.
const CAPACITY_HEADROOM_X100: u64 = 125;

/// One cohort at runtime: the shared model, the tenant sessions, the
/// driver-assigned rung for the current tick, and achieved-rung
/// occupancy counters.
#[derive(Debug)]
pub struct CohortRuntime {
    /// Shared per-cohort state (solver prototype, pricing, references).
    pub model: CohortModel,
    sessions: Vec<Mutex<Session>>,
    rung: AtomicU8,
    rung_ticks: [std::sync::atomic::AtomicU64; 4],
}

impl CohortRuntime {
    /// Sessions admitted to this cohort.
    pub fn sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Achieved-rung occupancy (session-ticks per rung, mildest first).
    pub fn occupancy(&self) -> [u64; 4] {
        [0, 1, 2, 3].map(|i| self.rung_ticks[i].load(Ordering::Relaxed))
    }
}

/// The state a tick batch shares with the executor workers.
#[derive(Debug)]
struct ServeShared {
    cohorts: Vec<CohortRuntime>,
    /// Cumulative session counts: cohort of item `i` is the first
    /// entry whose prefix exceeds `i`.
    prefix: Vec<usize>,
    tick: AtomicUsize,
    metrics: Metrics,
}

impl ServeShared {
    fn locate(&self, item: usize) -> (usize, usize) {
        let cohort = self.prefix.partition_point(|&end| end <= item);
        let base = if cohort == 0 {
            0
        } else {
            self.prefix[cohort - 1]
        };
        (cohort, item - base)
    }
}

impl BatchJob for ServeShared {
    fn items(&self) -> usize {
        self.prefix.last().copied().unwrap_or(0)
    }

    fn run(&self, item: usize, _attempt: u32) {
        let (c, s) = self.locate(item);
        let cohort = &self.cohorts[c];
        let rung = DegradeRung::from_index(cohort.rung.load(Ordering::Relaxed) as usize);
        let step = self.tick.load(Ordering::Relaxed);
        // Poison recovery: a panicked previous attempt left plain old
        // data; the retry re-runs the tick on it.
        let mut session = cohort.sessions[s]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let status = session.tick(&cohort.model, step, rung);
        let missed = status.total_cycles > cohort.model.budget();
        cohort.rung_ticks[status.rung.index()].fetch_add(1, Ordering::Relaxed);
        self.metrics
            .record(status.rung, status.total_cycles, missed, status.fell_back);
    }

    fn fail(&self, _failure: ShardFailure) {
        self.metrics.aborted.fetch_add(1, Ordering::Relaxed);
    }
}

/// Host-side (scheduling-dependent) statistics of one run. Everything
/// here goes to stderr and the JSON artifact, never the report body.
#[derive(Debug)]
pub struct RunStats {
    /// Merged shard-pool stats across all ticks (retries, watchdog
    /// trips, wall time).
    pub pool: ShardStats,
    /// Per-tick wall time, nanoseconds.
    pub wall_ns: Vec<u64>,
    /// Heap allocations observed between the end of warm-up and the
    /// last tick (0 when no probe is installed).
    pub steady_allocs: u64,
    /// Ticks excluded from the allocation window while caches warmed.
    pub warmup_ticks: usize,
}

/// The long-lived serve engine: admitted cohorts, the persistent
/// executor, and the shedding policy.
pub struct ServeRuntime {
    shared: Arc<ServeShared>,
    job: Arc<dyn BatchJob>,
    executor: TickExecutor,
    policy: RetryPolicy,
    burst: BurstModel,
    capacity: u64,
    /// Shedding scratch, sized at admission (the tick loop allocates
    /// nothing).
    demands: Vec<u64>,
    rungs: Vec<usize>,
    ticks_run: usize,
}

impl std::fmt::Debug for ServeRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeRuntime")
            .field("cohorts", &self.shared.cohorts.len())
            .field("sessions", &self.shared.items())
            .field("capacity", &self.capacity)
            .field("ticks_run", &self.ticks_run)
            .finish()
    }
}

impl ServeRuntime {
    /// Admits every session of `plan`: builds one [`CohortModel`] per
    /// cohort (pricing through the shared interner), clones one warm
    /// session per tenant, and sizes tick capacity at
    /// 125% of aggregate baseline demand.
    ///
    /// # Errors
    ///
    /// Propagates solver construction and back-end pricing failures.
    pub fn new(plan: &LoadPlan, ticks: usize, seed: u64, workers: usize) -> tinympc::Result<Self> {
        let platforms = serving_platforms();
        let mut admission = SplitMix64::new(seed ^ 0xAD41_5510);
        let mut cohorts = Vec::with_capacity(plan.cohorts.len());
        let mut prefix = Vec::with_capacity(plan.cohorts.len());
        let mut total = 0usize;
        let mut baseline_demand = 0u64;
        for spec in &plan.cohorts {
            let model = CohortModel::build(
                &spec.scenario,
                &platforms[spec.platform],
                spec.scenario.default_horizon(),
                ticks,
                control_hz(&spec.scenario),
            )?;
            let sessions: Vec<Mutex<Session>> = (0..spec.sessions)
                .map(|_| Mutex::new(model.new_session(&mut admission)))
                .collect();
            baseline_demand = baseline_demand
                .saturating_add(spec.sessions as u64 * model.rung_costs().at(model.baseline()));
            total += sessions.len();
            prefix.push(total);
            cohorts.push(CohortRuntime {
                model,
                sessions,
                rung: AtomicU8::new(0),
                rung_ticks: [0u64; 4].map(std::sync::atomic::AtomicU64::new),
            });
        }
        let n = cohorts.len();
        let shared = Arc::new(ServeShared {
            cohorts,
            prefix,
            tick: AtomicUsize::new(0),
            metrics: Metrics::new(),
        });
        let job: Arc<dyn BatchJob> = shared.clone();
        Ok(ServeRuntime {
            shared,
            job,
            executor: TickExecutor::new(workers),
            policy: RetryPolicy::default(),
            burst: BurstModel::new(seed),
            capacity: baseline_demand.saturating_mul(CAPACITY_HEADROOM_X100) / 100,
            demands: vec![0; n],
            rungs: vec![0; n],
            ticks_run: 0,
        })
    }

    /// Admitted cohorts.
    pub fn cohorts(&self) -> &[CohortRuntime] {
        &self.shared.cohorts
    }

    /// Worker-count-invariant metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Total admitted sessions.
    pub fn sessions(&self) -> usize {
        self.shared.items()
    }

    /// Tick capacity in simulated cycles.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Ticks run so far.
    pub fn ticks_run(&self) -> usize {
        self.ticks_run
    }

    /// Executor worker count.
    pub fn workers(&self) -> usize {
        self.executor.workers()
    }

    /// The admission policy: start every cohort at its baseline rung,
    /// then — while burst-scaled aggregate demand overflows capacity —
    /// demote the cohort currently contributing the most demand
    /// (lowest index wins ties) one rung. The LQR rung prices at zero,
    /// so the walk always terminates.
    fn shed(&mut self, factor_x100: u64) {
        for (i, cohort) in self.shared.cohorts.iter().enumerate() {
            self.rungs[i] = cohort.model.baseline().index();
        }
        loop {
            let mut total = 0u64;
            for (i, cohort) in self.shared.cohorts.iter().enumerate() {
                let cost = cohort
                    .model
                    .rung_costs()
                    .at(DegradeRung::from_index(self.rungs[i]));
                self.demands[i] = (cohort.sessions() as u64)
                    .saturating_mul(cost)
                    .saturating_mul(factor_x100)
                    / 100;
                total = total.saturating_add(self.demands[i]);
            }
            if total <= self.capacity {
                break;
            }
            let mut victim = None;
            for i in 0..self.demands.len() {
                if self.rungs[i] >= DegradeRung::LqrFallback.index() {
                    continue;
                }
                match victim {
                    Some(v) if self.demands[v] >= self.demands[i] => {}
                    _ => victim = Some(i),
                }
            }
            match victim {
                Some(v) => self.rungs[v] += 1,
                None => break, // everything already at the LQR rung
            }
        }
        for (i, cohort) in self.shared.cohorts.iter().enumerate() {
            cohort.rung.store(self.rungs[i] as u8, Ordering::Relaxed);
        }
    }

    /// Runs one tick: advance the burst model, walk the shedding
    /// ladder, and drain the session batch on the persistent executor.
    /// Returns the pool stats of the batch.
    pub fn run_tick(&mut self) -> ShardStats {
        let factor = self.burst.step();
        self.shed(factor);
        self.shared.tick.store(self.ticks_run, Ordering::Relaxed);
        self.ticks_run += 1;
        self.executor.submit(&self.job, self.policy)
    }

    /// Runs `ticks` ticks. `alloc_probe` reads the process allocation
    /// counter (pass `&|| 0` when no counting allocator is installed);
    /// the first two ticks warm caches and are excluded from the
    /// steady-state allocation window.
    pub fn run(&mut self, ticks: usize, alloc_probe: &dyn Fn() -> u64) -> RunStats {
        let warmup = ticks.min(2);
        let mut pool = ShardStats::zero(0);
        let mut wall_ns = Vec::with_capacity(ticks);
        let mut steady_start = alloc_probe();
        for t in 0..ticks {
            if t == warmup {
                steady_start = alloc_probe();
            }
            let started = Instant::now();
            let stats = self.run_tick();
            wall_ns.push(started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
            pool.merge(&stats);
        }
        let steady_allocs = if ticks > warmup {
            alloc_probe().saturating_sub(steady_start)
        } else {
            0
        };
        RunStats {
            pool,
            wall_ns,
            steady_allocs,
            warmup_ticks: warmup,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::plan_load;

    fn runtime(sessions: usize, ticks: usize, workers: usize) -> ServeRuntime {
        ServeRuntime::new(&plan_load(sessions, 7), ticks, 7, workers).unwrap()
    }

    #[test]
    fn admission_builds_every_cohort_and_session() {
        let rt = runtime(60, 8, 2);
        assert_eq!(rt.sessions(), 60);
        assert!(rt.capacity() > 0);
        let per_cohort: usize = rt.cohorts().iter().map(|c| c.sessions()).sum();
        assert_eq!(per_cohort, 60);
    }

    #[test]
    fn ticks_drain_every_session_every_tick() {
        let mut rt = runtime(30, 6, 3);
        let stats = rt.run(6, &|| 0);
        assert_eq!(rt.metrics().session_ticks.load(Ordering::Relaxed), 30 * 6);
        assert_eq!(rt.metrics().aborted.load(Ordering::Relaxed), 0);
        assert_eq!(stats.pool.items, 30 * 6);
        assert_eq!(stats.wall_ns.len(), 6);
        let occupancy: u64 = rt.metrics().rung_snapshot().iter().sum();
        assert_eq!(occupancy, 30 * 6);
    }

    #[test]
    fn shedding_walks_cohorts_down_under_burst() {
        let mut rt = runtime(40, 4, 2);
        // Nominal load fits: every cohort stays at baseline.
        rt.shed(100);
        for (i, c) in rt.cohorts().iter().enumerate() {
            assert_eq!(rt.rungs[i], c.model.baseline().index(), "cohort {i}");
        }
        // A 4x burst must demote at least one cohort below baseline.
        rt.shed(400);
        let demoted = rt
            .cohorts()
            .iter()
            .enumerate()
            .filter(|(i, c)| rt.rungs[*i] > c.model.baseline().index())
            .count();
        assert!(demoted > 0, "4x burst must shed load");
        // And the post-shed demand fits capacity.
        let total: u64 = rt
            .cohorts()
            .iter()
            .enumerate()
            .map(|(i, c)| {
                c.sessions() as u64
                    * c.model
                        .rung_costs()
                        .at(DegradeRung::from_index(rt.rungs[i]))
                    * 4
            })
            .sum();
        assert!(total <= rt.capacity());
    }

    #[test]
    fn metrics_are_identical_across_worker_counts() {
        let collect = |workers: usize| {
            let mut rt = runtime(25, 10, workers);
            rt.run(10, &|| 0);
            let m = rt.metrics();
            (
                m.cycles.percentile(50.0),
                m.cycles.percentile(99.0),
                m.rung_snapshot(),
                m.misses.load(Ordering::Relaxed),
                m.session_ticks.load(Ordering::Relaxed),
            )
        };
        let one = collect(1);
        assert_eq!(one, collect(4));
        assert_eq!(one, collect(8));
    }
}
