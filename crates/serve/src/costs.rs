//! [`CachedCosts`] — a lock-free, `Copy` kernel-pricing snapshot.
//!
//! Every back-end prices kernels through the process-wide
//! [`soc_backend::priced_for`] interner, whose memo tables sit behind
//! mutexes. That is the right shape for sweeps (price once, share
//! everywhere) but the wrong shape for a serve tick, where thousands of
//! sessions would hammer the same locks. `CachedCosts` resolves the
//! tension: at admission time a cohort probes the interner once for
//! every [`KernelId`] at its fixed [`ProblemDims`], and each session
//! carries the resulting flat table by value. The tick hot path then
//! prices kernels with an array index — no locks, no hashing, no heap.

use soc_backend::Platform;
use tinympc::{KernelExecutor, KernelId, ProblemDims};

/// A per-kernel cycle table for one (platform, dims) pair, valid only
/// at those dims. `Copy`, so sessions embed it by value and the solver
/// hot loop reads it without indirection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedCosts {
    dims: ProblemDims,
    kernels: [u64; KernelId::ALL.len()],
    setup: u64,
}

impl CachedCosts {
    /// Prices every kernel for `dims` on `platform` through the shared
    /// [`soc_backend::priced_for`] interner. Cohorts with identical
    /// (platform, dims) hit the same interner entry, so ten thousand
    /// quadrotor sessions price their kernels exactly once.
    ///
    /// # Errors
    ///
    /// Propagates back-end pricing failures (e.g. a rejected trace).
    pub fn price(platform: &Platform, dims: ProblemDims) -> tinympc::Result<Self> {
        let priced = soc_backend::priced_for(platform);
        let mut kernels = [0u64; KernelId::ALL.len()];
        for kernel in KernelId::ALL {
            kernels[kernel.index()] = priced.kernel_cycles(kernel, &dims)?;
        }
        let setup = priced.setup_cycles(&dims)?;
        Ok(CachedCosts {
            dims,
            kernels,
            setup,
        })
    }

    /// The dims this table was priced at.
    pub fn dims(&self) -> ProblemDims {
        self.dims
    }
}

impl KernelExecutor for CachedCosts {
    fn name(&self) -> String {
        // Cold path only (reports); the hot loop never calls this.
        format!(
            "cached-costs({}x{}xN{})",
            self.dims.nx, self.dims.nu, self.dims.horizon
        )
    }

    fn kernel_cycles(&mut self, kernel: KernelId, dims: &ProblemDims) -> tinympc::Result<u64> {
        if *dims != self.dims {
            return Err(tinympc::Error::BadProblem {
                reason: format!(
                    "CachedCosts priced at {}x{}xN{} asked for {}x{}xN{}",
                    self.dims.nx, self.dims.nu, self.dims.horizon, dims.nx, dims.nu, dims.horizon
                ),
            });
        }
        Ok(self.kernels[kernel.index()])
    }

    fn setup_cycles(&mut self, dims: &ProblemDims) -> tinympc::Result<u64> {
        if *dims != self.dims {
            return Err(tinympc::Error::BadProblem {
                reason: "CachedCosts asked for setup at foreign dims".to_string(),
            });
        }
        Ok(self.setup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_backend::PipelineExecutor;

    fn dims() -> ProblemDims {
        ProblemDims {
            nx: 12,
            nu: 4,
            horizon: 10,
        }
    }

    #[test]
    fn snapshot_matches_the_live_pricer() {
        let platform = Platform::rocket_eigen();
        let mut cached = CachedCosts::price(&platform, dims()).unwrap();
        let mut live = PipelineExecutor::for_platform(&platform);
        for kernel in KernelId::ALL {
            assert_eq!(
                cached.kernel_cycles(kernel, &dims()).unwrap(),
                live.kernel_cycles(kernel, &dims()).unwrap(),
                "{kernel:?}"
            );
        }
        assert_eq!(
            cached.setup_cycles(&dims()).unwrap(),
            live.setup_cycles(&dims()).unwrap()
        );
    }

    #[test]
    fn foreign_dims_are_rejected() {
        let mut cached = CachedCosts::price(&Platform::rocket_eigen(), dims()).unwrap();
        let other = ProblemDims {
            nx: 6,
            nu: 3,
            horizon: 10,
        };
        assert!(cached
            .kernel_cycles(KernelId::ForwardPass1, &other)
            .is_err());
        assert!(cached.setup_cycles(&other).is_err());
    }
}
