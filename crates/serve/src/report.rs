//! Metrics accumulation and the deterministic report body.
//!
//! The serve determinism contract hinges on one property: every number
//! in the stdout report must be invariant under worker count and
//! scheduling order. Counters get that from commutative atomic adds.
//! Latency percentiles get it from [`CycleHistogram`] — a log-linear
//! bucket array whose `record` is an atomic increment, so the final
//! bucket populations (and therefore every percentile read) are
//! identical no matter how the session-ticks interleaved.

use std::sync::atomic::{AtomicU64, Ordering};

use soc_faults::DegradeRung;

/// Bucket count: exact below 8, then 4 log-linear sub-buckets per
/// power of two up to `u64::MAX`.
const BUCKETS: usize = 256;

/// A lock-free log-linear histogram of simulated cycle counts.
///
/// Values below 8 are exact; above that, each power of two is split
/// into 4 sub-buckets (≤ 25% relative error on percentile reads, far
/// inside the spread the report cares about). Recording is a single
/// relaxed atomic increment — safe from any worker, commutative, and
/// allocation-free.
#[derive(Debug)]
pub struct CycleHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for CycleHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl CycleHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        CycleHistogram {
            buckets: [0u64; BUCKETS].map(AtomicU64::new),
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value < 8 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros() as usize; // ≥ 3
        let sub = ((value >> (msb - 2)) & 3) as usize;
        8 + (msb - 3) * 4 + sub
    }

    /// The smallest value mapping to `bucket` — what percentile reads
    /// report.
    fn bucket_floor(bucket: usize) -> u64 {
        if bucket < 8 {
            return bucket as u64;
        }
        let msb = 3 + (bucket - 8) / 4;
        let sub = ((bucket - 8) % 4) as u64;
        (1u64 << msb) + (sub << (msb - 2))
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The value at percentile `p` (0–100): the floor of the bucket
    /// containing the `ceil(p% · count)`-th observation. Returns 0 on
    /// an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        // Integer rank so the read is exact and platform-independent.
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_floor(i);
            }
        }
        Self::bucket_floor(BUCKETS - 1)
    }
}

/// Worker-count-invariant metrics accumulated across all session-ticks.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Simulated cycles of every applied solve.
    pub cycles: CycleHistogram,
    /// Session-ticks that landed on each ladder rung (achieved, not
    /// assigned: fault fallbacks and mid-solve deadline downgrades
    /// count where they ended up).
    pub rung_ticks: [AtomicU64; 4],
    /// Total session-ticks executed.
    pub session_ticks: AtomicU64,
    /// Ticks whose applied solve overran the cohort budget.
    pub misses: AtomicU64,
    /// Ticks that hit the fault-fallback path.
    pub fallbacks: AtomicU64,
    /// Session-ticks abandoned after the retry budget was exhausted.
    pub aborted: AtomicU64,
}

impl Metrics {
    fn default_rungs() -> [AtomicU64; 4] {
        [0u64; 4].map(AtomicU64::new)
    }

    /// A zeroed metrics block.
    pub fn new() -> Self {
        Metrics {
            cycles: CycleHistogram::new(),
            rung_ticks: Self::default_rungs(),
            session_ticks: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
        }
    }

    /// Records one achieved session-tick.
    pub fn record(&self, rung: DegradeRung, cycles: u64, missed: bool, fell_back: bool) {
        self.cycles.record(cycles);
        self.rung_ticks[rung.index()].fetch_add(1, Ordering::Relaxed);
        self.session_ticks.fetch_add(1, Ordering::Relaxed);
        if missed {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        if fell_back {
            self.fallbacks.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Loads a rung-occupancy snapshot, mildest first.
    pub fn rung_snapshot(&self) -> [u64; 4] {
        [0, 1, 2, 3].map(|i| self.rung_ticks[i].load(Ordering::Relaxed))
    }
}

/// Renders session-ticks per rung as the compact `n/w/e/l` cell used
/// in cohort tables.
pub fn render_occupancy(rungs: &[u64; 4]) -> String {
    format!("{}/{}/{}/{}", rungs[0], rungs[1], rungs[2], rungs[3])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_continuous_and_ordered() {
        let mut last = 0;
        for v in (0..4096u64).chain([1 << 20, 1 << 40, u64::MAX]) {
            let b = CycleHistogram::bucket_of(v);
            assert!(b < BUCKETS);
            assert!(b >= last || v < 4096, "bucket index must not regress");
            last = last.max(b);
            // The floor of a value's bucket never exceeds the value.
            assert!(CycleHistogram::bucket_floor(b) <= v, "v={v} b={b}");
        }
    }

    #[test]
    fn percentiles_read_bucket_floors() {
        let h = CycleHistogram::new();
        for v in 1..=100u64 {
            h.record(v * 1000);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        assert!((32_000..=50_000).contains(&p50), "p50={p50}");
        assert!(p99 > p50 && p99 <= 99_000, "p99={p99}");
        assert_eq!(CycleHistogram::new().percentile(50.0), 0);
    }

    #[test]
    fn recording_is_commutative() {
        let a = CycleHistogram::new();
        let b = CycleHistogram::new();
        let values = [5u64, 123, 77_000, 9, 5, 1 << 30];
        for v in values {
            a.record(v);
        }
        for v in values.iter().rev() {
            b.record(*v);
        }
        for p in [10.0, 50.0, 90.0, 99.0, 99.9] {
            assert_eq!(a.percentile(p), b.percentile(p));
        }
    }
}
