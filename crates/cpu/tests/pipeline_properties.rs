//! Property-based tests for the scalar pipeline models: invariants that
//! must hold for *any* trace, not just the kernels we generate.

use proptest::prelude::*;
use soc_cpu::{simulate_scalar, CoreConfig};
use soc_isa::{MicroOp, OpClass, Trace, TraceBuilder, VReg};

/// Strategy: a random but well-formed trace of scalar micro-ops whose
/// sources always reference earlier destinations.
fn trace_strategy(max_len: usize) -> impl Strategy<Value = Trace> {
    proptest::collection::vec(
        (0u8..8, proptest::collection::vec(any::<u32>(), 0..3)),
        1..max_len,
    )
    .prop_map(|ops| {
        let mut b = TraceBuilder::new();
        let mut produced: Vec<VReg> = Vec::new();
        for (class_sel, src_sel) in ops {
            let class = match class_sel {
                0 => OpClass::IntAlu,
                1 => OpClass::Load,
                2 => OpClass::Store,
                3 => OpClass::FpAdd,
                4 => OpClass::FpMul,
                5 => OpClass::FpFma,
                6 => OpClass::FpSimple,
                _ => OpClass::Branch,
            };
            let srcs: Vec<VReg> = src_sel
                .iter()
                .filter_map(|&s| {
                    if produced.is_empty() {
                        None
                    } else {
                        Some(produced[s as usize % produced.len()])
                    }
                })
                .collect();
            let dst = if matches!(class, OpClass::Store | OpClass::Branch) {
                b.emit_void(class, &srcs);
                None
            } else {
                Some(b.emit(class, &srcs))
            };
            if let Some(d) = dst {
                produced.push(d);
            }
        }
        b.finish()
    })
}

fn all_cores() -> Vec<CoreConfig> {
    vec![
        CoreConfig::rocket(),
        CoreConfig::shuttle(),
        CoreConfig::small_boom(),
        CoreConfig::medium_boom(),
        CoreConfig::large_boom(),
        CoreConfig::mega_boom(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Appending work never makes a trace finish earlier.
    #[test]
    fn prefix_monotonicity(trace in trace_strategy(120), cut in 1usize..119) {
        let cut = cut.min(trace.len());
        let prefix: Trace = trace.ops()[..cut].iter().copied().collect();
        for core in all_cores() {
            let full = simulate_scalar(&core, &trace);
            let head = simulate_scalar(&core, &prefix);
            prop_assert!(head <= full, "{}: prefix {head} > full {full}", core.name);
        }
    }

    /// No core finishes faster than its issue-width lower bound, and no
    /// core is slower than fully-serialized worst case.
    #[test]
    fn throughput_bounds(trace in trace_strategy(150)) {
        let n = trace.len() as u64;
        for core in all_cores() {
            let cycles = simulate_scalar(&core, &trace);
            prop_assert!(cycles >= n / 8, "{}: {cycles} below any plausible width", core.name);
            // Worst case: every op fully serialized at max latency.
            prop_assert!(cycles <= n * 20 + 50, "{}: {cycles} absurdly slow", core.name);
        }
    }

    /// The dependence-chain critical path lower-bounds every machine.
    #[test]
    fn critical_path_bound(len in 1usize..80) {
        let mut b = TraceBuilder::new();
        let mut acc = b.fp(OpClass::FpAdd, &[]);
        for _ in 0..len {
            acc = b.fp(OpClass::FpFma, &[acc]);
        }
        let t = b.finish();
        let bound = len as u64 * 4; // fma latency
        for core in all_cores() {
            let cycles = simulate_scalar(&core, &t);
            prop_assert!(cycles >= bound, "{}: {cycles} beat the dependence chain {bound}", core.name);
        }
    }

    /// A dual-issue in-order core is never slower than single-issue on the
    /// same trace.
    #[test]
    fn wider_inorder_never_slower(trace in trace_strategy(100)) {
        let rocket = simulate_scalar(&CoreConfig::rocket(), &trace);
        let shuttle = simulate_scalar(&CoreConfig::shuttle(), &trace);
        prop_assert!(shuttle <= rocket, "shuttle {shuttle} > rocket {rocket}");
    }

    /// Determinism: simulating twice gives identical results.
    #[test]
    fn simulation_is_deterministic(trace in trace_strategy(100)) {
        for core in all_cores() {
            prop_assert_eq!(simulate_scalar(&core, &trace), simulate_scalar(&core, &trace));
        }
    }

    /// Concatenation superadditivity is bounded: running A then B takes at
    /// most cycles(A) + cycles(B) + slack (pipelines can only overlap, the
    /// boundary adds no hidden cost).
    #[test]
    fn concatenation_subadditive(a in trace_strategy(60), b in trace_strategy(60)) {
        // Renumber b's registers so the traces are independent.
        let offset = a
            .ops()
            .iter()
            .flat_map(|op| op.dst.into_iter().chain(op.sources()))
            .map(|r| r.0 + 1)
            .max()
            .unwrap_or(0);
        let mut combined = a.clone();
        let shifted: Trace = b
            .ops()
            .iter()
            .map(|op| {
                let mut op = *op;
                if let Some(d) = op.dst.as_mut() {
                    d.0 += offset;
                }
                for s in op.srcs.iter_mut().flatten() {
                    s.0 += offset;
                }
                op
            })
            .collect::<Vec<MicroOp>>()
            .into_iter()
            .collect();
        combined.extend(&shifted);
        for core in all_cores() {
            let ca = simulate_scalar(&core, &a);
            let cb = simulate_scalar(&core, &b);
            let cab = simulate_scalar(&core, &combined);
            prop_assert!(
                cab <= ca + cb + 4,
                "{}: {cab} > {ca} + {cb} + slack",
                core.name
            );
        }
    }
}
