//! Core configurations for every scalar CPU the paper profiles.

use soc_isa::LatencyModel;

/// Per-pipe issue-queue configuration of an out-of-order core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueQueues {
    /// Memory-pipe issue width (loads + stores per cycle).
    pub mem_issue: u32,
    /// Integer-pipe issue width.
    pub int_issue: u32,
    /// FP-pipe issue width.
    pub fp_issue: u32,
    /// Entries per issue queue (dispatch stalls when the target queue is
    /// full).
    pub iq_entries: u32,
}

/// The microarchitectural style of a core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreKind {
    /// Scoreboarded in-order pipeline (Rocket, Shuttle).
    InOrder {
        /// Instructions issued per cycle.
        issue_width: u32,
    },
    /// Out-of-order pipeline (the BOOM family).
    OutOfOrder {
        /// Frontend fetch width (instructions per cycle into the fetch
        /// buffer).
        fetch_width: u32,
        /// Decode/dispatch/commit width.
        decode_width: u32,
        /// Reorder-buffer capacity.
        rob_size: u32,
        /// Per-pipe issue configuration.
        queues: IssueQueues,
    },
}

/// Full description of a scalar core.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Human-readable configuration name (e.g. `"MediumBoom"`).
    pub name: &'static str,
    /// Pipeline style and widths.
    pub kind: CoreKind,
    /// Number of pipelined scalar FPUs (each accepts one FP op per cycle).
    pub fpu_count: u32,
    /// Combined load/store ports toward the L1.
    pub mem_ports: u32,
    /// Frontend issue slots consumed by one vector instruction (the
    /// scalar-to-vector handshake occupies the in-order pipe for several
    /// cycles; RoCC commands cost a single slot). This is why a 1-wide
    /// Rocket frontend starves Saturn and a dual-issue Shuttle helps.
    pub vector_dispatch_slots: u32,
    /// Result latencies.
    pub latency: LatencyModel,
}

impl CoreConfig {
    /// Rocket: the simple in-order, single-issue baseline core.
    pub fn rocket() -> Self {
        CoreConfig {
            name: "Rocket",
            kind: CoreKind::InOrder { issue_width: 1 },
            fpu_count: 1,
            mem_ports: 1,
            vector_dispatch_slots: 6,
            latency: LatencyModel::default(),
        }
    }

    /// TinyRocket: an area-minimal Rocket variant. Profiled for area only
    /// in the paper (it lacks the FP throughput for the workload); we model
    /// it as a single-issue core with a slower, unpipelined-ish FPU.
    pub fn tiny_rocket() -> Self {
        CoreConfig {
            name: "TinyRocket",
            kind: CoreKind::InOrder { issue_width: 1 },
            fpu_count: 1,
            mem_ports: 1,
            vector_dispatch_slots: 6,
            latency: LatencyModel {
                fp_fma: 6,
                fp_add: 6,
                fp_mul: 6,
                load: 3,
                ..Default::default()
            },
        }
    }

    /// Shuttle: the superscalar (dual-issue) in-order core used as the
    /// high-throughput Saturn frontend.
    pub fn shuttle() -> Self {
        CoreConfig {
            name: "Shuttle",
            kind: CoreKind::InOrder { issue_width: 2 },
            fpu_count: 1,
            mem_ports: 1,
            vector_dispatch_slots: 6,
            latency: LatencyModel::default(),
        }
    }

    /// SmallBOOM: single-decode out-of-order.
    pub fn small_boom() -> Self {
        CoreConfig {
            name: "SmallBoom",
            kind: CoreKind::OutOfOrder {
                fetch_width: 4,
                decode_width: 1,
                rob_size: 24,
                queues: IssueQueues {
                    mem_issue: 1,
                    int_issue: 1,
                    fp_issue: 1,
                    iq_entries: 4,
                },
            },
            fpu_count: 1,
            mem_ports: 1,
            vector_dispatch_slots: 6,
            latency: LatencyModel::default(),
        }
    }

    /// MediumBOOM: 2-wide decode, separate mem/int/fp queues.
    pub fn medium_boom() -> Self {
        CoreConfig {
            name: "MediumBoom",
            kind: CoreKind::OutOfOrder {
                fetch_width: 4,
                decode_width: 2,
                rob_size: 48,
                queues: IssueQueues {
                    mem_issue: 1,
                    int_issue: 2,
                    fp_issue: 1,
                    iq_entries: 8,
                },
            },
            fpu_count: 1,
            mem_ports: 1,
            vector_dispatch_slots: 6,
            latency: LatencyModel::default(),
        }
    }

    /// LargeBOOM: 3-wide decode with deeper queues.
    ///
    /// The paper's prose lists LargeBOOM as decode-1, which contradicts its
    /// own Table I ordering and SonicBOOM's published configuration; we use
    /// the standard 3-wide configuration (see DESIGN.md §7). All BOOM
    /// points keep a single L1 data port — the paper's measured BOOM
    /// scaling (1.19×/1.73×/2.13×/2.92× over Rocket) is memory-bound, not
    /// issue-bound.
    pub fn large_boom() -> Self {
        CoreConfig {
            name: "LargeBoom",
            kind: CoreKind::OutOfOrder {
                fetch_width: 8,
                decode_width: 3,
                rob_size: 96,
                queues: IssueQueues {
                    mem_issue: 1,
                    int_issue: 2,
                    fp_issue: 2,
                    iq_entries: 24,
                },
            },
            fpu_count: 2,
            mem_ports: 1,
            vector_dispatch_slots: 6,
            latency: LatencyModel::default(),
        }
    }

    /// MegaBOOM: 4-wide decode, two FPUs.
    pub fn mega_boom() -> Self {
        CoreConfig {
            name: "MegaBoom",
            kind: CoreKind::OutOfOrder {
                fetch_width: 8,
                decode_width: 4,
                rob_size: 128,
                queues: IssueQueues {
                    mem_issue: 1,
                    int_issue: 3,
                    fp_issue: 2,
                    iq_entries: 32,
                },
            },
            fpu_count: 2,
            mem_ports: 1,
            vector_dispatch_slots: 6,
            latency: LatencyModel::default(),
        }
    }

    /// All scalar CPU configurations profiled in the paper's Table I.
    pub fn all_cpus() -> Vec<CoreConfig> {
        vec![
            CoreConfig::rocket(),
            CoreConfig::small_boom(),
            CoreConfig::medium_boom(),
            CoreConfig::large_boom(),
            CoreConfig::mega_boom(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_shape() {
        assert!(matches!(
            CoreConfig::rocket().kind,
            CoreKind::InOrder { issue_width: 1 }
        ));
        assert!(matches!(
            CoreConfig::shuttle().kind,
            CoreKind::InOrder { issue_width: 2 }
        ));
        match CoreConfig::mega_boom().kind {
            CoreKind::OutOfOrder { decode_width, .. } => assert_eq!(decode_width, 4),
            _ => panic!("MegaBoom must be out-of-order"),
        }
        assert_eq!(CoreConfig::mega_boom().fpu_count, 2);
    }

    #[test]
    fn all_cpus_are_distinct() {
        let cpus = CoreConfig::all_cpus();
        for i in 0..cpus.len() {
            for j in (i + 1)..cpus.len() {
                assert_ne!(cpus[i].name, cpus[j].name);
            }
        }
    }
}
