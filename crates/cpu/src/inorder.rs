//! Scoreboarded in-order pipeline model (Rocket, Shuttle).

use crate::{Accelerator, CoreConfig, CoreKind, Pipeline};
use soc_isa::{Cycles, FuKind, OpClass, Trace};

/// An in-order, scoreboarded scalar pipeline.
///
/// Issue rules per cycle:
/// * at most `issue_width` micro-ops, in program order;
/// * an op waits for all its source registers (no speculation on values);
/// * structural limits: `fpu_count` FP issues, `mem_ports` combined
///   loads/stores, an unpipelined FP divider, `issue_width` integer slots;
/// * `Vector`/`Rocc` ops are handed to the attached accelerator, which can
///   delay *acceptance* (queue backpressure) — the frontend stalls until
///   accepted, which is exactly how a Rocket frontend saturates when
///   feeding short-vector Saturn instructions;
/// * `Fence` stalls issue until the accelerator drains.
#[derive(Debug, Clone)]
pub struct InOrderCore {
    config: CoreConfig,
    issue_width: u32,
}

impl InOrderCore {
    /// Creates the model. The configuration must be
    /// [`CoreKind::InOrder`].
    ///
    /// # Panics
    ///
    /// Panics if `config.kind` is not `InOrder`.
    pub fn new(config: CoreConfig) -> Self {
        let issue_width = match config.kind {
            CoreKind::InOrder { issue_width } => issue_width,
            _ => panic!("InOrderCore requires CoreKind::InOrder"),
        };
        InOrderCore {
            config,
            issue_width,
        }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }
}

impl Pipeline for InOrderCore {
    fn run(&self, trace: &Trace, accel: &mut dyn Accelerator) -> Cycles {
        accel.reset();
        let max_reg = trace
            .ops()
            .iter()
            .flat_map(|op| op.dst.into_iter().chain(op.sources()))
            .map(|r| r.0 as usize + 1)
            .max()
            .unwrap_or(0);
        let mut ready = vec![0u64; max_reg];
        // Registers produced by accelerator ops: their inter-op dependencies
        // are tracked (and chained) inside the accelerator, so dispatching a
        // consumer accel op must not wait for the producer's completion.
        // Scalar consumers still wait for the full completion time.
        let mut accel_produced = vec![false; max_reg];

        let mut cycle: Cycles = 0;
        let mut issued_this_cycle: u32 = 0;
        let mut fpu_this_cycle: u32 = 0;
        let mut mem_this_cycle: u32 = 0;
        let mut fpdiv_free: Cycles = 0;
        let mut last_complete: Cycles = 0;

        macro_rules! advance_to {
            ($t:expr) => {
                if $t > cycle {
                    cycle = $t;
                    issued_this_cycle = 0;
                    fpu_this_cycle = 0;
                    mem_this_cycle = 0;
                }
            };
        }
        macro_rules! next_cycle {
            () => {
                advance_to!(cycle + 1)
            };
        }

        for op in trace.ops() {
            let is_accel = matches!(op.class.fu(), FuKind::VecUnit | FuKind::Rocc);
            let operands_ready = op
                .sources()
                .filter(|r| !(is_accel && accel_produced[r.0 as usize]))
                .map(|r| ready[r.0 as usize])
                .max()
                .unwrap_or(0);
            advance_to!(operands_ready);

            // Issue-width limit.
            if issued_this_cycle >= self.issue_width {
                next_cycle!();
            }

            match op.class.fu() {
                FuKind::Fpu => {
                    while fpu_this_cycle >= self.config.fpu_count {
                        next_cycle!();
                    }
                    fpu_this_cycle += 1;
                }
                FuKind::FpDiv => {
                    advance_to!(fpdiv_free);
                    fpdiv_free = cycle + self.config.latency.latency(OpClass::FpDiv);
                }
                FuKind::Load | FuKind::Store => {
                    while mem_this_cycle >= self.config.mem_ports {
                        next_cycle!();
                    }
                    mem_this_cycle += 1;
                }
                FuKind::IntAlu | FuKind::IntMul | FuKind::Branch => {
                    // Integer slots are bounded by the issue width itself.
                }
                FuKind::VecUnit | FuKind::Rocc => {
                    if op.class == OpClass::Fence {
                        // Stall until the accelerator (and its memory
                        // traffic) fully drains.
                        let drain = accel.drain_cycle();
                        advance_to!(drain);
                        issued_this_cycle += 1;
                        continue;
                    }
                    let res = accel.dispatch(op, cycle, operands_ready);
                    if let Some(dst) = op.dst {
                        ready[dst.0 as usize] = res.completes_at;
                        accel_produced[dst.0 as usize] = true;
                    }
                    last_complete = last_complete.max(res.completes_at);
                    // The frontend is blocked until the accelerator
                    // accepts the command.
                    advance_to!(res.accepted_at);
                    // Vector instructions occupy the frontend for several
                    // issue slots (scalar-vector handshake); RoCC commands
                    // are ordinary single-slot instructions. Register-
                    // grouped (LMUL > 1) vector instructions amortize the
                    // handshake across the group — the sequencer walks the
                    // registers while the frontend moves on — which is the
                    // dispatch-relief half of the paper's LMUL story.
                    let cost = if op.class.fu() == FuKind::VecUnit {
                        // Amortization only materializes when VL actually
                        // spans multiple registers (all modelled Saturns
                        // have VLEN = 512); a short-vector instruction
                        // exposes the full handshake no matter its LMUL —
                        // which is why LMUL cannot help the iterative
                        // kernels.
                        let covered = match op.payload {
                            soc_isa::Payload::Vector(spec) => {
                                let regs = (spec.vl * spec.sew as u32).div_ceil(512);
                                regs.clamp(1, spec.lmul.max(1) as u32)
                            }
                            _ => 1,
                        };
                        (self.config.vector_dispatch_slots / covered).max(1)
                    } else {
                        1
                    };
                    issued_this_cycle += cost;
                    while issued_this_cycle >= self.issue_width {
                        issued_this_cycle -= self.issue_width;
                        cycle += 1;
                        fpu_this_cycle = 0;
                        mem_this_cycle = 0;
                    }
                    continue;
                }
            }

            let complete = cycle + self.config.latency.latency(op.class);
            if let Some(dst) = op.dst {
                ready[dst.0 as usize] = complete;
            }
            last_complete = last_complete.max(complete);
            issued_this_cycle += 1;
        }

        last_complete.max(cycle).max(accel.drain_cycle())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DispatchResult, NullAccelerator};
    use soc_isa::{MicroOp, OpClass, TraceBuilder};

    fn run_rocket(trace: &Trace) -> Cycles {
        let mut null = NullAccelerator;
        InOrderCore::new(CoreConfig::rocket()).run(trace, &mut null)
    }

    #[test]
    fn dependent_fma_chain_serializes_on_latency() {
        let n = 50;
        let mut b = TraceBuilder::new();
        let mut acc = b.load();
        for _ in 0..n {
            acc = b.fp(OpClass::FpFma, &[acc]);
        }
        let cycles = run_rocket(&b.finish());
        // Each FMA waits for the previous one's 4-cycle latency.
        assert!(cycles >= n * 4, "got {cycles}");
        assert!(cycles <= n * 4 + 10, "got {cycles}");
    }

    #[test]
    fn independent_fmas_reach_one_ipc() {
        let n = 100;
        let mut b = TraceBuilder::new();
        for _ in 0..n {
            b.fp(OpClass::FpFma, &[]);
        }
        let cycles = run_rocket(&b.finish());
        // 1 FPU, 1-wide: one per cycle plus the drain of the last one.
        assert!(cycles >= n, "got {cycles}");
        assert!(cycles <= n + 8, "got {cycles}");
    }

    #[test]
    fn dual_issue_shuttle_overlaps_int_and_fp() {
        let n = 100;
        let mut b = TraceBuilder::new();
        for _ in 0..n {
            b.fp(OpClass::FpFma, &[]);
            b.int_ops(1);
        }
        let t = b.finish();
        let mut null = NullAccelerator;
        let rocket = InOrderCore::new(CoreConfig::rocket()).run(&t, &mut null);
        let shuttle = InOrderCore::new(CoreConfig::shuttle()).run(&t, &mut null);
        // Shuttle dual-issues the int op beside the FMA.
        assert!(rocket >= 2 * n, "rocket {rocket}");
        assert!(shuttle <= n + 10, "shuttle {shuttle}");
    }

    #[test]
    fn mem_port_limits_loads() {
        let n = 64;
        let mut b = TraceBuilder::new();
        for _ in 0..n {
            b.load();
        }
        let cycles = run_rocket(&b.finish());
        assert!(cycles >= n, "got {cycles}");
    }

    #[test]
    fn fp_divider_is_unpipelined() {
        let n = 5;
        let mut b = TraceBuilder::new();
        for _ in 0..n {
            b.fp(OpClass::FpDiv, &[]);
        }
        let cycles = run_rocket(&b.finish());
        let div = soc_isa::LatencyModel::default().fp_div;
        assert!(cycles >= n * div, "got {cycles}, want >= {}", n * div);
    }

    /// Test double: accepts each command `delay` cycles after presentation
    /// and reports a fixed drain horizon.
    #[derive(Debug)]
    struct SlowAccel {
        delay: Cycles,
        drain: Cycles,
    }

    impl Accelerator for SlowAccel {
        fn dispatch(
            &mut self,
            _op: &MicroOp,
            issue_cycle: Cycles,
            operands_ready: Cycles,
        ) -> DispatchResult {
            let t = issue_cycle.max(operands_ready) + self.delay;
            self.drain = self.drain.max(t + 10);
            DispatchResult {
                accepted_at: t,
                completes_at: t + 10,
            }
        }

        fn drain_cycle(&self) -> Cycles {
            self.drain
        }

        fn reset(&mut self) {
            self.drain = 0;
        }
    }

    #[test]
    fn accelerator_backpressure_stalls_frontend() {
        let mut b = TraceBuilder::new();
        for _ in 0..10 {
            b.vload(4, 1);
        }
        let t = b.finish();
        let mut slow = SlowAccel { delay: 7, drain: 0 };
        let cycles = InOrderCore::new(CoreConfig::rocket()).run(&t, &mut slow);
        // Every dispatch waits 7 cycles for acceptance.
        assert!(cycles >= 70, "got {cycles}");
    }

    #[test]
    fn fence_waits_for_drain() {
        let mut b = TraceBuilder::new();
        b.vload(4, 1);
        b.fence();
        let after = b.int_ops(1).unwrap();
        let _ = after;
        let t = b.finish();
        let mut slow = SlowAccel { delay: 0, drain: 0 };
        let cycles = InOrderCore::new(CoreConfig::rocket()).run(&t, &mut slow);
        // drain = completes_at + ... = at least 10.
        assert!(cycles >= 10, "got {cycles}");
    }

    #[test]
    #[should_panic(expected = "InOrderCore requires CoreKind::InOrder")]
    fn rejects_ooo_config() {
        InOrderCore::new(CoreConfig::small_boom());
    }
}
