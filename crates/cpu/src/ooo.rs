//! Out-of-order pipeline model (the SonicBOOM family).

use crate::{Accelerator, CoreConfig, CoreKind, IssueQueues, Pipeline};
use soc_isa::{Cycles, FuKind, OpClass, Trace};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Which issue pipe an op flows through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Pipe {
    Mem,
    Int,
    Fp,
}

fn pipe_of(fu: FuKind) -> Pipe {
    match fu {
        FuKind::Load | FuKind::Store => Pipe::Mem,
        FuKind::IntAlu | FuKind::IntMul | FuKind::Branch => Pipe::Int,
        FuKind::Fpu | FuKind::FpDiv => Pipe::Fp,
        // Accelerator commands flow through the integer pipe toward the
        // RoCC / vector command port.
        FuKind::VecUnit | FuKind::Rocc => Pipe::Int,
    }
}

/// Greedy per-cycle slot allocator for an issue pipe of bounded width.
#[derive(Debug, Default)]
struct SlotTable {
    used: HashMap<Cycles, u32>,
}

impl SlotTable {
    /// Finds the first cycle `>= t` with a free slot and claims it.
    fn claim(&mut self, mut t: Cycles, width: u32) -> Cycles {
        loop {
            let used = self.used.entry(t).or_insert(0);
            if *used < width {
                *used += 1;
                return t;
            }
            t += 1;
        }
    }
}

/// An out-of-order scalar pipeline with a decode-width-limited frontend,
/// per-pipe issue queues, a reorder buffer, and in-order retirement.
///
/// The model captures the first-order BOOM scaling effects the paper
/// relies on: wider decode admits more instructions per cycle, independent
/// work issues out of order around long-latency FP results, multiple FPUs
/// raise FP throughput, and the ROB bounds how much latency can be hidden.
#[derive(Debug, Clone)]
pub struct OutOfOrderCore {
    config: CoreConfig,
    fetch_width: u32,
    decode_width: u32,
    rob_size: u32,
    queues: IssueQueues,
}

impl OutOfOrderCore {
    /// Creates the model. The configuration must be
    /// [`CoreKind::OutOfOrder`].
    ///
    /// # Panics
    ///
    /// Panics if `config.kind` is not `OutOfOrder`.
    pub fn new(config: CoreConfig) -> Self {
        match config.kind {
            CoreKind::OutOfOrder {
                fetch_width,
                decode_width,
                rob_size,
                queues,
            } => OutOfOrderCore {
                config,
                fetch_width,
                decode_width,
                rob_size,
                queues,
            },
            _ => panic!("OutOfOrderCore requires CoreKind::OutOfOrder"),
        }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }
}

impl Pipeline for OutOfOrderCore {
    fn run(&self, trace: &Trace, accel: &mut dyn Accelerator) -> Cycles {
        accel.reset();
        let max_reg = trace
            .ops()
            .iter()
            .flat_map(|op| op.dst.into_iter().chain(op.sources()))
            .map(|r| r.0 as usize + 1)
            .max()
            .unwrap_or(0);
        let mut ready = vec![0u64; max_reg];
        // Registers produced by accelerator ops (see InOrderCore): accel
        // consumers chain inside the accelerator, so only scalar consumers
        // wait for the recorded completion time.
        let mut accel_produced = vec![false; max_reg];

        // Frontend dispatch bookkeeping.
        let mut dispatch_cycle: Cycles = 0;
        let mut dispatched_this: u32 = 0;

        // ROB: retire cycles in program order.
        let mut rob: VecDeque<Cycles> = VecDeque::with_capacity(self.rob_size as usize);

        // Commit bookkeeping (in-order, decode_width per cycle).
        let mut prev_retire: Cycles = 0;
        let mut commit_cycle: Cycles = 0;
        let mut commits_this: u32 = 0;

        // Per-pipe issue slot tables and in-flight (dispatched, not yet
        // issued) occupancy for IQ capacity.
        let mut slots: HashMap<Pipe, SlotTable> = HashMap::new();
        let mut iq: HashMap<Pipe, BinaryHeap<Reverse<Cycles>>> = HashMap::new();

        let mut fpdiv_free: Cycles = 0;
        let mut last_retire: Cycles = 0;

        let fp_width = self.queues.fp_issue.min(self.config.fpu_count);

        for op in trace.ops() {
            // Frontend bandwidth.
            if dispatched_this >= self.decode_width {
                dispatch_cycle += 1;
                dispatched_this = 0;
            }
            // ROB capacity: wait for the head to retire.
            if rob.len() >= self.rob_size as usize {
                let head = rob.pop_front().expect("rob nonempty");
                if head + 1 > dispatch_cycle {
                    dispatch_cycle = head + 1;
                    dispatched_this = 0;
                }
            }

            let pipe = pipe_of(op.class.fu());
            // IQ capacity: wait for the earliest queued op to issue.
            let q = iq.entry(pipe).or_default();
            while q.len() >= self.queues.iq_entries as usize {
                let Reverse(earliest) = q.pop().expect("queue nonempty");
                if earliest + 1 > dispatch_cycle {
                    dispatch_cycle = earliest + 1;
                    dispatched_this = 0;
                }
            }

            let is_accel = matches!(op.class.fu(), FuKind::VecUnit | FuKind::Rocc);
            let operands_ready = op
                .sources()
                .filter(|r| !(is_accel && accel_produced[r.0 as usize]))
                .map(|r| ready[r.0 as usize])
                .max()
                .unwrap_or(0);
            let earliest = dispatch_cycle.max(operands_ready);

            // Issue + execute.
            let complete = match op.class {
                OpClass::Fence => {
                    // Fences serialize: wait for accelerator drain.
                    earliest.max(accel.drain_cycle())
                }
                OpClass::Vector | OpClass::Rocc => {
                    let res = accel.dispatch(op, earliest, operands_ready);
                    if res.accepted_at + 1 > dispatch_cycle {
                        // Command queue backpressure blocks the frontend.
                        dispatch_cycle = res.accepted_at;
                    }
                    if let Some(dst) = op.dst {
                        accel_produced[dst.0 as usize] = true;
                    }
                    res.completes_at
                }
                _ => {
                    let width = match pipe {
                        Pipe::Mem => self.queues.mem_issue.min(self.config.mem_ports),
                        Pipe::Int => self.queues.int_issue,
                        Pipe::Fp => fp_width,
                    };
                    let mut start = earliest;
                    if op.class == OpClass::FpDiv {
                        start = start.max(fpdiv_free);
                    }
                    let issue = slots.entry(pipe).or_default().claim(start, width.max(1));
                    if op.class == OpClass::FpDiv {
                        fpdiv_free = issue + self.config.latency.latency(OpClass::FpDiv);
                    }
                    iq.entry(pipe).or_default().push(Reverse(issue));
                    issue + self.config.latency.latency(op.class)
                }
            };

            if let Some(dst) = op.dst {
                ready[dst.0 as usize] = complete;
            }

            // In-order retirement with commit bandwidth.
            let rc = complete.max(prev_retire);
            if rc > commit_cycle {
                commit_cycle = rc;
                commits_this = 0;
            }
            if commits_this >= self.decode_width {
                commit_cycle += 1;
                commits_this = 0;
            }
            commits_this += 1;
            prev_retire = commit_cycle;
            last_retire = last_retire.max(commit_cycle);
            rob.push_back(commit_cycle);

            dispatched_this += 1;
            // Fetch-width modelling: the fetch buffer smooths this out; the
            // dominant frontend limit for straight-line code is decode
            // width, so fetch_width only matters when it is *smaller*.
            if self.fetch_width < self.decode_width {
                // Degenerate configuration; clamp to fetch width.
                if dispatched_this >= self.fetch_width {
                    dispatch_cycle += 1;
                    dispatched_this = 0;
                }
            }
        }

        last_retire.max(accel.drain_cycle())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NullAccelerator;
    use soc_isa::{OpClass, TraceBuilder};

    fn run(config: CoreConfig, trace: &Trace) -> Cycles {
        let mut null = NullAccelerator;
        OutOfOrderCore::new(config).run(trace, &mut null)
    }

    fn independent_fmas(n: usize) -> Trace {
        let mut b = TraceBuilder::new();
        for _ in 0..n {
            b.fp(OpClass::FpFma, &[]);
        }
        b.finish()
    }

    #[test]
    fn two_fpus_double_fp_throughput() {
        let t = independent_fmas(400);
        let small = run(CoreConfig::small_boom(), &t);
        let mega = run(CoreConfig::mega_boom(), &t);
        assert!(
            (mega as f64) < small as f64 * 0.65,
            "mega {mega} should be ~half of small {small}"
        );
    }

    #[test]
    fn ooo_hides_load_latency_behind_fp() {
        // Independent (load -> dependent FMA) pairs: an in-order 1-wide
        // core exposes the load-to-use latency on every pair; OoO runs
        // ahead and overlaps them.
        let mut b = TraceBuilder::new();
        for _ in 0..100 {
            let x = b.load();
            b.fp(OpClass::FpFma, &[x]);
        }
        let t = b.finish();
        let mut null = NullAccelerator;
        let rocket = crate::InOrderCore::new(CoreConfig::rocket()).run(&t, &mut null);
        let boom = run(CoreConfig::medium_boom(), &t);
        assert!(boom < rocket, "boom {boom} vs rocket {rocket}");
    }

    #[test]
    fn decode_width_bounds_int_throughput() {
        let mut b = TraceBuilder::new();
        b.int_ops(1000);
        let t = b.finish();
        let small = run(CoreConfig::small_boom(), &t); // decode 1
        let mega = run(CoreConfig::mega_boom(), &t); // decode 4, int_issue 3
        assert!(small >= 1000, "small {small}");
        assert!(mega <= 450, "mega {mega}");
    }

    #[test]
    fn dependent_chain_is_latency_bound_everywhere() {
        let mut b = TraceBuilder::new();
        let mut acc = b.fp(OpClass::FpAdd, &[]);
        for _ in 0..100 {
            acc = b.fp(OpClass::FpFma, &[acc]);
        }
        let t = b.finish();
        let mega = run(CoreConfig::mega_boom(), &t);
        // No OoO machine beats the dependence chain: 100 FMAs * 4 cycles.
        assert!(mega >= 400, "mega {mega}");
    }

    #[test]
    fn rob_limits_runahead() {
        // A single very long latency op followed by many independent ops:
        // the ROB must fill and stall dispatch.
        let mut b = TraceBuilder::new();
        let d = b.fp(OpClass::FpDiv, &[]);
        let _ = d;
        b.int_ops(2000);
        let t = b.finish();
        let small = run(CoreConfig::small_boom(), &t); // rob 32
        let mega = run(CoreConfig::mega_boom(), &t); // rob 128
        assert!(small >= mega, "small {small} vs mega {mega}");
    }

    #[test]
    #[should_panic(expected = "OutOfOrderCore requires CoreKind::OutOfOrder")]
    fn rejects_inorder_config() {
        OutOfOrderCore::new(CoreConfig::rocket());
    }

    #[test]
    fn boom_family_is_monotonic_on_mixed_code() {
        // A representative mixed kernel: loads feeding FMAs with some
        // integer bookkeeping.
        let mut b = TraceBuilder::new();
        for _ in 0..200 {
            let x = b.load();
            let y = b.load();
            let z = b.fp(OpClass::FpFma, &[x, y]);
            b.store(&[z]);
            b.int_ops(2);
            b.branch(&[]);
        }
        let t = b.finish();
        let s = run(CoreConfig::small_boom(), &t);
        let m = run(CoreConfig::medium_boom(), &t);
        let l = run(CoreConfig::large_boom(), &t);
        let g = run(CoreConfig::mega_boom(), &t);
        assert!(s >= m, "small {s} >= medium {m}");
        assert!(m >= l, "medium {m} >= large {l}");
        assert!(l >= g, "large {l} >= mega {g}");
    }
}
