//! The interface between a scalar core and a decoupled accelerator.

use soc_isa::{Cycles, MicroOp};

/// Outcome of dispatching a vector/RoCC micro-op to an accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchResult {
    /// Cycle at which the accelerator accepted the command. The scalar
    /// frontend is blocked until then (queue backpressure).
    pub accepted_at: Cycles,
    /// Cycle at which the op's scalar-visible result (if any) is ready.
    pub completes_at: Cycles,
}

/// A decoupled execution engine attached to a scalar core.
///
/// Saturn (`soc-vector`) and Gemmini (`soc-gemmini`) implement this; the
/// scalar pipeline models forward every `Vector` and `Rocc` micro-op here
/// and stall on `Fence` until [`Accelerator::drain_cycle`].
pub trait Accelerator {
    /// Dispatches `op`. `issue_cycle` is when the scalar core presents the
    /// command; `operands_ready` is when its scalar source operands are
    /// available.
    fn dispatch(
        &mut self,
        op: &MicroOp,
        issue_cycle: Cycles,
        operands_ready: Cycles,
    ) -> DispatchResult;

    /// Cycle at which all outstanding accelerator work — including its
    /// memory traffic — will have drained (fence semantics).
    fn drain_cycle(&self) -> Cycles;

    /// Clears all internal state for a fresh simulation.
    fn reset(&mut self);
}

/// An accelerator that accepts nothing but behaves neutrally: commands are
/// accepted instantly and complete instantly. Used for pure-scalar runs and
/// as a test double.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullAccelerator;

impl Accelerator for NullAccelerator {
    fn dispatch(
        &mut self,
        _op: &MicroOp,
        issue_cycle: Cycles,
        operands_ready: Cycles,
    ) -> DispatchResult {
        let t = issue_cycle.max(operands_ready);
        DispatchResult {
            accepted_at: t,
            completes_at: t + 1,
        }
    }

    fn drain_cycle(&self) -> Cycles {
        0
    }

    fn reset(&mut self) {}
}
