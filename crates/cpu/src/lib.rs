//! # soc-cpu — scalar RISC-V core timing models
//!
//! Implements the general-purpose-CPU corner of the paper's design space:
//!
//! * [`InOrderCore`] — single-issue Rocket and the superscalar in-order
//!   Shuttle, modelled as scoreboarded in-order pipelines with a
//!   configurable issue width, FPU count and memory port count.
//! * [`OutOfOrderCore`] — the SonicBOOM family (Small/Medium/Large/Mega),
//!   modelled with a decode-width-limited frontend, per-pipe issue queues
//!   (mem / int / fp), a reorder buffer, and in-order retirement.
//!
//! Both models replay [`soc_isa::Trace`]s. Vector and RoCC micro-ops are
//! forwarded to an attached [`Accelerator`] (Saturn and Gemmini live in
//! their own crates; [`NullAccelerator`] is used for pure-scalar runs),
//! which exerts backpressure on the scalar frontend exactly the way the
//! paper describes: a Rocket frontend saturates feeding short-vector Saturn
//! instructions, and fine-grained Gemmini mappings demand high scalar
//! instruction throughput to construct RoCC commands.
//!
//! The crate also hosts the scalar *software mappings* ([`ScalarKernels`]):
//! the `matlib` library-call style with per-call loop and memory overhead,
//! and the hand-optimized "Eigen-like" style with full unrolling and
//! register-resident temporaries, matching the two scalar software points
//! the paper evaluates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accel;
mod codegen;
mod config;
mod inorder;
mod ooo;

pub use accel::{Accelerator, DispatchResult, NullAccelerator};
pub use codegen::{ScalarKernels, ScalarStyle};
pub use config::{CoreConfig, CoreKind, IssueQueues};
pub use inorder::InOrderCore;
pub use ooo::OutOfOrderCore;

use soc_isa::{Cycles, Trace};

/// A scalar pipeline model that can replay a trace.
pub trait Pipeline {
    /// Simulates the trace from cycle 0 with the given attached
    /// accelerator, returning the cycle at which the last micro-op (and any
    /// fence-visible accelerator work) completes.
    fn run(&self, trace: &Trace, accel: &mut dyn Accelerator) -> Cycles;
}

/// Simulates a trace on the core described by `config` with no attached
/// accelerator.
///
/// # Examples
///
/// ```
/// use soc_cpu::{simulate_scalar, CoreConfig};
/// use soc_isa::{OpClass, TraceBuilder};
///
/// let mut b = TraceBuilder::new();
/// let x = b.load();
/// let y = b.fp(OpClass::FpAdd, &[x, x]);
/// b.store(&[y]);
/// let cycles = simulate_scalar(&CoreConfig::rocket(), &b.finish());
/// assert!(cycles > 0);
/// ```
pub fn simulate_scalar(config: &CoreConfig, trace: &Trace) -> Cycles {
    let mut null = NullAccelerator;
    simulate_with_accel(config, trace, &mut null)
}

/// Simulates a trace on `config` with an attached accelerator.
///
/// The accelerator is [`reset`](Accelerator::reset) before the run so each
/// simulation starts from a cold pipeline (scratchpad *contents* residency
/// is modelled by the accelerator itself, not reset here — see
/// `soc-gemmini`).
pub fn simulate_with_accel(
    config: &CoreConfig,
    trace: &Trace,
    accel: &mut dyn Accelerator,
) -> Cycles {
    match &config.kind {
        CoreKind::InOrder { .. } => InOrderCore::new(config.clone()).run(trace, accel),
        CoreKind::OutOfOrder { .. } => OutOfOrderCore::new(config.clone()).run(trace, accel),
    }
}
