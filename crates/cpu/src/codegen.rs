//! Scalar software mappings of the linear-algebra kernels.
//!
//! Two styles, matching the paper's two scalar software points:
//!
//! * [`ScalarStyle::Library`] — `matlib` calls: every operator is a
//!   function with call overhead, a scalar loop with per-iteration index
//!   bookkeeping and a back-edge branch, and a single accumulator (so GEMV
//!   inner products serialize on FMA latency).
//! * [`ScalarStyle::Optimized`] — hand-tuned "Eigen-like" code: fully
//!   unrolled for the statically known MPC sizes, operand reuse in
//!   registers (the `x` vector is loaded once per GEMV, not once per row),
//!   multiple rotating accumulators to break FMA dependence chains, and
//!   fused element-wise chains that keep temporaries in registers.

use soc_isa::{OpClass, TraceBuilder, VReg};

/// Number of rotating accumulators the optimized mappings use to break FMA
/// dependence chains.
const ACCUMULATORS: usize = 4;

/// Scalar code-generation style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarStyle {
    /// `matlib` library calls (loop + call overhead, single accumulator).
    Library,
    /// Hand-optimized, fully unrolled (Eigen-equivalent).
    Optimized,
}

/// Scalar kernel code generator.
///
/// Every method appends the micro-ops of one kernel invocation to the given
/// [`TraceBuilder`]. Sizes are in elements; all data is `f32`.
///
/// # Examples
///
/// ```
/// use soc_cpu::{simulate_scalar, CoreConfig, ScalarKernels, ScalarStyle};
/// use soc_isa::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// ScalarKernels::new(ScalarStyle::Optimized).gemv(&mut b, 12, 4);
/// let cycles = simulate_scalar(&CoreConfig::rocket(), &b.finish());
/// assert!(cycles > 0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ScalarKernels {
    style: ScalarStyle,
}

impl ScalarKernels {
    /// Creates a generator for the given style.
    pub fn new(style: ScalarStyle) -> Self {
        ScalarKernels { style }
    }

    /// The configured style.
    pub fn style(&self) -> ScalarStyle {
        self.style
    }

    fn is_library(&self) -> bool {
        self.style == ScalarStyle::Library
    }

    /// Function-call prologue/epilogue cost (library style only).
    fn call_overhead(&self, b: &mut TraceBuilder) {
        if self.is_library() {
            b.int_ops(5);
        }
    }

    /// Per-iteration loop bookkeeping (library style only).
    fn loop_overhead(&self, b: &mut TraceBuilder) {
        if self.is_library() {
            b.int_ops(2);
            b.branch(&[]);
        }
    }

    /// GEMV: `y = A·x` with `A` of shape `m × k`.
    pub fn gemv(&self, b: &mut TraceBuilder, m: usize, k: usize) {
        self.gemv_with(b, m, k, &[]);
    }

    /// GEMV with a fused epilogue applied to each output element before the
    /// store (e.g. `FpAdd` for `y = A·x + d`, `FpSimple` for negation).
    /// The epilogue is only register-fused in the optimized style; the
    /// library style spills to memory between the GEMV and the epilogue.
    pub fn gemv_with(&self, b: &mut TraceBuilder, m: usize, k: usize, epilogue: &[OpClass]) {
        match self.style {
            ScalarStyle::Library => {
                self.call_overhead(b);
                for _i in 0..m {
                    // Single accumulator: the inner product serializes.
                    let mut acc = b.fp(OpClass::FpSimple, &[]); // fmv zero
                    for _p in 0..k {
                        let a = b.load();
                        let x = b.load();
                        acc = b.fp(OpClass::FpFma, &[a, x, acc]);
                        self.loop_overhead(b);
                    }
                    b.store(&[acc]);
                    self.loop_overhead(b);
                }
                // Library epilogues are separate whole-vector passes.
                for &op in epilogue {
                    self.map(b, m, 2, &[op]);
                }
            }
            ScalarStyle::Optimized => {
                // x loaded once, kept in registers across rows. Rows are
                // processed in blocks of `ACCUMULATORS`: each row owns an
                // accumulator and the block's FMA chains interleave, hiding
                // FMA latency the way hand-tuned register-blocked GEMV
                // does.
                let xs: Vec<VReg> = (0..k).map(|_| b.load()).collect();
                let mut row = 0;
                while row < m {
                    let block = ACCUMULATORS.min(m - row);
                    let mut accs: Vec<Option<VReg>> = vec![None; block];
                    for &x in &xs {
                        for acc in accs.iter_mut() {
                            let a = b.load();
                            *acc = Some(match *acc {
                                Some(prev) => b.fp(OpClass::FpFma, &[a, x, prev]),
                                None => b.fp(OpClass::FpMul, &[a, x]),
                            });
                        }
                    }
                    for acc in accs.iter().flatten() {
                        let mut v = *acc;
                        for &op in epilogue {
                            let extra = b.load();
                            v = b.fp(op, &[v, extra]);
                        }
                        b.store(&[v]);
                    }
                    row += block;
                }
            }
        }
    }

    /// GEMM: `C = A·B` with `A` `m × k` and `B` `k × n`.
    pub fn gemm(&self, b: &mut TraceBuilder, m: usize, n: usize, k: usize) {
        match self.style {
            ScalarStyle::Library => {
                self.call_overhead(b);
                for _i in 0..m {
                    for _j in 0..n {
                        let mut acc = b.fp(OpClass::FpSimple, &[]);
                        for _p in 0..k {
                            let a = b.load();
                            let x = b.load();
                            acc = b.fp(OpClass::FpFma, &[a, x, acc]);
                            self.loop_overhead(b);
                        }
                        b.store(&[acc]);
                        self.loop_overhead(b);
                    }
                    self.loop_overhead(b);
                }
            }
            ScalarStyle::Optimized => {
                // Register-blocked: a block of `ACCUMULATORS` A rows is
                // loaded once and reused across the whole j loop; each
                // column of B is loaded once per block. The block rows'
                // FMA chains interleave, hiding latency.
                let mut row = 0;
                while row < m {
                    let block = ACCUMULATORS.min(m - row);
                    let a_rows: Vec<Vec<VReg>> = (0..block)
                        .map(|_| (0..k).map(|_| b.load()).collect())
                        .collect();
                    for _j in 0..n {
                        let mut accs: Vec<Option<VReg>> = vec![None; block];
                        for p in 0..k {
                            let bv = b.load();
                            for (row_regs, acc) in a_rows.iter().zip(accs.iter_mut()) {
                                let a = row_regs[p];
                                *acc = Some(match *acc {
                                    Some(prev) => b.fp(OpClass::FpFma, &[a, bv, prev]),
                                    None => b.fp(OpClass::FpMul, &[a, bv]),
                                });
                            }
                        }
                        for acc in accs.iter().flatten() {
                            b.store(&[*acc]);
                        }
                    }
                    row += block;
                }
            }
        }
    }

    /// Element-wise map over `n` elements: loads `inputs` operands per
    /// element, applies the FP op `chain` (first op consumes the loaded
    /// operands, the rest chain on the running value), stores the result.
    ///
    /// In library style each call also pays call/loop overhead; a fused
    /// multi-op chain should instead be issued as *separate* `map` calls to
    /// model `matlib` function boundaries — helper wrappers below do this.
    pub fn map(&self, b: &mut TraceBuilder, n: usize, inputs: usize, chain: &[OpClass]) {
        self.call_overhead(b);
        for _e in 0..n {
            let ins: Vec<VReg> = (0..inputs).map(|_| b.load()).collect();
            let mut v = if chain.is_empty() {
                *ins.first()
                    .expect("map with empty chain requires at least one input")
            } else {
                b.fp(chain[0], &ins[..ins.len().min(2)])
            };
            for &op in &chain[1..] {
                v = b.fp(op, &[v]);
            }
            b.store(&[v]);
            self.loop_overhead(b);
        }
    }

    /// `z = x + y` over `n` elements.
    pub fn vec_add(&self, b: &mut TraceBuilder, n: usize) {
        self.map(b, n, 2, &[OpClass::FpAdd]);
    }

    /// `z = x - y` over `n` elements.
    pub fn vec_sub(&self, b: &mut TraceBuilder, n: usize) {
        self.map(b, n, 2, &[OpClass::FpAdd]);
    }

    /// `z = alpha * x` over `n` elements.
    pub fn vec_scale(&self, b: &mut TraceBuilder, n: usize) {
        self.map(b, n, 1, &[OpClass::FpMul]);
    }

    /// `z = x + alpha * y` over `n` elements.
    pub fn vec_axpy(&self, b: &mut TraceBuilder, n: usize) {
        self.map(b, n, 2, &[OpClass::FpFma]);
    }

    /// `z = min(hi, max(lo, x))` over `n` elements.
    pub fn vec_clip(&self, b: &mut TraceBuilder, n: usize) {
        self.map(b, n, 1, &[OpClass::FpSimple, OpClass::FpSimple]);
    }

    /// Fused element-wise chain over `n` elements, keeping intermediates in
    /// registers (optimized style). In library style this decomposes into
    /// one `map` pass per op, paying the memory round-trip the paper's
    /// operator-fusion optimization eliminates.
    pub fn fused_map(&self, b: &mut TraceBuilder, n: usize, inputs: usize, chain: &[OpClass]) {
        match self.style {
            ScalarStyle::Library => {
                for (i, &op) in chain.iter().enumerate() {
                    let ins = if i == 0 { inputs } else { 2 };
                    self.map(b, n, ins, &[op]);
                }
            }
            ScalarStyle::Optimized => self.map(b, n, inputs, chain),
        }
    }

    /// Global reduction `max(|x - y|)` over `n` elements; returns the
    /// register holding the scalar result.
    pub fn reduce_max_abs_diff(&self, b: &mut TraceBuilder, n: usize) -> VReg {
        self.call_overhead(b);
        match self.style {
            ScalarStyle::Library => {
                let mut acc = b.fp(OpClass::FpSimple, &[]);
                for _e in 0..n {
                    let x = b.load();
                    let y = b.load();
                    let d = b.fp(OpClass::FpAdd, &[x, y]);
                    let a = b.fp(OpClass::FpSimple, &[d]);
                    acc = b.fp(OpClass::FpSimple, &[a, acc]);
                    self.loop_overhead(b);
                }
                acc
            }
            ScalarStyle::Optimized => {
                // Per-element |x - y| computed independently, then a
                // pairwise max tree.
                let mut vals: Vec<VReg> = Vec::with_capacity(n.max(1));
                for _e in 0..n {
                    let x = b.load();
                    let y = b.load();
                    let d = b.fp(OpClass::FpAdd, &[x, y]);
                    vals.push(b.fp(OpClass::FpSimple, &[d]));
                }
                if vals.is_empty() {
                    return b.fp(OpClass::FpSimple, &[]);
                }
                while vals.len() > 1 {
                    let mut next = Vec::with_capacity(vals.len().div_ceil(2));
                    for pair in vals.chunks(2) {
                        if pair.len() == 2 {
                            next.push(b.fp(OpClass::FpSimple, &[pair[0], pair[1]]));
                        } else {
                            next.push(pair[0]);
                        }
                    }
                    vals = next;
                }
                vals[0]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate_scalar, CoreConfig};
    use soc_isa::Trace;

    fn cycles_of(f: impl Fn(&mut TraceBuilder)) -> u64 {
        let mut b = TraceBuilder::new();
        f(&mut b);
        simulate_scalar(&CoreConfig::rocket(), &b.finish())
    }

    fn trace_of(f: impl Fn(&mut TraceBuilder)) -> Trace {
        let mut b = TraceBuilder::new();
        f(&mut b);
        b.finish()
    }

    #[test]
    fn optimized_gemv_beats_library_on_rocket() {
        let lib = cycles_of(|b| ScalarKernels::new(ScalarStyle::Library).gemv(b, 12, 12));
        let opt = cycles_of(|b| ScalarKernels::new(ScalarStyle::Optimized).gemv(b, 12, 12));
        assert!(
            (opt as f64) < lib as f64 * 0.6,
            "optimized {opt} should clearly beat library {lib}"
        );
    }

    #[test]
    fn gemm_scales_with_volume() {
        let small = cycles_of(|b| ScalarKernels::new(ScalarStyle::Optimized).gemm(b, 4, 4, 4));
        let big = cycles_of(|b| ScalarKernels::new(ScalarStyle::Optimized).gemm(b, 8, 8, 8));
        // 8x volume; allow generous slack for fixed overheads.
        assert!(big > small * 4, "big {big} vs small {small}");
    }

    #[test]
    fn fused_map_saves_memory_roundtrip() {
        let chain = [OpClass::FpAdd, OpClass::FpSimple, OpClass::FpSimple];
        let lib =
            cycles_of(|b| ScalarKernels::new(ScalarStyle::Library).fused_map(b, 40, 2, &chain));
        let opt =
            cycles_of(|b| ScalarKernels::new(ScalarStyle::Optimized).fused_map(b, 40, 2, &chain));
        assert!(opt < lib, "fused {opt} vs library {lib}");
    }

    #[test]
    fn reduction_tree_beats_serial_chain() {
        let lib = cycles_of(|b| {
            ScalarKernels::new(ScalarStyle::Library).reduce_max_abs_diff(b, 100);
        });
        let opt = cycles_of(|b| {
            ScalarKernels::new(ScalarStyle::Optimized).reduce_max_abs_diff(b, 100);
        });
        assert!(opt < lib, "tree {opt} vs serial {lib}");
    }

    #[test]
    fn library_traces_contain_branches_optimized_do_not() {
        let lib = trace_of(|b| ScalarKernels::new(ScalarStyle::Library).gemv(b, 4, 4));
        let opt = trace_of(|b| ScalarKernels::new(ScalarStyle::Optimized).gemv(b, 4, 4));
        assert!(lib.stats().branches > 0);
        assert_eq!(opt.stats().branches, 0);
    }

    #[test]
    fn gemv_flop_count_matches_problem() {
        // Each output row costs one multiply plus (k-1) FMAs:
        // 2*m*k - m flops in total.
        let opt = trace_of(|b| ScalarKernels::new(ScalarStyle::Optimized).gemv(b, 12, 4));
        let s = opt.stats();
        assert_eq!(s.scalar_flops, 2 * 12 * 4 - 12, "flops {}", s.scalar_flops);
    }

    #[test]
    fn mpc_sized_gemv_is_issue_bound_not_latency_bound() {
        // The paper's point: 12x4 kernels are small; the optimized mapping
        // on Rocket should cost roughly (loads + fp ops) cycles, i.e. be
        // frontend/issue bound rather than serialized at 4 cycles per FMA.
        let c = cycles_of(|b| ScalarKernels::new(ScalarStyle::Optimized).gemv(b, 12, 4));
        let serial_bound = 12 * 4 * 4; // all FMAs fully serialized
        assert!(
            c < serial_bound as u64,
            "cycles {c} vs serial {serial_bound}"
        );
    }
}
