//! The design-point registry: every hardware+software configuration the
//! paper evaluates, resolved to [`BackendPipeline`] instances.
//!
//! [`pipeline_for`] is the **one** place a [`Backend`] value is matched
//! on; everything downstream (pricing, verification, energy, faults,
//! tuning, the CLI) goes through the returned trait object, so adding a
//! back-end means implementing the trait and registering a platform —
//! no dispatch-site edits.

use crate::gemmini::GemminiPipeline;
use crate::pipeline::BackendPipeline;
use crate::registry::PipelineExecutor;
use crate::saturn::SaturnPipeline;
use crate::scalar::ScalarPipeline;
use soc_area::AreaBreakdown;
use soc_cpu::{CoreConfig, ScalarStyle};
use soc_gemmini::{GemminiConfig, GemminiOpts};
use soc_vector::{SaturnConfig, VectorStyle};
use std::sync::Arc;
use tinympc::KernelExecutor;

/// The accelerator (or lack thereof) attached to the scalar core.
#[derive(Debug, Clone)]
pub enum Backend {
    /// Bare scalar core with a software mapping style.
    Scalar(ScalarStyle),
    /// Saturn vector unit.
    Saturn {
        /// Vector-unit configuration.
        config: SaturnConfig,
        /// Software mapping style.
        style: VectorStyle,
        /// Uniform LMUL override (`None` = the optimized per-class
        /// policy).
        lmul: Option<u8>,
    },
    /// Gemmini systolic array.
    Gemmini {
        /// Accelerator configuration.
        config: GemminiConfig,
        /// Software mapping options.
        opts: GemminiOpts,
    },
}

/// One design point: a scalar core plus an optional accelerator and the
/// software mapping used on it.
#[derive(Debug, Clone)]
pub struct Platform {
    /// Display name (Table I naming).
    pub name: String,
    /// The scalar frontend.
    pub core: CoreConfig,
    /// The attached back-end.
    pub backend: Backend,
}

/// Resolves a platform's backend description to its pipeline instance.
///
/// This is the single back-end dispatch point in the workspace: the
/// `Backend` enum is serialization glue (a plain-data description that
/// sweeps can clone and hash), and this function is where descriptions
/// become behavior.
pub fn pipeline_for(platform: &Platform) -> Arc<dyn BackendPipeline> {
    match &platform.backend {
        Backend::Scalar(style) => Arc::new(ScalarPipeline::new(platform.core.clone(), *style)),
        Backend::Saturn {
            config,
            style,
            lmul,
        } => {
            let mut p = SaturnPipeline::new(platform.core.clone(), *config, *style);
            if let Some(l) = lmul {
                p = p.with_uniform_lmul(*l);
            }
            Arc::new(p)
        }
        Backend::Gemmini { config, opts } => {
            Arc::new(GemminiPipeline::new(platform.core.clone(), *config, *opts))
        }
    }
}

/// An ordered collection of registered platforms with unique display
/// names — the builder behind [`Platform::table1_registry`] and the
/// seam a new back-end registers into.
#[derive(Default)]
pub struct BackendCatalog {
    platforms: Vec<Platform>,
}

impl BackendCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        BackendCatalog::default()
    }

    /// Registers a platform.
    ///
    /// # Errors
    ///
    /// Rejects a duplicate display name (two registrations that would be
    /// indistinguishable in every report).
    pub fn register(&mut self, platform: Platform) -> Result<(), String> {
        if self.platforms.iter().any(|p| p.name == platform.name) {
            return Err(format!("backend '{}' is already registered", platform.name));
        }
        self.platforms.push(platform);
        Ok(())
    }

    /// The registered platforms, in registration order.
    pub fn platforms(&self) -> &[Platform] {
        &self.platforms
    }

    /// Consumes the catalog, yielding the registered platforms.
    pub fn into_platforms(self) -> Vec<Platform> {
        self.platforms
    }

    /// Looks a platform up by display name (case-insensitive).
    pub fn find(&self, name: &str) -> Option<&Platform> {
        self.platforms
            .iter()
            .find(|p| p.name.eq_ignore_ascii_case(name))
    }
}

impl Platform {
    /// Rocket running hand-optimized scalar code — the paper's baseline.
    pub fn rocket_eigen() -> Self {
        Platform {
            name: "Rocket".into(),
            core: CoreConfig::rocket(),
            backend: Backend::Scalar(ScalarStyle::Optimized),
        }
    }

    /// Rocket running `matlib` library code.
    pub fn rocket_matlib() -> Self {
        Platform {
            name: "Rocket (matlib)".into(),
            core: CoreConfig::rocket(),
            backend: Backend::Scalar(ScalarStyle::Library),
        }
    }

    /// Any bare scalar core running hand-optimized code, named after the
    /// core.
    pub fn scalar(core: CoreConfig) -> Self {
        Platform {
            name: core.name.to_string(),
            core,
            backend: Backend::Scalar(ScalarStyle::Optimized),
        }
    }

    /// A BOOM core running hand-optimized scalar code.
    pub fn boom(core: CoreConfig) -> Self {
        Platform::scalar(core)
    }

    /// A Saturn reference design with the hand-optimized mapping.
    pub fn saturn(core: CoreConfig, config: SaturnConfig) -> Self {
        Platform {
            name: format!("Ref{}{}", config.name, core.name),
            core,
            backend: Backend::Saturn {
                config,
                style: VectorStyle::Fused,
                lmul: None,
            },
        }
    }

    /// A Saturn design with an explicit style and uniform LMUL.
    pub fn saturn_with(
        core: CoreConfig,
        config: SaturnConfig,
        style: VectorStyle,
        lmul: Option<u8>,
    ) -> Self {
        let style_tag = match style {
            VectorStyle::Matlib => "matlib",
            VectorStyle::Fused => "fused",
        };
        let lmul_tag = lmul.map_or(String::new(), |l| format!(",LMUL={l}"));
        Platform {
            name: format!("{}{} ({style_tag}{lmul_tag})", config.name, core.name),
            core,
            backend: Backend::Saturn {
                config,
                style,
                lmul,
            },
        }
    }

    /// A Gemmini design point.
    pub fn gemmini(core: CoreConfig, config: GemminiConfig, opts: GemminiOpts) -> Self {
        Platform {
            name: format!("{}{}", config.name, core.name),
            core,
            backend: Backend::Gemmini { config, opts },
        }
    }

    /// Every design point of the paper's Table I (performance rows),
    /// plus the Shuttle-driven Gemmini variant registered on top of the
    /// paper's set — the seam's proof that a new platform lands via one
    /// registration.
    pub fn table1_registry() -> Vec<Platform> {
        let mut catalog = BackendCatalog::new();
        for p in [
            Platform::rocket_eigen(),
            Platform::boom(CoreConfig::small_boom()),
            Platform::boom(CoreConfig::medium_boom()),
            Platform::boom(CoreConfig::large_boom()),
            Platform::boom(CoreConfig::mega_boom()),
            Platform::saturn(CoreConfig::rocket(), SaturnConfig::v512d128()),
            Platform::saturn(CoreConfig::rocket(), SaturnConfig::v512d256()),
            Platform::saturn(CoreConfig::shuttle(), SaturnConfig::v512d128()),
            Platform::saturn(CoreConfig::shuttle(), SaturnConfig::v512d256()),
        ] {
            catalog.register(p).expect("table1 names are unique");
        }
        let mut os32 = Platform::gemmini(
            CoreConfig::rocket(),
            GemminiConfig::os_4x4_32kb(),
            GemminiOpts::optimized(),
        );
        os32.name = "OSGemminiRocket32KB".into();
        let mut os64 = Platform::gemmini(
            CoreConfig::rocket(),
            GemminiConfig::os_4x4_64kb(),
            GemminiOpts::optimized(),
        );
        os64.name = "OSGemminiRocket64KB".into();
        // The WS design was evaluated with only unrolling + static
        // mapping (no residency/fusion/pooling optimizations).
        let ws_opts = GemminiOpts {
            isa: soc_gemmini::IsaStyle::Fine,
            static_mapping: true,
            scratchpad_resident: false,
            fuse_activation: false,
            pooling_reduction: false,
        };
        let mut ws64 =
            Platform::gemmini(CoreConfig::rocket(), GemminiConfig::ws_4x4_64kb(), ws_opts);
        ws64.name = "WSGemminiRocket64KB".into();
        // Shuttle-driven Gemmini: the dual-issue frontend feeding the
        // same mesh. Lands purely via this registration — no dispatch
        // code anywhere else knows about it.
        let mut os32_shuttle = Platform::gemmini(
            CoreConfig::shuttle(),
            GemminiConfig::os_4x4_32kb(),
            GemminiOpts::optimized(),
        );
        os32_shuttle.name = "OSGemminiShuttle32KB".into();
        for p in [os32, os64, ws64, os32_shuttle] {
            catalog.register(p).expect("table1 names are unique");
        }
        catalog.into_platforms()
    }

    /// Builds the timing executor for this platform: a handle to the
    /// process-wide shared memoized pricer for this configuration.
    pub fn executor(&self) -> Box<dyn KernelExecutor> {
        Box::new(PipelineExecutor::for_platform(self))
    }

    /// Area of this platform (ASAP7-calibrated model).
    pub fn area(&self) -> AreaBreakdown {
        pipeline_for(self).area()
    }

    /// Canonical configuration identity (display names excluded); the
    /// sweep cache and the pricer interner key off this.
    pub fn cache_id(&self) -> String {
        pipeline_for(self).cache_id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_table1() {
        let reg = Platform::table1_registry();
        assert_eq!(reg.len(), 13);
        let names: Vec<_> = reg.iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"Rocket"));
        assert!(names.contains(&"MegaBoom"));
        assert!(names.contains(&"RefV512D256Shuttle"));
        assert!(names.contains(&"OSGemminiRocket32KB"));
        assert!(names.contains(&"WSGemminiRocket64KB"));
        assert!(names.contains(&"OSGemminiShuttle32KB"));
    }

    #[test]
    fn registry_areas_match_table1_anchors() {
        let reg = Platform::table1_registry();
        let area_of = |n: &str| {
            reg.iter()
                .find(|p| p.name == n)
                .map(|p| p.area().total())
                .unwrap_or(f64::NAN)
        };
        assert!((area_of("Rocket") - 486_287.0).abs() < 1.0);
        assert!((area_of("RefV512D128Rocket") - 1_340_095.0).abs() < 1_000.0);
        assert!((area_of("OSGemminiRocket32KB") - 1_506_498.0).abs() < 5_000.0);
    }

    #[test]
    fn executors_are_buildable_for_all_platforms() {
        for p in Platform::table1_registry() {
            let e = p.executor();
            assert!(!e.name().is_empty());
        }
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let mut catalog = BackendCatalog::new();
        catalog.register(Platform::rocket_eigen()).unwrap();
        let err = catalog.register(Platform::rocket_eigen()).unwrap_err();
        assert!(err.contains("already registered"), "{err}");
        assert_eq!(catalog.platforms().len(), 1);
    }

    #[test]
    fn catalog_finds_by_name_case_insensitively() {
        let mut catalog = BackendCatalog::new();
        for p in Platform::table1_registry() {
            catalog.register(p).unwrap();
        }
        assert!(catalog.find("rocket").is_some());
        assert!(catalog.find("osgemminishuttle32kb").is_some());
        assert!(catalog.find("no-such-backend").is_none());
    }

    #[test]
    fn every_table1_platform_resolves_to_a_pipeline() {
        for p in Platform::table1_registry() {
            let pipe = pipeline_for(&p);
            assert!(!pipe.cache_id().is_empty(), "{}", p.name);
            assert!(!pipe.fault_surface().is_empty(), "{}", p.name);
            assert!(
                matches!(pipe.family(), "scalar" | "saturn" | "gemmini"),
                "{}",
                p.name
            );
        }
    }
}
