//! The back-end pipeline seam.
//!
//! Every back-end family (scalar cores, Saturn vector units, Gemmini
//! systolic arrays) is one implementation of [`BackendPipeline`]: a
//! staged `lower → verify → simulate → price` pipeline plus the
//! area/energy/fault metadata the experiments need. The
//! [`Platform`] registry resolves plain-data design-point descriptions
//! to pipelines through one dispatch point ([`pipeline_for`]), and the
//! pricer registry ([`priced_for`]) interns one memoized steady-state
//! pricer per distinct configuration for the whole process.
//!
//! Adding a back-end: implement [`BackendPipeline`], give it a
//! [`Platform`] constructor, and register it (see
//! [`Platform::table1_registry`]). No other crate needs editing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod energy;
mod gemmini;
mod pipeline;
mod platform;
mod registry;
mod saturn;
mod scalar;

pub use energy::EnergyParams;
pub use gemmini::GemminiPipeline;
pub use pipeline::{
    steady_cost, AccelModel, BackendPipeline, BoundClaim, FaultSurface, KernelLowering,
    KernelShape, Residency, TuningCandidate,
};
pub use platform::{pipeline_for, Backend, BackendCatalog, Platform};
pub use registry::{priced_for, PipelineExecutor, PricedPipeline};
pub use saturn::SaturnPipeline;
pub use scalar::ScalarPipeline;

#[cfg(test)]
mod tests {
    use super::*;
    use soc_cpu::{CoreConfig, ScalarStyle};
    use soc_gemmini::{GemminiConfig, GemminiOpts};
    use soc_vector::{SaturnConfig, VectorStyle};
    use tinympc::{KernelId, ProblemDims};

    fn dims() -> ProblemDims {
        ProblemDims {
            nx: 12,
            nu: 4,
            horizon: 10,
        }
    }

    #[test]
    fn scalar_memoization_is_stable() {
        let mut e = Platform::rocket_eigen().executor();
        let a = e.kernel_cycles(KernelId::ForwardPass1, &dims()).unwrap();
        let b = e.kernel_cycles(KernelId::ForwardPass1, &dims()).unwrap();
        assert_eq!(a, b);
        assert!(a > 0);
    }

    #[test]
    fn eigen_beats_matlib_on_every_kernel() {
        let d = dims();
        let lib = ScalarPipeline::new(CoreConfig::rocket(), ScalarStyle::Library);
        let opt = ScalarPipeline::new(CoreConfig::rocket(), ScalarStyle::Optimized);
        for k in KernelId::ALL {
            let l = lib.steady_cycles(k, &d).unwrap();
            let o = opt.steady_cycles(k, &d).unwrap();
            assert!(o <= l, "{k}: optimized {o} vs library {l}");
        }
    }

    #[test]
    fn saturn_accelerates_stripmining_over_rocket() {
        let d = dims();
        let scalar = ScalarPipeline::new(CoreConfig::rocket(), ScalarStyle::Optimized);
        let saturn = SaturnPipeline::new(
            CoreConfig::rocket(),
            SaturnConfig::v512d256(),
            VectorStyle::Fused,
        );
        let s = scalar.steady_cycles(KernelId::UpdateSlack2, &d).unwrap();
        let v = saturn.steady_cycles(KernelId::UpdateSlack2, &d).unwrap();
        assert!(v < s, "saturn {v} vs scalar {s}");
    }

    #[test]
    fn uniform_lmul_sweep_changes_costs() {
        let d = dims();
        let mk = |l: u8| {
            SaturnPipeline::new(
                CoreConfig::rocket(),
                SaturnConfig::v512d256(),
                VectorStyle::Fused,
            )
            .with_uniform_lmul(l)
        };
        let strip1 = mk(1).steady_cycles(KernelId::UpdateSlack2, &d).unwrap();
        let strip8 = mk(8).steady_cycles(KernelId::UpdateSlack2, &d).unwrap();
        assert!(
            strip8 <= strip1,
            "LMUL=8 should help strip-mining: {strip8} vs {strip1}"
        );
        let it1 = mk(1).steady_cycles(KernelId::BackwardPass1, &d).unwrap();
        let it8 = mk(8).steady_cycles(KernelId::BackwardPass1, &d).unwrap();
        assert!(
            it8 >= it1,
            "LMUL=8 should not help iterative kernels: {it8} vs {it1}"
        );
    }

    #[test]
    fn gemmini_setup_charged_only_when_resident() {
        let d = dims();
        let opt = GemminiPipeline::new(
            CoreConfig::rocket(),
            GemminiConfig::os_4x4_32kb(),
            GemminiOpts::optimized(),
        );
        assert!(opt.setup_cost(&d).unwrap() > 0);
        let base = GemminiPipeline::new(
            CoreConfig::rocket(),
            GemminiConfig::os_4x4_32kb(),
            GemminiOpts::baseline(),
        );
        assert_eq!(base.setup_cost(&d).unwrap(), 0);
    }

    #[test]
    fn gemmini_optimized_beats_baseline_on_iterative_kernels() {
        let d = dims();
        let cfg = GemminiConfig::os_4x4_32kb();
        let opt = GemminiPipeline::new(CoreConfig::rocket(), cfg, GemminiOpts::optimized());
        let base = GemminiPipeline::new(CoreConfig::rocket(), cfg, GemminiOpts::baseline());
        for k in [KernelId::ForwardPass1, KernelId::BackwardPass2] {
            let o = opt.steady_cycles(k, &d).unwrap();
            let b = base.steady_cycles(k, &d).unwrap();
            assert!(o < b, "{k}: optimized {o} vs baseline {b}");
        }
    }

    #[test]
    fn all_kernels_have_positive_cost_everywhere() {
        let d = dims();
        let pipelines: Vec<Box<dyn BackendPipeline>> = vec![
            Box::new(ScalarPipeline::new(
                CoreConfig::rocket(),
                ScalarStyle::Optimized,
            )),
            Box::new(SaturnPipeline::new(
                CoreConfig::rocket(),
                SaturnConfig::v512d128(),
                VectorStyle::Fused,
            )),
            Box::new(GemminiPipeline::new(
                CoreConfig::rocket(),
                GemminiConfig::os_4x4_32kb(),
                GemminiOpts::optimized(),
            )),
        ];
        for p in &pipelines {
            for k in KernelId::ALL {
                assert!(p.steady_cycles(k, &d).unwrap() > 0, "{k} on {}", p.name());
            }
        }
    }

    #[test]
    fn fault_surfaces_are_family_shaped() {
        use FaultSurface::*;
        let reg = Platform::table1_registry();
        let surface_of =
            |name: &str| pipeline_for(reg.iter().find(|p| p.name == name).unwrap()).fault_surface();
        assert_eq!(surface_of("Rocket"), &[StoredMatrixWord, DmaWord]);
        assert_eq!(surface_of("RefV512D256Rocket"), &[VectorRegister, DmaWord]);
        assert_eq!(
            surface_of("OSGemminiRocket32KB"),
            &[StoredMatrixWord, DmaWord, CommandStream]
        );
    }
}
