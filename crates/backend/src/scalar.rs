//! The scalar back-end family as a [`BackendPipeline`]: a bare core
//! (Rocket / Shuttle / BOOM) with either the `matlib` library mapping or
//! the hand-optimized Eigen-equivalent mapping.

use crate::pipeline::{
    core_id, AccelModel, BackendPipeline, FaultSurface, KernelLowering, KernelShape, Residency,
    TuningCandidate,
};
use soc_area::{cpu_area, AreaBreakdown};
use soc_cpu::{Accelerator, CoreConfig, NullAccelerator, ScalarKernels, ScalarStyle};
use soc_isa::{OpClass, Trace, TraceBuilder};
use std::sync::Arc;
use tinympc::{KernelId, ProblemDims};

/// Scalar cores: cached matrices live in the D-cache and the workspace
/// streams over the memory bus.
const FAULT_SURFACE: &[FaultSurface] = &[FaultSurface::StoredMatrixWord, FaultSurface::DmaWord];

/// A scalar design point: one core plus a software mapping style.
#[derive(Debug, Clone)]
pub struct ScalarPipeline {
    core: CoreConfig,
    style: ScalarStyle,
}

impl ScalarPipeline {
    /// Creates the pipeline for `core` with the given mapping style.
    pub fn new(core: CoreConfig, style: ScalarStyle) -> Self {
        ScalarPipeline { core, style }
    }
}

struct ScalarLowering {
    kernels: ScalarKernels,
}

impl KernelLowering for ScalarLowering {
    fn emit(&mut self, b: &mut TraceBuilder, k: KernelId, d: &ProblemDims) {
        let (nx, nu) = (d.nx, d.nu);
        let sx = d.state_elems();
        let su = d.input_elems();
        let ks = &self.kernels;
        use KernelId::*;
        match k {
            // u = −K∞ x − d
            ForwardPass1 => ks.gemv_with(b, nu, nx, &[OpClass::FpSimple, OpClass::FpAdd]),
            // x' = A x + B u
            ForwardPass2 => {
                ks.gemv(b, nx, nx);
                ks.gemv_with(b, nx, nu, &[OpClass::FpAdd]);
            }
            // d = Quu⁻¹ (Bᵀ p + r)
            BackwardPass1 => {
                ks.gemv_with(b, nu, nx, &[OpClass::FpAdd]);
                ks.gemv(b, nu, nu);
            }
            // p = q + (A−BK)ᵀ p − K∞ᵀ r
            BackwardPass2 => {
                ks.gemv_with(b, nx, nx, &[OpClass::FpAdd]);
                ks.gemv_with(b, nx, nu, &[OpClass::FpAdd]);
            }
            // p[N−1] = −P∞ xref − ρ(vnew − g)
            UpdateLinearCost4 => {
                ks.gemv_with(b, nx, nx, &[OpClass::FpSimple]);
                ks.fused_map(b, nx, 2, &[OpClass::FpAdd, OpClass::FpFma]);
            }
            // znew = clip(u + y)
            UpdateSlack1 => ks.fused_map(
                b,
                su,
                2,
                &[OpClass::FpAdd, OpClass::FpSimple, OpClass::FpSimple],
            ),
            UpdateSlack2 => ks.fused_map(
                b,
                sx,
                2,
                &[OpClass::FpAdd, OpClass::FpSimple, OpClass::FpSimple],
            ),
            // y += u − znew ; g += x − vnew
            UpdateDual1 => {
                ks.fused_map(b, su, 3, &[OpClass::FpAdd, OpClass::FpAdd]);
                ks.fused_map(b, sx, 3, &[OpClass::FpAdd, OpClass::FpAdd]);
            }
            // r = −ρ (znew − y)
            UpdateLinearCost1 => ks.fused_map(b, su, 2, &[OpClass::FpAdd, OpClass::FpMul]),
            // q = −(xref ⊙ Qdiag)
            UpdateLinearCost2 => ks.fused_map(b, sx, 2, &[OpClass::FpMul, OpClass::FpSimple]),
            // q −= ρ (vnew − g)
            UpdateLinearCost3 => ks.fused_map(b, sx, 3, &[OpClass::FpAdd, OpClass::FpFma]),
            PrimalResidualState | DualResidualState => {
                ks.reduce_max_abs_diff(b, sx);
            }
            PrimalResidualInput | DualResidualInput => {
                ks.reduce_max_abs_diff(b, su);
            }
        }
    }
}

/// The two scalar software mappings every target can fall back to; the
/// Saturn and Gemmini pipelines prepend these to their own candidates.
pub(crate) fn scalar_candidates(core: &CoreConfig) -> Vec<TuningCandidate> {
    vec![
        TuningCandidate {
            label: "scalar hand-optimized".into(),
            pipeline: Arc::new(ScalarPipeline::new(core.clone(), ScalarStyle::Optimized)),
        },
        TuningCandidate {
            label: "scalar matlib".into(),
            pipeline: Arc::new(ScalarPipeline::new(core.clone(), ScalarStyle::Library)),
        },
    ]
}

impl BackendPipeline for ScalarPipeline {
    fn family(&self) -> &'static str {
        "scalar"
    }

    fn core(&self) -> &CoreConfig {
        &self.core
    }

    fn name(&self) -> String {
        let style = match self.style {
            ScalarStyle::Library => "matlib",
            ScalarStyle::Optimized => "Eigen-opt",
        };
        format!("{} ({style})", self.core.name)
    }

    fn cache_id(&self) -> String {
        let style = match self.style {
            ScalarStyle::Library => "lib",
            ScalarStyle::Optimized => "opt",
        };
        format!("scalar|{}|style={style}", core_id(&self.core))
    }

    fn describe(&self) -> String {
        let style = match self.style {
            ScalarStyle::Library => "matlib library mapping",
            ScalarStyle::Optimized => "hand-optimized (Eigen-equivalent) mapping",
        };
        format!("bare {} core, {style}", self.core.name)
    }

    fn lowering(&self) -> Box<dyn KernelLowering> {
        Box::new(ScalarLowering {
            kernels: ScalarKernels::new(self.style),
        })
    }

    fn accelerator(&self) -> Box<dyn Accelerator> {
        Box::new(NullAccelerator)
    }

    fn accel_model(&self) -> AccelModel {
        AccelModel::None
    }

    fn area(&self) -> AreaBreakdown {
        cpu_area(&self.core)
    }

    fn fault_surface(&self) -> &'static [FaultSurface] {
        FAULT_SURFACE
    }

    fn standalone_trace(
        &self,
        shape: KernelShape,
        residency: Residency,
        i: usize,
        k: usize,
    ) -> (Trace, usize) {
        let gen = ScalarKernels::new(self.style);
        let mut b = TraceBuilder::new();
        let emit = |b: &mut TraceBuilder| match shape {
            KernelShape::Gemv => gen.gemv(b, i, k),
            KernelShape::Gemm => gen.gemm(b, i, k, k),
        };
        emit(&mut b);
        let mark = b.len();
        match residency {
            Residency::Warm => {
                emit(&mut b);
                (b.finish(), mark)
            }
            Residency::Cold => (b.finish(), 0),
        }
    }

    fn tuning_candidates(&self) -> Vec<TuningCandidate> {
        scalar_candidates(&self.core)
    }
}
