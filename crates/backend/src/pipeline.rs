//! The [`BackendPipeline`] trait: one uniform lower → verify → simulate →
//! price → area/energy seam shared by every back-end family.
//!
//! A pipeline is stateless and cheap to construct; all mutable pricing
//! state (memo tables) lives in the registry's
//! [`crate::registry::PricedPipeline`] wrapper so every consumer of the
//! same configuration shares one memoized pricer.

use soc_area::AreaBreakdown;
use soc_cpu::{simulate_with_accel, Accelerator, CoreConfig, CoreKind};
use soc_gemmini::GemminiConfig;
use soc_isa::{Trace, TraceBuilder};
use soc_vector::SaturnConfig;
use std::sync::Arc;
use tinympc::{KernelId, ProblemDims};

use crate::energy::EnergyParams;

/// Simulates `trace`'s twice-emitted kernel material: returns
/// `cycles(full) − cycles(prefix)` where `prefix` is the first `mark` ops.
pub fn steady_cost(
    core: &CoreConfig,
    trace: &Trace,
    mark: usize,
    mut fresh_accel: impl FnMut() -> Box<dyn Accelerator>,
) -> u64 {
    let prefix: Trace = trace.ops()[..mark].iter().copied().collect();
    let mut a1 = fresh_accel();
    let full = simulate_with_accel(core, trace, a1.as_mut());
    let mut a2 = fresh_accel();
    let head = simulate_with_accel(core, &prefix, a2.as_mut());
    full.saturating_sub(head).max(1)
}

/// Converts a [`soc_verify::TraceRejection`] into the solver-facing
/// recoverable error so callers can fall back instead of crashing.
pub(crate) fn gate_trace(
    trace: &Trace,
    config: &soc_verify::VerifyConfig,
    what: &str,
) -> tinympc::Result<()> {
    soc_verify::gate(trace, config, what).map_err(|r| tinympc::Error::InvalidTrace {
        backend: r.backend,
        report: r.report,
    })
}

/// Canonical serialization of a scalar core for
/// [`BackendPipeline::cache_id`]: every timing-relevant field, no
/// display names.
pub(crate) fn core_id(core: &CoreConfig) -> String {
    let kind = match &core.kind {
        soc_cpu::CoreKind::InOrder { issue_width } => format!("io:iw={issue_width}"),
        soc_cpu::CoreKind::OutOfOrder {
            fetch_width,
            decode_width,
            rob_size,
            queues,
        } => format!(
            "ooo:fw={fetch_width},dw={decode_width},rob={rob_size},mi={},ii={},fi={},iq={}",
            queues.mem_issue, queues.int_issue, queues.fp_issue, queues.iq_entries
        ),
    };
    let l = &core.latency;
    format!(
        "{kind};fpu={},mp={},vds={};lat={},{},{},{},{},{},{},{}",
        core.fpu_count,
        core.mem_ports,
        core.vector_dispatch_slots,
        l.int_alu,
        l.int_mul,
        l.load,
        l.fp_add,
        l.fp_mul,
        l.fp_fma,
        l.fp_div,
        l.fp_simple
    )
}

/// A hardware structure where an injected fault is architecturally
/// meaningful on a back-end. The fault-injection campaign derives its
/// per-back-end site lists from [`BackendPipeline::fault_surface`]
/// instead of hand-coding them per family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSurface {
    /// A word of the cached solver matrices at rest (Gemmini scratchpad,
    /// or the D-cache on scalar cores).
    StoredMatrixWord,
    /// A workspace word in flight on the DMA / memory path.
    DmaWord,
    /// A vector-register element.
    VectorRegister,
    /// A command in flight on the accelerator command stream (RoCC).
    CommandStream,
}

/// The accelerator configuration attached to a back-end, as plain data.
///
/// The trace simulators consume accelerators through the opaque
/// [`Accelerator`] trait; static analyzers (the `soc-bounds` crate) need
/// the underlying configuration instead, so they can interpret the same
/// dispatch algebra abstractly without replaying a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccelModel {
    /// No accelerator (scalar back-ends; `NullAccelerator`).
    None,
    /// A Saturn vector unit.
    Saturn(SaturnConfig),
    /// A Gemmini systolic array.
    Gemmini(GemminiConfig),
}

/// How tight a static cycle bound a back-end's timing model admits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundClaim {
    /// The analyzer reproduces the trace simulator bit for bit: bounds are
    /// singleton intervals (in-order cores — the simulator itself is a
    /// deterministic single pass in program order).
    Exact,
    /// The analyzer brackets the simulator from both sides (out-of-order
    /// cores — backfilling issue-slot allocation is not monotone, so the
    /// analyzer runs sound lower/upper slot policies instead).
    Bounded,
}

impl BoundClaim {
    /// Stable label used in reports and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            BoundClaim::Exact => "exact",
            BoundClaim::Bounded => "bounded",
        }
    }
}

/// Standalone kernel shape for the sweep experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelShape {
    /// Matrix-vector product of an `I × K` matrix.
    Gemv,
    /// Matrix-matrix product `I × K` times `K × K`.
    Gemm,
}

/// Operand residency for standalone kernel measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// Operands arrive from memory: Gemmini pays mvin/mvout DMA, matching
    /// a one-shot kernel invocation (Figures 13-15, where GEMV's lack of
    /// reuse is the point).
    Cold,
    /// Operands are already resident (scratchpad / L1) and the kernel is
    /// measured in steady state (Figure 8, which isolates mesh
    /// utilization).
    Warm,
}

/// One lowering session: maps TinyMPC kernels to a back-end's micro-op
/// stream. A session may be stateful (Gemmini tracks scratchpad residency
/// across emissions within one trace), so pipelines hand out a **fresh**
/// session per generated trace.
pub trait KernelLowering {
    /// Appends one invocation of `kernel` to the trace under
    /// construction.
    fn emit(&mut self, b: &mut TraceBuilder, kernel: KernelId, dims: &ProblemDims);
}

/// One candidate software mapping the auto-tuner measures for a target.
pub struct TuningCandidate {
    /// Human-readable mapping label (stable: reports key off it).
    pub label: String,
    /// The pipeline that lowers and prices this mapping.
    pub pipeline: Arc<dyn BackendPipeline>,
}

/// A back-end family expressed as a staged pipeline.
///
/// Required methods describe the configuration (identity, lowering,
/// timing-model accelerator, area, fault surface); the provided methods
/// are the shared stage combinators — trace generation, the verification
/// gate, steady-state pricing — that used to be triplicated across the
/// per-family executors.
pub trait BackendPipeline: Send + Sync {
    /// Back-end family tag (`"scalar"`, `"saturn"`, `"gemmini"`).
    fn family(&self) -> &'static str;

    /// The scalar core in front of the back-end.
    fn core(&self) -> &CoreConfig;

    /// Executor display name (Table I naming conventions).
    fn name(&self) -> String;

    /// Canonical identity: an explicit serialization of every
    /// configuration field that determines a cycle count — and nothing
    /// else (display names are excluded, so two differently-named entries
    /// with identical hardware+mapping share cache entries and pricers).
    fn cache_id(&self) -> String;

    /// One-line human-readable configuration summary (`dse backends`).
    fn describe(&self) -> String;

    /// A fresh lowering session for one trace.
    fn lowering(&self) -> Box<dyn KernelLowering>;

    /// A fresh instance of the back-end's timing-model accelerator.
    fn accelerator(&self) -> Box<dyn Accelerator>;

    /// The accelerator configuration as plain data, for static analyzers
    /// that interpret the dispatch algebra without replaying a trace.
    fn accel_model(&self) -> AccelModel;

    /// How tight a static cycle bound this back-end admits. Derived from
    /// the core kind: in-order pipelines are a deterministic single pass
    /// the analyzer replicates exactly; out-of-order pipelines are
    /// bracketed from both sides.
    fn bound_claim(&self) -> BoundClaim {
        match self.core().kind {
            CoreKind::InOrder { .. } => BoundClaim::Exact,
            CoreKind::OutOfOrder { .. } => BoundClaim::Bounded,
        }
    }

    /// Verifier configuration matching the back-end's geometry.
    fn verify_config(&self) -> soc_verify::VerifyConfig {
        soc_verify::VerifyConfig::default()
    }

    /// One-time setup trace (e.g. Gemmini's workspace preload). Empty by
    /// default.
    fn setup_trace(&self, _dims: &ProblemDims) -> Trace {
        Trace::new()
    }

    /// Platform area (ASAP7-calibrated model).
    fn area(&self) -> AreaBreakdown;

    /// Per-event energy constants for this back-end.
    fn energy_model(&self) -> EnergyParams {
        EnergyParams::default()
    }

    /// The fault sites that are architecturally meaningful on this
    /// back-end, in campaign order.
    fn fault_surface(&self) -> &'static [FaultSurface];

    /// The micro-op trace of one standalone GEMV/GEMM measurement, plus
    /// the steady-state mark. A zero mark means a cold one-shot run (the
    /// whole trace is charged); a non-zero mark means the trace is a
    /// double emission and only `cycles(full) − cycles(prefix)` is
    /// charged.
    fn standalone_trace(
        &self,
        shape: KernelShape,
        residency: Residency,
        i: usize,
        k: usize,
    ) -> (Trace, usize);

    /// Candidate software mappings the auto-tuner measures for this
    /// target, scalar fallbacks first.
    fn tuning_candidates(&self) -> Vec<TuningCandidate>;

    // -- provided stage combinators -----------------------------------

    /// The micro-op trace of one cold invocation of `kernel` (for
    /// listings, analysis and energy accounting).
    fn lower(&self, kernel: KernelId, dims: &ProblemDims) -> Trace {
        let mut session = self.lowering();
        let mut b = TraceBuilder::new();
        session.emit(&mut b, kernel, dims);
        b.finish()
    }

    /// The double-emission trace the timing model replays, plus the op
    /// index where the steady-state copy begins. The first emission warms
    /// any residency state; the second is the steady-state cost.
    fn timed_trace(&self, kernel: KernelId, dims: &ProblemDims) -> (Trace, usize) {
        let mut session = self.lowering();
        let mut b = TraceBuilder::new();
        session.emit(&mut b, kernel, dims);
        let mark = b.len();
        session.emit(&mut b, kernel, dims);
        (b.finish(), mark)
    }

    /// The per-invocation trace the energy model charges. Defaults to the
    /// cold trace; residency-tracking back-ends override with the
    /// steady-state emission so one-time operand loads are not charged
    /// per invocation.
    fn energy_trace(&self, kernel: KernelId, dims: &ProblemDims) -> Trace {
        self.lower(kernel, dims)
    }

    /// Replays a trace through the core + accelerator timing model.
    fn simulate(&self, trace: &Trace) -> u64 {
        let mut accel = self.accelerator();
        simulate_with_accel(self.core(), trace, accel.as_mut())
    }

    /// Cycles for a standalone GEMV/GEMM of the given size (the paper's
    /// kernel-level methodology; see [`Residency`]): generate the
    /// measurement trace via [`BackendPipeline::standalone_trace`] and
    /// charge either the full cold run or the steady-state delta.
    fn standalone_cycles(
        &self,
        shape: KernelShape,
        residency: Residency,
        i: usize,
        k: usize,
    ) -> u64 {
        let (trace, mark) = self.standalone_trace(shape, residency, i, k);
        if mark == 0 {
            self.simulate(&trace)
        } else {
            steady_cost(self.core(), &trace, mark, || self.accelerator())
        }
    }

    /// Prices the steady-state cost of one kernel invocation: generate
    /// the double-emission trace, gate it through the static verifier,
    /// and charge `cycles(full) − cycles(first emission)`.
    ///
    /// # Errors
    ///
    /// [`tinympc::Error::InvalidTrace`] when the verifier rejects the
    /// generated stream.
    fn steady_cycles(&self, kernel: KernelId, dims: &ProblemDims) -> tinympc::Result<u64> {
        let (trace, mark) = self.timed_trace(kernel, dims);
        gate_trace(&trace, &self.verify_config(), &self.name())?;
        Ok(steady_cost(self.core(), &trace, mark, || {
            self.accelerator()
        }))
    }

    /// Prices the one-time setup trace (0 when empty).
    ///
    /// # Errors
    ///
    /// [`tinympc::Error::InvalidTrace`] when the verifier rejects the
    /// setup stream.
    fn setup_cost(&self, dims: &ProblemDims) -> tinympc::Result<u64> {
        let trace = self.setup_trace(dims);
        if trace.ops().is_empty() {
            return Ok(0);
        }
        gate_trace(
            &trace,
            &self.verify_config(),
            &format!("{} setup", self.name()),
        )?;
        Ok(self.simulate(&trace))
    }
}
