//! The Saturn vector back-end family as a [`BackendPipeline`].
//!
//! LMUL is chosen per kernel class, matching the paper's optimized
//! mapping: iterative kernels keep `LMUL = 1` (grouping hurts their short
//! vectors) while strip-mining kernels use `LMUL = 4`. A uniform override
//! reproduces the Figure 4 sweep.

use crate::pipeline::{
    core_id, AccelModel, BackendPipeline, FaultSurface, KernelLowering, KernelShape, Residency,
    TuningCandidate,
};
use crate::scalar::scalar_candidates;
use soc_area::{saturn_platform_area, AreaBreakdown};
use soc_cpu::{Accelerator, CoreConfig};
use soc_isa::{Trace, TraceBuilder};
use soc_vector::{SaturnConfig, SaturnUnit, VectorKernels, VectorStyle};
use std::sync::Arc;
use tinympc::{KernelClass, KernelId, ProblemDims};

/// Saturn: faults land in vector-register elements or on the memory path.
const FAULT_SURFACE: &[FaultSurface] = &[FaultSurface::VectorRegister, FaultSurface::DmaWord];

/// A Saturn design point: core + vector unit + software mapping.
#[derive(Debug, Clone)]
pub struct SaturnPipeline {
    core: CoreConfig,
    config: SaturnConfig,
    style: VectorStyle,
    /// Uniform LMUL override (`None` = the optimized per-class policy:
    /// iterative 1, strip-mining/reduction 4).
    uniform_lmul: Option<u8>,
}

impl SaturnPipeline {
    /// Creates the pipeline with the paper's optimized LMUL policy.
    pub fn new(core: CoreConfig, config: SaturnConfig, style: VectorStyle) -> Self {
        SaturnPipeline {
            core,
            config,
            style,
            uniform_lmul: None,
        }
    }

    /// Forces one LMUL for every kernel (the Figure 4 sweep).
    pub fn with_uniform_lmul(mut self, lmul: u8) -> Self {
        self.uniform_lmul = Some(lmul);
        self
    }
}

struct SaturnLowering {
    config: SaturnConfig,
    style: VectorStyle,
    uniform_lmul: Option<u8>,
}

impl SaturnLowering {
    fn kernels_for(&self, k: KernelId) -> VectorKernels {
        let lmul = self.uniform_lmul.unwrap_or(match k.class() {
            KernelClass::Iterative => 1,
            KernelClass::StripMining | KernelClass::Reduction => 4,
        });
        VectorKernels::new(self.config, self.style, lmul)
    }
}

impl KernelLowering for SaturnLowering {
    fn emit(&mut self, b: &mut TraceBuilder, k: KernelId, d: &ProblemDims) {
        let (nx, nu) = (d.nx, d.nu);
        let sx = d.state_elems();
        let su = d.input_elems();
        let vk = self.kernels_for(k);
        use KernelId::*;
        match k {
            ForwardPass1 => {
                vk.gemv(b, nu, nx);
                vk.fused_stripmine(b, nu, 2, 2);
            }
            ForwardPass2 => {
                vk.gemv(b, nx, nx);
                vk.gemv(b, nx, nu);
                vk.fused_stripmine(b, nx, 2, 1);
            }
            BackwardPass1 => {
                vk.gemv(b, nu, nx);
                vk.fused_stripmine(b, nu, 2, 1);
                vk.gemv(b, nu, nu);
            }
            BackwardPass2 => {
                vk.gemv(b, nx, nx);
                vk.gemv(b, nx, nu);
                vk.fused_stripmine(b, nx, 3, 2);
            }
            UpdateLinearCost4 => {
                vk.gemv(b, nx, nx);
                vk.fused_stripmine(b, nx, 2, 3);
            }
            UpdateSlack1 => vk.fused_stripmine(b, su, 2, 3),
            UpdateSlack2 => vk.fused_stripmine(b, sx, 2, 3),
            UpdateDual1 => {
                vk.fused_stripmine(b, su, 3, 2);
                vk.fused_stripmine(b, sx, 3, 2);
            }
            UpdateLinearCost1 => vk.fused_stripmine(b, su, 2, 2),
            UpdateLinearCost2 => vk.fused_stripmine(b, sx, 2, 2),
            UpdateLinearCost3 => vk.fused_stripmine(b, sx, 3, 2),
            PrimalResidualState | DualResidualState => {
                vk.reduce_max_abs_diff(b, sx);
            }
            PrimalResidualInput | DualResidualInput => {
                vk.reduce_max_abs_diff(b, su);
            }
        }
    }
}

impl BackendPipeline for SaturnPipeline {
    fn family(&self) -> &'static str {
        "saturn"
    }

    fn core(&self) -> &CoreConfig {
        &self.core
    }

    fn name(&self) -> String {
        let style = match self.style {
            VectorStyle::Matlib => "vec-matlib",
            VectorStyle::Fused => "hand-opt",
        };
        format!("Saturn {} / {} ({style})", self.config.name, self.core.name)
    }

    fn cache_id(&self) -> String {
        let style = match self.style {
            VectorStyle::Matlib => "lib",
            VectorStyle::Fused => "fused",
        };
        let lmul = self
            .uniform_lmul
            .map_or("policy".to_string(), |l| l.to_string());
        format!(
            "saturn|{}|vlen={},dlen={},qd={},sl={},cl={},dp={}|style={style},lmul={lmul}",
            core_id(&self.core),
            self.config.vlen,
            self.config.dlen,
            self.config.queue_depth,
            self.config.startup_latency,
            self.config.chain_latency,
            self.config.dispatch_penalty
        )
    }

    fn describe(&self) -> String {
        let style = match self.style {
            VectorStyle::Matlib => "vectorized matlib",
            VectorStyle::Fused => "fused hand-optimized",
        };
        let lmul = self
            .uniform_lmul
            .map_or("per-class LMUL".to_string(), |l| format!("LMUL={l}"));
        format!(
            "Saturn VLEN={} DLEN={} on {}, {style} mapping, {lmul}",
            self.config.vlen, self.config.dlen, self.core.name
        )
    }

    fn lowering(&self) -> Box<dyn KernelLowering> {
        Box::new(SaturnLowering {
            config: self.config,
            style: self.style,
            uniform_lmul: self.uniform_lmul,
        })
    }

    fn accelerator(&self) -> Box<dyn Accelerator> {
        Box::new(SaturnUnit::new(self.config))
    }

    fn accel_model(&self) -> AccelModel {
        AccelModel::Saturn(self.config)
    }

    fn area(&self) -> AreaBreakdown {
        saturn_platform_area(&self.config, &self.core)
    }

    fn fault_surface(&self) -> &'static [FaultSurface] {
        FAULT_SURFACE
    }

    fn standalone_trace(
        &self,
        shape: KernelShape,
        residency: Residency,
        i: usize,
        k: usize,
    ) -> (Trace, usize) {
        // The paper's standalone kernels dynamically compute VLMAX: pick
        // the smallest LMUL whose register group covers the output rows,
        // up to the paper's LMUL=8 for tall matrices.
        let fitted = [1u8, 2, 4, 8]
            .into_iter()
            .find(|&l| self.config.vlmax(32, l) as usize >= i)
            .unwrap_or(8);
        let lmul = self.uniform_lmul.unwrap_or(fitted);
        let gen = VectorKernels::new(self.config, self.style, lmul);
        let mut b = TraceBuilder::new();
        let emit = |b: &mut TraceBuilder| match shape {
            KernelShape::Gemv => gen.gemv(b, i, k),
            KernelShape::Gemm => gen.gemm(b, i, k, k),
        };
        emit(&mut b);
        let mark = b.len();
        match residency {
            Residency::Warm => {
                emit(&mut b);
                (b.finish(), mark)
            }
            Residency::Cold => {
                b.fence();
                (b.finish(), 0)
            }
        }
    }

    fn tuning_candidates(&self) -> Vec<TuningCandidate> {
        let mut v = scalar_candidates(&self.core);
        for lmul in [1u8, 2, 4, 8] {
            v.push(TuningCandidate {
                label: format!("saturn fused LMUL={lmul}"),
                pipeline: Arc::new(
                    SaturnPipeline::new(self.core.clone(), self.config, VectorStyle::Fused)
                        .with_uniform_lmul(lmul),
                ),
            });
        }
        v.push(TuningCandidate {
            label: "saturn vectorized-matlib".into(),
            pipeline: Arc::new(
                SaturnPipeline::new(self.core.clone(), self.config, VectorStyle::Matlib)
                    .with_uniform_lmul(1),
            ),
        });
        v
    }
}
