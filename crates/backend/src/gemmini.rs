//! The Gemmini systolic back-end family as a [`BackendPipeline`].
//!
//! Gemmini's lowering is stateful — [`soc_gemmini::GemminiKernels`]
//! tracks scratchpad residency across emissions — so each generated trace
//! uses a fresh session, and the steady-state pricing relies on the first
//! emission warming residency for the second.

use crate::pipeline::{
    core_id, AccelModel, BackendPipeline, FaultSurface, KernelLowering, KernelShape, Residency,
    TuningCandidate,
};
use crate::scalar::scalar_candidates;
use soc_area::{gemmini_platform_area, AreaBreakdown};
use soc_cpu::{Accelerator, CoreConfig};
use soc_gemmini::{Dataflow, GemminiConfig, GemminiKernels, GemminiOpts, GemminiUnit, IsaStyle};
use soc_isa::{Trace, TraceBuilder};
use std::sync::Arc;
use tinympc::{KernelId, ProblemDims};

/// Gemmini: scratchpad words at rest, DMA words in flight, and the RoCC
/// command stream itself.
const FAULT_SURFACE: &[FaultSurface] = &[
    FaultSurface::StoredMatrixWord,
    FaultSurface::DmaWord,
    FaultSurface::CommandStream,
];

/// Workspace matrix identities for the Gemmini scratchpad mapping
/// (Figure 11 of the paper).
pub mod ws {
    #![allow(missing_docs)]
    use soc_gemmini::MatId;
    pub const KINF: MatId = MatId(0);
    pub const KINF_T: MatId = MatId(1);
    pub const ADYN: MatId = MatId(2);
    pub const BDYN: MatId = MatId(3);
    pub const B_T: MatId = MatId(4);
    pub const AMBK_T: MatId = MatId(5);
    pub const QUU_INV: MatId = MatId(6);
    pub const PINF: MatId = MatId(7);
    pub const QDIAG: MatId = MatId(8);
    pub const IDENTITY: MatId = MatId(9);
    pub const NEG_IDENTITY: MatId = MatId(10);
    pub const RHO_IDENTITY: MatId = MatId(11);
    pub const X: MatId = MatId(20);
    pub const U: MatId = MatId(21);
    pub const D: MatId = MatId(22);
    pub const P: MatId = MatId(23);
    pub const Q: MatId = MatId(24);
    pub const R: MatId = MatId(25);
    pub const Y: MatId = MatId(26);
    pub const G: MatId = MatId(27);
    pub const ZNEW: MatId = MatId(28);
    pub const VNEW: MatId = MatId(29);
    pub const XREF: MatId = MatId(30);
    pub const TMP0: MatId = MatId(40);
    pub const TMP1: MatId = MatId(41);
    pub const TMP2: MatId = MatId(42);
}

/// A Gemmini design point: core + systolic array + mapping options.
#[derive(Debug, Clone)]
pub struct GemminiPipeline {
    core: CoreConfig,
    config: GemminiConfig,
    opts: GemminiOpts,
}

impl GemminiPipeline {
    /// Creates the pipeline for the given hardware and mapping options.
    pub fn new(core: CoreConfig, config: GemminiConfig, opts: GemminiOpts) -> Self {
        GemminiPipeline { core, config, opts }
    }
}

struct GemminiLowering {
    gen: GemminiKernels,
}

impl KernelLowering for GemminiLowering {
    fn emit(&mut self, b: &mut TraceBuilder, k: KernelId, d: &ProblemDims) {
        let gen = &mut self.gen;
        let (nx, nu) = (d.nx, d.nu);
        let sx = d.state_elems();
        let su = d.input_elems();
        use ws::*;
        use KernelId::*;
        match k {
            ForwardPass1 => {
                gen.gemv(b, nu, nx, KINF, X, TMP0);
                gen.elementwise(b, nu, 1, &[TMP0, D], U);
            }
            ForwardPass2 => {
                gen.gemv(b, nx, nx, ADYN, X, TMP0);
                gen.gemv(b, nx, nu, BDYN, U, TMP1);
                gen.elementwise(b, nx, 1, &[TMP0, TMP1], X);
            }
            BackwardPass1 => {
                gen.gemv(b, nu, nx, B_T, P, TMP0);
                gen.elementwise(b, nu, 1, &[TMP0, R], TMP1);
                gen.gemv(b, nu, nu, QUU_INV, TMP1, D);
            }
            BackwardPass2 => {
                gen.gemv(b, nx, nx, AMBK_T, P, TMP0);
                gen.gemv(b, nx, nu, KINF_T, R, TMP1);
                gen.elementwise(b, nx, 2, &[Q, TMP0], P);
            }
            UpdateLinearCost4 => {
                gen.gemv(b, nx, nx, PINF, XREF, TMP0);
                gen.elementwise(b, nx, 2, &[VNEW, G], P);
            }
            UpdateSlack1 => {
                gen.elementwise(b, su, 1, &[U, Y], TMP0);
                gen.clip(b, su, TMP0, ZNEW);
            }
            UpdateSlack2 => {
                gen.elementwise(b, sx, 1, &[X, G], TMP0);
                gen.clip(b, sx, TMP0, VNEW);
            }
            UpdateDual1 => {
                gen.elementwise(b, su, 2, &[Y, U], Y);
                gen.elementwise(b, sx, 2, &[G, X], G);
            }
            UpdateLinearCost1 => gen.elementwise(b, su, 2, &[ZNEW, Y], R),
            UpdateLinearCost2 => gen.elementwise(b, sx, 2, &[XREF, QDIAG], Q),
            UpdateLinearCost3 => gen.elementwise(b, sx, 2, &[VNEW, G], Q),
            PrimalResidualState | DualResidualState => {
                gen.elementwise(b, sx, 1, &[X, VNEW], TMP2);
                gen.abs(b, sx, TMP2, TMP2);
                gen.max_reduce(b, sx, TMP2);
            }
            PrimalResidualInput | DualResidualInput => {
                gen.elementwise(b, su, 1, &[U, ZNEW], TMP2);
                gen.abs(b, su, TMP2, TMP2);
                gen.max_reduce(b, su, TMP2);
            }
        }
    }
}

impl BackendPipeline for GemminiPipeline {
    fn family(&self) -> &'static str {
        "gemmini"
    }

    fn core(&self) -> &CoreConfig {
        &self.core
    }

    fn name(&self) -> String {
        format!("Gemmini {} / {}", self.config.name, self.core.name)
    }

    fn cache_id(&self) -> String {
        let df = match self.config.dataflow {
            Dataflow::WeightStationary => "ws",
            Dataflow::OutputStationary => "os",
        };
        let isa = match self.opts.isa {
            IsaStyle::Coarse => "coarse",
            IsaStyle::Fine => "fine",
        };
        format!(
            "gemmini|{}|dim={},df={df},spad={},banks={},acc={},gemv={},rs={},dl={},dbpc={}\
             |isa={isa},sm={},sr={},fa={},pr={}",
            core_id(&self.core),
            self.config.dim,
            self.config.scratchpad_kb,
            self.config.scratchpad_banks,
            self.config.accumulator_kb,
            self.config.gemv_support,
            self.config.rs_entries,
            self.config.dma_latency,
            self.config.dma_bytes_per_cycle,
            self.opts.static_mapping,
            self.opts.scratchpad_resident,
            self.opts.fuse_activation,
            self.opts.pooling_reduction
        )
    }

    fn describe(&self) -> String {
        let df = match self.config.dataflow {
            Dataflow::WeightStationary => "WS",
            Dataflow::OutputStationary => "OS",
        };
        format!(
            "Gemmini {}x{} {df} mesh, {} KiB scratchpad on {}{}{}",
            self.config.dim,
            self.config.dim,
            self.config.scratchpad_kb,
            self.core.name,
            if self.config.gemv_support {
                ", GEMV ext"
            } else {
                ""
            },
            if self.opts.scratchpad_resident {
                ", resident workspace"
            } else {
                ""
            }
        )
    }

    fn lowering(&self) -> Box<dyn KernelLowering> {
        Box::new(GemminiLowering {
            gen: GemminiKernels::new(self.config, self.opts),
        })
    }

    fn accelerator(&self) -> Box<dyn Accelerator> {
        Box::new(GemminiUnit::new(self.config))
    }

    fn accel_model(&self) -> AccelModel {
        AccelModel::Gemmini(self.config)
    }

    fn verify_config(&self) -> soc_verify::VerifyConfig {
        soc_verify::VerifyConfig::with_spad(self.config.spad_rows(), self.config.dim)
    }

    fn setup_trace(&self, dims: &ProblemDims) -> Trace {
        if !self.opts.scratchpad_resident {
            return Trace::new();
        }
        // One-time workspace preload: all cached matrices plus the
        // utility identities (Figure 10/11 of the paper).
        let (nx, nu) = (dims.nx, dims.nu);
        let mut gen = GemminiKernels::new(self.config, self.opts);
        let mut b = TraceBuilder::new();
        use ws::*;
        for (id, r, c) in [
            (KINF, nu, nx),
            (KINF_T, nx, nu),
            (ADYN, nx, nx),
            (BDYN, nx, nu),
            (B_T, nu, nx),
            (AMBK_T, nx, nx),
            (QUU_INV, nu, nu),
            (PINF, nx, nx),
            (QDIAG, nx, nx),
            (IDENTITY, self.config.dim, self.config.dim),
            (NEG_IDENTITY, self.config.dim, self.config.dim),
            (RHO_IDENTITY, self.config.dim, self.config.dim),
        ] {
            gen.preload(&mut b, id, r, c);
        }
        b.fence();
        b.finish()
    }

    fn area(&self) -> AreaBreakdown {
        gemmini_platform_area(&self.config, &self.core)
    }

    /// Steady-state: the solver's cached matrices stay scratchpad-resident
    /// across invocations; counting their mvins per invocation would
    /// overcharge DMA energy.
    fn energy_trace(&self, kernel: KernelId, dims: &ProblemDims) -> Trace {
        let mut session = self.lowering();
        let mut b = TraceBuilder::new();
        session.emit(&mut b, kernel, dims);
        let mark = b.len();
        session.emit(&mut b, kernel, dims);
        b.finish().ops()[mark..].iter().copied().collect()
    }

    fn fault_surface(&self) -> &'static [FaultSurface] {
        FAULT_SURFACE
    }

    fn standalone_trace(
        &self,
        shape: KernelShape,
        residency: Residency,
        i: usize,
        k: usize,
    ) -> (Trace, usize) {
        let mut gen = GemminiKernels::new(self.config, self.opts);
        let mut b = TraceBuilder::new();
        let (a_id, x_id, y_id) = (
            soc_gemmini::MatId(0),
            soc_gemmini::MatId(1),
            soc_gemmini::MatId(2),
        );
        let emit = |gen: &mut GemminiKernels, b: &mut TraceBuilder| match shape {
            KernelShape::Gemv => gen.gemv(b, i, k, a_id, x_id, y_id),
            KernelShape::Gemm => gen.gemm(b, i, k, k, a_id, x_id, y_id),
        };
        emit(&mut gen, &mut b);
        let mark = b.len();
        match residency {
            Residency::Warm => {
                emit(&mut gen, &mut b);
                (b.finish(), mark)
            }
            Residency::Cold => {
                // One-shot: the result is stored back and synchronized.
                gen.sync_to_cpu(&mut b, i, y_id);
                b.fence();
                (b.finish(), 0)
            }
        }
    }

    fn tuning_candidates(&self) -> Vec<TuningCandidate> {
        let mut v = scalar_candidates(&self.core);
        let opt = GemminiOpts::optimized();
        let variants = [
            ("gemmini optimized", opt),
            (
                "gemmini, scalar activations",
                GemminiOpts {
                    fuse_activation: false,
                    ..opt
                },
            ),
            (
                "gemmini, scalar reductions",
                GemminiOpts {
                    pooling_reduction: false,
                    ..opt
                },
            ),
        ];
        for (label, opts) in variants {
            v.push(TuningCandidate {
                label: label.into(),
                pipeline: Arc::new(GemminiPipeline::new(self.core.clone(), self.config, opts)),
            });
        }
        v
    }
}
