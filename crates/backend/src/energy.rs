//! Per-event energy constants each back-end pipeline exposes through
//! [`crate::BackendPipeline::energy_model`].
//!
//! The absolute numbers are order-of-magnitude 7-nm-class estimates; the
//! *relative* story they produce — accelerators deliver more control-loop
//! work per joule than wide out-of-order cores at a fraction of the
//! area — is the robust output. The solve-level accounting that charges
//! these constants against trace activity lives in `soc-dse::energy`.

/// Per-event dynamic energies in picojoules, 7-nm-class estimates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Scalar integer op (ALU + pipeline overhead).
    pub int_op_pj: f64,
    /// Scalar FP op.
    pub fp_op_pj: f64,
    /// L1 load/store access.
    pub mem_op_pj: f64,
    /// Vector lane-element operation.
    pub vector_elem_pj: f64,
    /// Mesh multiply-accumulate.
    pub mesh_mac_pj: f64,
    /// Scratchpad byte moved.
    pub spad_byte_pj: f64,
    /// DRAM byte moved (DMA).
    pub dram_byte_pj: f64,
    /// Per-instruction frontend overhead of an out-of-order core
    /// (fetch/rename/ROB) relative to in-order, in pJ.
    pub ooo_overhead_pj: f64,
    /// Leakage power density, mW per mm².
    pub leakage_mw_per_mm2: f64,
    /// Clock frequency, GHz.
    pub clock_ghz: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            int_op_pj: 1.5,
            fp_op_pj: 4.0,
            mem_op_pj: 10.0,
            vector_elem_pj: 2.0,
            mesh_mac_pj: 1.0,
            spad_byte_pj: 0.3,
            dram_byte_pj: 20.0,
            ooo_overhead_pj: 6.0,
            leakage_mw_per_mm2: 40.0,
            clock_ghz: 1.0,
        }
    }
}
