//! The shared-pricer registry: one memoized steady-state pricer per
//! distinct configuration, interned process-wide by
//! [`BackendPipeline::cache_id`].
//!
//! [`crate::Platform::executor`] used to re-box a cold per-executor memo
//! table on every call; now every executor for the same configuration is
//! a cheap handle onto the same [`PricedPipeline`], so repeated solves
//! price each kernel exactly once per process.

use crate::pipeline::BackendPipeline;
use crate::platform::{pipeline_for, Platform};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use tinympc::{KernelExecutor, KernelId, ProblemDims};

/// Locks a memo-table mutex, recovering from poisoning. Every critical
/// section here is a single probe or insert on an insert-only map, so a
/// panic unwinding through a lock holder cannot leave the table
/// half-updated — recovering is strictly better than bricking every
/// future pricing call in the process.
fn memo_lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A pipeline plus its shared steady-state memo tables.
pub struct PricedPipeline {
    pipeline: Arc<dyn BackendPipeline>,
    kernel_memo: Mutex<HashMap<(KernelId, ProblemDims), u64>>,
    setup_memo: Mutex<HashMap<ProblemDims, u64>>,
}

impl PricedPipeline {
    /// Wraps a pipeline with fresh (empty) memo tables.
    pub fn new(pipeline: Arc<dyn BackendPipeline>) -> Self {
        PricedPipeline {
            pipeline,
            kernel_memo: Mutex::new(HashMap::new()),
            setup_memo: Mutex::new(HashMap::new()),
        }
    }

    /// The wrapped pipeline.
    pub fn pipeline(&self) -> &Arc<dyn BackendPipeline> {
        &self.pipeline
    }

    /// Memoized [`BackendPipeline::steady_cycles`].
    ///
    /// Pricing runs outside the lock (it can take milliseconds for large
    /// traces); errors are not memoized so a verification failure
    /// resurfaces on every call.
    ///
    /// # Errors
    ///
    /// Propagates verification failures from the pipeline.
    pub fn kernel_cycles(&self, kernel: KernelId, dims: &ProblemDims) -> tinympc::Result<u64> {
        if let Some(&c) = memo_lock(&self.kernel_memo).get(&(kernel, *dims)) {
            return Ok(c);
        }
        let c = self.pipeline.steady_cycles(kernel, dims)?;
        memo_lock(&self.kernel_memo).insert((kernel, *dims), c);
        Ok(c)
    }

    /// Memoized [`BackendPipeline::setup_cost`].
    ///
    /// # Errors
    ///
    /// Propagates verification failures from the pipeline.
    pub fn setup_cycles(&self, dims: &ProblemDims) -> tinympc::Result<u64> {
        if let Some(&c) = memo_lock(&self.setup_memo).get(dims) {
            return Ok(c);
        }
        let c = self.pipeline.setup_cost(dims)?;
        memo_lock(&self.setup_memo).insert(*dims, c);
        Ok(c)
    }
}

fn interner() -> &'static Mutex<HashMap<String, Arc<PricedPipeline>>> {
    static INTERNER: OnceLock<Mutex<HashMap<String, Arc<PricedPipeline>>>> = OnceLock::new();
    INTERNER.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The process-wide shared pricer for `platform`'s configuration,
/// interned by [`BackendPipeline::cache_id`]: two platforms with the same
/// hardware+mapping (however they are named) share one pricer.
pub fn priced_for(platform: &Platform) -> Arc<PricedPipeline> {
    let pipeline = pipeline_for(platform);
    let id = pipeline.cache_id();
    memo_lock(interner())
        .entry(id)
        .or_insert_with(|| Arc::new(PricedPipeline::new(pipeline)))
        .clone()
}

/// The [`KernelExecutor`] every platform hands to the solver: a cheap
/// clone-able handle onto the shared pricer, carrying its own display
/// name (several named platforms can share one pricer).
#[derive(Clone)]
pub struct PipelineExecutor {
    name: String,
    priced: Arc<PricedPipeline>,
}

impl std::fmt::Debug for PipelineExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineExecutor")
            .field("name", &self.name)
            .field("cache_id", &self.priced.pipeline().cache_id())
            .finish()
    }
}

impl PipelineExecutor {
    /// The executor for `platform`, backed by the shared pricer.
    pub fn for_platform(platform: &Platform) -> Self {
        let priced = priced_for(platform);
        PipelineExecutor {
            name: priced.pipeline().name(),
            priced,
        }
    }

    /// The underlying pipeline.
    pub fn pipeline(&self) -> &Arc<dyn BackendPipeline> {
        self.priced.pipeline()
    }

    /// The double-emission trace the timing model replays, plus the op
    /// index where the steady-state copy begins (fault injection rewrites
    /// these traces before re-pricing them).
    pub fn timed_trace(&self, kernel: KernelId, dims: &ProblemDims) -> (soc_isa::Trace, usize) {
        self.pipeline().timed_trace(kernel, dims)
    }

    /// Verifier configuration for the backing pipeline.
    pub fn verify_config(&self) -> soc_verify::VerifyConfig {
        self.pipeline().verify_config()
    }
}

impl KernelExecutor for PipelineExecutor {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn kernel_cycles(&mut self, kernel: KernelId, dims: &ProblemDims) -> tinympc::Result<u64> {
        self.priced.kernel_cycles(kernel, dims)
    }

    fn setup_cycles(&mut self, dims: &ProblemDims) -> tinympc::Result<u64> {
        self.priced.setup_cycles(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_cpu::CoreConfig;
    use soc_vector::SaturnConfig;

    fn dims() -> ProblemDims {
        ProblemDims {
            nx: 12,
            nu: 4,
            horizon: 10,
        }
    }

    #[test]
    fn same_config_shares_one_pricer() {
        let a = priced_for(&Platform::rocket_eigen());
        let mut renamed = Platform::rocket_eigen();
        renamed.name = "Rocket (baseline)".into();
        let b = priced_for(&renamed);
        assert!(Arc::ptr_eq(&a, &b), "renamed clone must share the pricer");
    }

    #[test]
    fn distinct_configs_get_distinct_pricers() {
        let a = priced_for(&Platform::rocket_eigen());
        let b = priced_for(&Platform::rocket_matlib());
        assert!(!Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn executor_matches_unmemoized_pipeline() {
        let p = Platform::saturn(CoreConfig::shuttle(), SaturnConfig::v512d256());
        let mut e = PipelineExecutor::for_platform(&p);
        let direct = pipeline_for(&p);
        for k in KernelId::ALL {
            assert_eq!(
                e.kernel_cycles(k, &dims()).unwrap(),
                direct.steady_cycles(k, &dims()).unwrap(),
                "{k}"
            );
        }
    }

    #[test]
    fn executor_keeps_the_platform_display_independent_name() {
        let mut renamed = Platform::rocket_eigen();
        renamed.name = "Rocket (renamed)".into();
        // The executor reports the pipeline's canonical executor name,
        // which ignores the platform rename — matching the old
        // per-family executors.
        let e = PipelineExecutor::for_platform(&renamed);
        assert_eq!(e.name(), "Rocket (Eigen-opt)");
    }
}
