//! Typed RV32IMF instructions with exact encode/decode.

use std::fmt;

/// A register index (x0–x31 for integer, f0–f31 for FP; which file is
/// implied by the instruction field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    fn field(self) -> u32 {
        (self.0 & 0x1f) as u32
    }
}

/// Integer ALU operations (OP / OP-IMM, plus the M extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    // M extension (register form only).
    Mul,
    Mulh,
    Div,
    Divu,
    Rem,
    Remu,
}

impl AluOp {
    fn funct3(self) -> u32 {
        match self {
            AluOp::Add | AluOp::Sub => 0,
            AluOp::Sll => 1,
            AluOp::Slt => 2,
            AluOp::Sltu => 3,
            AluOp::Xor => 4,
            AluOp::Srl | AluOp::Sra => 5,
            AluOp::Or => 6,
            AluOp::And => 7,
            AluOp::Mul => 0,
            AluOp::Mulh => 1,
            AluOp::Div => 4,
            AluOp::Divu => 5,
            AluOp::Rem => 6,
            AluOp::Remu => 7,
        }
    }

    fn is_m(self) -> bool {
        matches!(
            self,
            AluOp::Mul | AluOp::Mulh | AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu
        )
    }
}

/// Branch comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BranchOp {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

impl BranchOp {
    fn funct3(self) -> u32 {
        match self {
            BranchOp::Eq => 0,
            BranchOp::Ne => 1,
            BranchOp::Lt => 4,
            BranchOp::Ge => 5,
            BranchOp::Ltu => 6,
            BranchOp::Geu => 7,
        }
    }
}

/// Single-precision FP register-register operations (OP-FP).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum FpOp {
    Add,
    Sub,
    Mul,
    Div,
    /// fsgnj.s — also `fmv.s` when rs1 == rs2.
    SgnJ,
    /// fsgnjn.s — also `fneg.s` when rs1 == rs2.
    SgnJn,
    /// fsgnjx.s — also `fabs.s` when rs1 == rs2.
    SgnJx,
    Min,
    Max,
    /// feq.s (writes an integer register).
    Eq,
    /// flt.s.
    Lt,
    /// fle.s.
    Le,
    /// fmv.x.w — bit-move FP to integer.
    MvXW,
    /// fmv.w.x — bit-move integer to FP.
    MvWX,
    /// fcvt.w.s — float to signed int (round to nearest even here).
    CvtWS,
    /// fcvt.s.w — signed int to float.
    CvtSW,
}

/// Fused multiply-add family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum FmaOp {
    /// fmadd.s: rd = rs1*rs2 + rs3
    Madd,
    /// fmsub.s: rd = rs1*rs2 - rs3
    Msub,
    /// fnmsub.s: rd = -(rs1*rs2) + rs3
    Nmsub,
    /// fnmadd.s: rd = -(rs1*rs2) - rs3
    Nmadd,
}

/// One RV32IMF instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)]
pub enum Inst {
    Lui {
        rd: Reg,
        imm: i32,
    },
    Auipc {
        rd: Reg,
        imm: i32,
    },
    Jal {
        rd: Reg,
        offset: i32,
    },
    Jalr {
        rd: Reg,
        rs1: Reg,
        offset: i32,
    },
    Branch {
        op: BranchOp,
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    /// lw
    Lw {
        rd: Reg,
        rs1: Reg,
        offset: i32,
    },
    /// sw
    Sw {
        rs2: Reg,
        rs1: Reg,
        offset: i32,
    },
    /// Register-immediate ALU op (no Sub/M forms).
    OpImm {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    /// Register-register ALU op.
    Op {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// flw
    Flw {
        rd: Reg,
        rs1: Reg,
        offset: i32,
    },
    /// fsw
    Fsw {
        rs2: Reg,
        rs1: Reg,
        offset: i32,
    },
    /// OP-FP register-register.
    Fp {
        op: FpOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// Fused multiply-add.
    Fma {
        op: FmaOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
        rs3: Reg,
    },
    /// Environment call — halts the [`crate::Machine`].
    Ecall,
}

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// The word that failed to decode.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

const OP: u32 = 0x33;
const OP_IMM: u32 = 0x13;
const LOAD: u32 = 0x03;
const STORE: u32 = 0x23;
const BRANCH: u32 = 0x63;
const JAL: u32 = 0x6f;
const JALR: u32 = 0x67;
const LUI: u32 = 0x37;
const AUIPC: u32 = 0x17;
const SYSTEM: u32 = 0x73;
const LOAD_FP: u32 = 0x07;
const STORE_FP: u32 = 0x27;
const OP_FP: u32 = 0x53;
const MADD: u32 = 0x43;
const MSUB: u32 = 0x47;
const NMSUB: u32 = 0x4b;
const NMADD: u32 = 0x4f;

fn r_type(funct7: u32, rs2: u32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn i_type(imm: i32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    (((imm as u32) & 0xfff) << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn s_type(imm: i32, rs2: u32, rs1: u32, funct3: u32, opcode: u32) -> u32 {
    let imm = imm as u32;
    ((imm >> 5 & 0x7f) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | ((imm & 0x1f) << 7)
        | opcode
}

fn b_type(offset: i32, rs2: u32, rs1: u32, funct3: u32) -> u32 {
    let imm = offset as u32;
    ((imm >> 12 & 1) << 31)
        | ((imm >> 5 & 0x3f) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | ((imm >> 1 & 0xf) << 8)
        | ((imm >> 11 & 1) << 7)
        | BRANCH
}

fn j_type(offset: i32, rd: u32) -> u32 {
    let imm = offset as u32;
    ((imm >> 20 & 1) << 31)
        | ((imm >> 1 & 0x3ff) << 21)
        | ((imm >> 11 & 1) << 20)
        | ((imm >> 12 & 0xff) << 12)
        | (rd << 7)
        | JAL
}

impl Inst {
    /// Encodes to the standard 32-bit word.
    pub fn encode(&self) -> u32 {
        match *self {
            Inst::Lui { rd, imm } => ((imm as u32) & 0xfffff000) | (rd.field() << 7) | LUI,
            Inst::Auipc { rd, imm } => ((imm as u32) & 0xfffff000) | (rd.field() << 7) | AUIPC,
            Inst::Jal { rd, offset } => j_type(offset, rd.field()),
            Inst::Jalr { rd, rs1, offset } => i_type(offset, rs1.field(), 0, rd.field(), JALR),
            Inst::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => b_type(offset, rs2.field(), rs1.field(), op.funct3()),
            Inst::Lw { rd, rs1, offset } => i_type(offset, rs1.field(), 2, rd.field(), LOAD),
            Inst::Sw { rs2, rs1, offset } => s_type(offset, rs2.field(), rs1.field(), 2, STORE),
            Inst::OpImm { op, rd, rs1, imm } => {
                let funct3 = op.funct3();
                let imm = if op == AluOp::Sra {
                    imm | (0x20 << 5)
                } else {
                    imm
                };
                i_type(imm, rs1.field(), funct3, rd.field(), OP_IMM)
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                let funct7 = if op.is_m() {
                    1
                } else if matches!(op, AluOp::Sub | AluOp::Sra) {
                    0x20
                } else {
                    0
                };
                r_type(
                    funct7,
                    rs2.field(),
                    rs1.field(),
                    op.funct3(),
                    rd.field(),
                    OP,
                )
            }
            Inst::Flw { rd, rs1, offset } => i_type(offset, rs1.field(), 2, rd.field(), LOAD_FP),
            Inst::Fsw { rs2, rs1, offset } => s_type(offset, rs2.field(), rs1.field(), 2, STORE_FP),
            Inst::Fp { op, rd, rs1, rs2 } => {
                // Rounding mode: dynamic (0b111) where applicable.
                let (funct7, funct3, rs2f) = match op {
                    FpOp::Add => (0x00, 7, rs2.field()),
                    FpOp::Sub => (0x04, 7, rs2.field()),
                    FpOp::Mul => (0x08, 7, rs2.field()),
                    FpOp::Div => (0x0c, 7, rs2.field()),
                    FpOp::SgnJ => (0x10, 0, rs2.field()),
                    FpOp::SgnJn => (0x10, 1, rs2.field()),
                    FpOp::SgnJx => (0x10, 2, rs2.field()),
                    FpOp::Min => (0x14, 0, rs2.field()),
                    FpOp::Max => (0x14, 1, rs2.field()),
                    FpOp::Eq => (0x50, 2, rs2.field()),
                    FpOp::Lt => (0x50, 1, rs2.field()),
                    FpOp::Le => (0x50, 0, rs2.field()),
                    FpOp::MvXW => (0x70, 0, 0),
                    FpOp::MvWX => (0x78, 0, 0),
                    FpOp::CvtWS => (0x60, 7, 0),
                    FpOp::CvtSW => (0x68, 7, 0),
                };
                r_type(funct7, rs2f, rs1.field(), funct3, rd.field(), OP_FP)
            }
            Inst::Fma {
                op,
                rd,
                rs1,
                rs2,
                rs3,
            } => {
                let opcode = match op {
                    FmaOp::Madd => MADD,
                    FmaOp::Msub => MSUB,
                    FmaOp::Nmsub => NMSUB,
                    FmaOp::Nmadd => NMADD,
                };
                (rs3.field() << 27)
                    | (rs2.field() << 20)
                    | (rs1.field() << 15)
                    | (7 << 12)
                    | (rd.field() << 7)
                    | opcode
            }
            Inst::Ecall => SYSTEM,
        }
    }
}

fn sign_extend(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

/// Decodes a 32-bit instruction word.
///
/// # Errors
///
/// Returns [`DecodeError`] for words outside the supported RV32IMF subset.
pub fn decode(word: u32) -> Result<Inst, DecodeError> {
    let opcode = word & 0x7f;
    let rd = Reg(((word >> 7) & 0x1f) as u8);
    let funct3 = (word >> 12) & 7;
    let rs1 = Reg(((word >> 15) & 0x1f) as u8);
    let rs2 = Reg(((word >> 20) & 0x1f) as u8);
    let funct7 = word >> 25;
    let err = || DecodeError { word };

    let inst = match opcode {
        LUI => Inst::Lui {
            rd,
            imm: (word & 0xfffff000) as i32,
        },
        AUIPC => Inst::Auipc {
            rd,
            imm: (word & 0xfffff000) as i32,
        },
        JAL => {
            let imm = ((word >> 31 & 1) << 20)
                | ((word >> 21 & 0x3ff) << 1)
                | ((word >> 20 & 1) << 11)
                | ((word >> 12 & 0xff) << 12);
            Inst::Jal {
                rd,
                offset: sign_extend(imm, 21),
            }
        }
        JALR => Inst::Jalr {
            rd,
            rs1,
            offset: sign_extend(word >> 20, 12),
        },
        BRANCH => {
            let imm = ((word >> 31 & 1) << 12)
                | ((word >> 25 & 0x3f) << 5)
                | ((word >> 8 & 0xf) << 1)
                | ((word >> 7 & 1) << 11);
            let op = match funct3 {
                0 => BranchOp::Eq,
                1 => BranchOp::Ne,
                4 => BranchOp::Lt,
                5 => BranchOp::Ge,
                6 => BranchOp::Ltu,
                7 => BranchOp::Geu,
                _ => return Err(err()),
            };
            Inst::Branch {
                op,
                rs1,
                rs2,
                offset: sign_extend(imm, 13),
            }
        }
        LOAD if funct3 == 2 => Inst::Lw {
            rd,
            rs1,
            offset: sign_extend(word >> 20, 12),
        },
        STORE if funct3 == 2 => {
            let imm = ((word >> 25) << 5) | ((word >> 7) & 0x1f);
            Inst::Sw {
                rs2,
                rs1,
                offset: sign_extend(imm, 12),
            }
        }
        LOAD_FP if funct3 == 2 => Inst::Flw {
            rd,
            rs1,
            offset: sign_extend(word >> 20, 12),
        },
        STORE_FP if funct3 == 2 => {
            let imm = ((word >> 25) << 5) | ((word >> 7) & 0x1f);
            Inst::Fsw {
                rs2,
                rs1,
                offset: sign_extend(imm, 12),
            }
        }
        OP_IMM => {
            let op = match funct3 {
                0 => AluOp::Add,
                1 => AluOp::Sll,
                2 => AluOp::Slt,
                3 => AluOp::Sltu,
                4 => AluOp::Xor,
                5 => {
                    if funct7 == 0x20 {
                        AluOp::Sra
                    } else {
                        AluOp::Srl
                    }
                }
                6 => AluOp::Or,
                7 => AluOp::And,
                _ => return Err(err()),
            };
            let imm = if matches!(op, AluOp::Sll | AluOp::Srl | AluOp::Sra) {
                (word >> 20 & 0x1f) as i32
            } else {
                sign_extend(word >> 20, 12)
            };
            Inst::OpImm { op, rd, rs1, imm }
        }
        OP => {
            let op = match (funct7, funct3) {
                (0, 0) => AluOp::Add,
                (0x20, 0) => AluOp::Sub,
                (0, 1) => AluOp::Sll,
                (0, 2) => AluOp::Slt,
                (0, 3) => AluOp::Sltu,
                (0, 4) => AluOp::Xor,
                (0, 5) => AluOp::Srl,
                (0x20, 5) => AluOp::Sra,
                (0, 6) => AluOp::Or,
                (0, 7) => AluOp::And,
                (1, 0) => AluOp::Mul,
                (1, 1) => AluOp::Mulh,
                (1, 4) => AluOp::Div,
                (1, 5) => AluOp::Divu,
                (1, 6) => AluOp::Rem,
                (1, 7) => AluOp::Remu,
                _ => return Err(err()),
            };
            Inst::Op { op, rd, rs1, rs2 }
        }
        OP_FP => {
            let op = match funct7 {
                0x00 => FpOp::Add,
                0x04 => FpOp::Sub,
                0x08 => FpOp::Mul,
                0x0c => FpOp::Div,
                0x10 => match funct3 {
                    0 => FpOp::SgnJ,
                    1 => FpOp::SgnJn,
                    2 => FpOp::SgnJx,
                    _ => return Err(err()),
                },
                0x14 => match funct3 {
                    0 => FpOp::Min,
                    1 => FpOp::Max,
                    _ => return Err(err()),
                },
                0x50 => match funct3 {
                    2 => FpOp::Eq,
                    1 => FpOp::Lt,
                    0 => FpOp::Le,
                    _ => return Err(err()),
                },
                0x70 => FpOp::MvXW,
                0x78 => FpOp::MvWX,
                0x60 => FpOp::CvtWS,
                0x68 => FpOp::CvtSW,
                _ => return Err(err()),
            };
            Inst::Fp { op, rd, rs1, rs2 }
        }
        MADD | MSUB | NMSUB | NMADD => {
            let op = match opcode {
                MADD => FmaOp::Madd,
                MSUB => FmaOp::Msub,
                NMSUB => FmaOp::Nmsub,
                _ => FmaOp::Nmadd,
            };
            Inst::Fma {
                op,
                rd,
                rs1,
                rs2,
                rs3: Reg((word >> 27) as u8),
            }
        }
        SYSTEM if word == SYSTEM => Inst::Ecall,
        _ => return Err(err()),
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_encodings() {
        // addi x1, x0, 42  => 0x02A00093
        let i = Inst::OpImm {
            op: AluOp::Add,
            rd: Reg(1),
            rs1: Reg(0),
            imm: 42,
        };
        assert_eq!(i.encode(), 0x02a0_0093);
        // add x3, x1, x2 => 0x002081B3
        let i = Inst::Op {
            op: AluOp::Add,
            rd: Reg(3),
            rs1: Reg(1),
            rs2: Reg(2),
        };
        assert_eq!(i.encode(), 0x0020_81b3);
        // lw x5, 8(x2) => 0x00812283
        let i = Inst::Lw {
            rd: Reg(5),
            rs1: Reg(2),
            offset: 8,
        };
        assert_eq!(i.encode(), 0x0081_2283);
        // ecall => 0x00000073
        assert_eq!(Inst::Ecall.encode(), 0x0000_0073);
    }

    #[test]
    fn branch_offset_roundtrip() {
        for offset in [-4096i32, -2048, -2, 0, 2, 14, 2046, 4094] {
            let i = Inst::Branch {
                op: BranchOp::Ne,
                rs1: Reg(4),
                rs2: Reg(5),
                offset,
            };
            assert_eq!(decode(i.encode()).unwrap(), i, "offset {offset}");
        }
    }

    #[test]
    fn jal_offset_roundtrip() {
        for offset in [-1048576i32, -2, 0, 2, 4096, 1048574] {
            let i = Inst::Jal { rd: Reg(1), offset };
            assert_eq!(decode(i.encode()).unwrap(), i, "offset {offset}");
        }
    }

    #[test]
    fn fma_roundtrip() {
        let i = Inst::Fma {
            op: FmaOp::Madd,
            rd: Reg(1),
            rs1: Reg(2),
            rs2: Reg(3),
            rs3: Reg(4),
        };
        assert_eq!(decode(i.encode()).unwrap(), i);
    }

    #[test]
    fn undecodable_word_errors() {
        assert!(decode(0xffff_ffff).is_err());
        assert!(decode(0x0000_0000).is_err());
    }
}
