//! Bridge from executed RISC-V instruction streams to the workspace's
//! micro-op timing IR.
//!
//! The rest of the workspace prices *generated* traces; this bridge prices
//! *real* instruction streams executed by [`crate::Machine`], closing the
//! loop between ISA-level ground truth and the timing models.

use crate::{AluOp, FpOp, Inst, Retired};
use soc_isa::{MicroOp, OpClass, Trace, VReg};

/// Converts a retired-instruction stream into a [`Trace`].
///
/// Architectural registers are renamed into the trace's SSA-like virtual
/// register space (separate integer and FP rename maps), preserving true
/// (read-after-write) dependencies. Store-to-load memory dependencies are
/// conservatively serialized through a memory token, matching how the
/// trace builders express library-boundary round-trips.
pub fn trace_from_execution(retired: &[Retired]) -> Trace {
    let mut next = 0u32;
    let mut fresh = || {
        let r = VReg(next);
        next += 1;
        r
    };
    // Rename tables: architectural -> last producing virtual register.
    let mut xmap: [Option<VReg>; 32] = [None; 32];
    let mut fmap: [Option<VReg>; 32] = [None; 32];
    let mut mem_token: Option<VReg> = None;

    let mut ops: Vec<MicroOp> = Vec::with_capacity(retired.len());
    for r in retired {
        let mut srcs: Vec<VReg> = Vec::new();
        let push_x = |srcs: &mut Vec<VReg>, xmap: &[Option<VReg>; 32], reg: u8| {
            if reg != 0 {
                if let Some(v) = xmap[reg as usize] {
                    srcs.push(v);
                }
            }
        };
        let push_f = |srcs: &mut Vec<VReg>, fmap: &[Option<VReg>; 32], reg: u8| {
            if let Some(v) = fmap[reg as usize] {
                srcs.push(v);
            }
        };

        let (class, xdst, fdst): (OpClass, Option<u8>, Option<u8>) = match r.inst {
            Inst::Lui { rd, .. } | Inst::Auipc { rd, .. } => (OpClass::IntAlu, Some(rd.0), None),
            Inst::Jal { rd, .. } => (OpClass::Branch, Some(rd.0), None),
            Inst::Jalr { rd, rs1, .. } => {
                push_x(&mut srcs, &xmap, rs1.0);
                (OpClass::Branch, Some(rd.0), None)
            }
            Inst::Branch { rs1, rs2, .. } => {
                push_x(&mut srcs, &xmap, rs1.0);
                push_x(&mut srcs, &xmap, rs2.0);
                (OpClass::Branch, None, None)
            }
            Inst::Lw { rd, rs1, .. } => {
                push_x(&mut srcs, &xmap, rs1.0);
                if let Some(t) = mem_token {
                    srcs.push(t);
                }
                (OpClass::Load, Some(rd.0), None)
            }
            Inst::Flw { rd, rs1, .. } => {
                push_x(&mut srcs, &xmap, rs1.0);
                if let Some(t) = mem_token {
                    srcs.push(t);
                }
                (OpClass::Load, None, Some(rd.0))
            }
            Inst::Sw { rs2, rs1, .. } => {
                push_x(&mut srcs, &xmap, rs1.0);
                push_x(&mut srcs, &xmap, rs2.0);
                (OpClass::Store, None, None)
            }
            Inst::Fsw { rs2, rs1, .. } => {
                push_x(&mut srcs, &xmap, rs1.0);
                push_f(&mut srcs, &fmap, rs2.0);
                (OpClass::Store, None, None)
            }
            Inst::OpImm { op, rd, rs1, .. } => {
                push_x(&mut srcs, &xmap, rs1.0);
                let class = if op.requires_mul_unit() {
                    OpClass::IntMul
                } else {
                    OpClass::IntAlu
                };
                (class, Some(rd.0), None)
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                push_x(&mut srcs, &xmap, rs1.0);
                push_x(&mut srcs, &xmap, rs2.0);
                let class = if op.requires_mul_unit() {
                    OpClass::IntMul
                } else {
                    OpClass::IntAlu
                };
                (class, Some(rd.0), None)
            }
            Inst::Fp { op, rd, rs1, rs2 } => match op {
                FpOp::Add | FpOp::Sub => {
                    push_f(&mut srcs, &fmap, rs1.0);
                    push_f(&mut srcs, &fmap, rs2.0);
                    (OpClass::FpAdd, None, Some(rd.0))
                }
                FpOp::Mul => {
                    push_f(&mut srcs, &fmap, rs1.0);
                    push_f(&mut srcs, &fmap, rs2.0);
                    (OpClass::FpMul, None, Some(rd.0))
                }
                FpOp::Div => {
                    push_f(&mut srcs, &fmap, rs1.0);
                    push_f(&mut srcs, &fmap, rs2.0);
                    (OpClass::FpDiv, None, Some(rd.0))
                }
                FpOp::Min | FpOp::Max | FpOp::SgnJ | FpOp::SgnJn | FpOp::SgnJx => {
                    push_f(&mut srcs, &fmap, rs1.0);
                    push_f(&mut srcs, &fmap, rs2.0);
                    (OpClass::FpSimple, None, Some(rd.0))
                }
                FpOp::Eq | FpOp::Lt | FpOp::Le | FpOp::CvtWS | FpOp::MvXW => {
                    push_f(&mut srcs, &fmap, rs1.0);
                    if !matches!(op, FpOp::CvtWS | FpOp::MvXW) {
                        push_f(&mut srcs, &fmap, rs2.0);
                    }
                    (OpClass::FpSimple, Some(rd.0), None)
                }
                FpOp::MvWX | FpOp::CvtSW => {
                    push_x(&mut srcs, &xmap, rs1.0);
                    (OpClass::FpSimple, None, Some(rd.0))
                }
            },
            Inst::Fma {
                rd, rs1, rs2, rs3, ..
            } => {
                push_f(&mut srcs, &fmap, rs1.0);
                push_f(&mut srcs, &fmap, rs2.0);
                push_f(&mut srcs, &fmap, rs3.0);
                (OpClass::FpFma, None, Some(rd.0))
            }
            Inst::Ecall => (OpClass::IntAlu, None, None),
        };

        srcs.truncate(3);
        let dst = match (xdst, fdst) {
            (Some(0), None) => None, // writes to x0 vanish
            (Some(x), None) => {
                let v = fresh();
                xmap[x as usize] = Some(v);
                Some(v)
            }
            (None, Some(fr)) => {
                let v = fresh();
                fmap[fr as usize] = Some(v);
                Some(v)
            }
            _ => None,
        };
        if class == OpClass::Store {
            let t = fresh();
            mem_token = Some(t);
            let mut op = MicroOp::scalar(class, Some(t), &srcs);
            op.dst = Some(t);
            ops.push(op);
            continue;
        }
        ops.push(MicroOp::scalar(class, dst, &srcs));
    }
    ops.into_iter().collect()
}

impl AluOp {
    /// Whether the op needs the multiply/divide unit.
    fn requires_mul_unit(self) -> bool {
        matches!(
            self,
            AluOp::Mul | AluOp::Mulh | AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{assemble, Machine};

    #[test]
    fn trace_preserves_dependencies() {
        let prog = assemble(
            r#"
            flw  ft0, 0(a0)
            flw  ft1, 4(a0)
            fmadd.s ft2, ft0, ft1, ft2
            fsw  ft2, 8(a0)
            ecall
        "#,
        )
        .unwrap();
        let mut m = Machine::new(4096);
        m.record_trace();
        m.load_program(0, &prog);
        m.run(100).unwrap();
        let trace = trace_from_execution(m.retired().unwrap());
        assert_eq!(trace.len(), 5);
        let fma = trace.ops()[2];
        assert_eq!(fma.class, OpClass::FpFma);
        // The fmadd reads both loaded registers.
        let load0 = trace.ops()[0].dst.unwrap();
        let load1 = trace.ops()[1].dst.unwrap();
        let fma_srcs: Vec<_> = fma.sources().collect();
        assert!(fma_srcs.contains(&load0) && fma_srcs.contains(&load1));
        // The store reads the fma result.
        let store_srcs: Vec<_> = trace.ops()[3].sources().collect();
        assert!(store_srcs.contains(&fma.dst.unwrap()));
    }

    #[test]
    fn loops_unroll_into_the_trace() {
        let prog = assemble(
            r#"
            li a1, 5
        loop:
            addi a1, a1, -1
            bne a1, zero, loop
            ecall
        "#,
        )
        .unwrap();
        let mut m = Machine::new(4096);
        m.record_trace();
        m.load_program(0, &prog);
        m.run(100).unwrap();
        let trace = trace_from_execution(m.retired().unwrap());
        // li + 5*(addi+bne) + ecall.
        assert_eq!(trace.len(), 1 + 10 + 1);
        assert_eq!(trace.stats().branches, 5);
    }
}
