//! A small two-pass RV32IMF assembler: labels, ABI register names, and
//! the common pseudo-instructions — enough to write real kernels in tests
//! and examples.

use crate::{AluOp, BranchOp, FmaOp, FpOp, Inst, Reg};
use std::collections::HashMap;
use std::fmt;

/// Assembly failure with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn int_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let named = match tok {
        "zero" => 0,
        "ra" => 1,
        "sp" => 2,
        "gp" => 3,
        "tp" => 4,
        "fp" => 8,
        _ => {
            if let Some(n) = tok.strip_prefix('x').and_then(|s| s.parse::<u8>().ok()) {
                n
            } else if let Some(n) = tok.strip_prefix('a').and_then(|s| s.parse::<u8>().ok()) {
                10 + n
            } else if let Some(n) = tok.strip_prefix('s').and_then(|s| s.parse::<u8>().ok()) {
                if n < 2 {
                    8 + n
                } else {
                    16 + n
                }
            } else if let Some(n) = tok.strip_prefix('t').and_then(|s| s.parse::<u8>().ok()) {
                if n < 3 {
                    5 + n
                } else {
                    25 + n
                }
            } else {
                return Err(err(line, format!("unknown integer register `{tok}`")));
            }
        }
    };
    if named >= 32 {
        return Err(err(line, format!("register `{tok}` out of range")));
    }
    Ok(Reg(named))
}

fn fp_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let n = if let Some(n) = tok.strip_prefix("ft").and_then(|s| s.parse::<u8>().ok()) {
        if n < 8 {
            n
        } else {
            20 + n
        }
    } else if let Some(n) = tok.strip_prefix("fs").and_then(|s| s.parse::<u8>().ok()) {
        if n < 2 {
            8 + n
        } else {
            16 + n
        }
    } else if let Some(n) = tok.strip_prefix("fa").and_then(|s| s.parse::<u8>().ok()) {
        10 + n
    } else if let Some(n) = tok.strip_prefix('f').and_then(|s| s.parse::<u8>().ok()) {
        n
    } else {
        return Err(err(line, format!("unknown FP register `{tok}`")));
    };
    if n >= 32 {
        return Err(err(line, format!("register `{tok}` out of range")));
    }
    Ok(Reg(n))
}

fn imm(tok: &str, line: usize) -> Result<i32, AsmError> {
    let parsed = if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()
    } else if let Some(hex) = tok.strip_prefix("-0x") {
        i64::from_str_radix(hex, 16).ok().map(|v| -v)
    } else {
        tok.parse::<i64>().ok()
    };
    parsed
        .and_then(|v| i32::try_from(v).ok())
        .ok_or_else(|| err(line, format!("bad immediate `{tok}`")))
}

/// `offset(base)` memory operand.
fn mem_operand(tok: &str, line: usize) -> Result<(i32, Reg), AsmError> {
    let open = tok
        .find('(')
        .ok_or_else(|| err(line, format!("expected off(reg), got `{tok}`")))?;
    let close = tok
        .find(')')
        .ok_or_else(|| err(line, format!("expected off(reg), got `{tok}`")))?;
    let off = if open == 0 {
        0
    } else {
        imm(&tok[..open], line)?
    };
    let base = int_reg(&tok[open + 1..close], line)?;
    Ok((off, base))
}

enum Item {
    Inst(Inst),
    /// Branch/jump needing a label: (mnemonic pieces resolved later).
    BranchTo {
        op: BranchOp,
        rs1: Reg,
        rs2: Reg,
        label: String,
    },
    JumpTo {
        rd: Reg,
        label: String,
    },
}

/// Assembles a program. Returns instructions in order; labels resolve to
/// instruction addresses at 4-byte granularity from base 0.
///
/// Supported: the full [`Inst`] surface plus pseudo-instructions `li`,
/// `mv`, `nop`, `j`, `ret`, `fmv.s`, `fabs.s`, `fneg.s`. Comments start
/// with `#`.
///
/// # Errors
///
/// Returns [`AsmError`] with the offending line on any parse failure or
/// unknown label.
pub fn assemble(source: &str) -> Result<Vec<Inst>, AsmError> {
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut items: Vec<(usize, Item)> = Vec::new();

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let mut rest = text;
        // Leading labels.
        while let Some(colon) = rest.find(':') {
            let (label, after) = rest.split_at(colon);
            let label = label.trim();
            if label.chars().all(|c| c.is_alphanumeric() || c == '_') && !label.is_empty() {
                labels.insert(label.to_string(), items.len());
                rest = after[1..].trim();
            } else {
                break;
            }
        }
        if rest.is_empty() {
            continue;
        }
        let mut parts = rest.split_whitespace();
        let mnemonic = parts.next().expect("nonempty");
        let operand_str: String = parts.collect::<Vec<_>>().join(" ");
        let ops: Vec<&str> = operand_str
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        let n = ops.len();
        let need = |want: usize| {
            if n == want {
                Ok(())
            } else {
                Err(err(
                    line,
                    format!("{mnemonic} expects {want} operands, got {n}"),
                ))
            }
        };

        let item = match mnemonic {
            "nop" => Item::Inst(Inst::OpImm {
                op: AluOp::Add,
                rd: Reg(0),
                rs1: Reg(0),
                imm: 0,
            }),
            "li" => {
                need(2)?;
                let rd = int_reg(ops[0], line)?;
                let v = imm(ops[1], line)?;
                if (-2048..2048).contains(&v) {
                    Item::Inst(Inst::OpImm {
                        op: AluOp::Add,
                        rd,
                        rs1: Reg(0),
                        imm: v,
                    })
                } else {
                    // lui + addi pair; emit lui now, addi below via two
                    // pushes.
                    let upper = (v + 0x800) & !0xfff;
                    items.push((line, Item::Inst(Inst::Lui { rd, imm: upper })));
                    Item::Inst(Inst::OpImm {
                        op: AluOp::Add,
                        rd,
                        rs1: rd,
                        imm: v - upper,
                    })
                }
            }
            "mv" => {
                need(2)?;
                Item::Inst(Inst::OpImm {
                    op: AluOp::Add,
                    rd: int_reg(ops[0], line)?,
                    rs1: int_reg(ops[1], line)?,
                    imm: 0,
                })
            }
            "j" => {
                need(1)?;
                Item::JumpTo {
                    rd: Reg(0),
                    label: ops[0].to_string(),
                }
            }
            "jal" => {
                need(2)?;
                Item::JumpTo {
                    rd: int_reg(ops[0], line)?,
                    label: ops[1].to_string(),
                }
            }
            "ret" => Item::Inst(Inst::Jalr {
                rd: Reg(0),
                rs1: Reg(1),
                offset: 0,
            }),
            "ecall" => Item::Inst(Inst::Ecall),
            "lui" => {
                need(2)?;
                Item::Inst(Inst::Lui {
                    rd: int_reg(ops[0], line)?,
                    imm: imm(ops[1], line)? << 12,
                })
            }
            "lw" | "flw" => {
                need(2)?;
                let (offset, rs1) = mem_operand(ops[1], line)?;
                if mnemonic == "lw" {
                    Item::Inst(Inst::Lw {
                        rd: int_reg(ops[0], line)?,
                        rs1,
                        offset,
                    })
                } else {
                    Item::Inst(Inst::Flw {
                        rd: fp_reg(ops[0], line)?,
                        rs1,
                        offset,
                    })
                }
            }
            "sw" | "fsw" => {
                need(2)?;
                let (offset, rs1) = mem_operand(ops[1], line)?;
                if mnemonic == "sw" {
                    Item::Inst(Inst::Sw {
                        rs2: int_reg(ops[0], line)?,
                        rs1,
                        offset,
                    })
                } else {
                    Item::Inst(Inst::Fsw {
                        rs2: fp_reg(ops[0], line)?,
                        rs1,
                        offset,
                    })
                }
            }
            "addi" | "andi" | "ori" | "xori" | "slti" | "slli" | "srli" | "srai" => {
                need(3)?;
                let op = match mnemonic {
                    "addi" => AluOp::Add,
                    "andi" => AluOp::And,
                    "ori" => AluOp::Or,
                    "xori" => AluOp::Xor,
                    "slti" => AluOp::Slt,
                    "slli" => AluOp::Sll,
                    "srli" => AluOp::Srl,
                    _ => AluOp::Sra,
                };
                Item::Inst(Inst::OpImm {
                    op,
                    rd: int_reg(ops[0], line)?,
                    rs1: int_reg(ops[1], line)?,
                    imm: imm(ops[2], line)?,
                })
            }
            "add" | "sub" | "and" | "or" | "xor" | "sll" | "srl" | "sra" | "slt" | "sltu"
            | "mul" | "mulh" | "div" | "divu" | "rem" | "remu" => {
                need(3)?;
                let op = match mnemonic {
                    "add" => AluOp::Add,
                    "sub" => AluOp::Sub,
                    "and" => AluOp::And,
                    "or" => AluOp::Or,
                    "xor" => AluOp::Xor,
                    "sll" => AluOp::Sll,
                    "srl" => AluOp::Srl,
                    "sra" => AluOp::Sra,
                    "slt" => AluOp::Slt,
                    "sltu" => AluOp::Sltu,
                    "mul" => AluOp::Mul,
                    "mulh" => AluOp::Mulh,
                    "div" => AluOp::Div,
                    "divu" => AluOp::Divu,
                    "rem" => AluOp::Rem,
                    _ => AluOp::Remu,
                };
                Item::Inst(Inst::Op {
                    op,
                    rd: int_reg(ops[0], line)?,
                    rs1: int_reg(ops[1], line)?,
                    rs2: int_reg(ops[2], line)?,
                })
            }
            "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
                need(3)?;
                let op = match mnemonic {
                    "beq" => BranchOp::Eq,
                    "bne" => BranchOp::Ne,
                    "blt" => BranchOp::Lt,
                    "bge" => BranchOp::Ge,
                    "bltu" => BranchOp::Ltu,
                    _ => BranchOp::Geu,
                };
                Item::BranchTo {
                    op,
                    rs1: int_reg(ops[0], line)?,
                    rs2: int_reg(ops[1], line)?,
                    label: ops[2].to_string(),
                }
            }
            "fadd.s" | "fsub.s" | "fmul.s" | "fdiv.s" | "fmin.s" | "fmax.s" | "fsgnj.s"
            | "fsgnjn.s" | "fsgnjx.s" => {
                need(3)?;
                let op = match mnemonic {
                    "fadd.s" => FpOp::Add,
                    "fsub.s" => FpOp::Sub,
                    "fmul.s" => FpOp::Mul,
                    "fdiv.s" => FpOp::Div,
                    "fmin.s" => FpOp::Min,
                    "fmax.s" => FpOp::Max,
                    "fsgnj.s" => FpOp::SgnJ,
                    "fsgnjn.s" => FpOp::SgnJn,
                    _ => FpOp::SgnJx,
                };
                Item::Inst(Inst::Fp {
                    op,
                    rd: fp_reg(ops[0], line)?,
                    rs1: fp_reg(ops[1], line)?,
                    rs2: fp_reg(ops[2], line)?,
                })
            }
            "fmv.s" | "fabs.s" | "fneg.s" => {
                need(2)?;
                let op = match mnemonic {
                    "fmv.s" => FpOp::SgnJ,
                    "fabs.s" => FpOp::SgnJx,
                    _ => FpOp::SgnJn,
                };
                let rs = fp_reg(ops[1], line)?;
                Item::Inst(Inst::Fp {
                    op,
                    rd: fp_reg(ops[0], line)?,
                    rs1: rs,
                    rs2: rs,
                })
            }
            "feq.s" | "flt.s" | "fle.s" => {
                need(3)?;
                let op = match mnemonic {
                    "feq.s" => FpOp::Eq,
                    "flt.s" => FpOp::Lt,
                    _ => FpOp::Le,
                };
                Item::Inst(Inst::Fp {
                    op,
                    rd: int_reg(ops[0], line)?,
                    rs1: fp_reg(ops[1], line)?,
                    rs2: fp_reg(ops[2], line)?,
                })
            }
            "fmv.x.w" => {
                need(2)?;
                Item::Inst(Inst::Fp {
                    op: FpOp::MvXW,
                    rd: int_reg(ops[0], line)?,
                    rs1: fp_reg(ops[1], line)?,
                    rs2: Reg(0),
                })
            }
            "fmv.w.x" => {
                need(2)?;
                Item::Inst(Inst::Fp {
                    op: FpOp::MvWX,
                    rd: fp_reg(ops[0], line)?,
                    rs1: int_reg(ops[1], line)?,
                    rs2: Reg(0),
                })
            }
            "fcvt.s.w" => {
                need(2)?;
                Item::Inst(Inst::Fp {
                    op: FpOp::CvtSW,
                    rd: fp_reg(ops[0], line)?,
                    rs1: int_reg(ops[1], line)?,
                    rs2: Reg(0),
                })
            }
            "fcvt.w.s" => {
                need(2)?;
                Item::Inst(Inst::Fp {
                    op: FpOp::CvtWS,
                    rd: int_reg(ops[0], line)?,
                    rs1: fp_reg(ops[1], line)?,
                    rs2: Reg(0),
                })
            }
            "fmadd.s" | "fmsub.s" | "fnmsub.s" | "fnmadd.s" => {
                need(4)?;
                let op = match mnemonic {
                    "fmadd.s" => FmaOp::Madd,
                    "fmsub.s" => FmaOp::Msub,
                    "fnmsub.s" => FmaOp::Nmsub,
                    _ => FmaOp::Nmadd,
                };
                Item::Inst(Inst::Fma {
                    op,
                    rd: fp_reg(ops[0], line)?,
                    rs1: fp_reg(ops[1], line)?,
                    rs2: fp_reg(ops[2], line)?,
                    rs3: fp_reg(ops[3], line)?,
                })
            }
            other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
        };
        items.push((line, item));
    }

    // Second pass: resolve labels.
    let mut out = Vec::with_capacity(items.len());
    for (idx, (line, item)) in items.iter().enumerate() {
        let resolve = |label: &str| -> Result<i32, AsmError> {
            let target = labels
                .get(label)
                .ok_or_else(|| err(*line, format!("unknown label `{label}`")))?;
            Ok((*target as i32 - idx as i32) * 4)
        };
        let inst = match item {
            Item::Inst(i) => *i,
            Item::BranchTo {
                op,
                rs1,
                rs2,
                label,
            } => Inst::Branch {
                op: *op,
                rs1: *rs1,
                rs2: *rs2,
                offset: resolve(label)?,
            },
            Item::JumpTo { rd, label } => Inst::Jal {
                rd: *rd,
                offset: resolve(label)?,
            },
        };
        out.push(inst);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_register_names() {
        assert_eq!(int_reg("zero", 1).unwrap(), Reg(0));
        assert_eq!(int_reg("ra", 1).unwrap(), Reg(1));
        assert_eq!(int_reg("sp", 1).unwrap(), Reg(2));
        assert_eq!(int_reg("a0", 1).unwrap(), Reg(10));
        assert_eq!(int_reg("a7", 1).unwrap(), Reg(17));
        assert_eq!(int_reg("s0", 1).unwrap(), Reg(8));
        assert_eq!(int_reg("s2", 1).unwrap(), Reg(18));
        assert_eq!(int_reg("t0", 1).unwrap(), Reg(5));
        assert_eq!(int_reg("t3", 1).unwrap(), Reg(28));
        assert_eq!(int_reg("x31", 1).unwrap(), Reg(31));
        assert_eq!(fp_reg("fa0", 1).unwrap(), Reg(10));
        assert_eq!(fp_reg("ft0", 1).unwrap(), Reg(0));
        assert_eq!(fp_reg("fs1", 1).unwrap(), Reg(9));
        assert_eq!(fp_reg("f15", 1).unwrap(), Reg(15));
    }

    #[test]
    fn labels_and_branches_resolve() {
        let prog = assemble(
            r#"
            li a1, 3
        loop:
            addi a1, a1, -1
            bne a1, zero, loop
            ecall
        "#,
        )
        .unwrap();
        assert_eq!(prog.len(), 4);
        match prog[2] {
            Inst::Branch { offset, .. } => assert_eq!(offset, -4),
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn li_expands_large_immediates() {
        let prog = assemble("li a0, 0x12345\necall").unwrap();
        assert_eq!(prog.len(), 3); // lui + addi + ecall
        assert!(matches!(prog[0], Inst::Lui { .. }));
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let e = assemble("nop\nfrobnicate a0, a1").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn unknown_label_is_error() {
        assert!(assemble("j nowhere").is_err());
    }

    #[test]
    fn memory_operands_parse() {
        let prog = assemble("flw ft0, 8(a0)\nfsw ft0, (a1)\necall").unwrap();
        assert_eq!(
            prog[0],
            Inst::Flw {
                rd: Reg(0),
                rs1: Reg(10),
                offset: 8
            }
        );
        assert_eq!(
            prog[1],
            Inst::Fsw {
                rs2: Reg(0),
                rs1: Reg(11),
                offset: 0
            }
        );
    }
}
