//! # soc-riscv — RV32IMF functional simulator and assembler
//!
//! The paper's workloads are RISC-V binaries running on RTL simulations of
//! Rocket-class SoCs. The rest of this workspace models *timing* with an
//! abstract micro-op IR; this crate supplies the missing ISA-level ground
//! truth:
//!
//! * [`Inst`] — a typed RV32I + M + F instruction set with exact
//!   [`encode`](Inst::encode)/[`decode`] round-tripping of the standard
//!   32-bit encodings;
//! * [`assemble`] — a small assembler (labels, ABI register names, the
//!   usual pseudo-instructions) sufficient to write real kernels;
//! * [`Machine`] — a functional interpreter with byte-addressed memory,
//!   used in tests to validate `matlib` kernels against genuine RISC-V
//!   semantics;
//! * [`trace_from_execution`] — a bridge that converts an executed
//!   instruction stream into a [`soc_isa::Trace`], so real assembly can be
//!   priced on the workspace's pipeline models.
//!
//! ## Example
//!
//! ```
//! use soc_riscv::{assemble, Machine};
//!
//! let prog = assemble(r#"
//!     li   a0, 0        # sum
//!     li   a1, 10       # counter
//! loop:
//!     add  a0, a0, a1
//!     addi a1, a1, -1
//!     bne  a1, zero, loop
//!     ecall
//! "#).unwrap();
//! let mut m = Machine::new(4096);
//! m.load_program(0, &prog);
//! m.run(1_000).unwrap();
//! assert_eq!(m.x(10), 55); // a0
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod bridge;
mod inst;
mod machine;

pub use asm::{assemble, AsmError};
pub use bridge::trace_from_execution;
pub use inst::{decode, AluOp, BranchOp, DecodeError, FmaOp, FpOp, Inst, Reg};
pub use machine::{ExecError, Machine, Retired};
