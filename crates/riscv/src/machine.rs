//! Functional RV32IMF interpreter.

use crate::{decode, AluOp, BranchOp, FmaOp, FpOp, Inst};
use std::fmt;

/// Execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecError {
    /// PC or data access outside memory.
    OutOfBounds {
        /// The faulting address.
        addr: u32,
    },
    /// Word at PC failed to decode.
    Decode {
        /// PC of the undecodable word.
        pc: u32,
        /// The word.
        word: u32,
    },
    /// `run` hit its step budget without reaching `ecall`.
    StepBudgetExhausted,
    /// Misaligned word access.
    Misaligned {
        /// The faulting address.
        addr: u32,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfBounds { addr } => write!(f, "memory access out of bounds: {addr:#x}"),
            ExecError::Decode { pc, word } => {
                write!(f, "undecodable instruction {word:#010x} at pc {pc:#x}")
            }
            ExecError::StepBudgetExhausted => write!(f, "step budget exhausted before ecall"),
            ExecError::Misaligned { addr } => write!(f, "misaligned word access at {addr:#x}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// A retired instruction (for the timing bridge).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Retired {
    /// PC the instruction retired from.
    pub pc: u32,
    /// The instruction.
    pub inst: Inst,
}

/// A minimal RV32IMF hart with flat byte-addressed memory.
#[derive(Debug, Clone)]
pub struct Machine {
    x: [u32; 32],
    f: [f32; 32],
    pc: u32,
    mem: Vec<u8>,
    halted: bool,
    /// Retired-instruction log (enabled via [`Machine::record_trace`]).
    log: Option<Vec<Retired>>,
}

impl Machine {
    /// Creates a machine with `mem_bytes` of zeroed memory, PC 0.
    pub fn new(mem_bytes: usize) -> Self {
        Machine {
            x: [0; 32],
            f: [0.0; 32],
            pc: 0,
            mem: vec![0; mem_bytes],
            halted: false,
            log: None,
        }
    }

    /// Enables retired-instruction logging (for [`crate::trace_from_execution`]).
    pub fn record_trace(&mut self) {
        self.log = Some(Vec::new());
    }

    /// The retired-instruction log, if recording was enabled.
    pub fn retired(&self) -> Option<&[Retired]> {
        self.log.as_deref()
    }

    /// Loads encoded instructions at byte address `base`.
    pub fn load_program(&mut self, base: u32, program: &[Inst]) {
        for (i, inst) in program.iter().enumerate() {
            let word = inst.encode();
            let addr = base as usize + i * 4;
            self.mem[addr..addr + 4].copy_from_slice(&word.to_le_bytes());
        }
        self.pc = base;
    }

    /// Integer register value (x0 is always 0).
    pub fn x(&self, r: usize) -> u32 {
        if r == 0 {
            0
        } else {
            self.x[r]
        }
    }

    /// Sets an integer register.
    pub fn set_x(&mut self, r: usize, v: u32) {
        if r != 0 {
            self.x[r] = v;
        }
    }

    /// FP register value.
    pub fn f(&self, r: usize) -> f32 {
        self.f[r]
    }

    /// Sets an FP register.
    pub fn set_f(&mut self, r: usize, v: f32) {
        self.f[r] = v;
    }

    /// Whether `ecall` has been executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Reads a little-endian f32 from memory.
    ///
    /// # Errors
    ///
    /// Out-of-bounds or misaligned accesses.
    pub fn read_f32(&self, addr: u32) -> Result<f32, ExecError> {
        Ok(f32::from_bits(self.read_u32(addr)?))
    }

    /// Writes a little-endian f32 to memory.
    ///
    /// # Errors
    ///
    /// Out-of-bounds or misaligned accesses.
    pub fn write_f32(&mut self, addr: u32, v: f32) -> Result<(), ExecError> {
        self.write_u32(addr, v.to_bits())
    }

    fn read_u32(&self, addr: u32) -> Result<u32, ExecError> {
        if !addr.is_multiple_of(4) {
            return Err(ExecError::Misaligned { addr });
        }
        let a = addr as usize;
        if a + 4 > self.mem.len() {
            return Err(ExecError::OutOfBounds { addr });
        }
        Ok(u32::from_le_bytes([
            self.mem[a],
            self.mem[a + 1],
            self.mem[a + 2],
            self.mem[a + 3],
        ]))
    }

    fn write_u32(&mut self, addr: u32, v: u32) -> Result<(), ExecError> {
        if !addr.is_multiple_of(4) {
            return Err(ExecError::Misaligned { addr });
        }
        let a = addr as usize;
        if a + 4 > self.mem.len() {
            return Err(ExecError::OutOfBounds { addr });
        }
        self.mem[a..a + 4].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Decode and memory errors; no-op if already halted.
    pub fn step(&mut self) -> Result<(), ExecError> {
        if self.halted {
            return Ok(());
        }
        let word = self.read_u32(self.pc)?;
        let inst = decode(word).map_err(|e| ExecError::Decode {
            pc: self.pc,
            word: e.word,
        })?;
        if let Some(log) = self.log.as_mut() {
            log.push(Retired { pc: self.pc, inst });
        }
        let mut next_pc = self.pc.wrapping_add(4);
        match inst {
            Inst::Lui { rd, imm } => self.set_x(rd.0 as usize, imm as u32),
            Inst::Auipc { rd, imm } => self.set_x(rd.0 as usize, self.pc.wrapping_add(imm as u32)),
            Inst::Jal { rd, offset } => {
                self.set_x(rd.0 as usize, next_pc);
                next_pc = self.pc.wrapping_add(offset as u32);
            }
            Inst::Jalr { rd, rs1, offset } => {
                let target = self.x(rs1.0 as usize).wrapping_add(offset as u32) & !1;
                self.set_x(rd.0 as usize, next_pc);
                next_pc = target;
            }
            Inst::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let (a, b) = (self.x(rs1.0 as usize), self.x(rs2.0 as usize));
                let taken = match op {
                    BranchOp::Eq => a == b,
                    BranchOp::Ne => a != b,
                    BranchOp::Lt => (a as i32) < (b as i32),
                    BranchOp::Ge => (a as i32) >= (b as i32),
                    BranchOp::Ltu => a < b,
                    BranchOp::Geu => a >= b,
                };
                if taken {
                    next_pc = self.pc.wrapping_add(offset as u32);
                }
            }
            Inst::Lw { rd, rs1, offset } => {
                let addr = self.x(rs1.0 as usize).wrapping_add(offset as u32);
                let v = self.read_u32(addr)?;
                self.set_x(rd.0 as usize, v);
            }
            Inst::Sw { rs2, rs1, offset } => {
                let addr = self.x(rs1.0 as usize).wrapping_add(offset as u32);
                self.write_u32(addr, self.x(rs2.0 as usize))?;
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                let v = alu(op, self.x(rs1.0 as usize), imm as u32);
                self.set_x(rd.0 as usize, v);
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                let v = alu(op, self.x(rs1.0 as usize), self.x(rs2.0 as usize));
                self.set_x(rd.0 as usize, v);
            }
            Inst::Flw { rd, rs1, offset } => {
                let addr = self.x(rs1.0 as usize).wrapping_add(offset as u32);
                let v = self.read_f32(addr)?;
                self.set_f(rd.0 as usize, v);
            }
            Inst::Fsw { rs2, rs1, offset } => {
                let addr = self.x(rs1.0 as usize).wrapping_add(offset as u32);
                self.write_f32(addr, self.f(rs2.0 as usize))?;
            }
            Inst::Fp { op, rd, rs1, rs2 } => {
                let (a, b) = (self.f(rs1.0 as usize), self.f(rs2.0 as usize));
                match op {
                    FpOp::Add => self.set_f(rd.0 as usize, a + b),
                    FpOp::Sub => self.set_f(rd.0 as usize, a - b),
                    FpOp::Mul => self.set_f(rd.0 as usize, a * b),
                    FpOp::Div => self.set_f(rd.0 as usize, a / b),
                    FpOp::SgnJ => self.set_f(rd.0 as usize, a.copysign(b)),
                    FpOp::SgnJn => self.set_f(rd.0 as usize, a.copysign(-b)),
                    FpOp::SgnJx => {
                        let sign = if (a.is_sign_negative()) ^ (b.is_sign_negative()) {
                            -1.0f32
                        } else {
                            1.0
                        };
                        self.set_f(rd.0 as usize, a.abs().copysign(sign));
                    }
                    FpOp::Min => self.set_f(rd.0 as usize, a.min(b)),
                    FpOp::Max => self.set_f(rd.0 as usize, a.max(b)),
                    FpOp::Eq => self.set_x(rd.0 as usize, (a == b) as u32),
                    FpOp::Lt => self.set_x(rd.0 as usize, (a < b) as u32),
                    FpOp::Le => self.set_x(rd.0 as usize, (a <= b) as u32),
                    FpOp::MvXW => self.set_x(rd.0 as usize, a.to_bits()),
                    FpOp::MvWX => self.set_f(rd.0 as usize, f32::from_bits(self.x(rs1.0 as usize))),
                    FpOp::CvtWS => self.set_x(rd.0 as usize, (a.round_ties_even()) as i32 as u32),
                    FpOp::CvtSW => self.set_f(rd.0 as usize, self.x(rs1.0 as usize) as i32 as f32),
                }
            }
            Inst::Fma {
                op,
                rd,
                rs1,
                rs2,
                rs3,
            } => {
                let (a, b, c) = (
                    self.f(rs1.0 as usize),
                    self.f(rs2.0 as usize),
                    self.f(rs3.0 as usize),
                );
                let v = match op {
                    FmaOp::Madd => a.mul_add(b, c),
                    FmaOp::Msub => a.mul_add(b, -c),
                    FmaOp::Nmsub => (-a).mul_add(b, c),
                    FmaOp::Nmadd => (-a).mul_add(b, -c),
                };
                self.set_f(rd.0 as usize, v);
            }
            Inst::Ecall => {
                self.halted = true;
            }
        }
        self.pc = next_pc;
        Ok(())
    }

    /// Runs until `ecall` or the step budget is exhausted.
    ///
    /// # Errors
    ///
    /// Propagates step errors; [`ExecError::StepBudgetExhausted`] if the
    /// program does not halt in time.
    pub fn run(&mut self, max_steps: usize) -> Result<usize, ExecError> {
        for step in 0..max_steps {
            if self.halted {
                return Ok(step);
            }
            self.step()?;
        }
        if self.halted {
            Ok(max_steps)
        } else {
            Err(ExecError::StepBudgetExhausted)
        }
    }
}

fn alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl(b & 0x1f),
        AluOp::Slt => ((a as i32) < (b as i32)) as u32,
        AluOp::Sltu => (a < b) as u32,
        AluOp::Xor => a ^ b,
        AluOp::Srl => a.wrapping_shr(b & 0x1f),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 0x1f)) as u32,
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Mulh => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
        AluOp::Div => {
            if b == 0 {
                u32::MAX
            } else {
                ((a as i32).wrapping_div(b as i32)) as u32
            }
        }
        AluOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
        AluOp::Rem => {
            if b == 0 {
                a
            } else {
                ((a as i32).wrapping_rem(b as i32)) as u32
            }
        }
        AluOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn arithmetic_and_halt() {
        let prog = [
            Inst::OpImm {
                op: AluOp::Add,
                rd: Reg(1),
                rs1: Reg(0),
                imm: 21,
            },
            Inst::Op {
                op: AluOp::Add,
                rd: Reg(2),
                rs1: Reg(1),
                rs2: Reg(1),
            },
            Inst::Ecall,
        ];
        let mut m = Machine::new(1024);
        m.load_program(0, &prog);
        m.run(10).unwrap();
        assert!(m.is_halted());
        assert_eq!(m.x(2), 42);
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let prog = [
            Inst::OpImm {
                op: AluOp::Add,
                rd: Reg(0),
                rs1: Reg(0),
                imm: 99,
            },
            Inst::Ecall,
        ];
        let mut m = Machine::new(1024);
        m.load_program(0, &prog);
        m.run(10).unwrap();
        assert_eq!(m.x(0), 0);
    }

    #[test]
    fn loads_stores_roundtrip_memory() {
        let prog = [
            Inst::OpImm {
                op: AluOp::Add,
                rd: Reg(1),
                rs1: Reg(0),
                imm: 512,
            },
            Inst::OpImm {
                op: AluOp::Add,
                rd: Reg(2),
                rs1: Reg(0),
                imm: 1234,
            },
            Inst::Sw {
                rs2: Reg(2),
                rs1: Reg(1),
                offset: 4,
            },
            Inst::Lw {
                rd: Reg(3),
                rs1: Reg(1),
                offset: 4,
            },
            Inst::Ecall,
        ];
        let mut m = Machine::new(1024);
        m.load_program(0, &prog);
        m.run(10).unwrap();
        assert_eq!(m.x(3), 1234);
    }

    #[test]
    fn fp_fma_semantics() {
        let mut m = Machine::new(1024);
        m.set_f(1, 2.0);
        m.set_f(2, 3.0);
        m.set_f(3, 1.0);
        let prog = [
            Inst::Fma {
                op: FmaOp::Madd,
                rd: Reg(4),
                rs1: Reg(1),
                rs2: Reg(2),
                rs3: Reg(3),
            },
            Inst::Fma {
                op: FmaOp::Nmadd,
                rd: Reg(5),
                rs1: Reg(1),
                rs2: Reg(2),
                rs3: Reg(3),
            },
            Inst::Ecall,
        ];
        m.load_program(0, &prog);
        m.run(10).unwrap();
        assert_eq!(m.f(4), 7.0);
        assert_eq!(m.f(5), -7.0);
    }

    #[test]
    fn fabs_via_sgnjx() {
        let mut m = Machine::new(1024);
        m.set_f(1, -3.5);
        let prog = [
            Inst::Fp {
                op: FpOp::SgnJx,
                rd: Reg(2),
                rs1: Reg(1),
                rs2: Reg(1),
            },
            Inst::Ecall,
        ];
        m.load_program(0, &prog);
        m.run(10).unwrap();
        assert_eq!(m.f(2), 3.5);
    }

    #[test]
    fn div_by_zero_follows_spec() {
        assert_eq!(alu(AluOp::Div, 7, 0), u32::MAX);
        assert_eq!(alu(AluOp::Rem, 7, 0), 7);
    }

    #[test]
    fn out_of_bounds_faults() {
        let prog = [
            Inst::Lw {
                rd: Reg(1),
                rs1: Reg(0),
                offset: 2000,
            },
            Inst::Ecall,
        ];
        let mut m = Machine::new(1024);
        m.load_program(0, &prog);
        assert!(matches!(m.run(10), Err(ExecError::OutOfBounds { .. })));
    }

    #[test]
    fn budget_exhaustion_detected() {
        // Infinite loop: jal x0, 0.
        let prog = [Inst::Jal {
            rd: Reg(0),
            offset: 0,
        }];
        let mut m = Machine::new(1024);
        m.load_program(0, &prog);
        assert_eq!(m.run(100), Err(ExecError::StepBudgetExhausted));
    }
}
