//! Cross-validation: real RISC-V assembly kernels executed on the
//! functional machine must agree with `matlib`, and their retired streams
//! priced on the timing models must land near the generated-trace
//! estimates the rest of the workspace uses.

use matlib::{Matrix, Vector};
use soc_cpu::{simulate_scalar, CoreConfig, ScalarKernels, ScalarStyle};
use soc_isa::TraceBuilder;
use soc_riscv::{assemble, decode, trace_from_execution, Inst, Machine};

/// A straightforward row-major GEMV in RV32F assembly:
/// `y = A x`, A is m×k at `a0`, x at `a1`, y at `a2`, m in `a3`, k in `a4`.
const GEMV_ASM: &str = r#"
    # Row loop counter i in t0.
    li   t0, 0
row:
    bge  t0, a3, done
    # acc = 0
    fmv.w.x ft0, zero
    # Column loop: t1 = j, t2 = &A[i][0], t3 = &x[0].
    li   t1, 0
    mul  t4, t0, a4      # i*k
    slli t4, t4, 2
    add  t2, a0, t4      # row base
    mv   t3, a1
col:
    bge  t1, a4, rowend
    flw  ft1, (t2)
    flw  ft2, (t3)
    fmadd.s ft0, ft1, ft2, ft0
    addi t2, t2, 4
    addi t3, t3, 4
    addi t1, t1, 1
    j    col
rowend:
    slli t5, t0, 2
    add  t6, a2, t5
    fsw  ft0, (t6)
    addi t0, t0, 1
    j    row
done:
    ecall
"#;

fn run_gemv(m: usize, k: usize, seed: u64) -> (Vector<f32>, Machine) {
    let a = Matrix::<f32>::from_fn(m, k, |r, c| {
        ((seed as usize + r * 31 + c * 7) % 13) as f32 * 0.25 - 1.5
    });
    let x = Vector::<f32>::from_fn(k, |i| ((seed as usize + i * 5) % 9) as f32 * 0.5 - 2.0);
    let expected = a.matvec(&x).unwrap();

    let prog = assemble(GEMV_ASM).unwrap();
    let mut machine = Machine::new(64 * 1024);
    machine.record_trace();
    machine.load_program(0, &prog);
    // Data layout: A at 0x4000, x at 0x8000, y at 0xC000.
    let (a_base, x_base, y_base) = (0x4000u32, 0x8000u32, 0xc000u32);
    for r in 0..m {
        for c in 0..k {
            machine
                .write_f32(a_base + ((r * k + c) * 4) as u32, a[(r, c)])
                .unwrap();
        }
    }
    for i in 0..k {
        machine.write_f32(x_base + (i * 4) as u32, x[i]).unwrap();
    }
    machine.set_x(10, a_base);
    machine.set_x(11, x_base);
    machine.set_x(12, y_base);
    machine.set_x(13, m as u32);
    machine.set_x(14, k as u32);
    machine.run(200_000).unwrap();

    let y = Vector::from_fn(m, |i| machine.read_f32(y_base + (i * 4) as u32).unwrap());
    expected
        .as_slice()
        .iter()
        .zip(y.as_slice())
        .for_each(|(&e, &g)| assert!((e - g).abs() < 1e-5, "matlib {e} vs riscv {g}"));
    (y, machine)
}

#[test]
fn assembly_gemv_matches_matlib() {
    for (m, k, seed) in [(4usize, 12usize, 1u64), (12, 12, 2), (12, 4, 3), (1, 1, 4)] {
        run_gemv(m, k, seed);
    }
}

#[test]
fn executed_trace_prices_close_to_generated_library_trace() {
    // The assembly kernel is loop-structured like the matlib scalar style;
    // its executed trace priced on Rocket should land within ~2x of the
    // library-style generated trace (they differ in bookkeeping details).
    let (_, machine) = run_gemv(12, 12, 7);
    let real = trace_from_execution(machine.retired().unwrap());
    let real_cycles = simulate_scalar(&CoreConfig::rocket(), &real);

    let mut b = TraceBuilder::new();
    ScalarKernels::new(ScalarStyle::Library).gemv(&mut b, 12, 12);
    let generated_cycles = simulate_scalar(&CoreConfig::rocket(), &b.finish());

    let ratio = real_cycles as f64 / generated_cycles as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "executed {real_cycles} vs generated {generated_cycles} (ratio {ratio:.2})"
    );
}

#[test]
fn ooo_speedup_holds_on_real_code_too() {
    let (_, machine) = run_gemv(12, 12, 9);
    let trace = trace_from_execution(machine.retired().unwrap());
    let rocket = simulate_scalar(&CoreConfig::rocket(), &trace);
    let mega = simulate_scalar(&CoreConfig::mega_boom(), &trace);
    assert!(
        mega < rocket,
        "mega {mega} should beat rocket {rocket} on real code"
    );
}

/// Every encodable instruction round-trips through encode/decode.
/// Cases come from a deterministic SplitMix64 stream, so each failure
/// reproduces from the printed case number.
#[test]
fn encode_decode_roundtrip() {
    use soc_riscv::{AluOp, BranchOp, FmaOp, FpOp, Reg};
    let mut state = 0x00de_c0de_cafe_u64;
    let mut draw = |span: u64| -> u64 {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) % span
    };
    for case in 0..256 {
        let sel = draw(12) as u8;
        let rd = Reg(draw(32) as u8);
        let rs1 = Reg(draw(32) as u8);
        let rs2 = Reg(draw(32) as u8);
        let rs3 = Reg(draw(32) as u8);
        let imm = draw(4096) as i32 - 2048;
        let inst = match sel {
            0 => Inst::OpImm {
                op: AluOp::Add,
                rd,
                rs1,
                imm,
            },
            1 => Inst::Op {
                op: AluOp::Mul,
                rd,
                rs1,
                rs2,
            },
            2 => Inst::Lw {
                rd,
                rs1,
                offset: imm,
            },
            3 => Inst::Sw {
                rs2,
                rs1,
                offset: imm,
            },
            4 => Inst::Flw {
                rd,
                rs1,
                offset: imm,
            },
            5 => Inst::Fsw {
                rs2,
                rs1,
                offset: imm,
            },
            6 => Inst::Branch {
                op: BranchOp::Lt,
                rs1,
                rs2,
                offset: (imm / 2) * 2,
            },
            7 => Inst::Fp {
                op: FpOp::Max,
                rd,
                rs1,
                rs2,
            },
            8 => Inst::Fma {
                op: FmaOp::Nmsub,
                rd,
                rs1,
                rs2,
                rs3,
            },
            9 => Inst::Jal {
                rd,
                offset: (imm / 2) * 2,
            },
            10 => Inst::Lui { rd, imm: imm << 12 },
            _ => Inst::Op {
                op: AluOp::Sub,
                rd,
                rs1,
                rs2,
            },
        };
        assert_eq!(decode(inst.encode()).unwrap(), inst, "case {case}");
    }
}

/// TinyMPC's UPDATE_SLACK kernel in assembly: `znew = clip(u + y)` with
/// scalar bounds — the strip-mining pattern of Algorithm 2.
const UPDATE_SLACK_ASM: &str = r#"
    # a0=&u, a1=&y, a2=&znew, a3=n, fa0=lo, fa1=hi
    li   t0, 0
loop:
    bge  t0, a3, done
    flw  ft0, (a0)
    flw  ft1, (a1)
    fadd.s ft2, ft0, ft1
    fmax.s ft2, ft2, fa0
    fmin.s ft2, ft2, fa1
    fsw  ft2, (a2)
    addi a0, a0, 4
    addi a1, a1, 4
    addi a2, a2, 4
    addi t0, t0, 1
    j    loop
done:
    ecall
"#;

#[test]
fn assembly_update_slack_matches_matlib() {
    let n = 36; // nu * (N-1) for the quadrotor
    let u = Vector::<f32>::from_fn(n, |i| (i as f32 * 0.37).sin() * 0.2);
    let y = Vector::<f32>::from_fn(n, |i| (i as f32 * 0.11).cos() * 0.15);
    let (lo, hi) = (-0.08f32, 0.08f32);
    let expected = u.add(&y).unwrap().clip(lo, hi);

    let prog = assemble(UPDATE_SLACK_ASM).unwrap();
    let mut m = Machine::new(64 * 1024);
    m.record_trace();
    m.load_program(0, &prog);
    let (u_base, y_base, z_base) = (0x4000u32, 0x8000u32, 0xc000u32);
    for i in 0..n {
        m.write_f32(u_base + (i * 4) as u32, u[i]).unwrap();
        m.write_f32(y_base + (i * 4) as u32, y[i]).unwrap();
    }
    m.set_x(10, u_base);
    m.set_x(11, y_base);
    m.set_x(12, z_base);
    m.set_x(13, n as u32);
    m.set_f(10, lo);
    m.set_f(11, hi);
    m.run(10_000).unwrap();

    for i in 0..n {
        let got = m.read_f32(z_base + (i * 4) as u32).unwrap();
        assert!(
            (got - expected[i]).abs() < 1e-6,
            "elem {i}: {got} vs {}",
            expected[i]
        );
        assert!(got >= lo && got <= hi);
    }

    // The executed strip-mining trace must price in the same ballpark as
    // the generated library-style map (1 add + 2 minmax per element).
    let trace = trace_from_execution(m.retired().unwrap());
    let real = simulate_scalar(&CoreConfig::rocket(), &trace);
    let mut b = TraceBuilder::new();
    ScalarKernels::new(ScalarStyle::Library).fused_map(
        &mut b,
        n,
        2,
        &[
            soc_isa::OpClass::FpAdd,
            soc_isa::OpClass::FpSimple,
            soc_isa::OpClass::FpSimple,
        ],
    );
    let generated = simulate_scalar(&CoreConfig::rocket(), &b.finish());
    let ratio = real as f64 / generated as f64;
    assert!(
        (0.4..2.5).contains(&ratio),
        "executed {real} vs generated {generated}"
    );
}
