//! Human-readable rendering of micro-op traces — the "emitted solver"
//! listing produced by the code-generation flow.

use crate::{MicroOp, OpClass, Payload, RoccCmd, Trace, VecOpKind};
use std::fmt::Write as _;

fn mnemonic(op: &MicroOp) -> String {
    match op.class {
        OpClass::IntAlu => "addi".into(),
        OpClass::IntMul => "mul".into(),
        OpClass::Branch => "bne".into(),
        OpClass::Load => "flw".into(),
        OpClass::Store => "fsw".into(),
        OpClass::FpAdd => "fadd.s".into(),
        OpClass::FpMul => "fmul.s".into(),
        OpClass::FpFma => "fmadd.s".into(),
        OpClass::FpDiv => "fdiv.s".into(),
        OpClass::FpSimple => "fminmax.s".into(),
        OpClass::VSet => match op.payload {
            Payload::VSet(cfg) => {
                format!("vsetvli (vl={}, e{}, m{})", cfg.vl, cfg.sew, cfg.lmul)
            }
            _ => "vsetvli".into(),
        },
        OpClass::Fence => "fence".into(),
        OpClass::Vector => match op.payload {
            Payload::Vector(spec) => {
                let base = match spec.kind {
                    VecOpKind::Arith => "vfadd.vv",
                    VecOpKind::MulAdd => "vfmacc.vf",
                    VecOpKind::Load => "vle32.v",
                    VecOpKind::Store => "vse32.v",
                    VecOpKind::LoadStrided => "vlse32.v",
                    VecOpKind::StoreStrided => "vsse32.v",
                    VecOpKind::Reduction => "vfredosum.vs",
                    VecOpKind::Move => "vfmv.f.s",
                };
                format!("{base} (vl={}, m{})", spec.vl, spec.lmul)
            }
            _ => "v.unknown".into(),
        },
        OpClass::Rocc => match op.payload {
            Payload::Rocc(cmd) => match cmd {
                RoccCmd::Config => "gemmini.config".into(),
                RoccCmd::Mvin { rows, cols, base } => {
                    format!("gemmini.mvin {rows}x{cols} @sp[{base}]")
                }
                RoccCmd::Mvout {
                    rows,
                    cols,
                    pool_stride,
                    base,
                } => {
                    if pool_stride > 1 {
                        format!("gemmini.mvout.pool {rows}x{cols} @sp[{base}]")
                    } else {
                        format!("gemmini.mvout {rows}x{cols} @sp[{base}]")
                    }
                }
                RoccCmd::Preload => "gemmini.preload".into(),
                RoccCmd::ComputeTile {
                    rows,
                    cols,
                    ks,
                    gemv,
                    out_base,
                } => format!(
                    "gemmini.compute{} {rows}x{cols}x{ks} @sp[{out_base}]",
                    if gemv { ".gemv" } else { "" }
                ),
                RoccCmd::LoopMatmul { m, n, k } => format!("gemmini.loop_matmul {m}x{n}x{k}"),
                RoccCmd::Flush => "gemmini.flush".into(),
            },
            _ => "rocc.unknown".into(),
        },
    }
}

/// Renders a trace as an assembly-like listing, one micro-op per line,
/// with virtual-register operands.
///
/// # Examples
///
/// ```
/// use soc_isa::{disassemble, OpClass, TraceBuilder};
///
/// let mut b = TraceBuilder::new();
/// let x = b.load();
/// b.fp(OpClass::FpAdd, &[x, x]);
/// let listing = disassemble(&b.finish());
/// assert!(listing.contains("flw"));
/// assert!(listing.contains("fadd.s"));
/// ```
pub fn disassemble(trace: &Trace) -> String {
    let mut out = String::new();
    for (i, op) in trace.ops().iter().enumerate() {
        let dst = op.dst.map_or(String::new(), |d| format!("v{}", d.0));
        let srcs: Vec<String> = op.sources().map(|s| format!("v{}", s.0)).collect();
        let _ = writeln!(
            out,
            "{i:5}:  {:<28} {:<6} {}",
            mnemonic(op),
            dst,
            srcs.join(", ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceBuilder, VectorSpec};

    #[test]
    fn listing_covers_all_op_families() {
        let mut b = TraceBuilder::new();
        let x = b.load();
        let y = b.fp(OpClass::FpFma, &[x, x]);
        b.store(&[y]);
        b.int_ops(1);
        b.branch(&[]);
        b.vset_f32(12, 2);
        let v = b.vector(VectorSpec::f32(VecOpKind::MulAdd, 12, 2), &[]);
        b.vstore(12, 2, v);
        b.rocc(
            RoccCmd::ComputeTile {
                rows: 4,
                cols: 1,
                ks: 4,
                gemv: true,
                out_base: 0,
            },
            &[],
        );
        b.fence();
        let s = disassemble(&b.finish());
        for needle in [
            "flw",
            "fmadd.s",
            "fsw",
            "addi",
            "bne",
            "vsetvli",
            "vfmacc.vf (vl=12, m2)",
            "vse32.v",
            "gemmini.compute.gemv 4x1x4",
            "fence",
        ] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }

    #[test]
    fn lines_match_ops() {
        let mut b = TraceBuilder::new();
        b.load();
        b.load();
        let t = b.finish();
        assert_eq!(disassemble(&t).lines().count(), t.len());
    }
}
