//! Instruction-mix statistics over traces (Figure 2's raw material).

use crate::{MicroOp, OpClass, Payload, VecOpKind};
use std::fmt;

/// Counts of micro-ops by category, plus derived work metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Scalar integer ALU / vsetvli ops.
    pub int_ops: u64,
    /// Branches.
    pub branches: u64,
    /// Scalar loads.
    pub loads: u64,
    /// Scalar stores.
    pub stores: u64,
    /// Scalar FP arithmetic ops (add/mul/fma/div/simple).
    pub scalar_fp: u64,
    /// Scalar FP FLOPs (an FMA counts as 2).
    pub scalar_flops: u64,
    /// Vector instructions.
    pub vector_insts: u64,
    /// Vector element operations (sum of VL over arithmetic vector ops).
    pub vector_elems: u64,
    /// Vector FLOPs (MulAdd elements count twice).
    pub vector_flops: u64,
    /// RoCC commands.
    pub rocc_cmds: u64,
    /// Fences.
    pub fences: u64,
}

impl TraceStats {
    /// Computes statistics from a slice of micro-ops.
    pub fn from_ops(ops: &[MicroOp]) -> Self {
        let mut s = TraceStats::default();
        for op in ops {
            match op.class {
                OpClass::IntAlu | OpClass::IntMul | OpClass::VSet => s.int_ops += 1,
                OpClass::Branch => s.branches += 1,
                OpClass::Load => s.loads += 1,
                OpClass::Store => s.stores += 1,
                OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv | OpClass::FpSimple => {
                    s.scalar_fp += 1;
                    s.scalar_flops += 1;
                }
                OpClass::FpFma => {
                    s.scalar_fp += 1;
                    s.scalar_flops += 2;
                }
                OpClass::Vector => {
                    s.vector_insts += 1;
                    if let Payload::Vector(spec) = op.payload {
                        match spec.kind {
                            VecOpKind::Arith | VecOpKind::Reduction => {
                                s.vector_elems += spec.vl as u64;
                                s.vector_flops += spec.vl as u64;
                            }
                            VecOpKind::MulAdd => {
                                s.vector_elems += spec.vl as u64;
                                s.vector_flops += 2 * spec.vl as u64;
                            }
                            _ => {}
                        }
                    }
                }
                OpClass::Rocc => s.rocc_cmds += 1,
                OpClass::Fence => s.fences += 1,
            }
        }
        s
    }

    /// Total micro-op count.
    pub fn total_ops(&self) -> u64 {
        self.int_ops
            + self.branches
            + self.loads
            + self.stores
            + self.scalar_fp
            + self.vector_insts
            + self.rocc_cmds
            + self.fences
    }

    /// Total FLOPs (scalar + vector).
    pub fn total_flops(&self) -> u64 {
        self.scalar_flops + self.vector_flops
    }

    /// Accumulates another stats record into this one.
    pub fn merge(&mut self, other: &TraceStats) {
        self.int_ops += other.int_ops;
        self.branches += other.branches;
        self.loads += other.loads;
        self.stores += other.stores;
        self.scalar_fp += other.scalar_fp;
        self.scalar_flops += other.scalar_flops;
        self.vector_insts += other.vector_insts;
        self.vector_elems += other.vector_elems;
        self.vector_flops += other.vector_flops;
        self.rocc_cmds += other.rocc_cmds;
        self.fences += other.fences;
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "int={} br={} ld={} st={} fp={} vins={} rocc={} fence={} flops={}",
            self.int_ops,
            self.branches,
            self.loads,
            self.stores,
            self.scalar_fp,
            self.vector_insts,
            self.rocc_cmds,
            self.fences,
            self.total_flops()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpClass, TraceBuilder, VecOpKind, VectorSpec};

    #[test]
    fn counts_scalar_mix() {
        let mut b = TraceBuilder::new();
        let x = b.load();
        let y = b.load();
        let z = b.fp(OpClass::FpFma, &[x, y]);
        let w = b.fp(OpClass::FpAdd, &[z, z]);
        b.store(&[w]);
        b.int_ops(3);
        b.branch(&[]);
        let s = b.finish().stats();
        assert_eq!(s.loads, 2);
        assert_eq!(s.stores, 1);
        assert_eq!(s.scalar_fp, 2);
        assert_eq!(s.scalar_flops, 3); // fma=2 + add=1
        assert_eq!(s.int_ops, 3);
        assert_eq!(s.branches, 1);
        assert_eq!(s.total_ops(), 9);
    }

    #[test]
    fn counts_vector_flops() {
        let mut b = TraceBuilder::new();
        let v = b.vload(8, 1);
        b.vector(VectorSpec::f32(VecOpKind::MulAdd, 8, 1), &[v]);
        b.vector(VectorSpec::f32(VecOpKind::Arith, 8, 1), &[v]);
        let s = b.finish().stats();
        assert_eq!(s.vector_insts, 3);
        assert_eq!(s.vector_elems, 16);
        assert_eq!(s.vector_flops, 24); // 8*2 + 8
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TraceStats::default();
        let mut b = TraceStats::default();
        a.loads = 2;
        b.loads = 3;
        b.fences = 1;
        a.merge(&b);
        assert_eq!(a.loads, 5);
        assert_eq!(a.fences, 1);
    }

    #[test]
    fn display_is_nonempty() {
        let s = TraceStats::default();
        assert!(!format!("{s}").is_empty());
    }
}
