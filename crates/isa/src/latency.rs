//! Result-latency lookup shared by the scalar pipeline models.

use crate::OpClass;

/// Scalar result latencies, in cycles, for an embedded-class RISC-V core.
///
/// Defaults approximate the Rocket/BOOM FPUs evaluated in the paper: a
/// 4-cycle pipelined FMA, 2-cycle L1 load-to-use, and an iterative divider.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Integer ALU result latency.
    pub int_alu: u64,
    /// Integer multiply latency.
    pub int_mul: u64,
    /// L1-hit load-to-use latency.
    pub load: u64,
    /// FP add/sub latency.
    pub fp_add: u64,
    /// FP multiply latency.
    pub fp_mul: u64,
    /// Fused multiply-add latency.
    pub fp_fma: u64,
    /// FP divide latency (unpipelined).
    pub fp_div: u64,
    /// FP compare/min/max/abs/move latency.
    pub fp_simple: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            int_alu: 1,
            int_mul: 3,
            load: 2,
            fp_add: 4,
            fp_mul: 4,
            fp_fma: 4,
            fp_div: 14,
            fp_simple: 2,
        }
    }
}

impl LatencyModel {
    /// Result latency for a scalar op class.
    ///
    /// Vector and RoCC classes return 1 here: their real cost is accounted
    /// by the attached accelerator model, not the scalar result network.
    pub fn latency(&self, class: OpClass) -> u64 {
        match class {
            OpClass::IntAlu | OpClass::VSet => self.int_alu,
            OpClass::IntMul => self.int_mul,
            OpClass::Branch => 1,
            OpClass::Load => self.load,
            OpClass::Store => 1,
            OpClass::FpAdd => self.fp_add,
            OpClass::FpMul => self.fp_mul,
            OpClass::FpFma => self.fp_fma,
            OpClass::FpDiv => self.fp_div,
            OpClass::FpSimple => self.fp_simple,
            OpClass::Vector | OpClass::Rocc | OpClass::Fence => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let m = LatencyModel::default();
        assert_eq!(m.latency(OpClass::FpFma), 4);
        assert_eq!(m.latency(OpClass::IntAlu), 1);
        assert!(m.latency(OpClass::FpDiv) > m.latency(OpClass::FpMul));
        assert_eq!(m.latency(OpClass::Vector), 1);
    }
}
