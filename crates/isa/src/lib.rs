//! # soc-isa — micro-op IR shared by the SoC timing models
//!
//! The paper profiles the *same* workload (TinyMPC and its constituent
//! linear-algebra kernels) on very different back-ends: scalar RISC-V cores,
//! the Saturn short-vector unit, and the Gemmini systolic array. To compare
//! them under one methodology, every software mapping in this workspace is a
//! *code generator* that emits a stream of [`MicroOp`]s — scalar ops, RVV
//! vector ops carrying their `VL`/`SEW`/`LMUL` configuration, and RoCC
//! commands destined for a decoupled accelerator. Back-end timing models
//! (in `soc-cpu`, `soc-vector`, `soc-gemmini`) then replay that stream
//! through their pipeline models to produce cycle counts.
//!
//! Functional results are computed separately on `matlib` data: control flow
//! in these fixed-size MPC kernels is static, so the instruction stream —
//! and therefore timing — never depends on data values. This
//! timing/functional split is what lets a single ADMM solve be accounted on
//! a dozen hardware configurations cheaply.
//!
//! ## Example: a tiny trace
//!
//! ```
//! use soc_isa::{OpClass, TraceBuilder};
//!
//! let mut b = TraceBuilder::new();
//! let x = b.load();                       // flw  fx, 0(a0)
//! let y = b.load();                       // flw  fy, 4(a0)
//! let z = b.fp(OpClass::FpFma, &[x, y]);  // fmadd fz, fx, fy, fz
//! b.store(&[z]);                          // fsw  fz, 0(a1)
//! let trace = b.finish();
//! assert_eq!(trace.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod disasm;
mod latency;
mod op;
mod stats;
mod trace;

pub use disasm::disassemble;
pub use latency::LatencyModel;
pub use op::{
    FuKind, MicroOp, OpClass, Payload, RoccCmd, VReg, VecOpKind, VectorSpec, Vtype, SEW_F32,
};
pub use stats::TraceStats;
pub use trace::{Trace, TraceBuilder};

/// Cycle count type used across the workspace.
pub type Cycles = u64;
